"""Publishing sibling prefix lists (Section 6).

The authors "plan to regularly publish a list of sibling prefixes to be
used by network operators and fellow researchers".  This module defines
that artifact: a versioned, line-oriented export with the fields a
consumer needs (prefixes, similarity, domain counts, origin organization
relation, ROV status), in CSV or JSON-lines form, plus a loader that
round-trips it.
"""

from __future__ import annotations

import csv
import datetime
import json
from dataclasses import dataclass
from typing import Iterable, TextIO

from repro.analysis.organizations import pair_origins
from repro.core.siblings import SiblingSet
from repro.nettypes.prefix import Prefix
from repro.rpki.pair_status import classify_pair
from repro.rpki.repository import RpkiRepository
from repro.synth.universe import Universe

FORMAT_VERSION = 1

FIELDS = (
    "v4_prefix",
    "v6_prefix",
    "jaccard",
    "shared_domains",
    "v4_domains",
    "v6_domains",
    "same_org",
    "rov_status",
)


@dataclass(frozen=True, slots=True)
class PublishedPair:
    """One row of the published list."""

    v4_prefix: Prefix
    v6_prefix: Prefix
    jaccard: float
    shared_domains: int
    v4_domains: int
    v6_domains: int
    same_org: bool | None
    rov_status: str | None

    def as_row(self) -> dict[str, object]:
        return {
            "v4_prefix": str(self.v4_prefix),
            "v6_prefix": str(self.v6_prefix),
            "jaccard": round(self.jaccard, 6),
            "shared_domains": self.shared_domains,
            "v4_domains": self.v4_domains,
            "v6_domains": self.v6_domains,
            "same_org": "" if self.same_org is None else int(self.same_org),
            "rov_status": self.rov_status or "",
        }

    @classmethod
    def from_row(cls, row: dict[str, object]) -> "PublishedPair":
        same_org_raw = row.get("same_org", "")
        return cls(
            v4_prefix=Prefix.parse(str(row["v4_prefix"])),
            v6_prefix=Prefix.parse(str(row["v6_prefix"])),
            jaccard=float(row["jaccard"]),  # type: ignore[arg-type]
            shared_domains=int(row["shared_domains"]),  # type: ignore[arg-type]
            v4_domains=int(row["v4_domains"]),  # type: ignore[arg-type]
            v6_domains=int(row["v6_domains"]),  # type: ignore[arg-type]
            same_org=(
                None if same_org_raw in ("", None) else bool(int(same_org_raw))  # type: ignore[arg-type]
            ),
            rov_status=(str(row["rov_status"]) or None),
        )


def enrich_pairs(
    universe: Universe,
    siblings: SiblingSet,
    date: datetime.date,
    repository: RpkiRepository | None = None,
) -> list[PublishedPair]:
    """Attach organization and ROV metadata to every pair."""
    rib = universe.rib_at(date)
    published: list[PublishedPair] = []
    for pair in sorted(siblings, key=lambda p: (p.v4_prefix, p.v6_prefix)):
        origins = pair_origins(universe, pair, date)
        same_org = origins.same_org if origins.v4_asn is not None else None
        rov_status = None
        if repository is not None:
            route4 = rib.route_for_prefix(pair.v4_prefix)
            route6 = rib.route_for_prefix(pair.v6_prefix)
            if route4 is not None and route6 is not None:
                rov_status = classify_pair(
                    repository.validate(route4.prefix, route4.origin, date),
                    repository.validate(route6.prefix, route6.origin, date),
                ).value
        published.append(
            PublishedPair(
                v4_prefix=pair.v4_prefix,
                v6_prefix=pair.v6_prefix,
                jaccard=pair.similarity,
                shared_domains=len(pair.shared_domains),
                v4_domains=pair.v4_domain_count,
                v6_domains=pair.v6_domain_count,
                same_org=same_org,
                rov_status=rov_status,
            )
        )
    return published


def _header_comment(date: datetime.date, count: int) -> str:
    return (
        f"# sibling-prefixes list v{FORMAT_VERSION} | snapshot={date.isoformat()} "
        f"| pairs={count}"
    )


def header_snapshot_date(line: str) -> datetime.date | None:
    """The snapshot date recorded in a CSV export's header comment,
    or ``None`` when *line* is not such a comment.

    Inverse of the ``snapshot=`` field written by :func:`write_csv`;
    lets ``repro serve`` stamp an index compiled from a CSV with the
    export's true data vintage rather than a default date.
    """
    if not line.startswith("#"):
        return None
    for part in line.split("|"):
        part = part.strip()
        if part.startswith("snapshot="):
            try:
                return datetime.date.fromisoformat(part[len("snapshot="):])
            except ValueError:
                return None
    return None


def write_csv(
    pairs: Iterable[PublishedPair], stream: TextIO, date: datetime.date
) -> int:
    """Write the CSV form (with a commented header line); returns rows."""
    rows = [pair.as_row() for pair in pairs]
    stream.write(_header_comment(date, len(rows)) + "\n")
    writer = csv.DictWriter(stream, fieldnames=list(FIELDS))
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return len(rows)


def read_csv(stream: TextIO) -> list[PublishedPair]:
    """Load a CSV export (header comments skipped).

    Materializing wrapper over :func:`stream_csv`, so both paths share
    one parser and the same :class:`PublishFormatError` validation.
    """
    return list(stream_csv(stream))


def write_jsonl(
    pairs: Iterable[PublishedPair], stream: TextIO, date: datetime.date
) -> int:
    """Write the JSON-lines form; the first record is metadata."""
    rows = [pair.as_row() for pair in pairs]
    meta = {
        "format_version": FORMAT_VERSION,
        "snapshot": date.isoformat(),
        "pairs": len(rows),
    }
    stream.write(json.dumps({"meta": meta}) + "\n")
    for row in rows:
        stream.write(json.dumps(row) + "\n")
    return len(rows)


def read_jsonl(stream: TextIO) -> tuple[dict, list[PublishedPair]]:
    """Load a JSONL export; returns (metadata, pairs)."""
    first = stream.readline()
    if not first:
        return {}, []
    meta_record = json.loads(first)
    meta = meta_record.get("meta", {})
    pairs = [PublishedPair.from_row(json.loads(line)) for line in stream if line.strip()]
    return meta, pairs


class PublishFormatError(ValueError):
    """Raised when an exported sibling list cannot be parsed."""


def stream_csv(stream: TextIO) -> Iterable[PublishedPair]:
    """Iterate a CSV export one pair at a time (constant memory).

    The streaming sibling of :func:`read_csv`: the CLI ``lookup`` path
    scans exports of any size without materializing the list.  Raises
    :class:`PublishFormatError` (with the offending *file* line number,
    comment lines included) on malformed rows so callers can fail with
    a clear message.
    """
    consumed_lines = [0]

    def data_lines():
        for number, line in enumerate(stream, start=1):
            if not line.startswith("#"):
                consumed_lines[0] = number
                yield line

    reader = csv.DictReader(data_lines())
    missing = set(FIELDS) - set(reader.fieldnames or FIELDS)
    if missing:
        raise PublishFormatError(
            f"not a sibling list export: header lacks {sorted(missing)}"
        )
    for row in reader:
        try:
            if any(value is None for value in row.values()) or None in row:
                raise ValueError("wrong number of columns")
            yield PublishedPair.from_row(row)
        except (KeyError, TypeError, ValueError) as exc:
            raise PublishFormatError(
                f"malformed sibling list row at line {consumed_lines[0]}: {exc}"
            ) from exc


def write_index(
    pairs: Iterable[PublishedPair],
    path: str,
    date: datetime.date,
) -> int:
    """Compile *pairs* into a binary lookup index at *path*.

    The serving-side artifact emitted alongside the CSV/JSONL exports:
    built once at publish time, memory-loaded by ``repro serve`` /
    ``repro lookup``.  Returns the pair count.  (Lazy import: the
    serving package depends on this module for :class:`PublishedPair`.)
    """
    from repro.serving.codec import save_index
    from repro.serving.index import SiblingLookupIndex

    index = SiblingLookupIndex.from_pairs(pairs, date)
    save_index(index, path)
    return len(index)


def read_index(path: str):
    """Load a binary index written by :func:`write_index`; returns the
    compiled :class:`~repro.serving.index.SiblingLookupIndex`."""
    from repro.serving.codec import load_index

    return load_index(path)


def write_archive(
    pairs: Iterable[PublishedPair],
    path: str,
    date: datetime.date,
) -> int:
    """Append *pairs* as one compiled-index generation of a ``.sparch``
    snapshot archive at *path* (created if missing).

    The archive sibling of :func:`write_index`: instead of one
    standalone ``.sibidx`` file per publish, successive publishes
    append generations to a single archive that ``repro serve
    --archive`` maps zero-copy — the newest generation wins.  Returns
    the pair count.
    """
    from repro.serving.index import SiblingLookupIndex
    from repro.storage import index_io
    from repro.storage.archive import ArchiveWriter

    index = SiblingLookupIndex.from_pairs(pairs, date)
    segments, meta = index_io.index_segments(index)
    with ArchiveWriter.open(path) as writer:
        writer.append_generation(
            date.isoformat(), segments, {index_io.KIND: meta}
        )
    return len(index)


def read_archive_index(path: str):
    """Attach to the newest compiled index of a ``.sparch`` archive.

    Returns the mmap-backed
    :class:`~repro.storage.index_io.MappedSiblingIndex`; the caller
    owns it (drop or ``close()`` it to release the mapping).
    """
    from repro.storage.index_io import load_mapped_index

    return load_mapped_index(path)
