"""Figure 1: dataset evolution — domains and dual-stack share over time."""

from __future__ import annotations

import datetime

from repro.dns.toplists import Toplist
from repro.reporting.containers import TimeSeries
from repro.synth.universe import Universe


def dataset_evolution(
    universe: Universe, dates: list[datetime.date]
) -> TimeSeries:
    """Per snapshot: total domains, DS domains, DS share, and per-toplist
    query counts (the stacked composition of Figure 1 left)."""
    series: dict[str, list[float]] = {
        "total_domains": [],
        "ds_domains": [],
        "ds_share_pct": [],
    }
    for toplist in Toplist:
        series[toplist.name.lower()] = []

    for date in dates:
        snapshot = universe.snapshot_at(date)
        series["total_domains"].append(float(snapshot.domain_count))
        series["ds_domains"].append(float(snapshot.dual_stack_count))
        series["ds_share_pct"].append(100.0 * snapshot.dual_stack_share)
        active = universe.schedule.active(date)
        counts = {toplist: 0 for toplist in Toplist}
        for name in universe.queried_names_at(date):
            spec = universe.fabric.domains.get(_strip_alias(name, universe))
            if spec is None:
                continue
            for toplist in spec.sources & active:
                counts[toplist] += 1
        for toplist in Toplist:
            series[toplist.name.lower()].append(float(counts[toplist]))
    return TimeSeries("Figure 1: dataset evolution", dates, series)


def _strip_alias(queried_name: str, universe: Universe) -> str:
    """Queried names may be CNAME aliases (``www.<final>``)."""
    if queried_name in universe.fabric.domains:
        return queried_name
    if queried_name.startswith("www."):
        return queried_name[4:]
    return queried_name
