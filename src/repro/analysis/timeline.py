"""Figure 9 (and the bar component of Figure 14): sibling counts over time."""

from __future__ import annotations

import datetime

from repro.analysis.organizations import split_by_organization, unique_prefix_counts
from repro.analysis.pipeline import detect_at, tuned_at
from repro.core.sptuner import ROUTABLE_CONFIG, TunerConfig
from repro.reporting.containers import TimeSeries
from repro.synth.universe import Universe


def _siblings_at(universe: Universe, date, case: str):
    if case == "default":
        return detect_at(universe, date)
    if case == "routable":
        return tuned_at(universe, date, ROUTABLE_CONFIG)
    if case == "deep":
        return tuned_at(universe, date, TunerConfig())
    raise ValueError(f"unknown case {case!r}; use default/routable/deep")


def sibling_count_timeline(
    universe: Universe, dates: list[datetime.date]
) -> TimeSeries:
    """Pair counts plus unique-prefix counts at each date (Figure 9)."""
    pairs: list[float] = []
    v4_prefixes: list[float] = []
    v6_prefixes: list[float] = []
    for date in dates:
        siblings, _ = detect_at(universe, date)
        pairs.append(float(len(siblings)))
        unique_v4, unique_v6 = unique_prefix_counts(siblings)
        v4_prefixes.append(float(unique_v4))
        v6_prefixes.append(float(unique_v6))
    return TimeSeries(
        "Figure 9: sibling prefix pairs over time",
        dates,
        {
            "pairs": pairs,
            "unique_v4_prefixes": v4_prefixes,
            "unique_v6_prefixes": v6_prefixes,
        },
    )


def org_split_timeline(
    universe: Universe, dates: list[datetime.date], case: str = "default"
) -> TimeSeries:
    """Same/different organization pair counts over time (Figure 14;
    the ``routable`` case gives Figures 30/32)."""
    same: list[float] = []
    different: list[float] = []
    medians_same: list[float] = []
    medians_diff: list[float] = []
    for date in dates:
        siblings, _ = _siblings_at(universe, date, case)
        split = split_by_organization(universe, siblings, date)
        same.append(float(split.same_count))
        different.append(float(split.different_count))
        medians_same.append(split.median_jaccard(same=True))
        medians_diff.append(split.median_jaccard(same=False))
    return TimeSeries(
        "Figure 14/15: organization split over time",
        dates,
        {
            "same_org_pairs": same,
            "diff_org_pairs": different,
            "same_org_median_jaccard": medians_same,
            "diff_org_median_jaccard": medians_diff,
        },
    )
