"""Figures 13/35/36: CIDR-size distribution of sibling prefixes."""

from __future__ import annotations

from repro.core.siblings import SiblingSet
from repro.reporting.containers import Heatmap

#: The paper's Figure 13 length groups (default / BGP-announced case).
V4_GROUPS_DEFAULT: tuple[tuple[int, int, str], ...] = (
    (0, 11, "0-11"),
    (12, 15, "12-15"),
    (16, 16, "16"),
    (17, 19, "17-19"),
    (20, 22, "20-22"),
    (23, 23, "23"),
    (24, 24, "24"),
    (25, 32, "25-32"),
)
V6_GROUPS_DEFAULT: tuple[tuple[int, int, str], ...] = (
    (0, 16, "0-16"),
    (17, 31, "17-31"),
    (32, 32, "32"),
    (33, 47, "33-47"),
    (48, 48, "48"),
    (49, 56, "49-56"),
    (57, 64, "57-64"),
    (65, 128, "65-128"),
)

#: The Figure 36 groups (SP-Tuner /28-/96 output).
V4_GROUPS_TUNED: tuple[tuple[int, int, str], ...] = (
    (0, 16, "0-16"),
    (17, 20, "17-20"),
    (21, 23, "21-23"),
    (24, 24, "24"),
    (25, 27, "25-27"),
    (28, 28, "28"),
    (29, 32, "29-32"),
)
V6_GROUPS_TUNED: tuple[tuple[int, int, str], ...] = (
    (0, 32, "0-32"),
    (33, 47, "33-47"),
    (48, 48, "48"),
    (49, 64, "49-64"),
    (65, 95, "65-95"),
    (96, 96, "96"),
    (97, 128, "97-128"),
)


def _group_index(length: int, groups: tuple[tuple[int, int, str], ...]) -> int:
    for index, (low, high, _) in enumerate(groups):
        if low <= length <= high:
            return index
    raise ValueError(f"length /{length} outside grouping")


def cidr_size_heatmap(
    siblings: SiblingSet,
    v4_groups: tuple[tuple[int, int, str], ...] = V4_GROUPS_DEFAULT,
    v6_groups: tuple[tuple[int, int, str], ...] = V6_GROUPS_DEFAULT,
    title: str = "Figure 13: CIDR sizes of sibling prefixes (%)",
) -> Heatmap:
    """Cell[v6 group][v4 group] = % of sibling pairs.  Rows are printed
    most-specific group last, mirroring the paper's layout."""
    counts = [[0 for _ in v4_groups] for _ in v6_groups]
    total = 0
    for pair in siblings:
        row = _group_index(pair.v6_prefix.length, v6_groups)
        column = _group_index(pair.v4_prefix.length, v4_groups)
        counts[row][column] += 1
        total += 1
    cells = [
        [100.0 * value / total if total else 0.0 for value in row]
        for row in counts
    ]
    return Heatmap(
        title=title,
        row_labels=[label for _, _, label in v6_groups],
        column_labels=[label for _, _, label in v4_groups],
        cells=cells,
    )


def hyper_specific_shares(siblings: SiblingSet) -> tuple[float, float]:
    """Share of sibling pairs whose IPv4 (resp. IPv6) prefix is more
    specific than the most-specific globally routable size (/24, /48).

    Section 4.4 observes these hyper-specific prefixes (Sediqi et al.,
    CCR 2022) are very rare among default-case sibling prefixes.
    """
    total = len(siblings)
    if total == 0:
        return (0.0, 0.0)
    v4_hyper = sum(1 for pair in siblings if pair.v4_prefix.length > 24)
    v6_hyper = sum(1 for pair in siblings if pair.v6_prefix.length > 48)
    return (v4_hyper / total, v6_hyper / total)


def modal_combination(heatmap: Heatmap) -> tuple[str, str, float]:
    """The (v6 group, v4 group, share) of the densest cell — the paper's
    '/24-/48 makes up the largest share' style statement."""
    best = (heatmap.row_labels[0], heatmap.column_labels[0], -1.0)
    for row_index, row_label in enumerate(heatmap.row_labels):
        for column_index, column_label in enumerate(heatmap.column_labels):
            value = heatmap.cells[row_index][column_index]
            if value > best[2]:
                best = (row_label, column_label, value)
    return best
