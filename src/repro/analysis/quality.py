"""Exact detection scoring against a ground-truth ledger.

:mod:`repro.core.quality` scores detection against the calibrated
universe's *deployment distributions* (a proxy, since that generator
does not know which exact prefix pairs are detectable).  The event
engine (:mod:`repro.synth.events`) does know — it scripts every pair —
so this module joins a detected
:class:`~repro.core.siblings.SiblingSet` against its
:class:`~repro.synth.groundtruth.GroundTruthLedger` and reports exact
per-date precision, recall, F1, and churn-lag (how many dates until a
truth change shows up in the detection output).

Conventions:

* A detected pair matching *any* truth pair (visible or not) counts
  toward precision — detecting an organizationally true pair during a
  blackout is not a false positive.
* Recall is measured against *visible* truth only: pairs the snapshot
  cannot support (v4-only, absent, hijacked into an aliased cluster)
  never count as misses.
* A false positive touching a registered trap prefix (the aliased
  clusters) is additionally counted as a ``trap_positive`` —
  ``non_trap_precision`` then isolates quality from the designed traps.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.siblings import SiblingSet
from repro.synth.groundtruth import GroundTruthLedger, PairKey


def _f1(precision: float, recall: float) -> float:
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


@dataclass(frozen=True, slots=True)
class DateScore:
    """Detection vs. truth on one date."""

    date: datetime.date
    true_positives: int
    false_positives: int
    #: Subset of ``false_positives`` touching a registered trap prefix.
    trap_positives: int
    false_negatives: int

    @property
    def detected(self) -> int:
        return self.true_positives + self.false_positives

    @property
    def precision(self) -> float:
        if self.detected == 0:
            # Nothing detected: perfect precision iff nothing was missed.
            return 1.0 if self.false_negatives == 0 else 0.0
        return self.true_positives / self.detected

    @property
    def non_trap_precision(self) -> float:
        """Precision with the designed trap hits excluded."""
        denominator = self.detected - self.trap_positives
        if denominator == 0:
            return 1.0 if self.false_negatives == 0 else 0.0
        return self.true_positives / denominator

    @property
    def recall(self) -> float:
        expected = self.true_positives + self.false_negatives
        if expected == 0:
            return 1.0
        return self.true_positives / expected

    @property
    def f1(self) -> float:
        return _f1(self.precision, self.recall)


@dataclass(frozen=True, slots=True)
class ChurnLag:
    """How quickly truth changes were reflected in detection output.

    For every non-empty ledger change at date *d*, the lag is the number
    of result dates from *d* (inclusive) until the first result where
    every added pair is detected and every retracted pair is gone.  A
    lag of 0 means the change landed the same date it happened.
    """

    changes: int
    reflected: int
    lags: tuple[int, ...]

    @property
    def unreflected(self) -> int:
        return self.changes - self.reflected

    @property
    def mean_lag(self) -> float | None:
        if not self.lags:
            return None
        return sum(self.lags) / len(self.lags)

    @property
    def max_lag(self) -> int | None:
        return max(self.lags) if self.lags else None


@dataclass(frozen=True, slots=True)
class ScenarioScore:
    """Aggregate of a whole series run against one ledger."""

    scenario: str
    dates: tuple[DateScore, ...]
    churn: ChurnLag

    def _totals(self) -> tuple[int, int, int, int]:
        tp = sum(s.true_positives for s in self.dates)
        fp = sum(s.false_positives for s in self.dates)
        trap = sum(s.trap_positives for s in self.dates)
        fn = sum(s.false_negatives for s in self.dates)
        return tp, fp, trap, fn

    @property
    def precision(self) -> float:
        tp, fp, _, fn = self._totals()
        if tp + fp == 0:
            return 1.0 if fn == 0 else 0.0
        return tp / (tp + fp)

    @property
    def non_trap_precision(self) -> float:
        tp, fp, trap, fn = self._totals()
        if tp + fp - trap == 0:
            return 1.0 if fn == 0 else 0.0
        return tp / (tp + fp - trap)

    @property
    def recall(self) -> float:
        tp, _, _, fn = self._totals()
        if tp + fn == 0:
            return 1.0
        return tp / (tp + fn)

    @property
    def f1(self) -> float:
        return _f1(self.precision, self.recall)

    @property
    def min_precision(self) -> float:
        return min((s.precision for s in self.dates), default=1.0)

    @property
    def min_recall(self) -> float:
        return min((s.recall for s in self.dates), default=1.0)

    @property
    def trap_positives(self) -> int:
        return self._totals()[2]


def score_detection(
    siblings: SiblingSet,
    ledger: GroundTruthLedger,
    date: datetime.date | None = None,
) -> DateScore:
    """Join one detected sibling set against the ledger's truth."""
    when = date if date is not None else siblings.date
    truth_keys = ledger.keys_at(when)
    visible_keys = ledger.visible_keys_at(when)
    detected: set[PairKey] = {pair.key for pair in siblings}
    true_positives = len(detected & truth_keys)
    false_keys = detected - truth_keys
    trap_positives = sum(
        1
        for v4_prefix, v6_prefix in false_keys
        if ledger.is_trap(v4_prefix) or ledger.is_trap(v6_prefix)
    )
    false_negatives = len(visible_keys - detected)
    return DateScore(
        date=when,
        true_positives=true_positives,
        false_positives=len(false_keys),
        trap_positives=trap_positives,
        false_negatives=false_negatives,
    )


def _churn_lag(
    results: Sequence[tuple[datetime.date, SiblingSet]],
    ledger: GroundTruthLedger,
) -> ChurnLag:
    detected_by_date = {
        date: {pair.key for pair in siblings} for date, siblings in results
    }
    dates = [date for date, _ in results]
    position = {date: i for i, date in enumerate(dates)}
    changes = 0
    lags: list[int] = []
    for change in ledger.changes():
        if change.is_empty or change.date not in position:
            continue
        changes += 1
        start = position[change.date]
        for offset, date in enumerate(dates[start:]):
            detected = detected_by_date[date]
            if change.added <= detected and not (change.retracted & detected):
                lags.append(offset)
                break
    return ChurnLag(changes=changes, reflected=len(lags), lags=tuple(lags))


def score_series(
    results: Iterable[tuple[datetime.date, SiblingSet]],
    ledger: GroundTruthLedger,
    scenario: str = "",
) -> ScenarioScore:
    """Score a full ``detect_series`` result list against the ledger."""
    materialized = list(results)
    dates = tuple(
        score_detection(siblings, ledger, date)
        for date, siblings in materialized
    )
    return ScenarioScore(
        scenario=scenario,
        dates=dates,
        churn=_churn_lag(materialized, ledger),
    )


def render_score(score: ScenarioScore) -> str:
    """The per-date score table ``repro scenario run --score`` prints."""
    lines = [
        f"{'date':<12} {'truth':>6} {'found':>6} {'tp':>5} {'fp':>5} "
        f"{'trap':>5} {'fn':>5} {'prec':>7} {'recall':>7} {'f1':>7}"
    ]
    for entry in score.dates:
        expected = entry.true_positives + entry.false_negatives
        lines.append(
            f"{entry.date.isoformat():<12} {expected:>6} {entry.detected:>6} "
            f"{entry.true_positives:>5} {entry.false_positives:>5} "
            f"{entry.trap_positives:>5} {entry.false_negatives:>5} "
            f"{entry.precision:>7.3f} {entry.recall:>7.3f} {entry.f1:>7.3f}"
        )
    churn = score.churn
    mean_lag = "-" if churn.mean_lag is None else f"{churn.mean_lag:.2f}"
    max_lag = "-" if churn.max_lag is None else str(churn.max_lag)
    lines.append(
        f"overall precision={score.precision:.3f} "
        f"(non-trap {score.non_trap_precision:.3f}) "
        f"recall={score.recall:.3f} f1={score.f1:.3f}"
    )
    lines.append(
        f"churn: {churn.changes} changes, {churn.reflected} reflected, "
        f"mean lag {mean_lag} dates, max lag {max_lag}, "
        f"{churn.unreflected} unreflected"
    )
    return "\n".join(lines)
