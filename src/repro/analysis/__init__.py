"""Section 4 analyses — one module per paper figure family.

Each module exposes pure functions from pipeline outputs (sibling sets,
indexes, the universe) to :mod:`repro.reporting` containers; the
benchmarks under ``benchmarks/`` wire them to concrete scenarios and
print the paper-equivalent tables.
"""

from repro.analysis.pipeline import detect_at, paper_offsets, tuned_at

__all__ = ["detect_at", "paper_offsets", "tuned_at"]
