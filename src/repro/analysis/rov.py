"""Figure 18: RPKI route-origin-validation status of sibling pairs.

Uses BGP-announced (default-case) sibling prefixes, as those align with
what actually appears in BGP; each pair's two prefixes are validated
against the RPKI repository of the month and the joint status classified
into the six Figure 18 categories.
"""

from __future__ import annotations

import datetime

from repro.analysis.pipeline import detect_at
from repro.core.siblings import SiblingSet
from repro.reporting.containers import StackedArea
from repro.rpki.pair_status import PairRovStatus, classify_pair
from repro.rpki.repository import RpkiRepository
from repro.synth.universe import Universe

CATEGORY_ORDER: tuple[PairRovStatus, ...] = (
    PairRovStatus.BOTH_VALID,
    PairRovStatus.VALID_NOTFOUND,
    PairRovStatus.VALID_INVALID,
    PairRovStatus.INVALID_NOTFOUND,
    PairRovStatus.BOTH_INVALID,
    PairRovStatus.BOTH_NOTFOUND,
)


def pair_rov_shares(
    universe: Universe,
    siblings: SiblingSet,
    repository: RpkiRepository,
    date: datetime.date,
) -> dict[PairRovStatus, float]:
    """Percentage of sibling pairs per joint ROV status on *date*."""
    rib = universe.rib_at(date)
    counts = {status: 0 for status in PairRovStatus}
    total = 0
    for pair in siblings:
        route4 = rib.route_for_prefix(pair.v4_prefix)
        route6 = rib.route_for_prefix(pair.v6_prefix)
        if route4 is None or route6 is None:
            continue
        # MOAS-aware: an announcement is VALID if any of its origins is.
        status4 = repository.validate_route(route4.prefix, route4.origins, date)
        status6 = repository.validate_route(route6.prefix, route6.origins, date)
        counts[classify_pair(status4, status6)] += 1
        total += 1
    if total == 0:
        return {status: 0.0 for status in PairRovStatus}
    return {status: 100.0 * count / total for status, count in counts.items()}


def rov_timeline(
    universe: Universe,
    repository: RpkiRepository,
    dates: list[datetime.date],
) -> StackedArea:
    """The full Figure 18 stacked-area data."""
    shares_rows: list[list[float]] = []
    for date in dates:
        siblings, _ = detect_at(universe, date)
        shares = pair_rov_shares(universe, siblings, repository, date)
        shares_rows.append([shares[status] for status in CATEGORY_ORDER])
    return StackedArea(
        title="Figure 18: sibling-pair ROV status over time (%)",
        dates=dates,
        categories=[status.value for status in CATEGORY_ORDER],
        shares=shares_rows,
    )


def at_least_one_valid_share(shares: dict[PairRovStatus, float]) -> float:
    """The paper's headline number (~50% in 2020 → ~65% in 2024)."""
    return sum(
        value for status, value in shares.items() if status.has_valid
    )
