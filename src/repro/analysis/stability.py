"""Sibling-pair stability over time.

The abstract's claim — "we find sibling prefixes to be relatively stable
over time" — deserves its own measurement beyond the change-class split
of Figure 10: for each earlier snapshot, how many of its sibling pairs
still exist (and how many still carry the same Jaccard value) on the
reference date?
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.analysis.pipeline import detect_at
from repro.core.longitudinal import classify_changes
from repro.reporting.containers import TimeSeries
from repro.synth.universe import Universe


@dataclass(frozen=True, slots=True)
class SurvivalPoint:
    """Survival of one earlier snapshot's pairs into the reference set."""

    date: datetime.date
    pairs_then: int
    surviving: int
    surviving_identical: int

    @property
    def survival_share(self) -> float:
        return self.surviving / self.pairs_then if self.pairs_then else 0.0

    @property
    def identical_share(self) -> float:
        return self.surviving_identical / self.pairs_then if self.pairs_then else 0.0


def pair_survival(
    universe: Universe,
    dates: list[datetime.date],
    reference: datetime.date,
) -> list[SurvivalPoint]:
    """For each earlier date, the share of its pairs alive on *reference*."""
    reference_set, _ = detect_at(universe, reference)
    points: list[SurvivalPoint] = []
    for date in dates:
        earlier, _ = detect_at(universe, date)
        report = classify_changes(earlier, reference_set)
        surviving = len(report.unchanged) + len(report.changed)
        points.append(
            SurvivalPoint(
                date=date,
                pairs_then=len(earlier),
                surviving=surviving,
                surviving_identical=len(report.unchanged),
            )
        )
    return points


def survival_timeseries(points: list[SurvivalPoint]) -> TimeSeries:
    return TimeSeries(
        "Sibling pair survival into the reference snapshot (%)",
        [point.date for point in points],
        {
            "survival_pct": [100.0 * p.survival_share for p in points],
            "identical_pct": [100.0 * p.identical_share for p in points],
            "pairs_then": [float(p.pairs_then) for p in points],
        },
    )
