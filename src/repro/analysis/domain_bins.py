"""Figure 8 (and 33/34): domains-per-prefix heatmap for sibling pairs."""

from __future__ import annotations

from repro.core.siblings import SiblingSet
from repro.reporting.containers import Heatmap

#: The paper's bins for "number of DS domains on a prefix".
DOMAIN_BINS: tuple[tuple[int, int], ...] = (
    (1, 1),
    (2, 5),
    (6, 10),
    (11, 50),
    (51, 100),
    (101, 10**9),
)

BIN_LABELS = ("1", "2-5", "6-10", "11-50", "51-100", ">100")


def _bin_of(count: int) -> int:
    for index, (low, high) in enumerate(DOMAIN_BINS):
        if low <= count <= high:
            return index
    return len(DOMAIN_BINS) - 1


def domain_count_heatmap(siblings: SiblingSet) -> Heatmap:
    """Cell[v6 bin][v4 bin] = % of sibling pairs whose prefixes carry
    that many DS domains.  Rows ordered top-to-bottom as in the paper
    (>100 first)."""
    counts = [[0 for _ in DOMAIN_BINS] for _ in DOMAIN_BINS]
    total = 0
    for pair in siblings:
        row = _bin_of(pair.v6_domain_count)
        column = _bin_of(pair.v4_domain_count)
        counts[row][column] += 1
        total += 1
    if total:
        cells = [
            [100.0 * counts[row][col] / total for col in range(len(DOMAIN_BINS))]
            for row in range(len(DOMAIN_BINS))
        ]
    else:
        cells = [[0.0] * len(DOMAIN_BINS) for _ in DOMAIN_BINS]
    # Present with the >100 row on top, like Figure 8.
    return Heatmap(
        title="Figure 8: sibling pairs by DS-domain counts (%)",
        row_labels=list(reversed(BIN_LABELS)),
        column_labels=list(BIN_LABELS),
        cells=list(reversed(cells)),
    )


def diagonal_share(heatmap: Heatmap) -> float:
    """Share of pairs on the diagonal — 'sibling prefixes tend to have a
    similar number of domains for IPv4 and IPv6'."""
    total = heatmap.total()
    if total == 0:
        return 0.0
    n = len(BIN_LABELS)
    diagonal = sum(
        heatmap.cells[n - 1 - index][index] for index in range(n)
    )
    return diagonal / total
