"""Figures 14/15 (and 29-32): origin-AS organizations of sibling pairs.

A pair is "same organization" when the IPv4 and IPv6 origin ASes share an
AS number or an organization name (after sibling-AS merging), Section 4.5.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field

from repro.core.siblings import SiblingPair, SiblingSet
from repro.reporting.containers import percentile
from repro.synth.universe import Universe


@dataclass(frozen=True, slots=True)
class PairOrigins:
    """Origin attribution for one sibling pair."""

    v4_asn: int | None
    v6_asn: int | None
    v4_org: str | None
    v6_org: str | None
    same_org: bool


def pair_origins(
    universe: Universe, pair: SiblingPair, date: datetime.date
) -> PairOrigins:
    """Resolve both prefixes to origin AS and organization on *date*.

    Tuned prefixes are more specific than announcements, so resolution
    uses longest-prefix match against the RIB of that date.
    """
    rib = universe.rib_at(date)
    as2org = universe.as2org_at(date)
    route4 = rib.route_for_prefix(pair.v4_prefix)
    route6 = rib.route_for_prefix(pair.v6_prefix)
    v4_asn = route4.origin if route4 is not None else None
    v6_asn = route6.origin if route6 is not None else None
    v4_org = as2org.org_of(v4_asn) if v4_asn is not None else None
    v6_org = as2org.org_of(v6_asn) if v6_asn is not None else None
    same = (
        v4_asn is not None
        and v6_asn is not None
        and as2org.same_org(v4_asn, v6_asn)
    )
    return PairOrigins(v4_asn, v6_asn, v4_org, v6_org, same)


@dataclass
class OrgSplit:
    """Same-org / different-org partition of a sibling set."""

    date: datetime.date
    same_org: list[SiblingPair] = field(default_factory=list)
    different_org: list[SiblingPair] = field(default_factory=list)
    unresolved: list[SiblingPair] = field(default_factory=list)

    @property
    def same_count(self) -> int:
        return len(self.same_org)

    @property
    def different_count(self) -> int:
        return len(self.different_org)

    def median_jaccard(self, same: bool) -> float:
        pairs = self.same_org if same else self.different_org
        if not pairs:
            return 0.0
        return percentile([q.similarity for q in pairs], 0.5)

    def quartiles(self, same: bool) -> tuple[float, float]:
        pairs = self.same_org if same else self.different_org
        if not pairs:
            return (0.0, 0.0)
        values = [q.similarity for q in pairs]
        return (percentile(values, 0.25), percentile(values, 0.75))


def split_by_organization(
    universe: Universe, siblings: SiblingSet, date: datetime.date
) -> OrgSplit:
    """Partition sibling pairs by origin-organization equality."""
    split = OrgSplit(date=date)
    for pair in siblings:
        origins = pair_origins(universe, pair, date)
        if origins.v4_asn is None or origins.v6_asn is None:
            split.unresolved.append(pair)
        elif origins.same_org:
            split.same_org.append(pair)
        else:
            split.different_org.append(pair)
    return split


def unique_prefix_counts(siblings: SiblingSet) -> tuple[int, int]:
    """(unique IPv4 prefixes, unique IPv6 prefixes) — the red/blue lines
    of Figure 14."""
    return (
        len(siblings.unique_v4_prefixes()),
        len(siblings.unique_v6_prefixes()),
    )
