"""Pipeline plumbing shared by the analyses and benches.

All entry points accept a ``substrate=`` argument (name or
:class:`~repro.core.substrate.Substrate` instance) and default to the
shared columnar engine; :func:`detect_series` resolves the substrate
once so a longitudinal run reuses one interned domain table across every
snapshot it detects on.  A ``workers=`` argument rides along everywhere
for the parallel ``"sharded"`` engine (worker-process count, ``0`` =
all cores); single-process substrates ignore it.

:func:`detect_series` additionally offers ``incremental=True``: date 0
is detected from scratch, every later date applies the snapshot delta to
the *same* evolving index (re-annotating only churned domains) and lets
the substrate patch its persistent Step-3 counters, so detection cost
scales with daily churn instead of dataset size.  The mode is exact —
bit-identical to full recomputation at every date — because delta
application is gated on the annotator's content signature: a date whose
routing tables changed rebuilds from scratch, automatically.
"""

from __future__ import annotations

import datetime
from typing import Iterable

from repro.core.detection import detect_with_index
from repro.core.domainsets import PrefixDomainIndex, build_index
from repro.core.siblings import SiblingSet
from repro.core.sptuner import SpTunerMS, TunerConfig
from repro.core.substrate import Substrate, get_substrate
from repro.dates import add_months
from repro.synth.universe import Universe


def detect_at(
    universe: Universe,
    date: datetime.date,
    substrate: "str | Substrate | None" = None,
    workers: int | None = None,
) -> tuple[SiblingSet, PrefixDomainIndex]:
    """Default-case (BGP-announced) sibling detection on one date."""
    snapshot = universe.snapshot_at(date)
    annotator = universe.annotator_at(date)
    return detect_with_index(
        snapshot, annotator, substrate=substrate, workers=workers
    )


def tuned_at(
    universe: Universe,
    date: datetime.date,
    config: TunerConfig = TunerConfig(),
    substrate: "str | Substrate | None" = None,
    workers: int | None = None,
) -> tuple[SiblingSet, PrefixDomainIndex]:
    """SP-Tuner-refined sibling detection on one date."""
    siblings, index = detect_at(
        universe, date, substrate=substrate, workers=workers
    )
    tuner = SpTunerMS(index, config)
    return tuner.tune_all(siblings), index


def detect_series(
    universe: Universe,
    dates: Iterable[datetime.date],
    substrate: "str | Substrate | None" = None,
    workers: int | None = None,
    incremental: bool = False,
) -> list[tuple[datetime.date, SiblingSet]]:
    """Detect siblings on every date, sharing one substrate instance.

    The resolved substrate is threaded through all snapshots, so the
    columnar engine interns each domain string once for the whole run
    rather than once per date — and the sharded engine shards every
    snapshot with the same worker configuration while reusing that same
    intern pool (workers receive interned integer arrays, never the
    pool itself).

    With ``incremental=True`` the first date builds its index in full;
    each subsequent date computes the
    :class:`~repro.dns.openintel.SnapshotDelta` against the previous
    snapshot and applies it to the same evolving index, provided the
    annotator's content signature is unchanged (otherwise that date
    rebuilds from scratch — routing changes can re-annotate *any*
    domain, not just churned ones).  Substrates patch their cached
    columnar view and persistent Step-3 counters from the recorded
    index deltas, so per-date cost tracks churn.  Results are
    bit-identical to ``incremental=False``.
    """
    engine = get_substrate(substrate, workers=workers)
    if not incremental:
        return [
            (date, detect_at(universe, date, substrate=engine)[0])
            for date in dates
        ]

    results: list[tuple[datetime.date, SiblingSet]] = []
    index: PrefixDomainIndex | None = None
    previous_snapshot = None
    previous_signature = None
    for date in dates:
        snapshot = universe.snapshot_at(date)
        annotator = universe.annotator_at(date)
        signature = annotator.signature()
        if index is None or signature != previous_signature:
            index = build_index(snapshot, annotator)
        else:
            index.apply_delta(previous_snapshot.delta_to(snapshot), annotator)
        results.append((date, engine.select(index)))
        previous_snapshot = snapshot
        previous_signature = signature
    return results


def serve_series(
    universe: Universe,
    dates: Iterable[datetime.date],
    substrate: "str | Substrate | None" = None,
    cache_size: int = 4096,
    workers: int | None = None,
    incremental: bool = False,
):
    """Detect on every date and publish each snapshot into a fresh
    :class:`~repro.serving.service.SiblingQueryService`.

    The longitudinal bridge between detection and serving: snapshots
    are compiled into immutable lookup indexes and hot-swapped into the
    service in date order, exactly as a production publisher would roll
    a daily list forward.  A date whose sibling list is *identical* to
    the one already being served skips the lookup-index recompile and
    swap entirely — the service keeps answering from the equal index it
    already holds, and its ``generation`` counter reflects only real
    publishes.  The returned service answers for the *last* date.
    ``incremental=True`` detects via snapshot deltas (see
    :func:`detect_series`).
    """
    from repro.serving.index import SiblingLookupIndex
    from repro.serving.service import SiblingQueryService

    service = SiblingQueryService(cache_size=cache_size)
    published: SiblingSet | None = None
    for _date, siblings in detect_series(
        universe, dates, substrate=substrate, workers=workers,
        incremental=incremental,
    ):
        if published is not None and published.same_pairs(siblings):
            continue
        service.swap(SiblingLookupIndex.from_siblings(siblings))
        published = siblings
    return service


def paper_offsets(
    reference: datetime.date,
) -> list[tuple[str, datetime.date]]:
    """The x-axis of Figures 7/9/11/12: Year -4 … Day 0."""
    return [
        ("Year -4", add_months(reference, -48)),
        ("Year -3", add_months(reference, -36)),
        ("Year -2", add_months(reference, -24)),
        ("Year -1", add_months(reference, -12)),
        ("Month -6", add_months(reference, -6)),
        ("Month -3", add_months(reference, -3)),
        ("Month -1", add_months(reference, -1)),
        ("Week -1", reference - datetime.timedelta(days=7)),
        ("Day -1", reference - datetime.timedelta(days=1)),
        ("Day 0", reference),
    ]


def stability_offsets(
    reference: datetime.date,
) -> list[tuple[str, datetime.date]]:
    """The x-axis of Figure 7 centre/right (one-year lookback)."""
    return [
        ("Day 0", reference),
        ("Day -1", reference - datetime.timedelta(days=1)),
        ("Week -1", reference - datetime.timedelta(days=7)),
        ("Month -1", add_months(reference, -1)),
        ("Month -3", add_months(reference, -3)),
        ("Month -6", add_months(reference, -6)),
        ("Year -1", add_months(reference, -12)),
    ]
