"""Pipeline plumbing shared by the analyses and benches."""

from __future__ import annotations

import datetime

from repro.core.detection import detect_with_index
from repro.core.domainsets import PrefixDomainIndex
from repro.core.siblings import SiblingSet
from repro.core.sptuner import SpTunerMS, TunerConfig
from repro.dates import add_months
from repro.synth.universe import Universe


def detect_at(
    universe: Universe, date: datetime.date
) -> tuple[SiblingSet, PrefixDomainIndex]:
    """Default-case (BGP-announced) sibling detection on one date."""
    snapshot = universe.snapshot_at(date)
    annotator = universe.annotator_at(date)
    return detect_with_index(snapshot, annotator)


def tuned_at(
    universe: Universe,
    date: datetime.date,
    config: TunerConfig = TunerConfig(),
) -> tuple[SiblingSet, PrefixDomainIndex]:
    """SP-Tuner-refined sibling detection on one date."""
    siblings, index = detect_at(universe, date)
    tuner = SpTunerMS(index, config)
    return tuner.tune_all(siblings), index


def paper_offsets(
    reference: datetime.date,
) -> list[tuple[str, datetime.date]]:
    """The x-axis of Figures 7/9/11/12: Year -4 … Day 0."""
    return [
        ("Year -4", add_months(reference, -48)),
        ("Year -3", add_months(reference, -36)),
        ("Year -2", add_months(reference, -24)),
        ("Year -1", add_months(reference, -12)),
        ("Month -6", add_months(reference, -6)),
        ("Month -3", add_months(reference, -3)),
        ("Month -1", add_months(reference, -1)),
        ("Week -1", reference - datetime.timedelta(days=7)),
        ("Day -1", reference - datetime.timedelta(days=1)),
        ("Day 0", reference),
    ]


def stability_offsets(
    reference: datetime.date,
) -> list[tuple[str, datetime.date]]:
    """The x-axis of Figure 7 centre/right (one-year lookback)."""
    return [
        ("Day 0", reference),
        ("Day -1", reference - datetime.timedelta(days=1)),
        ("Week -1", reference - datetime.timedelta(days=7)),
        ("Month -1", add_months(reference, -1)),
        ("Month -3", add_months(reference, -3)),
        ("Month -6", add_months(reference, -6)),
        ("Year -1", add_months(reference, -12)),
    ]
