"""Pipeline plumbing shared by the analyses and benches.

All entry points accept a ``substrate=`` argument (name or
:class:`~repro.core.substrate.Substrate` instance) and default to the
shared columnar engine; :func:`detect_series` resolves the substrate
once so a longitudinal run reuses one interned domain table across every
snapshot it detects on.  A ``workers=`` argument rides along everywhere
for the parallel ``"sharded"`` engine (worker-process count, ``0`` =
all cores); single-process substrates ignore it.

:func:`detect_series` additionally offers ``incremental=True``: date 0
is detected from scratch, every later date applies the snapshot delta to
the *same* evolving index (re-annotating only churned domains) and lets
the substrate patch its persistent Step-3 counters, so detection cost
scales with daily churn instead of dataset size.  The mode is exact —
bit-identical to full recomputation at every date — because delta
application is gated on the annotator's content signature: a date whose
routing tables changed rebuilds from scratch, automatically.

``archive=PATH`` (on :func:`detect_series`, plus the single-date
:func:`archive_detection` behind ``repro detect --archive``) persists
every detected date into a ``.sparch`` snapshot archive
(:mod:`repro.storage`) and *resumes* from one: dates already archived
load back instead of recomputing (gated on the annotator digest), and
with ``incremental=True`` the run restores the newest archived
columnar state — interned pool, CSR posting lists, packed Step-3
counters — so it continues delta-rolling from the last archived date
rather than re-detecting the whole prefix of the series.
"""

from __future__ import annotations

import datetime
import pathlib
from typing import Iterable

from repro.core.detection import detect_with_index
from repro.core.domainsets import PrefixDomainIndex, build_index
from repro.core.siblings import SiblingSet
from repro.core.sptuner import SpTunerMS, TunerConfig
from repro.core.substrate import ColumnarSubstrate, Substrate, get_substrate
from repro.dates import add_months
from repro.obs.tracing import trace
from repro.synth.universe import Universe


def detect_at(
    universe: Universe,
    date: datetime.date,
    substrate: "str | Substrate | None" = None,
    workers: int | None = None,
) -> tuple[SiblingSet, PrefixDomainIndex]:
    """Default-case (BGP-announced) sibling detection on one date."""
    snapshot = universe.snapshot_at(date)
    annotator = universe.annotator_at(date)
    return detect_with_index(
        snapshot, annotator, substrate=substrate, workers=workers
    )


def tuned_at(
    universe: Universe,
    date: datetime.date,
    config: TunerConfig = TunerConfig(),
    substrate: "str | Substrate | None" = None,
    workers: int | None = None,
) -> tuple[SiblingSet, PrefixDomainIndex]:
    """SP-Tuner-refined sibling detection on one date."""
    siblings, index = detect_at(
        universe, date, substrate=substrate, workers=workers
    )
    tuner = SpTunerMS(index, config)
    return tuner.tune_all(siblings), index


def detect_series(
    universe: Universe,
    dates: Iterable[datetime.date],
    substrate: "str | Substrate | None" = None,
    workers: int | None = None,
    incremental: bool = False,
    archive: "str | pathlib.Path | None" = None,
) -> list[tuple[datetime.date, SiblingSet]]:
    """Detect siblings on every date, sharing one substrate instance.

    The resolved substrate is threaded through all snapshots, so the
    columnar engine interns each domain string once for the whole run
    rather than once per date — and the sharded engine shards every
    snapshot with the same worker configuration while reusing that same
    intern pool (workers receive interned integer arrays, never the
    pool itself).

    With ``incremental=True`` the first date builds its index in full;
    each subsequent date computes the
    :class:`~repro.dns.openintel.SnapshotDelta` against the previous
    snapshot and applies it to the same evolving index, provided the
    annotator's content signature is unchanged (otherwise that date
    rebuilds from scratch — routing changes can re-annotate *any*
    domain, not just churned ones).  Substrates patch their cached
    columnar view and persistent Step-3 counters from the recorded
    index deltas, so per-date cost tracks churn.  Results are
    bit-identical to ``incremental=False``.

    With ``archive=PATH`` the series is backed by a ``.sparch``
    snapshot archive: leading dates already archived (same date, same
    annotator digest) load back instead of recomputing, the remaining
    dates detect as usual — resuming from the archived columnar state
    when ``incremental=True`` — and every newly computed date is
    appended to the archive (sibling list + compiled lookup index,
    plus the final date's substrate state).  Results stay bit-identical
    to an archiveless run; if the resolved engine's intern pool has
    diverged from the archived one, a fresh private engine of the same
    class is used for the run instead.
    """
    engine = get_substrate(substrate, workers=workers)
    if archive is not None:
        return _detect_series_archived(
            universe, list(dates), engine, incremental, pathlib.Path(archive)
        )
    if not incremental:
        return [
            (date, detect_at(universe, date, substrate=engine)[0])
            for date in dates
        ]
    results, _index = _detect_incremental(universe, list(dates), engine)
    return results


def _detect_incremental(
    universe: Universe,
    dates: list[datetime.date],
    engine: Substrate,
    index: "PrefixDomainIndex | None" = None,
    previous_snapshot=None,
    previous_signature=None,
):
    """The delta-rolling loop shared by plain and archived runs.

    Starting state may be seeded (*index* + the snapshot/signature it
    was built from) by the archive resume path; returns the per-date
    results alongside the final evolving index.
    """
    results: list[tuple[datetime.date, SiblingSet]] = []
    for date in dates:
        snapshot = universe.snapshot_at(date)
        annotator = universe.annotator_at(date)
        signature = annotator.signature()
        if index is None or signature != previous_signature:
            index = build_index(snapshot, annotator)
        else:
            with trace("series.delta_compute") as span:
                delta = previous_snapshot.delta_to(snapshot)
                span.add_items(delta.touched_domains)
            with trace("series.delta_apply", items=delta.touched_domains):
                index.apply_delta(delta, annotator)
        results.append((date, engine.select(index)))
        previous_snapshot = snapshot
        previous_signature = signature
    return results, index


class _StandalonePool:
    """A gid pool for archiving runs whose engine has no intern pool
    (the reference substrate): positional names + a name → gid dict."""

    def __init__(self, names: Iterable[str] = ()):
        self.names = list(names)
        self._gids = {name: gid for gid, name in enumerate(self.names)}

    def intern(self, name: str) -> int:
        """The pool gid for *name*, allocated on first sight."""
        gid = self._gids.get(name)
        if gid is None:
            gid = len(self.names)
            self._gids[name] = gid
            self.names.append(name)
        return gid

    def export_pool(self) -> list[str]:
        """Snapshot of the pool, gid order (mirrors the substrate API)."""
        return list(self.names)


def _pool_for_archive(engine: Substrate, pool_names: list[str]):
    """The (engine, pool) pair an archived run writes gids against.

    A columnar-family engine must share its intern pool with the
    archive (archived state CSR data *is* pool gids); adoption fails
    only when this process's shared engine already interned a
    different universe, in which case a fresh private engine of the
    same class takes over — exactness beats instance sharing.
    """
    if isinstance(engine, ColumnarSubstrate):
        try:
            engine.adopt_pool(pool_names)
        except ValueError:
            fresh = type(engine)()
            for attribute in ("workers", "min_pair_rows"):
                if hasattr(engine, attribute):
                    setattr(fresh, attribute, getattr(engine, attribute))
            fresh.adopt_pool(pool_names)
            engine = fresh
        return engine, engine
    return engine, _StandalonePool(pool_names)


def _append_archive(
    path: pathlib.Path,
    universe: Universe,
    new_results: list[tuple[datetime.date, SiblingSet]],
    pool,
    engine: Substrate,
    final_index: "PrefixDomainIndex | None",
    published_by_date: "dict | None" = None,
    raw: bool = True,
) -> None:
    """Append newly computed dates (and the final state) to the archive.

    *raw* records whether the sibling lists are untransformed detection
    output; tuned or filtered lists are archived with ``raw: false`` so
    an archived ``detect_series`` never replays them as detections.
    """
    from repro.serving.index import SiblingLookupIndex
    from repro.storage import index_io, substrate_io
    from repro.storage.archive import ArchiveWriter

    with ArchiveWriter.open(path) as writer:
        for position, (date, siblings) in enumerate(new_results):
            digest = substrate_io.annotator_digest(universe.annotator_at(date))
            # Idempotence is per (date, detection identity): a date whose
            # routing changed since it was archived gets a *new*
            # generation — newest wins on read — so the archive heals
            # instead of serving the stale result forever.
            if writer.has_generation(
                date.isoformat(), substrate_io.SIBLINGS_KIND, digest
            ):
                continue
            segments, siblings_meta = substrate_io.siblings_segments(
                siblings, pool.intern
            )
            siblings_meta["raw"] = raw
            published = (published_by_date or {}).get(date)
            lookup_segments, index_meta = index_io.index_segments(
                SiblingLookupIndex.from_pairs(published, date)
                if published is not None
                else SiblingLookupIndex.from_siblings(siblings)
            )
            segments.update(lookup_segments)
            meta = {
                substrate_io.SIBLINGS_KIND: siblings_meta,
                index_io.KIND: index_meta,
            }
            index_signature = None
            is_final = position == len(new_results) - 1
            if (
                is_final
                and final_index is not None
                and isinstance(engine, ColumnarSubstrate)
            ):
                state = engine.prepare(final_index)
                state_segments, state_meta = substrate_io.state_segments(state)
                state_segments["state.dom_gids"] = substrate_io.state_dom_gids(
                    state, pool.intern
                )
                segments.update(state_segments)
                meta[substrate_io.STATE_KIND] = state_meta
                index_signature = final_index.content_signature()
            writer.append_generation(
                date.isoformat(),
                segments,
                meta,
                annotator_signature=digest,
                index_signature=index_signature,
            )
        writer.append_pool(pool.export_pool()[writer.pool_count:])


def _detect_series_archived(
    universe: Universe,
    dates: list[datetime.date],
    engine: Substrate,
    incremental: bool,
    path: pathlib.Path,
) -> list[tuple[datetime.date, SiblingSet]]:
    """The archive-backed :func:`detect_series` body: load the archived
    prefix of the series, resume state when possible, append the rest."""
    from repro.storage import substrate_io
    from repro.storage.archive import ArchiveReader

    archived: list[tuple[datetime.date, SiblingSet]] = []
    pool_names: list[str] = []
    pool = None
    resume_index: PrefixDomainIndex | None = None
    resume_snapshot = None
    resume_signature = None
    if path.exists():
        with ArchiveReader.open(path) as reader:
            pool_names = reader.pool_names()
            by_date = reader.generations_by_date(substrate_io.SIBLINGS_KIND)
            for date in dates:
                generation = by_date.get(date.isoformat())
                if generation is None or (
                    not generation.meta[substrate_io.SIBLINGS_KIND].get(
                        "raw", True
                    )
                ) or (
                    generation.annotator_signature
                    != substrate_io.annotator_digest(universe.annotator_at(date))
                ):
                    break
                archived.append(
                    (date, substrate_io.load_siblings(generation, pool_names))
                )
            remaining = dates[len(archived):]
            if archived and remaining and incremental:
                state_generation = reader.latest(substrate_io.STATE_KIND)
                last_date = archived[-1][0]
                if (
                    state_generation is not None
                    and state_generation.date == last_date.isoformat()
                    and isinstance(engine, ColumnarSubstrate)
                ):
                    snapshot = universe.snapshot_at(last_date)
                    annotator = universe.annotator_at(last_date)
                    index = build_index(snapshot, annotator)
                    if (
                        state_generation.index_signature
                        == index.content_signature()
                    ):
                        engine, pool = _pool_for_archive(engine, pool_names)
                        state = substrate_io.restore_state(
                            state_generation, pool_names
                        )
                        try:
                            engine.adopt_state(index, state)
                        except ValueError:
                            pass  # structure drifted: plain rebuild below
                        else:
                            resume_index = index
                            resume_snapshot = snapshot
                            resume_signature = annotator.signature()
    remaining = dates[len(archived):]
    if not remaining:
        return archived

    if pool is None:
        engine, pool = _pool_for_archive(engine, pool_names)

    if incremental:
        new_results, final_index = _detect_incremental(
            universe,
            remaining,
            engine,
            index=resume_index,
            previous_snapshot=resume_snapshot,
            previous_signature=resume_signature,
        )
    else:
        new_results = []
        final_index = None
        for date in remaining:
            siblings, final_index = detect_at(universe, date, substrate=engine)
            new_results.append((date, siblings))

    _append_archive(path, universe, new_results, pool, engine, final_index)
    return archived + new_results


def archive_detection(
    archive: "str | pathlib.Path",
    universe: Universe,
    date: datetime.date,
    siblings: SiblingSet,
    index: "PrefixDomainIndex | None" = None,
    substrate: "str | Substrate | None" = None,
    workers: int | None = None,
    published: "list | None" = None,
    raw: bool = True,
) -> pathlib.Path:
    """Append one date's detection artifacts to a ``.sparch`` archive.

    The single-date sibling of the ``archive=`` mode of
    :func:`detect_series`, behind ``repro detect --archive``: the
    sibling list, a compiled lookup index (built from *published*
    enriched pairs when given, else from the raw *siblings*), and —
    when *index* is the detection's :class:`PrefixDomainIndex` and the
    engine is columnar-family — the substrate state, so a later
    ``detect-series --archive --incremental`` resumes from this date.
    A date already archived is skipped (appends are idempotent per
    date).  Creates the archive if missing; returns its path.
    """
    from repro.storage.archive import ArchiveReader

    path = pathlib.Path(archive)
    engine = get_substrate(substrate, workers=workers)
    pool_names: list[str] = []
    if path.exists():
        with ArchiveReader.open(path) as reader:
            pool_names = reader.pool_names()
    engine, pool = _pool_for_archive(engine, pool_names)
    _append_archive(
        path,
        universe,
        [(date, siblings)],
        pool,
        engine,
        index,
        published_by_date={date: published} if published is not None else None,
        raw=raw,
    )
    return path


def serve_series(
    universe: Universe,
    dates: Iterable[datetime.date],
    substrate: "str | Substrate | None" = None,
    cache_size: int = 4096,
    workers: int | None = None,
    incremental: bool = False,
):
    """Detect on every date and publish each snapshot into a fresh
    :class:`~repro.serving.service.SiblingQueryService`.

    The longitudinal bridge between detection and serving: snapshots
    are compiled into immutable lookup indexes and hot-swapped into the
    service in date order, exactly as a production publisher would roll
    a daily list forward.  A date whose sibling list is *identical* to
    the one already being served skips the lookup-index recompile and
    swap entirely — the service keeps answering from the equal index it
    already holds, and its ``generation`` counter reflects only real
    publishes.  The returned service answers for the *last* date.
    ``incremental=True`` detects via snapshot deltas (see
    :func:`detect_series`).
    """
    from repro.serving.index import SiblingLookupIndex
    from repro.serving.service import SiblingQueryService

    service = SiblingQueryService(cache_size=cache_size)
    published: SiblingSet | None = None
    for _date, siblings in detect_series(
        universe, dates, substrate=substrate, workers=workers,
        incremental=incremental,
    ):
        if published is not None and published.same_pairs(siblings):
            continue
        service.swap(SiblingLookupIndex.from_siblings(siblings))
        published = siblings
    return service


def serve_series_fleet(
    universe: Universe,
    dates: Iterable[datetime.date],
    archive: "str | pathlib.Path",
    serve_workers: int = 2,
    host: str = "127.0.0.1",
    port: int = 0,
    substrate: "str | Substrate | None" = None,
    workers: int | None = None,
    incremental: bool = False,
):
    """Detect the series into *archive*, then serve it with a fleet.

    The multi-process sibling of :func:`serve_series`: every date is
    detected (or loaded back) through the archive-backed
    :func:`detect_series`, so the ``.sparch`` file ends holding one
    committed generation per date, and a started
    :class:`~repro.serving.fleet.ServingFleet` of *serve_workers*
    processes is returned, all mmap-attached to the newest generation.
    The caller owns the fleet (use it as a context manager, or call
    ``stop()``); later detections appending to the same archive are
    propagated with ``fleet.broadcast_swap()``.
    """
    from repro.serving.fleet import ServiceSource, ServingFleet

    detect_series(
        universe,
        dates,
        substrate=substrate,
        workers=workers,
        incremental=incremental,
        archive=archive,
    )
    fleet = ServingFleet(
        ServiceSource.archive(archive),
        workers=serve_workers,
        host=host,
        port=port,
    )
    return fleet.start()


def paper_offsets(
    reference: datetime.date,
) -> list[tuple[str, datetime.date]]:
    """The x-axis of Figures 7/9/11/12: Year -4 … Day 0."""
    return [
        ("Year -4", add_months(reference, -48)),
        ("Year -3", add_months(reference, -36)),
        ("Year -2", add_months(reference, -24)),
        ("Year -1", add_months(reference, -12)),
        ("Month -6", add_months(reference, -6)),
        ("Month -3", add_months(reference, -3)),
        ("Month -1", add_months(reference, -1)),
        ("Week -1", reference - datetime.timedelta(days=7)),
        ("Day -1", reference - datetime.timedelta(days=1)),
        ("Day 0", reference),
    ]


def stability_offsets(
    reference: datetime.date,
) -> list[tuple[str, datetime.date]]:
    """The x-axis of Figure 7 centre/right (one-year lookback)."""
    return [
        ("Day 0", reference),
        ("Day -1", reference - datetime.timedelta(days=1)),
        ("Week -1", reference - datetime.timedelta(days=7)),
        ("Month -1", add_months(reference, -1)),
        ("Month -3", add_months(reference, -3)),
        ("Month -6", add_months(reference, -6)),
        ("Year -1", add_months(reference, -12)),
    ]
