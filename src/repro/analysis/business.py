"""Figures 16/20/21: business types of sibling-prefix origin ASes.

Three published variants:

* Figure 16 — count sibling *pairs*, only origin ASes mapping to a single
  ASdb category, excluding pairs whose two prefixes share an origin ASN;
* Figure 20 — count unique origin-AS *pairs* instead of sibling pairs;
* Figure 21 — unfiltered (same-ASN pairs included → diagonal appears).
"""

from __future__ import annotations

import datetime
import enum
from collections import Counter

from repro.analysis.organizations import pair_origins
from repro.core.siblings import SiblingSet
from repro.orgs.asdb import BUSINESS_CATEGORIES, BusinessCategory
from repro.reporting.containers import Heatmap
from repro.synth.universe import Universe


class BusinessVariant(enum.Enum):
    PAIRS_EXCLUDING_SAME_ASN = "fig16"
    UNIQUE_AS_PAIRS = "fig20"
    UNFILTERED = "fig21"


def business_type_heatmap(
    universe: Universe,
    siblings: SiblingSet,
    date: datetime.date,
    variant: BusinessVariant = BusinessVariant.PAIRS_EXCLUDING_SAME_ASN,
) -> Heatmap:
    """Rows: IPv6 origin business type; columns: IPv4 — cell = count."""
    counts: Counter[tuple[BusinessCategory, BusinessCategory]] = Counter()
    seen_as_pairs: set[tuple[int, int]] = set()
    asdb = universe.asdb
    for pair in siblings:
        origins = pair_origins(universe, pair, date)
        if origins.v4_asn is None or origins.v6_asn is None:
            continue
        if (
            variant is not BusinessVariant.UNFILTERED
            and origins.v4_asn == origins.v6_asn
        ):
            continue
        v4_category = asdb.single_category_of(origins.v4_asn)
        v6_category = asdb.single_category_of(origins.v6_asn)
        if v4_category is None or v6_category is None:
            continue  # the paper's single-type filter (~80% pass)
        if variant is BusinessVariant.UNIQUE_AS_PAIRS:
            key = (origins.v4_asn, origins.v6_asn)
            if key in seen_as_pairs:
                continue
            seen_as_pairs.add(key)
        counts[(v6_category, v4_category)] += 1

    labels = [category.value for category in BUSINESS_CATEGORIES]
    cells = [
        [
            float(counts.get((row_category, column_category), 0))
            for column_category in BUSINESS_CATEGORIES
        ]
        for row_category in BUSINESS_CATEGORIES
    ]
    return Heatmap(
        title=f"Business types of origin ASes ({variant.value})",
        row_labels=labels,
        column_labels=labels,
        cells=cells,
    )


def dominant_category(heatmap: Heatmap) -> tuple[str, str, float]:
    """The densest cell — the paper's 'IT dominates' observation."""
    best = ("", "", -1.0)
    for row_index, row_label in enumerate(heatmap.row_labels):
        for column_index, column_label in enumerate(heatmap.column_labels):
            value = heatmap.cells[row_index][column_index]
            if value > best[2]:
                best = (row_label, column_label, value)
    return best


def it_involvement_share(heatmap: Heatmap) -> float:
    """Share of counted pairs with IT on at least one side."""
    total = heatmap.total()
    if total == 0:
        return 0.0
    it = BusinessCategory.IT.value
    it_row = sum(heatmap.row(it))
    it_column = sum(heatmap.column(it))
    both = heatmap.cell(it, it)
    return (it_row + it_column - both) / total
