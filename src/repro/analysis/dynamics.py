"""Figure 7: address and prefix dynamics of dual-stack domains.

Left subplot — how many of the last 13 monthly snapshots each DS domain
appears in; centre/right — among *consistent* DS domains (visible in all
13), the share whose prefixes / addresses match the reference snapshot at
increasing lookback.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field

from repro.analysis.pipeline import stability_offsets
from repro.dates import add_months
from repro.nettypes.addr import IPV4, IPV6
from repro.synth.universe import Universe


@dataclass
class DynamicsReport:
    """All three Figure 7 subplots."""

    #: visibility frequency (1..13) → number of DS domains.
    visibility_histogram: dict[int, int] = field(default_factory=dict)
    consistent_domains: list[str] = field(default_factory=list)
    #: offset label → % of consistent domains with same v4/v6/both prefix.
    same_prefix: dict[str, tuple[float, float, float]] = field(default_factory=dict)
    #: offset label → % with same v4/v6/both addresses.
    same_address: dict[str, tuple[float, float, float]] = field(default_factory=dict)

    @property
    def total_ds_domains(self) -> int:
        return sum(self.visibility_histogram.values())

    def visibility_share(self, frequency: int) -> float:
        total = self.total_ds_domains
        if total == 0:
            return 0.0
        return self.visibility_histogram.get(frequency, 0) / total


def analyze_dynamics(
    universe: Universe, reference: datetime.date, months: int = 13
) -> DynamicsReport:
    """Compute the full Figure 7 report over a *months*-long window."""
    window = [add_months(reference, -offset) for offset in range(months - 1, -1, -1)]
    report = DynamicsReport()

    appearances: dict[str, int] = {}
    for date in window:
        snapshot = universe.snapshot_at(date)
        for observation in snapshot.dual_stack_observations():
            appearances[observation.domain] = appearances.get(observation.domain, 0) + 1
    for count in appearances.values():
        report.visibility_histogram[count] = (
            report.visibility_histogram.get(count, 0) + 1
        )
    report.consistent_domains = sorted(
        domain for domain, count in appearances.items() if count == months
    )

    reference_state = _domain_state(universe, reference, report.consistent_domains)
    for label, date in stability_offsets(reference):
        state = _domain_state(universe, date, report.consistent_domains)
        report.same_prefix[label] = _match_shares(
            reference_state, state, field_index=0
        )
        report.same_address[label] = _match_shares(
            reference_state, state, field_index=1
        )
    return report


def _domain_state(
    universe: Universe, date: datetime.date, domains: list[str]
) -> dict[str, tuple[tuple, tuple]]:
    """domain → ((v4 prefixes, v6 prefixes), (v4 addrs, v6 addrs))."""
    rib = universe.rib_at(date)
    state: dict[str, tuple[tuple, tuple]] = {}
    snapshot = universe.snapshot_at(date)
    for domain in domains:
        observation = snapshot.get(domain)
        if observation is None:
            spec = universe.fabric.domains.get(domain)
            if spec is None or spec.created > date:
                continue
            v4_addresses, v6_addresses = universe.addresses_for(spec, date)
        else:
            v4_addresses = list(observation.v4_addresses)
            v6_addresses = list(observation.v6_addresses)
        v4_prefixes = tuple(
            sorted(
                {
                    route.prefix
                    for route in (
                        rib.route_for_address(IPV4, a) for a in v4_addresses
                    )
                    if route is not None
                }
            )
        )
        v6_prefixes = tuple(
            sorted(
                {
                    route.prefix
                    for route in (
                        rib.route_for_address(IPV6, a) for a in v6_addresses
                    )
                    if route is not None
                }
            )
        )
        state[domain] = (
            (v4_prefixes, v6_prefixes),
            (tuple(sorted(v4_addresses)), tuple(sorted(v6_addresses))),
        )
    return state


def _match_shares(
    reference: dict, other: dict, field_index: int
) -> tuple[float, float, float]:
    """(% same v4, % same v6, % same both) vs the reference state."""
    total = same_v4 = same_v6 = same_both = 0
    for domain, ref_state in reference.items():
        other_state = other.get(domain)
        if other_state is None:
            continue
        total += 1
        ref_v4, ref_v6 = ref_state[field_index]
        cur_v4, cur_v6 = other_state[field_index]
        v4_match = ref_v4 == cur_v4
        v6_match = ref_v6 == cur_v6
        same_v4 += v4_match
        same_v6 += v6_match
        same_both += v4_match and v6_match
    if total == 0:
        return (0.0, 0.0, 0.0)
    return (100.0 * same_v4 / total, 100.0 * same_v6 / total, 100.0 * same_both / total)
