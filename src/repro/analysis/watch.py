"""Streaming ingestion: ``repro watch``, snapshots to live answers.

The daemon the ROADMAP's "streaming ingestion" item asks for, in one
long-running process: tail a snapshot *source* (a directory of snapshot
files, or any callable feed), run each new
:class:`~repro.dns.openintel.DnsSnapshot` through the incremental
detection pipeline (full build on the first date or an annotator
change, :class:`~repro.dns.openintel.SnapshotDelta` otherwise), append
the resulting generation to a ``.sparch`` archive through the
footer-commit protocol, and atomically hot-swap the in-process
:class:`~repro.serving.service.SiblingQueryService` (and optionally
``broadcast_swap()`` a whole :class:`~repro.serving.fleet.ServingFleet`).

Crash semantics are the archive's: every generation is durable at
commit, and a kill -9 anywhere — including mid-append — costs only the
uncommitted tail.  On restart the watcher repairs the archive
(:meth:`~repro.storage.archive.ArchiveWriter.open` with its default
``recover=True`` truncates any torn tail back to the committed end),
re-serves the newest committed generation immediately, and skips
snapshots already archived under the current annotator digest, so
replaying the same source directory is idempotent.

Every cycle is instrumented on the :mod:`repro.obs` layer (``watch.*``
metrics and stages, catalogued in ``docs/OBSERVABILITY.md``) and
surfaced on ``/v1/status`` through
:attr:`~repro.serving.http.SiblingHTTPServer.status_extras`.

The per-generation latency *budget* is observational, not preemptive —
pure-Python detection cannot be interrupted mid-date — so an overrun
increments ``watch.budget_overruns`` rather than aborting the cycle;
the churn-replay benchmark (``benchmarks/bench_watch_replay.py``)
asserts the publish-lag SLO built on these measurements.

Snapshot files are UTF-8 JSON (one snapshot per file, written
atomically via :func:`write_snapshot_file`)::

    {"format_version": 1, "date": "2024-09-01",
     "observations": [
        {"domain": "www.example.org",
         "v4": ["192.0.2.9"], "v6": ["2001:db8::9"]}]}
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import threading
import time
from typing import Callable, Iterable

from repro.analysis.pipeline import _append_archive, _pool_for_archive
from repro.core.domainsets import build_index
from repro.core.substrate import Substrate, get_substrate
from repro.dns.openintel import DnsSnapshot, DomainObservation
from repro.nettypes.addr import AddressError, format_address, parse_address
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import get_registry, trace
from repro.storage import substrate_io
from repro.storage.archive import ArchiveReader, ArchiveWriter

#: Snapshot-file schema version (independent of the archive format).
SNAPSHOT_FORMAT_VERSION = 1

#: Parse attempts per snapshot file before the source gives up on it.
MAX_PARSE_RETRIES = 3


class WatchError(RuntimeError):
    """A malformed snapshot file or an unusable watch configuration."""


# -- snapshot file codec -----------------------------------------------------


def write_snapshot_file(
    snapshot: DnsSnapshot, directory: "str | pathlib.Path"
) -> pathlib.Path:
    """Write *snapshot* into *directory* as ``<date>.json``, atomically.

    The temp-file + ``rename`` dance guarantees a concurrently polling
    :class:`SnapshotDirectorySource` never observes a half-written
    file.  Returns the final path.
    """
    directory = pathlib.Path(directory)
    payload = {
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "date": snapshot.date.isoformat(),
        "observations": [
            {
                "domain": observation.domain,
                "v4": [format_address(4, v) for v in observation.v4_addresses],
                "v6": [format_address(6, v) for v in observation.v6_addresses],
            }
            for observation in sorted(
                snapshot.observations(), key=lambda o: o.domain
            )
        ],
    }
    path = directory / f"{snapshot.date.isoformat()}.json"
    scratch = directory / f".{path.name}.tmp"
    scratch.write_text(json.dumps(payload, separators=(",", ":")))
    os.replace(scratch, path)
    return path


def read_snapshot_file(path: "str | pathlib.Path") -> DnsSnapshot:
    """Parse one snapshot file; raises :class:`WatchError` on anything
    malformed (bad JSON, wrong schema version, addresses of the wrong
    family in a ``v4``/``v6`` bucket)."""
    path = pathlib.Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WatchError(f"cannot read snapshot file {path}: {exc}") from exc
    try:
        if payload["format_version"] != SNAPSHOT_FORMAT_VERSION:
            raise WatchError(
                f"{path}: unsupported snapshot format version "
                f"{payload['format_version']!r}"
            )
        date = datetime.date.fromisoformat(payload["date"])
        observations = [
            DomainObservation(
                str(entry["domain"]),
                _parse_family(entry.get("v4", ()), 4, path),
                _parse_family(entry.get("v6", ()), 6, path),
            )
            for entry in payload["observations"]
        ]
    except WatchError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise WatchError(f"malformed snapshot file {path}: {exc}") from exc
    return DnsSnapshot(date, observations)


def _parse_family(
    texts: Iterable[str], version: int, path: pathlib.Path
) -> tuple[int, ...]:
    values = []
    for text in texts:
        try:
            parsed_version, value = parse_address(str(text))
        except AddressError as exc:
            raise WatchError(f"{path}: bad address {text!r}: {exc}") from exc
        if parsed_version != version:
            raise WatchError(
                f"{path}: address {text!r} is not IPv{version}"
            )
        values.append(value)
    return tuple(values)


# -- snapshot sources --------------------------------------------------------


class SnapshotDirectorySource:
    """Tails a directory of snapshot files, newest-unseen first served.

    Each :meth:`poll` returns the snapshots of every not-yet-consumed
    file (date order), marking them consumed.  A file that fails to
    parse is retried on later polls — a non-atomic writer may still be
    mid-write — and abandoned after :data:`MAX_PARSE_RETRIES` attempts;
    every failed attempt is reported through the watcher's
    ``watch.source_errors`` counter via :attr:`errors`.
    """

    def __init__(self, directory: "str | pathlib.Path", pattern: str = "*.json"):
        self.directory = pathlib.Path(directory)
        self.pattern = pattern
        #: Cumulative failed parse attempts (drained by the watcher).
        self.errors = 0
        self._consumed: set[str] = set()
        self._failures: dict[str, int] = {}

    def _pending(self) -> list[pathlib.Path]:
        return sorted(
            path
            for path in self.directory.glob(self.pattern)
            if path.name not in self._consumed
        )

    def backlog(self) -> int:
        """Files visible in the directory but not yet consumed."""
        return len(self._pending())

    def poll(self) -> list[DnsSnapshot]:
        """Consume every parseable pending file; date-ordered snapshots."""
        snapshots = []
        for path in self._pending():
            try:
                snapshot = read_snapshot_file(path)
            except WatchError:
                self.errors += 1
                failures = self._failures.get(path.name, 0) + 1
                self._failures[path.name] = failures
                if failures >= MAX_PARSE_RETRIES:
                    self._consumed.add(path.name)  # give up on this file
                continue
            self._consumed.add(path.name)
            self._failures.pop(path.name, None)
            snapshots.append(snapshot)
        snapshots.sort(key=lambda snapshot: snapshot.date)
        return snapshots


class _CallableSource:
    """Adapts a feed callable (``() -> iterable of snapshots | None``)
    to the source protocol."""

    def __init__(self, feed: Callable):
        self._feed = feed
        self.errors = 0

    def backlog(self) -> int:
        return 0

    def poll(self) -> list[DnsSnapshot]:
        produced = self._feed()
        snapshots = list(produced) if produced is not None else []
        snapshots.sort(key=lambda snapshot: snapshot.date)
        return snapshots


class _SingleDateUniverse:
    """The one-date universe shim ``_append_archive`` consumes."""

    def __init__(self, snapshot: DnsSnapshot, annotator):
        self._snapshot = snapshot
        self._annotator = annotator

    def snapshot_at(self, date):
        return self._snapshot

    def annotator_at(self, date):
        return self._annotator


# -- the watcher -------------------------------------------------------------


class SnapshotWatcher:
    """The ``repro watch`` loop: source → delta → archive → hot-swap.

    *source* is a :class:`SnapshotDirectorySource` (or anything with
    ``poll()``/``backlog()``/``errors``), or a bare feed callable.
    *annotator_for* maps a date to its routing annotator (a universe's
    ``annotator_at`` bound method in practice).  *service* (optional)
    is hot-swapped after every changed generation; *fleet* (optional)
    additionally gets a ``broadcast_swap()``.

    Constructing the watcher repairs the archive (truncating any torn
    tail), adopts its intern pool, and — when *service* is given and
    the archive already holds generations — immediately re-serves the
    newest committed one, which is the kill -9 recovery path end to
    end.
    """

    def __init__(
        self,
        source,
        annotator_for: Callable,
        archive: "str | pathlib.Path",
        service=None,
        fleet=None,
        substrate: "str | Substrate | None" = None,
        workers: "int | None" = None,
        budget_seconds: "float | None" = None,
        poll_interval: float = 0.5,
        registry: "MetricsRegistry | None" = None,
    ):
        self.source = source if hasattr(source, "poll") else _CallableSource(source)
        self.archive = pathlib.Path(archive)
        self.poll_interval = poll_interval
        self.budget_seconds = budget_seconds
        self._annotator_for = annotator_for
        self._service = service
        self._fleet = fleet

        registry = registry if registry is not None else get_registry()
        self._m_snapshots = registry.counter("watch.snapshots")
        self._m_generations = registry.counter("watch.generations")
        self._m_swaps_skipped = registry.counter("watch.swaps_skipped")
        self._m_budget_overruns = registry.counter("watch.budget_overruns")
        self._m_source_errors = registry.counter("watch.source_errors")
        self._m_publish_lag = registry.histogram("watch.publish_lag_seconds")
        self._m_cycle = registry.histogram("watch.cycle_seconds")
        self._m_backlog = registry.gauge("watch.backlog")
        self._m_last_lag = registry.gauge("watch.last_publish_lag_seconds")

        # Repair (or create) the archive, then adopt its state: torn
        # tails are truncated here, so every later append starts from
        # the committed end.
        with ArchiveWriter.open(self.archive):
            pass
        with ArchiveReader.open(self.archive) as reader:
            pool_names = reader.pool_names()
            self._archived = {
                generation.date: generation.annotator_signature
                for generation in reader.generations
                if substrate_io.SIBLINGS_KIND in generation.meta
            }
        self._engine, self._pool = _pool_for_archive(
            get_substrate(substrate, workers=workers), pool_names
        )

        self.generations = len(self._archived)
        #: Snapshots polled but not yet processed (an early return from
        #: :meth:`run` — ``max_generations`` or *stop* — must not drop
        #: the rest of the batch: the source already consumed it).
        self._pending: list[DnsSnapshot] = []
        self._reported_errors = 0
        self._index = None
        self._previous_snapshot = None
        self._previous_signature = None
        self._published = None
        self._last_date: "datetime.date | None" = None
        self._last_lag: "float | None" = None
        self._last_cycle: "float | None" = None
        self._overruns = 0

        if self._service is not None and self.generations:
            self._service.swap_from_archive(self.archive)

    # -- one cycle -----------------------------------------------------------

    def process(self, snapshot: DnsSnapshot, seen_at: "float | None" = None) -> bool:
        """Ingest one snapshot; returns whether a generation was appended.

        *seen_at* (``time.monotonic``) is when the snapshot became
        available; the publish lag recorded for the SLO spans from
        there to the completed hot-swap.
        """
        start = time.monotonic()
        seen_at = start if seen_at is None else seen_at
        self._m_snapshots.inc()
        date = snapshot.date
        if self._last_date is not None and date <= self._last_date:
            # Stale or duplicate date: the incremental index only rolls
            # forward.  Counted with the source errors — a well-formed
            # feed never goes backward.
            self._m_source_errors.inc()
            return False
        annotator = self._annotator_for(date)
        digest = substrate_io.annotator_digest(annotator)
        if self._archived.get(date.isoformat()) == digest:
            # Restart catch-up: this date survived the crash (it was
            # committed); replaying its file is a no-op.
            self._last_date = date
            return False
        signature = annotator.signature()
        with trace("watch.detect") as span:
            if self._index is None or signature != self._previous_signature:
                self._index = build_index(snapshot, annotator)
            else:
                delta = self._previous_snapshot.delta_to(snapshot)
                span.add_items(delta.touched_domains)
                self._index.apply_delta(delta, annotator)
            siblings = self._engine.select(self._index)
        with trace("watch.append"):
            _append_archive(
                self.archive,
                _SingleDateUniverse(snapshot, annotator),
                [(date, siblings)],
                self._pool,
                self._engine,
                self._index,
            )
        self._archived[date.isoformat()] = digest
        self.generations += 1
        self._m_generations.inc()
        with trace("watch.publish"):
            if self._published is not None and self._published.same_pairs(
                siblings
            ):
                # Same pairs as served: skip the remap/swap, exactly as
                # serve_series does — generation counters track real
                # publishes only.
                self._m_swaps_skipped.inc()
            else:
                if self._service is not None:
                    self._service.swap_from_archive(self.archive)
                if self._fleet is not None:
                    self._fleet.broadcast_swap()
        self._published = siblings
        self._previous_snapshot = snapshot
        self._previous_signature = signature
        self._last_date = date
        done = time.monotonic()
        self._last_lag = done - seen_at
        self._last_cycle = done - start
        self._m_publish_lag.observe(self._last_lag)
        self._m_last_lag.set(self._last_lag)
        self._m_cycle.observe(self._last_cycle)
        if (
            self.budget_seconds is not None
            and self._last_cycle > self.budget_seconds
        ):
            self._overruns += 1
            self._m_budget_overruns.inc()
        return True

    # -- the loop ------------------------------------------------------------

    def run(
        self,
        stop: "threading.Event | None" = None,
        max_generations: "int | None" = None,
        once: bool = False,
    ) -> int:
        """Poll-and-process until stopped; returns generations appended.

        ``once=True`` drains the currently visible backlog and returns
        (the replay/benchmark mode); otherwise the loop sleeps
        ``poll_interval`` between empty polls until *stop* is set (or
        *max_generations* new generations landed).
        """
        stop = stop if stop is not None else threading.Event()
        appended = 0
        while not stop.is_set():
            with trace("watch.poll") as span:
                polled = self.source.poll()
                span.add_items(len(polled))
            self._drain_source_errors()
            batch = self._pending + polled
            self._pending = []
            seen_at = time.monotonic()
            for position, snapshot in enumerate(batch):
                if self.process(snapshot, seen_at=seen_at):
                    appended += 1
                if max_generations is not None and appended >= max_generations:
                    self._pending = batch[position + 1:]
                    self._m_backlog.set(self._backlog())
                    return appended
                if stop.is_set():
                    self._pending = batch[position + 1:]
                    break
            self._m_backlog.set(self._backlog())
            if not batch:
                if once:
                    return appended
                stop.wait(self.poll_interval)
        return appended

    def _backlog(self) -> int:
        return self.source.backlog() + len(self._pending)

    def _drain_source_errors(self) -> None:
        errors = getattr(self.source, "errors", 0)
        if errors > self._reported_errors:
            self._m_source_errors.inc(errors - self._reported_errors)
            self._reported_errors = errors

    # -- status --------------------------------------------------------------

    def status(self) -> dict:
        """JSON-able loop state, merged into ``/v1/status`` via the
        server's ``status_extras`` seam."""
        backlog = self._backlog()
        self._m_backlog.set(backlog)
        return {
            "archive": str(self.archive),
            "generations": self.generations,
            "last_date": (
                self._last_date.isoformat() if self._last_date else None
            ),
            "backlog": backlog,
            "swaps_skipped": self._m_swaps_skipped.value,
            "publish_lag_seconds": self._last_lag,
            "cycle_seconds": self._last_cycle,
            "budget_seconds": self.budget_seconds,
            "budget_overruns": self._overruns,
            "poll_interval_seconds": self.poll_interval,
        }


__all__ = [
    "MAX_PARSE_RETRIES",
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotDirectorySource",
    "SnapshotWatcher",
    "WatchError",
    "read_snapshot_file",
    "write_snapshot_file",
]
