"""Figure 17 (and 23-25): sibling similarity in hypergiant/CDN networks.

Pairs are attributed to a hypergiant or CDN when both prefixes' origin
ASes belong to that organization; everything else lands in the
``non-CDN-HG`` row.  Each row shows the distribution of the pairs'
Jaccard values over ten deciles.
"""

from __future__ import annotations

import datetime
from collections import defaultdict
from dataclasses import dataclass

from repro.analysis.organizations import pair_origins
from repro.core.siblings import SiblingSet
from repro.reporting.containers import Heatmap
from repro.synth.universe import Universe

#: Rows with fewer pairs than this are folded into "other-HG-CDN"
#: (the paper uses 50 at full scale; benches pass a scale-appropriate
#: value).
DEFAULT_MIN_PAIRS = 50

DECILE_LABELS = tuple(
    f"{low / 10:.1f}-{(low + 1) / 10:.1f}" for low in range(10)
)


def _decile(value: float) -> int:
    if value >= 1.0:
        return 9
    return min(int(value * 10), 9)


@dataclass
class HgCdnDistribution:
    """Raw per-organization decile counts before formatting."""

    rows: dict[str, list[int]]

    def pair_count(self, org: str) -> int:
        return sum(self.rows.get(org, [0] * 10))

    def high_similarity_share(self, org: str) -> float:
        """Share of the org's pairs in the 0.9-1.0 decile."""
        row = self.rows.get(org)
        if not row or sum(row) == 0:
            return 0.0
        return row[9] / sum(row)


def hgcdn_distribution(
    universe: Universe, siblings: SiblingSet, date: datetime.date
) -> HgCdnDistribution:
    """Attribute every pair to an HG/CDN (same org both sides) or the
    non-CDN-HG bucket and bin its Jaccard value."""
    registry = universe.registry
    rows: dict[str, list[int]] = defaultdict(lambda: [0] * 10)
    for pair in siblings:
        origins = pair_origins(universe, pair, date)
        org_name = None
        if (
            origins.same_org
            and origins.v4_org is not None
            and registry.is_hgcdn(origins.v4_org)
        ):
            org_name = origins.v4_org
        bucket = org_name if org_name is not None else "non-CDN-HG"
        rows[bucket][_decile(pair.similarity)] += 1
    return HgCdnDistribution(rows=dict(rows))


def hgcdn_heatmap(
    distribution: HgCdnDistribution, min_pairs: int = DEFAULT_MIN_PAIRS
) -> Heatmap:
    """Figure 17: per-org percentage distribution over Jaccard deciles,
    small orgs folded into "other-HG-CDN", non-CDN-HG last."""
    named: list[tuple[str, list[int]]] = []
    other = [0] * 10
    for org, row in distribution.rows.items():
        if org == "non-CDN-HG":
            continue
        if sum(row) >= min_pairs:
            named.append((org, row))
        else:
            other = [a + b for a, b in zip(other, row)]
    named.sort(key=lambda item: -sum(item[1]))
    rows = named
    if sum(other):
        rows = rows + [("other-HG-CDN", other)]
    rows = rows + [("non-CDN-HG", distribution.rows.get("non-CDN-HG", [0] * 10))]

    row_labels = [f"{org} ({sum(row)})" for org, row in rows]
    cells = []
    for _, row in rows:
        total = sum(row)
        cells.append(
            [100.0 * value / total if total else 0.0 for value in row]
        )
    return Heatmap(
        title="Figure 17: Jaccard distribution per HG/CDN (%)",
        row_labels=row_labels,
        column_labels=list(DECILE_LABELS),
        cells=cells,
    )
