"""A routing information base (RIB) with longest-prefix match.

The sibling pipeline needs exactly what Routeviews gives the paper: map an
IP address to its covering BGP-announced prefix and that prefix's origin
AS(es).  Announcements and withdrawals mutate the table; lookups run
against the patricia tries from :mod:`repro.nettypes.trie`.

Multi-origin (MOAS) prefixes are supported because they exist in the wild
and the RPKI analysis needs to reason about origin sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.nettypes.addr import IPV4, IPV6
from repro.nettypes.prefix import Prefix
from repro.nettypes.trie import PatriciaTrie


@dataclass(frozen=True, slots=True)
class Route:
    """One announced prefix and its origin set."""

    prefix: Prefix
    origins: frozenset[int]

    @property
    def origin(self) -> int:
        """The single origin; for MOAS prefixes, the numerically lowest
        (a deterministic tie-break mirroring common practice)."""
        return min(self.origins)

    @property
    def is_moas(self) -> bool:
        return len(self.origins) > 1


class Rib:
    """The global routing table: prefix → origin ASes."""

    def __init__(self):
        self._tries: dict[int, PatriciaTrie] = {
            IPV4: PatriciaTrie(IPV4),
            IPV6: PatriciaTrie(IPV6),
        }
        self._mutations = 0
        self._signature: frozenset | None = None
        self._signature_mutations = -1

    # -- mutation ---------------------------------------------------------------

    def announce(self, prefix: Prefix, origin: int) -> None:
        """Add an announcement; repeated origins for one prefix form MOAS."""
        if origin < 0 or origin >= 2**32:
            raise ValueError(f"invalid AS number: {origin}")
        trie = self._tries[prefix.version]
        existing: frozenset[int] | None = trie.get(prefix)
        origins = (existing or frozenset()) | {origin}
        trie.insert(prefix, origins)
        self._mutations += 1

    def withdraw(self, prefix: Prefix, origin: int | None = None) -> None:
        """Withdraw one origin's announcement (or the whole prefix)."""
        trie = self._tries[prefix.version]
        existing: frozenset[int] | None = trie.get(prefix)
        if existing is None:
            raise KeyError(str(prefix))
        self._mutations += 1
        if origin is None:
            trie.remove(prefix)
            return
        remaining = existing - {origin}
        if remaining:
            trie.insert(prefix, remaining)
        else:
            trie.remove(prefix)

    # -- content identity --------------------------------------------------------

    def signature(self) -> frozenset:
        """A value identifying this RIB's *contents* (not its identity).

        Two RIBs with the same announcements — prefixes and origin sets
        — return equal signatures even when they are distinct objects
        (e.g. per-month snapshots that happen not to differ).  The
        incremental longitudinal pipeline compares signatures between
        consecutive dates: equal signatures guarantee every address
        annotates identically on both dates, which is the precondition
        for applying a snapshot delta instead of rebuilding the index.

        The frozenset is cached and invalidated by announce/withdraw,
        so repeated same-RIB comparisons hit the ``is``-equality fast
        path inside ``frozenset.__eq__``.
        """
        if self._signature is None or self._signature_mutations != self._mutations:
            self._signature = frozenset(
                (route.prefix, route.origins) for route in self.routes()
            )
            self._signature_mutations = self._mutations
        return self._signature

    # -- queries ------------------------------------------------------------------

    def route_for_address(self, version: int, value: int) -> Route | None:
        """Longest-prefix match for a bare address."""
        found = self._tries[version].lookup_address(value)
        if found is None:
            return None
        prefix, origins = found
        return Route(prefix, origins)

    def route_for_prefix(self, query: Prefix) -> Route | None:
        """Longest announced prefix covering *query*."""
        found = self._tries[query.version].lookup(query)
        if found is None:
            return None
        prefix, origins = found
        return Route(prefix, origins)

    def exact_route(self, prefix: Prefix) -> Route | None:
        origins = self._tries[prefix.version].get(prefix)
        if origins is None:
            return None
        return Route(prefix, origins)

    def origin_of(self, version: int, value: int) -> int | None:
        route = self.route_for_address(version, value)
        return route.origin if route is not None else None

    def routes(self, version: int | None = None) -> Iterator[Route]:
        versions = (version,) if version is not None else (IPV4, IPV6)
        for v in versions:
            for prefix, origins in self._tries[v].items():
                yield Route(prefix, origins)

    def prefix_count(self, version: int) -> int:
        return len(self._tries[version])

    def __len__(self) -> int:
        return len(self._tries[IPV4]) + len(self._tries[IPV6])

    def __contains__(self, prefix: object) -> bool:
        return isinstance(prefix, Prefix) and prefix in self._tries[prefix.version]

    def __repr__(self) -> str:
        return (
            f"Rib(v4={self.prefix_count(IPV4)}, v6={self.prefix_count(IPV6)})"
        )
