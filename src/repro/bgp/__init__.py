"""The Routeviews-equivalent BGP substrate.

Provides a routing information base with longest-prefix match
(:mod:`repro.bgp.rib`) and a dated snapshot provider with the paper's
"OpenINTEL annotation with Routeviews fallback" lookup logic
(:mod:`repro.bgp.routeviews`).
"""

from repro.bgp.rib import Rib, Route
from repro.bgp.routeviews import PrefixAnnotator, RibArchive

__all__ = ["PrefixAnnotator", "Rib", "RibArchive", "Route"]
