"""Dated RIB snapshots and the annotation-with-fallback lookup.

Section 2.2: OpenINTEL annotates each A/AAAA answer with prefix and origin
AS, but ~1% of records lack that annotation; the paper falls back to
Routeviews data for those.  :class:`PrefixAnnotator` reproduces this
two-tier lookup, and :class:`RibArchive` is the dated archive the
Routeviews collectors provide.
"""

from __future__ import annotations

import bisect
import datetime
from typing import Iterator

from repro.bgp.rib import Rib, Route
from repro.determinism import stable_uniform
from repro.nettypes.addr import is_reserved


class RibArchive:
    """Monthly RIB snapshots, addressable by date (latest-at-or-before)."""

    def __init__(self):
        self._dates: list[datetime.date] = []
        self._ribs: dict[datetime.date, Rib] = {}

    def add(self, date: datetime.date, rib: Rib) -> None:
        if date in self._ribs:
            raise ValueError(f"duplicate RIB snapshot for {date}")
        self._ribs[date] = rib
        bisect.insort(self._dates, date)

    def at(self, date: datetime.date) -> Rib:
        """The snapshot in effect on *date* (latest at-or-before)."""
        index = bisect.bisect_right(self._dates, date)
        if index == 0:
            raise LookupError(f"no RIB snapshot at or before {date}")
        return self._ribs[self._dates[index - 1]]

    def dates(self) -> list[datetime.date]:
        return list(self._dates)

    def __iter__(self) -> Iterator[tuple[datetime.date, Rib]]:
        for date in self._dates:
            yield date, self._ribs[date]

    def __len__(self) -> int:
        return len(self._dates)


class PrefixAnnotator:
    """Address → (prefix, origin AS) with primary/fallback semantics.

    ``primary`` models the annotations shipped inside the DNS dataset;
    ``fallback`` models the Routeviews archive.  A deterministic hash of
    the address simulates the ~1% of records whose primary annotation is
    missing, forcing the fallback path — so both code paths stay
    exercised, as in the paper.  Reserved addresses annotate to ``None``
    (the paper discards them).
    """

    def __init__(
        self,
        primary: Rib,
        fallback: Rib | None = None,
        missing_fraction: float = 0.01,
    ):
        if not 0.0 <= missing_fraction <= 1.0:
            raise ValueError("missing_fraction must be within [0, 1]")
        self._primary = primary
        self._fallback = fallback if fallback is not None else primary
        self._missing_fraction = missing_fraction
        self.fallback_hits = 0
        self.discarded = 0

    def _primary_missing(self, version: int, value: int) -> bool:
        if self._missing_fraction <= 0.0:
            return False
        # Deterministic pseudo-random selection keyed on the address.
        return (
            stable_uniform("annotation-gap", version, value)
            < self._missing_fraction
        )

    def signature(self) -> tuple:
        """Content identity of the whole annotation function.

        Equal signatures mean :meth:`annotate` returns the same route
        for every address on both annotators: the primary and fallback
        RIB contents agree and the deterministic missing-annotation
        selection uses the same fraction.  This is what
        ``detect_series(..., incremental=True)`` checks before reusing
        the previous date's index via a snapshot delta.
        """
        return (
            self._primary.signature(),
            self._fallback.signature(),
            self._missing_fraction,
        )

    def annotate(self, version: int, value: int) -> Route | None:
        """The route covering the address, or None when unrouted/reserved."""
        if is_reserved(version, value):
            self.discarded += 1
            return None
        if self._primary_missing(version, value):
            self.fallback_hits += 1
            return self._fallback.route_for_address(version, value)
        route = self._primary.route_for_address(version, value)
        if route is None:
            self.fallback_hits += 1
            route = self._fallback.route_for_address(version, value)
        return route
