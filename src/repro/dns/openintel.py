"""Measurement snapshots — the OpenINTEL data model.

A :class:`DnsSnapshot` is what one monthly OpenINTEL run produces: for
every domain *response name*, the set of IPv4 and IPv6 addresses it
resolved to on that date.  :meth:`DnsSnapshot.measure` performs the run
against authoritative zone data with the CNAME-chasing resolver, grouping
by the final name exactly as the paper does (Section 3).

A :class:`SnapshotSeries` is the longitudinal collection (the paper's 49
monthly snapshots plus the finer-grained day/week offsets used in
Section 4).

Consecutive snapshots differ in only a small fraction of domains, so the
longitudinal pipeline treats day-over-day measurement as a delta problem:
:class:`SnapshotDelta` (computed by :meth:`DnsSnapshot.delta_to` or
:meth:`SnapshotSeries.delta`) records exactly which domains appeared,
disappeared, or changed addresses between two dates.  The incremental
detection path (:meth:`repro.core.domainsets.PrefixDomainIndex.apply_delta`
and :func:`repro.analysis.pipeline.detect_series` with
``incremental=True``) consumes it instead of rebuilding everything.
"""

from __future__ import annotations

import bisect
import datetime
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.dns.resolver import Resolver
from repro.dns.zone import Zone


@dataclass(frozen=True, slots=True)
class DomainObservation:
    """One domain's resolution outcome in one snapshot."""

    domain: str
    v4_addresses: tuple[int, ...]
    v6_addresses: tuple[int, ...]

    @property
    def is_dual_stack(self) -> bool:
        return bool(self.v4_addresses) and bool(self.v6_addresses)

    @property
    def has_any_address(self) -> bool:
        return bool(self.v4_addresses) or bool(self.v6_addresses)


@dataclass(frozen=True, slots=True)
class SnapshotDelta:
    """What changed between two measurement snapshots.

    ``added`` carries the full new observations, ``removed`` only the
    domain names (the consumer still holds the old snapshot or index),
    and ``changed`` pairs the old and new observation for domains whose
    address tuples differ on either family.  Dual-stack transitions are
    *not* resolved here — a domain flipping from v4-only to dual-stack
    is simply a ``changed`` entry; the index layer decides what that
    means for detection.
    """

    old_date: datetime.date
    new_date: datetime.date
    added: tuple[DomainObservation, ...]
    removed: tuple[str, ...]
    changed: tuple[tuple[DomainObservation, DomainObservation], ...]

    @property
    def touched_domains(self) -> int:
        """How many domains this delta mentions at all."""
        return len(self.added) + len(self.removed) + len(self.changed)

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.changed)

    def __repr__(self) -> str:
        return (
            f"SnapshotDelta({self.old_date.isoformat()} -> "
            f"{self.new_date.isoformat()}, +{len(self.added)} "
            f"-{len(self.removed)} ~{len(self.changed)})"
        )


class DnsSnapshot:
    """All domain observations for one measurement date."""

    def __init__(
        self, date: datetime.date, observations: Iterable[DomainObservation] = ()
    ):
        self.date = date
        self._observations: dict[str, DomainObservation] = {}
        for observation in observations:
            self._add(observation)

    def _add(self, observation: DomainObservation) -> None:
        existing = self._observations.get(observation.domain)
        if existing is None:
            self._observations[observation.domain] = observation
        else:
            # Two queried names CNAME-converged on the same response name:
            # merge their address sets.
            self._observations[observation.domain] = DomainObservation(
                observation.domain,
                tuple(sorted(set(existing.v4_addresses) | set(observation.v4_addresses))),
                tuple(sorted(set(existing.v6_addresses) | set(observation.v6_addresses))),
            )

    @classmethod
    def measure(
        cls, zone: Zone, queried_domains: Iterable[str], date: datetime.date
    ) -> "DnsSnapshot":
        """Run the measurement: resolve every queried domain over both
        families and group results by response (final) name."""
        resolver = Resolver(zone)
        snapshot = cls(date)
        for queried in queried_domains:
            result_a, result_aaaa = resolver.resolve_dual_stack(queried)
            final = result_a.final_name or result_aaaa.final_name
            if final is None:
                continue
            snapshot._add(
                DomainObservation(
                    final,
                    result_a.addresses if result_a.ok else (),
                    result_aaaa.addresses if result_aaaa.ok else (),
                )
            )
        return snapshot

    # -- access ---------------------------------------------------------------

    def get(self, domain: str) -> DomainObservation | None:
        return self._observations.get(domain)

    def observations(self) -> Iterator[DomainObservation]:
        yield from self._observations.values()

    def domains(self) -> Iterator[str]:
        yield from self._observations

    def dual_stack_observations(self) -> Iterator[DomainObservation]:
        for observation in self._observations.values():
            if observation.is_dual_stack:
                yield observation

    def dual_stack_domains(self) -> set[str]:
        return {o.domain for o in self.dual_stack_observations()}

    # -- deltas ---------------------------------------------------------------

    def delta_to(self, newer: "DnsSnapshot") -> SnapshotDelta:
        """The :class:`SnapshotDelta` turning this snapshot into *newer*.

        One pass over both observation tables: domains only in *newer*
        are ``added``, domains only in this snapshot are ``removed``,
        and domains present in both but with different address tuples
        (either family) are ``changed``.  Applying the delta on top of
        this snapshot's contents reconstructs *newer* exactly.
        """
        old = self._observations
        new = newer._observations
        added: list[DomainObservation] = []
        changed: list[tuple[DomainObservation, DomainObservation]] = []
        for domain, observation in new.items():
            previous = old.get(domain)
            if previous is None:
                added.append(observation)
            elif (
                previous.v4_addresses != observation.v4_addresses
                or previous.v6_addresses != observation.v6_addresses
            ):
                changed.append((previous, observation))
        removed = tuple(domain for domain in old if domain not in new)
        return SnapshotDelta(
            old_date=self.date,
            new_date=newer.date,
            added=tuple(added),
            removed=removed,
            changed=tuple(changed),
        )

    # -- statistics -------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True for a measured-but-empty snapshot (zero observations).

        Distinct from a *missing* date: an empty snapshot is a real
        measurement outcome (e.g. a rotation blackout window where every
        watched domain dropped out) and participates in deltas — the
        delta into it retracts everything, the delta out of it re-adds
        everything.  A missing date is a :exc:`LookupError` from
        :meth:`SnapshotSeries.at` / :meth:`SnapshotSeries.delta`.
        """
        return not self._observations

    @property
    def domain_count(self) -> int:
        return len(self._observations)

    @property
    def dual_stack_count(self) -> int:
        return sum(1 for _ in self.dual_stack_observations())

    @property
    def dual_stack_share(self) -> float:
        if not self._observations:
            return 0.0
        return self.dual_stack_count / self.domain_count

    def unique_addresses(self) -> tuple[set[int], set[int]]:
        """(unique IPv4 addresses, unique IPv6 addresses) across domains."""
        v4: set[int] = set()
        v6: set[int] = set()
        for observation in self._observations.values():
            v4.update(observation.v4_addresses)
            v6.update(observation.v6_addresses)
        return v4, v6

    def __len__(self) -> int:
        return len(self._observations)

    def __contains__(self, domain: object) -> bool:
        return isinstance(domain, str) and domain in self._observations

    def __repr__(self) -> str:
        return (
            f"DnsSnapshot({self.date.isoformat()}, domains={self.domain_count}, "
            f"dual_stack={self.dual_stack_count})"
        )


class SnapshotSeries:
    """A date-ordered collection of snapshots."""

    def __init__(self, snapshots: Iterable[DnsSnapshot] = ()):
        self._by_date: dict[datetime.date, DnsSnapshot] = {}
        self._dates: list[datetime.date] = []
        for snapshot in snapshots:
            self.add(snapshot)

    def add(self, snapshot: DnsSnapshot) -> None:
        if snapshot.date in self._by_date:
            raise ValueError(f"duplicate snapshot for {snapshot.date}")
        self._by_date[snapshot.date] = snapshot
        bisect.insort(self._dates, snapshot.date)

    def dates(self) -> list[datetime.date]:
        return list(self._dates)

    def at(self, date: datetime.date) -> DnsSnapshot:
        """The snapshot measured on *date*.

        Raises :exc:`LookupError` when the series holds no snapshot for
        the date — deliberately distinct from an *empty* snapshot
        (:attr:`DnsSnapshot.is_empty`), which is a member like any other.
        """
        try:
            return self._by_date[date]
        except KeyError:
            raise LookupError(
                f"no snapshot for {date.isoformat()}; series covers "
                + (
                    f"{self._dates[0].isoformat()}..{self._dates[-1].isoformat()} "
                    f"({len(self._dates)} dates)"
                    if self._dates
                    else "no dates"
                )
            ) from None

    def get(self, date: datetime.date) -> DnsSnapshot | None:
        """The snapshot for *date*, or ``None`` when the date is missing."""
        return self._by_date.get(date)

    def empty_dates(self) -> list[datetime.date]:
        """Member dates whose snapshot measured zero observations."""
        return [d for d in self._dates if self._by_date[d].is_empty]

    def nearest(self, date: datetime.date) -> DnsSnapshot:
        """The snapshot closest in time to *date* (ties go earlier)."""
        if not self._dates:
            raise LookupError("empty snapshot series")
        index = bisect.bisect_left(self._dates, date)
        candidates = []
        if index > 0:
            candidates.append(self._dates[index - 1])
        if index < len(self._dates):
            candidates.append(self._dates[index])
        best = min(candidates, key=lambda d: abs((d - date).days))
        return self._by_date[best]

    def latest(self) -> DnsSnapshot:
        if not self._dates:
            raise LookupError("empty snapshot series")
        return self._by_date[self._dates[-1]]

    def delta(
        self, old_date: datetime.date, new_date: datetime.date
    ) -> SnapshotDelta:
        """The delta between two member snapshots (any two dates).

        Either endpoint being *missing* from the series raises
        :exc:`LookupError`.  An *empty-but-present* endpoint is valid:
        the delta into an empty snapshot removes every domain, the delta
        out of it adds every domain back — a rotation blackout window is
        churn, not absence of data.
        """
        return self.at(old_date).delta_to(self.at(new_date))

    def deltas(self) -> Iterator[SnapshotDelta]:
        """Deltas between consecutive snapshots, in date order."""
        for older, newer in zip(self._dates, self._dates[1:]):
            yield self._by_date[older].delta_to(self._by_date[newer])

    def __iter__(self) -> Iterator[DnsSnapshot]:
        for date in self._dates:
            yield self._by_date[date]

    def __len__(self) -> int:
        return len(self._dates)

    def __contains__(self, date: object) -> bool:
        return date in self._by_date
