"""Measurement snapshots — the OpenINTEL data model.

A :class:`DnsSnapshot` is what one monthly OpenINTEL run produces: for
every domain *response name*, the set of IPv4 and IPv6 addresses it
resolved to on that date.  :meth:`DnsSnapshot.measure` performs the run
against authoritative zone data with the CNAME-chasing resolver, grouping
by the final name exactly as the paper does (Section 3).

A :class:`SnapshotSeries` is the longitudinal collection (the paper's 49
monthly snapshots plus the finer-grained day/week offsets used in
Section 4).
"""

from __future__ import annotations

import bisect
import datetime
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.dns.resolver import Resolver
from repro.dns.zone import Zone


@dataclass(frozen=True, slots=True)
class DomainObservation:
    """One domain's resolution outcome in one snapshot."""

    domain: str
    v4_addresses: tuple[int, ...]
    v6_addresses: tuple[int, ...]

    @property
    def is_dual_stack(self) -> bool:
        return bool(self.v4_addresses) and bool(self.v6_addresses)

    @property
    def has_any_address(self) -> bool:
        return bool(self.v4_addresses) or bool(self.v6_addresses)


class DnsSnapshot:
    """All domain observations for one measurement date."""

    def __init__(
        self, date: datetime.date, observations: Iterable[DomainObservation] = ()
    ):
        self.date = date
        self._observations: dict[str, DomainObservation] = {}
        for observation in observations:
            self._add(observation)

    def _add(self, observation: DomainObservation) -> None:
        existing = self._observations.get(observation.domain)
        if existing is None:
            self._observations[observation.domain] = observation
        else:
            # Two queried names CNAME-converged on the same response name:
            # merge their address sets.
            self._observations[observation.domain] = DomainObservation(
                observation.domain,
                tuple(sorted(set(existing.v4_addresses) | set(observation.v4_addresses))),
                tuple(sorted(set(existing.v6_addresses) | set(observation.v6_addresses))),
            )

    @classmethod
    def measure(
        cls, zone: Zone, queried_domains: Iterable[str], date: datetime.date
    ) -> "DnsSnapshot":
        """Run the measurement: resolve every queried domain over both
        families and group results by response (final) name."""
        resolver = Resolver(zone)
        snapshot = cls(date)
        for queried in queried_domains:
            result_a, result_aaaa = resolver.resolve_dual_stack(queried)
            final = result_a.final_name or result_aaaa.final_name
            if final is None:
                continue
            snapshot._add(
                DomainObservation(
                    final,
                    result_a.addresses if result_a.ok else (),
                    result_aaaa.addresses if result_aaaa.ok else (),
                )
            )
        return snapshot

    # -- access ---------------------------------------------------------------

    def get(self, domain: str) -> DomainObservation | None:
        return self._observations.get(domain)

    def observations(self) -> Iterator[DomainObservation]:
        yield from self._observations.values()

    def domains(self) -> Iterator[str]:
        yield from self._observations

    def dual_stack_observations(self) -> Iterator[DomainObservation]:
        for observation in self._observations.values():
            if observation.is_dual_stack:
                yield observation

    def dual_stack_domains(self) -> set[str]:
        return {o.domain for o in self.dual_stack_observations()}

    # -- statistics -------------------------------------------------------------

    @property
    def domain_count(self) -> int:
        return len(self._observations)

    @property
    def dual_stack_count(self) -> int:
        return sum(1 for _ in self.dual_stack_observations())

    @property
    def dual_stack_share(self) -> float:
        if not self._observations:
            return 0.0
        return self.dual_stack_count / self.domain_count

    def unique_addresses(self) -> tuple[set[int], set[int]]:
        """(unique IPv4 addresses, unique IPv6 addresses) across domains."""
        v4: set[int] = set()
        v6: set[int] = set()
        for observation in self._observations.values():
            v4.update(observation.v4_addresses)
            v6.update(observation.v6_addresses)
        return v4, v6

    def __len__(self) -> int:
        return len(self._observations)

    def __contains__(self, domain: object) -> bool:
        return isinstance(domain, str) and domain in self._observations

    def __repr__(self) -> str:
        return (
            f"DnsSnapshot({self.date.isoformat()}, domains={self.domain_count}, "
            f"dual_stack={self.dual_stack_count})"
        )


class SnapshotSeries:
    """A date-ordered collection of snapshots."""

    def __init__(self, snapshots: Iterable[DnsSnapshot] = ()):
        self._by_date: dict[datetime.date, DnsSnapshot] = {}
        self._dates: list[datetime.date] = []
        for snapshot in snapshots:
            self.add(snapshot)

    def add(self, snapshot: DnsSnapshot) -> None:
        if snapshot.date in self._by_date:
            raise ValueError(f"duplicate snapshot for {snapshot.date}")
        self._by_date[snapshot.date] = snapshot
        bisect.insort(self._dates, snapshot.date)

    def dates(self) -> list[datetime.date]:
        return list(self._dates)

    def at(self, date: datetime.date) -> DnsSnapshot:
        return self._by_date[date]

    def nearest(self, date: datetime.date) -> DnsSnapshot:
        """The snapshot closest in time to *date* (ties go earlier)."""
        if not self._dates:
            raise LookupError("empty snapshot series")
        index = bisect.bisect_left(self._dates, date)
        candidates = []
        if index > 0:
            candidates.append(self._dates[index - 1])
        if index < len(self._dates):
            candidates.append(self._dates[index])
        best = min(candidates, key=lambda d: abs((d - date).days))
        return self._by_date[best]

    def latest(self) -> DnsSnapshot:
        if not self._dates:
            raise LookupError("empty snapshot series")
        return self._by_date[self._dates[-1]]

    def __iter__(self) -> Iterator[DnsSnapshot]:
        for date in self._dates:
            yield self._by_date[date]

    def __len__(self) -> int:
        return len(self._dates)

    def __contains__(self, date: object) -> bool:
        return date in self._by_date
