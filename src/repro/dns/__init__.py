"""The OpenINTEL-equivalent DNS substrate.

The paper's detection methodology consumes large-scale DNS resolution
snapshots (OpenINTEL, Section 2.1).  This package provides the same
apparatus from scratch: resource records (:mod:`repro.dns.records`),
authoritative zone data (:mod:`repro.dns.zone`), a CNAME-chain-following
resolver (:mod:`repro.dns.resolver`), toplist composition over time
(:mod:`repro.dns.toplists`) and monthly measurement snapshots
(:mod:`repro.dns.openintel`).
"""

from repro.dns.records import RRType, ResourceRecord
from repro.dns.resolver import ResolutionStatus, Resolver, ResolutionResult
from repro.dns.toplists import Toplist, ToplistSchedule
from repro.dns.zone import Zone, ZoneError
from repro.dns.openintel import DnsSnapshot, DomainObservation, SnapshotSeries

__all__ = [
    "DnsSnapshot",
    "DomainObservation",
    "RRType",
    "ResolutionResult",
    "ResolutionStatus",
    "Resolver",
    "ResourceRecord",
    "SnapshotSeries",
    "Toplist",
    "ToplistSchedule",
    "Zone",
    "ZoneError",
]
