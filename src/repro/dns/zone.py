"""Authoritative zone data.

A :class:`Zone` is the ground-truth name → records mapping the synthetic
universe publishes and the resolver queries.  It enforces the single
CNAME-per-owner rule (a CNAME may not coexist with address records at the
same owner, RFC 1034 §3.6.2).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.dns.records import ResourceRecord, RRType, normalize_name


class ZoneError(ValueError):
    """Raised when zone data would violate DNS data rules."""


class Zone:
    """A flat authoritative record store for the whole synthetic Internet.

    >>> zone = Zone()
    >>> zone.add(ResourceRecord.cname("www.example.com", "cdn.example.net"))
    >>> zone.add(ResourceRecord.a("cdn.example.net", 0x01020304))
    >>> [r.rrtype.name for r in zone.records("www.example.com")]
    ['CNAME']
    """

    def __init__(self, records: Iterable[ResourceRecord] = ()):
        self._by_name: dict[str, list[ResourceRecord]] = defaultdict(list)
        for record in records:
            self.add(record)

    def add(self, record: ResourceRecord) -> None:
        existing = self._by_name[record.name]
        if record.rrtype is RRType.CNAME:
            if existing:
                raise ZoneError(
                    f"CNAME at {record.name!r} conflicts with existing records"
                )
        elif any(r.rrtype is RRType.CNAME for r in existing):
            raise ZoneError(
                f"{record.rrtype.name} at {record.name!r} conflicts with CNAME"
            )
        if record not in existing:
            existing.append(record)

    def remove_name(self, name: str) -> None:
        """Drop all records at *name* (used by churn simulation)."""
        self._by_name.pop(normalize_name(name), None)

    def replace_addresses(
        self, name: str, rrtype: RRType, addresses: Iterable[int]
    ) -> None:
        """Replace all *rrtype* records at *name* with fresh ones."""
        if not rrtype.is_address:
            raise ZoneError("replace_addresses only handles A/AAAA")
        name = normalize_name(name)
        kept = [r for r in self._by_name.get(name, []) if r.rrtype is not rrtype]
        for address in addresses:
            kept.append(ResourceRecord(name, rrtype, address=address))
        if kept:
            self._by_name[name] = kept
        else:
            self._by_name.pop(name, None)

    def records(self, name: str, rrtype: RRType | None = None) -> list[ResourceRecord]:
        found = self._by_name.get(normalize_name(name), [])
        if rrtype is None:
            return list(found)
        return [r for r in found if r.rrtype is rrtype]

    def names(self) -> Iterator[str]:
        yield from self._by_name

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and normalize_name(name) in self._by_name

    def __len__(self) -> int:
        return len(self._by_name)

    def record_count(self) -> int:
        return sum(len(records) for records in self._by_name.values())

    def __repr__(self) -> str:
        return f"Zone(names={len(self)}, records={self.record_count()})"
