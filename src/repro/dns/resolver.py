"""A recursive resolver over :class:`~repro.dns.zone.Zone` data.

The essential behaviour the paper relies on (Section 3, Step 1): follow
CNAME chains to the end, and report the *final* owner name — "we use the
domain name provided in the DNS response instead of the queried domain".
Chain loops and over-long chains resolve to an error status, mirroring
resolver behaviour in the wild.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dns.records import RRType, normalize_name
from repro.dns.zone import Zone

#: Resolvers in the wild cap CNAME indirection; BIND uses 16.
MAX_CHAIN_LENGTH = 16


class ResolutionStatus(enum.Enum):
    OK = "ok"
    NXDOMAIN = "nxdomain"
    NO_DATA = "nodata"
    CHAIN_LOOP = "chain_loop"
    CHAIN_TOO_LONG = "chain_too_long"


@dataclass(frozen=True, slots=True)
class ResolutionResult:
    """Outcome of resolving one (name, rrtype) query.

    ``final_name`` is the owner of the terminal record set after CNAME
    chasing — the name the sibling pipeline groups by.
    """

    query_name: str
    rrtype: RRType
    status: ResolutionStatus
    final_name: str | None = None
    addresses: tuple[int, ...] = ()
    chain: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status is ResolutionStatus.OK


class Resolver:
    """Resolve names against a zone, following CNAME chains."""

    def __init__(self, zone: Zone):
        self._zone = zone

    def resolve(self, name: str, rrtype: RRType) -> ResolutionResult:
        if not rrtype.is_address:
            raise ValueError("resolver answers only A/AAAA queries")
        query_name = normalize_name(name)
        current = query_name
        chain: list[str] = [current]
        seen = {current}

        while True:
            records = self._zone.records(current)
            if not records:
                return ResolutionResult(
                    query_name, rrtype, ResolutionStatus.NXDOMAIN, chain=tuple(chain)
                )
            cnames = [r for r in records if r.rrtype is RRType.CNAME]
            if cnames:
                target = cnames[0].target
                assert target is not None
                if target in seen:
                    return ResolutionResult(
                        query_name,
                        rrtype,
                        ResolutionStatus.CHAIN_LOOP,
                        chain=tuple(chain),
                    )
                if len(chain) >= MAX_CHAIN_LENGTH:
                    return ResolutionResult(
                        query_name,
                        rrtype,
                        ResolutionStatus.CHAIN_TOO_LONG,
                        chain=tuple(chain),
                    )
                seen.add(target)
                chain.append(target)
                current = target
                continue
            addresses = tuple(
                sorted(r.address for r in records if r.rrtype is rrtype)
            )  # type: ignore[type-var]
            if not addresses:
                return ResolutionResult(
                    query_name,
                    rrtype,
                    ResolutionStatus.NO_DATA,
                    final_name=current,
                    chain=tuple(chain),
                )
            return ResolutionResult(
                query_name,
                rrtype,
                ResolutionStatus.OK,
                final_name=current,
                addresses=addresses,
                chain=tuple(chain),
            )

    def resolve_dual_stack(
        self, name: str
    ) -> tuple[ResolutionResult, ResolutionResult]:
        """Resolve both families, as the measurement pipeline does."""
        return self.resolve(name, RRType.A), self.resolve(name, RRType.AAAA)

    def resolve_mx(self, name: str) -> list[str]:
        """Exchange hosts for *name* (CNAME-chased), preference order.

        Used by the alternative-input pipeline of Section 6 ("we can
        identify sibling prefixes using other services, such as DNS MX
        records").
        """
        current = normalize_name(name)
        seen = {current}
        for _ in range(MAX_CHAIN_LENGTH):
            records = self._zone.records(current)
            cnames = [r for r in records if r.rrtype is RRType.CNAME]
            if not cnames:
                exchanges = sorted(
                    (r for r in records if r.rrtype is RRType.MX),
                    key=lambda r: (r.preference, r.target),
                )
                return [r.target for r in exchanges if r.target is not None]
            target = cnames[0].target
            assert target is not None
            if target in seen:
                return []
            seen.add(target)
            current = target
        return []
