"""Toplist composition of the DNS measurement over time.

OpenINTEL's domain universe is the union of several source lists whose
membership changed during the study (Section 2.1 / Figure 1):

* Alexa top 1M — present from the start, removed May 2023;
* Cisco Umbrella — present throughout;
* open ccTLD zones — present throughout, with ``.fr`` (6.35M domains, the
  largest single jump) added August 2022;
* Tranco — added September 2022;
* Cloudflare Radar — added October 2022.

:class:`ToplistSchedule` reproduces that calendar so longitudinal analyses
see the same dataset-composition artefacts the paper discusses.
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass


class Toplist(enum.Enum):
    ALEXA = "Alexa top 1M"
    UMBRELLA = "Cisco Umbrella"
    TRANCO = "Tranco"
    CLOUDFLARE_RADAR = "Cloudflare Radar"
    OPEN_CCTLDS = "Open ccTLDs"


@dataclass(frozen=True, slots=True)
class ToplistWindow:
    """The interval during which a source list feeds the measurement."""

    toplist: Toplist
    added: datetime.date | None = None    # None: before the study window
    removed: datetime.date | None = None  # None: still present

    def active_on(self, date: datetime.date) -> bool:
        if self.added is not None and date < self.added:
            return False
        if self.removed is not None and date >= self.removed:
            return False
        return True


#: The paper's dataset events (Sections 2.1 and 4.3).
PAPER_WINDOWS: tuple[ToplistWindow, ...] = (
    ToplistWindow(Toplist.ALEXA, removed=datetime.date(2023, 5, 1)),
    ToplistWindow(Toplist.UMBRELLA),
    ToplistWindow(Toplist.TRANCO, added=datetime.date(2022, 9, 1)),
    ToplistWindow(Toplist.CLOUDFLARE_RADAR, added=datetime.date(2022, 10, 1)),
    ToplistWindow(Toplist.OPEN_CCTLDS),
)

#: The ``.fr`` ccTLD joined the open-ccTLD set in August 2022.
FR_CCTLD_ADDED = datetime.date(2022, 8, 1)


class ToplistSchedule:
    """Answers "which source lists are active on this date?".

    The default schedule is the paper's; tests construct custom ones.
    """

    def __init__(self, windows: tuple[ToplistWindow, ...] = PAPER_WINDOWS):
        self._windows = windows

    def active(self, date: datetime.date) -> frozenset[Toplist]:
        return frozenset(
            w.toplist for w in self._windows if w.active_on(date)
        )

    def window_for(self, toplist: Toplist) -> ToplistWindow:
        for window in self._windows:
            if window.toplist is toplist:
                return window
        raise KeyError(toplist)

    def events(self) -> list[tuple[datetime.date, str]]:
        """Chronological (date, description) list of composition changes."""
        events = []
        for window in self._windows:
            if window.added is not None:
                events.append((window.added, f"{window.toplist.value} added"))
            if window.removed is not None:
                events.append((window.removed, f"{window.toplist.value} removed"))
        events.append((FR_CCTLD_ADDED, ".fr ccTLD added to open ccTLDs"))
        return sorted(events)
