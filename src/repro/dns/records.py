"""DNS resource record types used by the resolution substrate.

Only the record types the sibling-prefix methodology touches are modelled:
``A``, ``AAAA`` and ``CNAME``.  Address records carry the address as an
integer (see :mod:`repro.nettypes.addr`); CNAME records carry the target
owner name.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.nettypes.addr import IPV4, IPV6, check_value


class RRType(enum.Enum):
    """The DNS record types the pipeline consumes."""

    A = "A"
    AAAA = "AAAA"
    CNAME = "CNAME"
    MX = "MX"

    @property
    def is_address(self) -> bool:
        return self in (RRType.A, RRType.AAAA)

    @property
    def ip_version(self) -> int:
        if self is RRType.A:
            return IPV4
        if self is RRType.AAAA:
            return IPV6
        raise ValueError(f"{self.name} records carry no address")


_LDH = frozenset("abcdefghijklmnopqrstuvwxyz0123456789-_")


def normalize_name(name: str) -> str:
    """Lower-case *name* and strip a trailing root dot."""
    return name.rstrip(".").lower()


def validate_name(name: str) -> str:
    """Check *name* is a plausible absolute domain name; returns the
    normalised form.  We enforce LDH labels, label and name length limits —
    enough rigor to catch generator bugs without a full RFC 1035 parser.
    """
    normalized = normalize_name(name)
    if not normalized or len(normalized) > 253:
        raise ValueError(f"invalid domain name: {name!r}")
    for label in normalized.split("."):
        if not 1 <= len(label) <= 63:
            raise ValueError(f"invalid label {label!r} in {name!r}")
        if label[0] == "-" or label[-1] == "-":
            raise ValueError(f"label may not start/end with '-': {name!r}")
        if any(ch not in _LDH for ch in label):
            raise ValueError(f"non-LDH character in {name!r}")
    return normalized


@dataclass(frozen=True, slots=True)
class ResourceRecord:
    """One DNS record: ``name rrtype → address value or target name``.

    MX records carry both a ``target`` (the exchange host) and a
    ``preference``; lower preference wins.
    """

    name: str
    rrtype: RRType
    address: int | None = None
    target: str | None = None
    preference: int | None = None

    def __post_init__(self):
        object.__setattr__(self, "name", validate_name(self.name))
        if self.rrtype.is_address:
            if self.address is None or self.target is not None:
                raise ValueError(f"{self.rrtype.name} record needs an address only")
            if self.preference is not None:
                raise ValueError("preference is MX-only")
            check_value(self.rrtype.ip_version, self.address)
        elif self.rrtype is RRType.MX:
            if self.target is None or self.address is not None:
                raise ValueError("MX record needs a target only")
            if self.preference is None or self.preference < 0:
                raise ValueError("MX record needs a non-negative preference")
            object.__setattr__(self, "target", validate_name(self.target))
        else:
            if self.target is None or self.address is not None:
                raise ValueError("CNAME record needs a target only")
            if self.preference is not None:
                raise ValueError("preference is MX-only")
            object.__setattr__(self, "target", validate_name(self.target))

    @classmethod
    def a(cls, name: str, address: int) -> "ResourceRecord":
        return cls(name, RRType.A, address=address)

    @classmethod
    def aaaa(cls, name: str, address: int) -> "ResourceRecord":
        return cls(name, RRType.AAAA, address=address)

    @classmethod
    def cname(cls, name: str, target: str) -> "ResourceRecord":
        return cls(name, RRType.CNAME, target=target)

    @classmethod
    def mx(cls, name: str, exchange: str, preference: int = 10) -> "ResourceRecord":
        return cls(name, RRType.MX, target=exchange, preference=preference)
