"""RFC 6811 route origin validation."""

from __future__ import annotations

import enum
from typing import Iterable

from repro.nettypes.prefix import Prefix
from repro.rpki.roa import Roa


class RovStatus(enum.Enum):
    """The tri-state outcome of origin validation for one announcement."""

    VALID = "valid"
    INVALID = "invalid"
    NOT_FOUND = "notfound"


def validate_origin(
    announcement: Prefix, origin: int, vrps: Iterable[Roa]
) -> RovStatus:
    """RFC 6811 §2: NOT_FOUND without covering VRPs; VALID if any covering
    VRP matches both origin and max length; INVALID otherwise."""
    covered = False
    for vrp in vrps:
        if not vrp.covers(announcement):
            continue
        covered = True
        if vrp.matches(announcement, origin):
            return RovStatus.VALID
    return RovStatus.INVALID if covered else RovStatus.NOT_FOUND
