"""The sibling-pair ROV status taxonomy of Figure 18."""

from __future__ import annotations

import enum

from repro.rpki.validation import RovStatus


class PairRovStatus(enum.Enum):
    """Joint ROV state of a sibling prefix pair (order-insensitive)."""

    BOTH_VALID = "both valid"
    VALID_NOTFOUND = "valid + not found"
    VALID_INVALID = "valid + invalid"
    INVALID_NOTFOUND = "invalid + not found"
    BOTH_INVALID = "both invalid"
    BOTH_NOTFOUND = "both not found"

    @property
    def has_valid(self) -> bool:
        """At least one side VALID — the paper's headline 60-65% bucket."""
        return self in (
            PairRovStatus.BOTH_VALID,
            PairRovStatus.VALID_NOTFOUND,
            PairRovStatus.VALID_INVALID,
        )

    @property
    def has_invalid(self) -> bool:
        return self in (
            PairRovStatus.VALID_INVALID,
            PairRovStatus.INVALID_NOTFOUND,
            PairRovStatus.BOTH_INVALID,
        )


def classify_pair(v4_status: RovStatus, v6_status: RovStatus) -> PairRovStatus:
    """Map the two per-prefix statuses onto the six joint categories."""
    statuses = {v4_status, v6_status}
    if statuses == {RovStatus.VALID}:
        return PairRovStatus.BOTH_VALID
    if statuses == {RovStatus.VALID, RovStatus.NOT_FOUND}:
        return PairRovStatus.VALID_NOTFOUND
    if statuses == {RovStatus.VALID, RovStatus.INVALID}:
        return PairRovStatus.VALID_INVALID
    if statuses == {RovStatus.INVALID, RovStatus.NOT_FOUND}:
        return PairRovStatus.INVALID_NOTFOUND
    if statuses == {RovStatus.INVALID}:
        return PairRovStatus.BOTH_INVALID
    return PairRovStatus.BOTH_NOTFOUND
