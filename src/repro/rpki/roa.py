"""Route Origin Authorization objects."""

from __future__ import annotations

from dataclasses import dataclass

from repro.nettypes.prefix import Prefix

#: The five Regional Internet Registries whose repositories the paper
#: downloads monthly.
RIRS = ("AFRINIC", "APNIC", "ARIN", "LACNIC", "RIPE")


@dataclass(frozen=True, slots=True)
class Roa:
    """One validated ROA payload (VRP): (prefix, max_length, origin AS).

    ``max_length`` bounds how specific an announcement may be while still
    matching this ROA (RFC 6482); it defaults to the ROA prefix length.
    """

    prefix: Prefix
    asn: int
    max_length: int | None = None
    rir: str = "RIPE"

    def __post_init__(self):
        if self.asn < 0 or self.asn >= 2**32:
            raise ValueError(f"invalid AS number: {self.asn}")
        if self.rir not in RIRS:
            raise ValueError(f"unknown RIR: {self.rir!r}")
        effective = self.max_length
        if effective is None:
            object.__setattr__(self, "max_length", self.prefix.length)
        elif not self.prefix.length <= effective <= self.prefix.bits:
            raise ValueError(
                f"max_length /{effective} outside [{self.prefix.length}, "
                f"{self.prefix.bits}] for {self.prefix}"
            )

    def covers(self, announcement: Prefix) -> bool:
        """True if this VRP is a *covering* ROA for the announcement."""
        return self.prefix.contains(announcement)

    def matches(self, announcement: Prefix, origin: int) -> bool:
        """True if the announcement is VALID under this VRP alone."""
        assert self.max_length is not None
        return (
            self.covers(announcement)
            and announcement.length <= self.max_length
            and origin == self.asn
        )
