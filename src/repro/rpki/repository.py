"""Dated RPKI repository snapshots with trie-backed VRP lookup."""

from __future__ import annotations

import bisect
import datetime
from typing import Iterable, Iterator

from repro.nettypes.addr import IPV4, IPV6
from repro.nettypes.prefix import Prefix
from repro.nettypes.trie import PatriciaTrie
from repro.rpki.roa import Roa
from repro.rpki.validation import RovStatus, validate_origin


class VrpSet:
    """All VRPs of one snapshot, indexed for covering-ROA lookup."""

    def __init__(self, roas: Iterable[Roa] = ()):
        self._tries: dict[int, PatriciaTrie] = {
            IPV4: PatriciaTrie(IPV4),
            IPV6: PatriciaTrie(IPV6),
        }
        self._count = 0
        for roa in roas:
            self.add(roa)

    def add(self, roa: Roa) -> None:
        trie = self._tries[roa.prefix.version]
        existing: tuple[Roa, ...] | None = trie.get(roa.prefix)
        if existing is None:
            trie.insert(roa.prefix, (roa,))
            self._count += 1
        elif roa not in existing:
            trie.insert(roa.prefix, existing + (roa,))
            self._count += 1

    def covering(self, announcement: Prefix) -> list[Roa]:
        trie = self._tries[announcement.version]
        found: list[Roa] = []
        for _, roas in trie.covering(announcement):
            found.extend(roas)
        return found

    def validate(self, announcement: Prefix, origin: int) -> RovStatus:
        return validate_origin(announcement, origin, self.covering(announcement))

    def validate_route(
        self, announcement: Prefix, origins: frozenset[int]
    ) -> RovStatus:
        """Best status over a MOAS origin set: VALID if any origin is
        authorized, NOT_FOUND only when no covering ROA exists at all."""
        statuses = {self.validate(announcement, origin) for origin in origins}
        if RovStatus.VALID in statuses:
            return RovStatus.VALID
        if RovStatus.INVALID in statuses:
            return RovStatus.INVALID
        return RovStatus.NOT_FOUND

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Roa]:
        for version in (IPV4, IPV6):
            for _, roas in self._tries[version].items():
                yield from roas


class RpkiRepository:
    """Monthly VRP-set snapshots, addressable by date."""

    def __init__(self):
        self._dates: list[datetime.date] = []
        self._sets: dict[datetime.date, VrpSet] = {}

    def add_snapshot(self, date: datetime.date, vrps: VrpSet) -> None:
        if date in self._sets:
            raise ValueError(f"duplicate RPKI snapshot for {date}")
        self._sets[date] = vrps
        bisect.insort(self._dates, date)

    def at(self, date: datetime.date) -> VrpSet:
        index = bisect.bisect_right(self._dates, date)
        if index == 0:
            raise LookupError(f"no RPKI snapshot at or before {date}")
        return self._sets[self._dates[index - 1]]

    def validate(
        self, announcement: Prefix, origin: int, date: datetime.date
    ) -> RovStatus:
        return self.at(date).validate(announcement, origin)

    def validate_route(
        self, announcement: Prefix, origins: frozenset[int], date: datetime.date
    ) -> RovStatus:
        return self.at(date).validate_route(announcement, origins)

    def dates(self) -> list[datetime.date]:
        return list(self._dates)

    def __len__(self) -> int:
        return len(self._dates)
