"""The RPKI substrate: ROAs, route origin validation, dated repositories.

Implements what the paper downloads from the five RIRs (Section 2.6): ROA
objects (:mod:`repro.rpki.roa`), RFC 6811 route-origin validation
(:mod:`repro.rpki.validation`), monthly repository snapshots
(:mod:`repro.rpki.repository`), the sibling-pair ROV status taxonomy of
Figure 18 (:mod:`repro.rpki.pair_status`), and the builder deriving a
repository from a synthetic universe (:mod:`repro.rpki.builder`).
"""

from repro.rpki.pair_status import PairRovStatus, classify_pair
from repro.rpki.repository import RpkiRepository
from repro.rpki.roa import RIRS, Roa
from repro.rpki.validation import RovStatus, validate_origin
from repro.rpki.builder import repository_from_universe

__all__ = [
    "PairRovStatus",
    "RIRS",
    "Roa",
    "RovStatus",
    "RpkiRepository",
    "classify_pair",
    "repository_from_universe",
    "validate_origin",
]
