"""Derive a dated RPKI repository from a synthetic universe.

Each organization has an RPKI adoption date (sampled at build time to
follow the Figure 18 adoption curve).  Once adopted, an org publishes
ROAs for most of its announced prefixes; a small deterministic fraction
are misconfigured (a covering ROA whose max_length is shorter than the
announcement, or a stale origin ASN), producing INVALID announcements
like the paper's 2-8% conflicting / invalid population.
"""

from __future__ import annotations

import datetime

from repro.dates import STUDY_END, STUDY_START, month_range
from repro.determinism import stable_choice, stable_uniform
from repro.rpki.repository import RpkiRepository, VrpSet
from repro.rpki.roa import RIRS, Roa
from repro.synth.universe import Universe

#: Share of an adopted org's prefixes that actually get a ROA.
_COVERED_FRACTION = 0.92

#: Of covered prefixes, how many get a loose max_length (+2 bits).
_LOOSE_MAXLEN_FRACTION = 0.3


def repository_from_universe(
    universe: Universe,
    start: tuple[int, int] = STUDY_START,
    end: tuple[int, int] = STUDY_END,
) -> RpkiRepository:
    """Monthly snapshots over [start, end] derived from org adoption."""
    repository = RpkiRepository()
    seed = universe.config.seed
    invalid_fraction = universe.config.rpki_invalid_fraction
    for year, month in month_range(start, end):
        snapshot_date = datetime.date(year, month, 1)
        vrps = VrpSet()
        for announcement in universe.fabric.announcements:
            if announcement.announced > snapshot_date:
                continue
            org = universe.population.org(announcement.org_id)
            if org.rpki_adoption is None or org.rpki_adoption > snapshot_date:
                continue
            prefix = announcement.prefix
            if (
                stable_uniform(seed, "roa-covered", str(prefix))
                > _COVERED_FRACTION
            ):
                continue
            origin = org.asn_for_family(prefix.version)
            rir = stable_choice(RIRS, "rir", str(prefix))
            if stable_uniform(seed, "roa-misconfig", str(prefix)) < invalid_fraction:
                # Misconfiguration: a covering ROA that cannot match the
                # announcement — either too-short max_length via the
                # covering supernet, or a stale origin.
                if prefix.length > 1 and stable_uniform(seed, "mistype", str(prefix)) < 0.5:
                    supernet = prefix.supernet()
                    vrps.add(
                        Roa(supernet, origin, max_length=supernet.length, rir=rir)
                    )
                else:
                    vrps.add(Roa(prefix, origin + 1_000_000, rir=rir))
                continue
            max_length = prefix.length
            if (
                stable_uniform(seed, "roa-loose", str(prefix))
                < _LOOSE_MAXLEN_FRACTION
            ):
                max_length = min(prefix.length + 2, prefix.bits)
            vrps.add(Roa(prefix, origin, max_length=max_length, rir=rir))
        repository.add_snapshot(snapshot_date, vrps)
    return repository
