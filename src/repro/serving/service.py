"""The stateful query façade: caching, batching, snapshot hot-swap.

:class:`SiblingLookupIndex` is immutable by design; this module owns
the *mutable* part of serving.  A :class:`SiblingQueryService` holds a
reference to the current index generation, renders JSON-able answers,
memoises them in an :class:`~repro.serving.cache.LruCache`, and lets a
publisher :meth:`~SiblingQueryService.swap` in a freshly compiled
snapshot atomically — in-flight queries finish against the generation
they started on (they hold a plain object reference), new queries see
the new one, and the answer cache is cleared in the same critical
section so no stale answer can ever be served against a newer
generation.

Every service instance reports into a :class:`~repro.obs.metrics.
MetricsRegistry` (the process default unless one is injected):
lookup/batch counters and latency histograms, cache hits/misses, swap
count and swap critical-section latency, plus gauges for generation,
generation age, and uptime refreshed by :meth:`~SiblingQueryService.
observe_gauges`.  Metric updates happen strictly *outside* the service
lock — telemetry can never extend the swap critical section.  See
``docs/OBSERVABILITY.md`` for the catalog.

This is the seam the longitudinal pipeline publishes into
(:func:`repro.analysis.pipeline.serve_series`) and the HTTP layer
(:mod:`repro.serving.http`) reads from.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable, Sequence

from repro.core.kernels import kernel_name
from repro.nettypes.prefix import PrefixError
from repro.obs.metrics import DEFAULT_COUNT_BUCKETS, MetricsRegistry
from repro.obs.tracing import get_registry
from repro.serving.cache import LruCache
from repro.serving.index import SiblingLookupIndex

#: Refuse pathologically large batch requests instead of stalling.
MAX_BATCH = 10_000


class QueryError(ValueError):
    """A client-side problem: malformed query text or batch shape.

    The HTTP layer maps this to a 400; the CLI to exit code 2.
    """


class SiblingQueryService:
    """Point/batch sibling lookups over a hot-swappable index.

    >>> import datetime
    >>> from repro.nettypes.prefix import Prefix
    >>> from repro.publish import PublishedPair
    >>> pair = PublishedPair(
    ...     Prefix.parse("192.0.2.0/24"), Prefix.parse("2001:db8::/32"),
    ...     1.0, 3, 3, 3, True, None)
    >>> index = SiblingLookupIndex.from_pairs([pair], datetime.date(2024, 9, 11))
    >>> service = SiblingQueryService(index)
    >>> service.lookup("192.0.2.9")["matched_prefix"]
    '192.0.2.0/24'
    >>> service.lookup("203.0.113.9")["found"]
    False
    """

    def __init__(
        self,
        index: SiblingLookupIndex | None = None,
        cache_size: int = 4096,
        registry: MetricsRegistry | None = None,
    ):
        self._lock = threading.Lock()
        self._index = index
        self._cache = LruCache(maxsize=cache_size)
        self._generation = 0 if index is None else 1
        self._queries = 0
        self._swaps = 0
        self._started_monotonic = time.monotonic()
        self._last_swap_monotonic = self._started_monotonic
        self._registry = registry if registry is not None else get_registry()
        # Handles resolved once; hot paths touch only per-metric locks.
        self._m_lookups = self._registry.counter("serve.lookups")
        self._m_lookup_seconds = self._registry.histogram("serve.lookup_seconds")
        self._m_batches = self._registry.counter("serve.batches")
        self._m_batch_items = self._registry.counter("serve.batch_items")
        self._m_batch_size = self._registry.histogram(
            "serve.batch_size", bounds=DEFAULT_COUNT_BUCKETS
        )
        self._m_cache_hits = self._registry.counter("serve.cache_hits")
        self._m_cache_misses = self._registry.counter("serve.cache_misses")
        self._m_query_errors = self._registry.counter("serve.query_errors")
        self._m_swaps = self._registry.counter("serve.swaps")
        self._m_swap_seconds = self._registry.histogram("serve.swap_seconds")
        self._m_attach_seconds = self._registry.histogram("serve.attach_seconds")

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics registry this service reports into."""
        return self._registry

    @classmethod
    def from_file(cls, path, cache_size: int = 4096) -> "SiblingQueryService":
        """Service over an index loaded from a binary file."""
        from repro.serving.codec import load_index

        return cls(load_index(path), cache_size=cache_size)

    @classmethod
    def from_archive(cls, path, cache_size: int = 4096) -> "SiblingQueryService":
        """Service over the newest generation of a ``.sparch`` archive.

        Cold start is an ``mmap`` attach — no pair objects are
        materialized, no index is recompiled; see
        :mod:`repro.storage.index_io` and
        ``benchmarks/bench_archive_coldstart.py``.
        """
        from repro.storage.index_io import load_mapped_index

        return cls(load_mapped_index(path), cache_size=cache_size)

    def swap_from_archive(self, path):
        """Hot-swap to the newest generation of the archive at *path*.

        The publisher-side refresh: after ``detect --archive`` (or an
        archived ``detect-series``) appended a new generation, the
        serving process *remaps* — attaches the new generation
        zero-copy and :meth:`swap`-s it in atomically.  The previous
        index is returned still-usable (its mapping is only released
        when the caller closes or drops it); in-flight queries finish
        on the generation they started with, exactly as with an
        in-memory swap.
        """
        from repro.storage.index_io import load_mapped_index

        attach_start = time.perf_counter()
        index = load_mapped_index(path)
        self._m_attach_seconds.observe(time.perf_counter() - attach_start)
        return self.swap(index)

    # -- publishing ----------------------------------------------------------

    def swap(self, index: SiblingLookupIndex) -> SiblingLookupIndex | None:
        """Atomically publish *index* as the serving generation.

        Returns the previous index (``None`` on first publish).  The
        answer cache is cleared under the same lock, so observers can
        never mix answers from two generations.  Metrics record the
        critical-section latency from outside it.
        """
        start = time.perf_counter()
        with self._lock:
            previous = self._index
            self._index = index
            self._generation += 1
            self._swaps += 1
            self._cache.clear()
        self._last_swap_monotonic = time.monotonic()
        self._m_swaps.inc()
        self._m_swap_seconds.observe(time.perf_counter() - start)
        return previous

    @property
    def index(self) -> SiblingLookupIndex | None:
        """The current generation (plain read; safe from any thread)."""
        return self._index

    @property
    def generation(self) -> int:
        """Monotonic publish counter (0 = nothing published yet)."""
        return self._generation

    @property
    def uptime_seconds(self) -> float:
        """Seconds since this service instance was constructed."""
        return time.monotonic() - self._started_monotonic

    @property
    def generation_age_seconds(self) -> float:
        """Seconds since the last swap (construction if never swapped)."""
        return time.monotonic() - self._last_swap_monotonic

    # -- queries -------------------------------------------------------------

    def lookup(self, query: str) -> dict:
        """Answer one point query as a JSON-able dict.

        The returned dict is a fresh top-level copy (safe to add or
        rebind keys); the nested per-pair rows are shared with the
        cache and must be treated as read-only.  Raises
        :class:`QueryError` for malformed query text and when no index
        has been published yet.
        """
        start = time.perf_counter()
        with self._lock:
            index = self._index
            generation = self._generation
            self._queries += 1
        self._m_lookups.inc()
        try:
            answer = self._answer_on(index, generation, query)
        except QueryError:
            self._m_query_errors.inc()
            raise
        self._m_lookup_seconds.observe(time.perf_counter() - start)
        return answer

    def _answer_on(
        self, index: SiblingLookupIndex | None, generation: int, query: str
    ) -> dict:
        """Answer *query* against one pinned (index, generation) pair."""
        if index is None:
            raise QueryError("no index published yet")
        text = query.strip()
        # Keyed by generation: a lookup that raced with a swap can at
        # worst insert a dead old-generation entry (evicted by LRU),
        # never serve a stale answer under the new generation's key.
        key = (generation, text)
        cached = self._cache.get(key)
        if cached is not None:
            self._m_cache_hits.inc()
            return dict(cached)
        self._m_cache_misses.inc()
        try:
            result = index.lookup(text)
        except PrefixError as exc:
            raise QueryError(str(exc)) from exc
        answer = (
            {"query": text, "found": False}
            if result is None
            else result.as_dict()
        )
        # "pairs" is a tuple so a caller cannot grow the cached rows.
        if "pairs" in answer:
            answer["pairs"] = tuple(answer["pairs"])
        answer["snapshot"] = index.snapshot.isoformat()
        self._cache.put(key, answer)
        return dict(answer)

    def batch(self, queries: "Iterable[str] | Sequence[str]") -> list[dict]:
        """Answer many point queries; aligned with the input order.

        Unlike :meth:`lookup`, malformed entries produce an in-band
        ``{"found": false, "error": ...}`` row so one bad line cannot
        fail a bulk job.  The whole batch is answered against the
        generation current at entry — a concurrent :meth:`swap` never
        mixes two snapshots within one response.  Raises
        :class:`QueryError` only for whole-request problems (no index,
        non-string entries, oversize batch).
        """
        items = list(queries)
        if len(items) > MAX_BATCH:
            raise QueryError(f"batch too large: {len(items)} > {MAX_BATCH}")
        with self._lock:
            index = self._index
            generation = self._generation
            self._queries += len(items)
        self._m_batches.inc()
        self._m_batch_items.inc(len(items))
        self._m_batch_size.observe(len(items))
        if index is None:
            raise QueryError("no index published yet")
        results = []
        for query in items:
            if not isinstance(query, str):
                raise QueryError(f"batch entries must be strings, got {query!r}")
            try:
                results.append(self._answer_on(index, generation, query))
            except QueryError as exc:
                results.append(
                    {"query": query.strip(), "found": False, "error": str(exc)}
                )
        return results

    # -- introspection -------------------------------------------------------

    def observe_gauges(self) -> None:
        """Refresh the service gauges in the registry.

        Gauges are sampled, not event-driven — callers (the ``/v1/
        status`` and ``/v1/metrics`` handlers, the fleet ``metrics``
        op) refresh them right before snapshotting the registry.
        """
        self._registry.gauge("serve.generation").set(self._generation)
        self._registry.gauge("serve.generation_age_seconds").set(
            self.generation_age_seconds
        )
        self._registry.gauge("serve.uptime_seconds").set(self.uptime_seconds)
        self._registry.gauge("serve.cache_size").set(
            self._cache.stats()["size"]
        )

    def snapshot_info(self) -> dict:
        """Current generation metadata + service counters
        (the ``/v1/snapshot`` payload)."""
        index = self._index
        info: dict = {
            "generation": self._generation,
            "swaps": self._swaps,
            "queries": self._queries,
            "uptime_seconds": self.uptime_seconds,
            "generation_age_seconds": self.generation_age_seconds,
            "cache": self._cache.stats(),
        }
        if index is None:
            info["index"] = None
        else:
            info["index"] = index.stats()
        return info

    def status(self) -> dict:
        """:meth:`snapshot_info` plus engine facts — the service view of
        ``/v1/status``.

        Adds ``kernel``: the process-active Step 3-4 batch-op kernel
        (:func:`repro.core.kernels.kernel_name`), so a fleet silently
        running the pure-python fallback is visible at a glance.
        """
        info = self.snapshot_info()
        info["kernel"] = kernel_name()
        return info

    def __repr__(self) -> str:
        index = self._index
        state = "empty" if index is None else index.snapshot.isoformat()
        return (
            f"SiblingQueryService({state}, generation={self._generation}, "
            f"queries={self._queries})"
        )
