"""A small, thread-safe LRU answer cache.

Sibling lookups are heavily skewed in practice (a blocklist consumer
resolves the same hot prefixes over and over), so the query service
memoises rendered answers keyed by the normalized query text.  The
cache is deliberately generic — plain ``key → value`` with
least-recently-used eviction — because the hot-swap logic in
:mod:`repro.serving.service` handles invalidation by clearing it
wholesale whenever a new index snapshot is published.

``functools.lru_cache`` is not usable here: it is bound to a function,
cannot be cleared selectively per service instance without also
dropping sizing configuration, and exposes no eviction counter for the
``/v1/snapshot`` stats payload.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable

_MISSING = object()


class LruCache:
    """Bounded mapping with least-recently-used eviction.

    ``maxsize=0`` disables caching entirely (every :meth:`get` misses,
    :meth:`put` is a no-op) so callers never need a separate code path.
    All operations take an internal lock; the cache may be shared by a
    threading HTTP server.

    >>> cache = LruCache(maxsize=2)
    >>> cache.put("a", 1); cache.put("b", 2)
    >>> cache.get("a")
    1
    >>> cache.put("c", 3)          # evicts "b", the least recently used
    >>> cache.get("b") is None
    True
    >>> cache.stats()["evictions"]
    1
    """

    def __init__(self, maxsize: int = 4096):
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable, default=None):
        """The cached value (refreshing its recency), else *default*."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return default
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value) -> None:
        """Insert/refresh *key*, evicting the oldest entry when full."""
        if self.maxsize == 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept — they describe the
        service lifetime, not one index generation)."""
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._data

    def stats(self) -> dict:
        """Hit/miss/eviction counters plus current occupancy."""
        with self._lock:
            return {
                "size": len(self._data),
                "maxsize": self.maxsize,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

    def __repr__(self) -> str:
        return f"LruCache(size={len(self)}, maxsize={self.maxsize})"
