"""Versioned binary save/load for :class:`SiblingLookupIndex`.

Detection is expensive; lookup serving should start fast.  This codec
freezes a compiled index into a single file that round-trips exactly
(floats bit-identical, metadata preserved) so operators build indexes
once at publish time and memory-load them at service start.

File layout (all integers big-endian)::

    offset  size  field
    0       8     magic  b"SIBLIDX\\n"
    8       2     format version (currently 1)
    10      2     reserved (zero)
    12      4     header length H
    16      H     header: UTF-8 JSON {snapshot, pairs, rov_statuses}
    16+H    44*N  pair records (struct ">IB16sBdIIIbB", N = header pairs)
    EOF-4   4     CRC-32 of header + records (zlib.crc32)

Each record packs one :class:`~repro.publish.PublishedPair`: IPv4
value/length, IPv6 value (16 bytes)/length, jaccard as an IEEE double,
the three domain counts, tri-state ``same_org`` (-1 = unknown), and an
index into the header's ROV-status string table (255 = none).

Every failure mode is a :class:`CodecError`: wrong magic, an
unsupported future version, a truncated body, or a checksum mismatch.
Loaders must reject rather than guess — a serving process would
otherwise hand out silently wrong answers.

:func:`load_index` parses through an ``mmap`` of the file
(:class:`repro.storage.format.MappedBuffer`) rather than reading it
into a ``bytes`` copy first; the CRC is computed over the mapping
(:func:`repro.storage.format.crc32_view`), the same no-copy validation
path the snapshot archive reader uses.  The record layout itself
(:func:`pack_records` / :func:`decode_record`) is shared with the
archive's per-generation index segments, so one struct definition
covers both artifacts.
"""

from __future__ import annotations

import datetime
import json
import pathlib
import struct
from typing import BinaryIO, Iterable, Sequence

from repro.nettypes.prefix import Prefix, PrefixError
from repro.publish import PublishedPair
from repro.serving.index import SiblingLookupIndex
from repro.storage.format import ArchiveFormatError, MappedBuffer, crc32_view

MAGIC = b"SIBLIDX\n"
FORMAT_VERSION = 1

_PREAMBLE = struct.Struct(">8sHHI")
_RECORD = struct.Struct(">IB16sBdIIIbB")

#: Sentinel record values for the optional fields.
_NO_ROV = 255
_SAME_ORG = {None: -1, False: 0, True: 1}
_SAME_ORG_BACK = {-1: None, 0: False, 1: True}


class CodecError(ValueError):
    """Raised when an index file is malformed, corrupt, or from an
    unsupported format version."""


RECORD_SIZE = _RECORD.size


def pack_records(pairs: Iterable[PublishedPair]) -> tuple[bytes, list[str]]:
    """Pack *pairs* into the fixed-width record layout.

    Returns ``(records, rov_table)`` — the concatenated 44-byte records
    and the ROV-status string table they index into.  Shared by
    :func:`dump_bytes` (the ``.sibidx`` body) and the snapshot
    archive's per-generation index segments
    (:mod:`repro.storage.index_io`).
    """
    rov_table: list[str] = []
    rov_slots: dict[str, int] = {}
    body = bytearray()
    for pair in pairs:
        if pair.rov_status is not None and pair.rov_status not in rov_slots:
            if len(rov_table) >= _NO_ROV:
                raise CodecError("too many distinct ROV statuses (max 255)")
            rov_slots[pair.rov_status] = len(rov_table)
            rov_table.append(pair.rov_status)
        body += _RECORD.pack(
            pair.v4_prefix.value,
            pair.v4_prefix.length,
            pair.v6_prefix.value.to_bytes(16, "big"),
            pair.v6_prefix.length,
            pair.jaccard,
            pair.shared_domains,
            pair.v4_domains,
            pair.v6_domains,
            _SAME_ORG[pair.same_org],
            _NO_ROV if pair.rov_status is None else rov_slots[pair.rov_status],
        )
    return bytes(body), rov_table


def decode_record(
    buffer, position: int, rov_table: Sequence[str], base: int = 0
) -> PublishedPair:
    """Decode record *position* from any bytes-like *buffer*.

    *base* is the byte offset of record 0 inside *buffer*.  The single
    decode path for ``.sibidx`` loading and the archive's lazily
    materializing :class:`~repro.storage.index_io.MappedPairTable` —
    records decode straight out of an ``mmap`` view, one at a time.
    """
    (
        v4_value,
        v4_length,
        v6_bytes,
        v6_length,
        jaccard,
        shared,
        v4_domains,
        v6_domains,
        same_org_code,
        rov_slot,
    ) = _RECORD.unpack_from(buffer, base + position * _RECORD.size)
    try:
        v4_prefix = Prefix(4, v4_value, v4_length)
        v6_prefix = Prefix(6, int.from_bytes(v6_bytes, "big"), v6_length)
    except PrefixError as exc:
        raise CodecError(f"invalid prefix in record {position}: {exc}") from exc
    if rov_slot != _NO_ROV and rov_slot >= len(rov_table):
        raise CodecError(f"record {position} references unknown ROV slot")
    return PublishedPair(
        v4_prefix=v4_prefix,
        v6_prefix=v6_prefix,
        jaccard=jaccard,
        shared_domains=shared,
        v4_domains=v4_domains,
        v6_domains=v6_domains,
        same_org=_SAME_ORG_BACK.get(same_org_code),
        rov_status=None if rov_slot == _NO_ROV else rov_table[rov_slot],
    )


def dump_bytes(index: SiblingLookupIndex) -> bytes:
    """Serialize *index* into the binary format."""
    records, rov_table = pack_records(index.pairs)

    header = json.dumps(
        {
            "snapshot": index.snapshot.isoformat(),
            "pairs": len(index.pairs),
            "rov_statuses": rov_table,
        },
        separators=(",", ":"),
    ).encode("utf-8")

    body = bytearray(header)
    body += records

    out = bytearray(_PREAMBLE.pack(MAGIC, FORMAT_VERSION, 0, len(header)))
    out += body
    out += struct.pack(">I", crc32_view(bytes(body)))
    return bytes(out)


def _parse_index(data) -> SiblingLookupIndex:
    """Parse one serialized index from any bytes-like *data*.

    Works identically over a ``bytes`` object and an ``mmap``-backed
    :class:`memoryview` — slicing a memoryview copies nothing, and the
    CRC runs over the buffer in place, so the mapped path
    (:func:`load_index`) validates without reading the file into
    memory first.
    """
    if len(data) < _PREAMBLE.size + 4:
        raise CodecError("truncated index: shorter than the fixed preamble")
    magic, version, _reserved, header_length = _PREAMBLE.unpack_from(data)
    if magic != MAGIC:
        raise CodecError(f"not a sibling index file (bad magic {bytes(magic)!r})")
    if version != FORMAT_VERSION:
        raise CodecError(
            f"unsupported index format version {version} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    body = data[_PREAMBLE.size:len(data) - 4]
    (expected_crc,) = struct.unpack_from(">I", data, len(data) - 4)
    if crc32_view(body) != expected_crc:
        raise CodecError("checksum mismatch: index file is corrupt")
    if len(body) < header_length:
        raise CodecError("truncated index: header extends past end of file")
    try:
        header = json.loads(bytes(body[:header_length]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"malformed index header: {exc}") from exc

    try:
        snapshot = datetime.date.fromisoformat(header["snapshot"])
        count = int(header["pairs"])
        rov_table = list(header["rov_statuses"])
    except (KeyError, TypeError, ValueError) as exc:
        raise CodecError(f"malformed index header: {exc}") from exc

    records = body[header_length:]
    if len(records) != count * _RECORD.size:
        raise CodecError(
            f"truncated index: expected {count} records "
            f"({count * _RECORD.size} bytes), found {len(records)} bytes"
        )

    pairs = [
        decode_record(records, position, rov_table) for position in range(count)
    ]
    return SiblingLookupIndex.from_pairs(pairs, snapshot)


def load_bytes(data: bytes) -> SiblingLookupIndex:
    """Deserialize and recompile an index; rejects anything suspect."""
    return _parse_index(data)


def save_index(index: SiblingLookupIndex, path: "str | pathlib.Path") -> int:
    """Write *index* to *path*; returns the byte count."""
    data = dump_bytes(index)
    pathlib.Path(path).write_bytes(data)
    return len(data)


def load_index(path: "str | pathlib.Path") -> SiblingLookupIndex:
    """Read an index file written by :func:`save_index`.

    The file is ``mmap``-ed, CRC-validated over the mapping, and parsed
    record-by-record out of the view — at no point does a full ``bytes``
    copy of the file exist (the old implementation started with
    ``read_bytes()``).  The mapping is released before returning; the
    compiled index owns all its memory.
    """
    try:
        with MappedBuffer(path) as buffer:
            return _parse_index(buffer.view)
    except ArchiveFormatError as exc:
        raise CodecError(f"cannot read index file {path}: {exc}") from exc


def is_index_file(path: "str | pathlib.Path") -> bool:
    """Cheap sniff: does *path* start with the index magic?

    Lets the CLI dispatch one ``FILE`` argument to either the binary
    loader or the CSV streamer without an explicit flag.
    """
    try:
        with open(path, "rb") as stream:
            return _read_magic(stream) == MAGIC
    except OSError:
        return False


def _read_magic(stream: BinaryIO) -> bytes:
    return stream.read(len(MAGIC))
