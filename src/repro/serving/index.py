"""The compiled, immutable sibling lookup index.

:class:`SiblingLookupIndex` compiles a published sibling-pair list into
a read-only structure answering two query shapes:

* **longest-prefix match** — "which sibling pair covers this address
  (or this prefix)?", the blocklist/geolocation-transfer primitive;
* **covering enumeration** — every stored prefix containing a query,
  shortest first, for consumers that want the whole nesting chain.

Layout.  Per family the stored prefixes are grouped by prefix length;
each group keeps its prefixes as a *sorted packed-integer array* of
network keys (:attr:`~repro.nettypes.prefix.Prefix.network_key` — the
network bits right-aligned, so a /24 is a 24-bit integer) plus an
aligned tuple of posting lists (indices into the shared pair table).  A
point query masks the address once per populated length — longest
first — and binary-searches the group's key array; the first hit *is*
the longest match, because equal keys at equal lengths are exactly
containment.  With ≤ 32 (v4) / ≤ 128 (v6) possible lengths and far
fewer populated ones in practice, a lookup costs a handful of
``bisect`` calls regardless of how many pairs are stored, where the
CSV-scanning path the CLI used before this subsystem paid O(pairs)
per query.

Keys are stored in ``array('Q')`` wherever they fit the portable
64-bit unsigned slot (always for IPv4; IPv6 lengths ≤ 64, i.e. every
routed prefix); the rare longer-than-/64 IPv6 groups fall back to a
tuple of Python ints.  Both support the same ``bisect`` protocol, so
the query path does not branch on the representation.

The index is deliberately immutable: publishing a new detection
snapshot means compiling a fresh index and atomically swapping it into
the :class:`~repro.serving.service.SiblingQueryService`.
:class:`~repro.nettypes.trie.PatriciaTrie` remains the mutable
reference oracle; ``tests/test_serving.py`` cross-checks every answer
against it and against :func:`scan_lookup` on randomized scenarios.
"""

from __future__ import annotations

import datetime
from array import array
from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.siblings import SiblingSet
from repro.nettypes.addr import MAX_LENGTH, format_address
from repro.nettypes.prefix import Prefix, PrefixError
from repro.publish import PublishedPair

#: Per-group packed keys fit ``array('Q')`` up to this network-bit width.
_ARRAY_KEY_BITS = 64


@dataclass(frozen=True, slots=True)
class LookupResult:
    """The answer to one point query.

    ``matched`` is the longest stored prefix containing the query and
    ``pairs`` every published sibling pair that prefix appears in
    (deterministic table order).
    """

    query: str
    version: int
    matched: Prefix
    pairs: tuple[PublishedPair, ...]

    def as_dict(self) -> dict:
        """JSON-able form, the shape the HTTP endpoints return."""
        return {
            "query": self.query,
            "version": self.version,
            "found": True,
            "matched_prefix": str(self.matched),
            "pairs": [pair.as_row() for pair in self.pairs],
        }


class _FamilyIndex:
    """The per-family (IPv4 or IPv6) compiled search structure."""

    __slots__ = ("version", "bits", "lengths", "keys", "postings", "size")

    def __init__(self, version: int, by_length: dict[int, dict[int, list[int]]]):
        self.version = version
        self.bits = MAX_LENGTH[version]
        #: Populated prefix lengths, longest first (LPM probe order).
        self.lengths: tuple[int, ...] = tuple(sorted(by_length, reverse=True))
        self.keys: list[Sequence[int]] = []
        self.postings: list[tuple[tuple[int, ...], ...]] = []
        self.size = 0
        for length in self.lengths:
            group = by_length[length]
            sorted_keys = sorted(group)
            packed: Sequence[int]
            if length <= _ARRAY_KEY_BITS:
                packed = array("Q", sorted_keys)
            else:
                packed = tuple(sorted_keys)
            self.keys.append(packed)
            self.postings.append(tuple(tuple(group[key]) for key in sorted_keys))
            self.size += len(sorted_keys)

    def lookup(self, value: int, max_length: int | None = None):
        """LPM for integer address *value*: ``(prefix, posting)`` or None.

        *max_length* bounds the match (prefix queries may only be
        covered by prefixes at most as long as themselves).
        """
        for slot, length in enumerate(self.lengths):
            if max_length is not None and length > max_length:
                continue
            keys = self.keys[slot]
            key = value >> (self.bits - length) if length else 0
            position = bisect_left(keys, key)
            if position < len(keys) and keys[position] == key:
                prefix = Prefix.from_network_key(self.version, key, length)
                return prefix, self.postings[slot][position]
        return None

    def covering(self, value: int, max_length: int):
        """Every stored prefix containing *value*, shortest first."""
        found = []
        for slot in range(len(self.lengths) - 1, -1, -1):
            length = self.lengths[slot]
            if length > max_length:
                continue
            keys = self.keys[slot]
            key = value >> (self.bits - length) if length else 0
            position = bisect_left(keys, key)
            if position < len(keys) and keys[position] == key:
                prefix = Prefix.from_network_key(self.version, key, length)
                found.append((prefix, self.postings[slot][position]))
        return found


class SiblingLookupIndex:
    """Compiled, immutable lookup index over a published sibling list.

    Build one with :meth:`from_pairs` (a :class:`PublishedPair` list,
    e.g. from :func:`repro.publish.read_csv`) or :meth:`from_siblings`
    (a raw detection :class:`~repro.core.siblings.SiblingSet`), then
    query it from any thread — the structure is never mutated.

    >>> import datetime
    >>> pair = PublishedPair(
    ...     Prefix.parse("192.0.2.0/24"), Prefix.parse("2001:db8::/32"),
    ...     1.0, 3, 3, 3, True, None)
    >>> index = SiblingLookupIndex.from_pairs([pair], datetime.date(2024, 9, 11))
    >>> index.lookup("192.0.2.77").matched
    Prefix('192.0.2.0/24')
    >>> index.lookup("2001:db8:beef::1").pairs[0].jaccard
    1.0
    >>> index.lookup("203.0.113.9") is None
    True
    """

    def __init__(
        self,
        pairs: tuple[PublishedPair, ...],
        snapshot: datetime.date,
        families: dict[int, _FamilyIndex],
    ):
        self.pairs = pairs
        self.snapshot = snapshot
        self._families = families

    # -- construction --------------------------------------------------------

    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[PublishedPair],
        snapshot: datetime.date,
    ) -> "SiblingLookupIndex":
        """Compile *pairs* (deterministically sorted) into an index."""
        table = tuple(
            sorted(pairs, key=lambda pair: (pair.v4_prefix, pair.v6_prefix))
        )
        by_family: dict[int, dict[int, dict[int, list[int]]]] = {4: {}, 6: {}}
        for position, pair in enumerate(table):
            for prefix in (pair.v4_prefix, pair.v6_prefix):
                group = by_family[prefix.version].setdefault(prefix.length, {})
                group.setdefault(prefix.network_key, []).append(position)
        families = {
            version: _FamilyIndex(version, by_length)
            for version, by_length in by_family.items()
        }
        return cls(table, snapshot, families)

    @classmethod
    def from_siblings(cls, siblings: SiblingSet) -> "SiblingLookupIndex":
        """Compile a raw detection result (no org/ROV enrichment)."""
        return cls.from_pairs(
            (
                PublishedPair(
                    v4_prefix=pair.v4_prefix,
                    v6_prefix=pair.v6_prefix,
                    jaccard=pair.similarity,
                    shared_domains=len(pair.shared_domains),
                    v4_domains=pair.v4_domain_count,
                    v6_domains=pair.v6_domain_count,
                    same_org=None,
                    rov_status=None,
                )
                for pair in siblings
            ),
            siblings.date,
        )

    # -- point queries -------------------------------------------------------

    def lookup(self, query: "str | Prefix") -> LookupResult | None:
        """Longest-prefix match for an address or prefix query.

        Accepts text (``"1.2.3.4"``, ``"2001:db8::/32"``) or a parsed
        :class:`Prefix`.  A bare address behaves as its host prefix; a
        prefix query matches stored prefixes at most as long as itself.
        Returns ``None`` on a miss; raises
        :class:`~repro.nettypes.prefix.PrefixError` on malformed text.
        """
        prefix = parse_query(query) if isinstance(query, str) else query
        hit = self._families[prefix.version].lookup(prefix.value, prefix.length)
        if hit is None:
            return None
        matched, posting = hit
        return LookupResult(
            query=str(query),
            version=prefix.version,
            matched=matched,
            pairs=tuple(self.pairs[position] for position in posting),
        )

    def lookup_address(self, version: int, value: int) -> LookupResult | None:
        """LPM for a bare integer address (no text parsing, no
        :class:`Prefix` allocation on the probe path)."""
        hit = self._families[version].lookup(value)
        if hit is None:
            return None
        matched, posting = hit
        return LookupResult(
            query=format_address(version, value),
            version=version,
            matched=matched,
            pairs=tuple(self.pairs[position] for position in posting),
        )

    def covering(self, query: "str | Prefix") -> list[LookupResult]:
        """Every stored prefix containing the query, shortest first."""
        prefix = parse_query(query) if isinstance(query, str) else query
        return [
            LookupResult(
                query=str(query),
                version=prefix.version,
                matched=matched,
                pairs=tuple(self.pairs[position] for position in posting),
            )
            for matched, posting in self._families[prefix.version].covering(
                prefix.value, prefix.length
            )
        ]

    def batch(self, queries: Iterable[str]) -> list[LookupResult | None]:
        """Point-lookup many queries; aligned with the input order.

        Malformed entries yield ``None`` (exactly like a miss) so one
        bad row cannot poison a bulk transfer job; use :meth:`lookup`
        when the distinction matters.
        """
        results: list[LookupResult | None] = []
        for query in queries:
            try:
                results.append(self.lookup(query))
            except PrefixError:
                results.append(None)
        return results

    # -- introspection -------------------------------------------------------

    def prefix_count(self, version: int) -> int:
        """Distinct stored prefixes for one family."""
        return self._families[version].size

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[PublishedPair]:
        yield from self.pairs

    def stats(self) -> dict:
        """JSON-able shape/size summary (the ``/v1/snapshot`` payload)."""
        return {
            "snapshot": self.snapshot.isoformat(),
            "pairs": len(self.pairs),
            "v4_prefixes": self.prefix_count(4),
            "v6_prefixes": self.prefix_count(6),
            "v4_lengths": list(self._families[4].lengths),
            "v6_lengths": list(self._families[6].lengths),
        }

    def __repr__(self) -> str:
        return (
            f"SiblingLookupIndex({self.snapshot.isoformat()}, "
            f"pairs={len(self.pairs)}, v4={self.prefix_count(4)}, "
            f"v6={self.prefix_count(6)})"
        )


def scan_lookup(
    pairs: Sequence[PublishedPair], query: "str | Prefix"
) -> LookupResult | None:
    """Brute-force LPM over an uncompiled pair list.

    The O(pairs)-per-query baseline the old CLI ``lookup`` effectively
    was; kept as the second oracle for the equivalence tests and as the
    comparison leg of ``benchmarks/bench_serving_lookup.py``.
    """
    prefix = Prefix.parse(query) if isinstance(query, str) else query
    best: Prefix | None = None
    for pair in pairs:
        stored = pair.v4_prefix if prefix.version == 4 else pair.v6_prefix
        if stored.length <= prefix.length and stored.contains(prefix):
            if best is None or stored.length > best.length:
                best = stored
    if best is None:
        return None
    matched = best
    return LookupResult(
        query=str(query),
        version=prefix.version,
        matched=matched,
        pairs=tuple(
            pair
            for pair in pairs
            if (pair.v4_prefix if prefix.version == 4 else pair.v6_prefix) == matched
        ),
    )


def parse_query(text: str) -> Prefix:
    """Parse a user-supplied query string into a :class:`Prefix`.

    Thin wrapper that normalizes the error type story for callers that
    surface messages to users (CLI, HTTP): any malformed input raises
    :class:`~repro.nettypes.prefix.PrefixError` with a clear message.
    """
    try:
        return Prefix.parse(text.strip())
    except PrefixError:
        raise
    except ValueError as exc:  # AddressError subclasses ValueError
        raise PrefixError(f"malformed query {text!r}: {exc}") from exc


__all__ = [
    "LookupResult",
    "SiblingLookupIndex",
    "parse_query",
    "scan_lookup",
]
