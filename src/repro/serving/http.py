"""Demo-scale JSON-over-HTTP surface for the query service.

A deliberately dependency-free endpoint on the stdlib's threading
``http.server`` — enough to demo and load-test the compiled index from
``curl``, not a production frontend (that is a later scaling PR; this
module is the seam it will replace).

Endpoints:

* ``GET /v1/lookup?ip=<address-or-prefix>`` — point longest-prefix
  match; 200 with ``{"found": false}`` on a miss, 400 on malformed
  queries.
* ``POST /v1/batch`` — body ``{"queries": ["…", …]}``; answers aligned
  with the input, malformed entries in-band per row.
* ``GET /v1/snapshot`` — current index generation metadata plus
  query/cache counters.
* ``GET /v1/status`` — liveness/identity view: worker pid, uptime,
  generation, plus the service info (fleet-wide rows when served by
  the supervisor's control server).
* ``GET /v1/metrics`` — Prometheus text exposition of the process
  registry (the merged fleet registry on the control server).

Both telemetry handlers snapshot the registry first and render/write
from the plain snapshot dict — no registry or service lock is ever
held across socket I/O, so a slow scraper can never stall lookups or
a swap (regression-tested in ``tests/test_serving_stress.py``).

Anything else is a 404; bodies are ``application/json`` except
``/v1/metrics`` (``text/plain``).

:class:`StatusHTTPServer` is the supervisor-side control-plane server:
the SO_REUSEPORT fleet port is kernel-load-balanced, so no single
worker can answer for the fleet — the supervisor binds a *separate*
port and serves fleet-wide ``/v1/status`` + ``/v1/metrics`` from
callables provided by :class:`~repro.serving.fleet.ServingFleet`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.obs.metrics import render_prometheus
from repro.serving.service import QueryError, SiblingQueryService

#: Largest accepted ``POST /v1/batch`` body, a denial-of-accident guard.
MAX_BODY_BYTES = 4 * 1024 * 1024


class ManagedHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server with an explicit start/close lifecycle.

    :meth:`start` runs ``serve_forever`` in a background thread and
    returns ``self``; :meth:`close` stops that thread (if any), joins
    it, and releases the listening socket.  Used as a context manager
    the server closes on exit, so tests and embedders never leak
    sockets or rely on daemon-thread teardown.
    """

    daemon_threads = True

    #: Thread-name prefix for the serve thread.
    thread_prefix = "managed-http"

    _serve_thread: threading.Thread | None = None

    def start(self) -> "ManagedHTTPServer":
        """Serve in a background thread; returns ``self`` for chaining."""
        if self._serve_thread is not None and self._serve_thread.is_alive():
            raise RuntimeError("server already started")
        # Daemon: an embedder that exits without close() must not hang
        # the interpreter on a live accept loop.
        self._serve_thread = threading.Thread(
            target=self.serve_forever,
            name=f"{self.thread_prefix}-{self.server_address[1]}",
            daemon=True,
        )
        self._serve_thread.start()
        return self

    def close(self) -> None:
        """Stop serving (if started), join the thread, release the socket.

        Idempotent; safe on a server that was bound but never started
        (``shutdown`` is only called when the serve thread is live, so
        close never blocks on the never-set shutdown event).  A serve
        thread that fails to stop within the join timeout raises
        :class:`RuntimeError` — the socket is still released, but the
        wedged thread must not be silently leaked.
        """
        thread = self._serve_thread
        if thread is not None and thread.is_alive():
            self.shutdown()
            thread.join(timeout=10)
            if thread.is_alive():
                self._serve_thread = None
                self.server_close()
                raise RuntimeError(
                    f"serve thread {thread.name!r} did not stop within 10s"
                )
        self._serve_thread = None
        self.server_close()

    def __exit__(self, *exc_info) -> None:
        self.close()


class SiblingHTTPServer(ManagedHTTPServer):
    """The data-plane server: owns the query service reference."""

    thread_prefix = "sibling-http"

    def __init__(self, address, service: SiblingQueryService, quiet: bool = True):
        self.service = service
        self.quiet = quiet
        self.started_at = time.monotonic()
        #: Extra identity keys (e.g. the fleet worker slot) merged into
        #: this server's ``/v1/status`` worker view.
        self.worker_info: dict = {}
        #: name → zero-arg callable; each is invoked per ``/v1/status``
        #: request and its JSON-able result merged in as a top-level key
        #: (the seam ``repro watch`` uses to surface its loop state).
        self.status_extras: dict = {}
        self._serve_thread: threading.Thread | None = None
        super().__init__(address, SiblingRequestHandler)


class SiblingRequestHandler(BaseHTTPRequestHandler):
    """Routes the ``/v1`` endpoints onto the service."""

    server: SiblingHTTPServer

    #: HTTP/1.1 so keep-alive clients reuse their connection instead of
    #: paying a reconnect per query (every response carries an explicit
    #: Content-Length, which persistent connections require).
    protocol_version = "HTTP/1.1"
    disable_nagle_algorithm = True

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        """Dispatch ``/v1/lookup``, ``/v1/snapshot``, ``/v1/status``,
        and ``/v1/metrics``."""
        url = urlparse(self.path)
        if url.path == "/v1/lookup":
            query = parse_qs(url.query).get("ip", [])
            if len(query) != 1:
                self._reply(400, {"error": "exactly one ip= parameter required"})
                return
            self._answer(lambda: self.server.service.lookup(query[0]))
        elif url.path == "/v1/snapshot":
            self._answer(self.server.service.snapshot_info)
        elif url.path == "/v1/status":
            self._answer(self._status_payload)
        elif url.path == "/v1/metrics":
            service = self.server.service
            service.observe_gauges()
            # Snapshot under per-metric locks, render and write from
            # the plain dict — nothing shared is held across the socket.
            text = render_prometheus(service.registry.snapshot())
            self._reply_text(200, text)
        else:
            self._reply(404, {"error": f"unknown path {url.path!r}"})

    def _status_payload(self) -> dict:
        """One worker's ``/v1/status`` view (``fleet`` is the
        supervisor's business — ``None`` here)."""
        service = self.server.service
        worker = {
            "pid": os.getpid(),
            "uptime_seconds": time.monotonic() - self.server.started_at,
            "generation": service.generation,
        }
        worker.update(self.server.worker_info)
        payload = {
            "fleet": None,
            "worker": worker,
            "service": service.status(),
        }
        for name, provider in self.server.status_extras.items():
            payload[name] = provider()
        return payload

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler naming)
        """Dispatch ``/v1/batch``.

        Error replies sent *before* the request body has been read
        close the connection — leftover body bytes on a persistent
        (HTTP/1.1) connection would be parsed as the next request line.
        """
        if urlparse(self.path).path != "/v1/batch":
            self.close_connection = True
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self.close_connection = True
            self._reply(400, {"error": "Content-Length required"})
            return
        if length < 0:
            self.close_connection = True
            self._reply(400, {"error": "negative Content-Length"})
            return
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            self._reply(400, {"error": f"body too large (> {MAX_BODY_BYTES} bytes)"})
            return
        body = self.rfile.read(length)
        if len(body) < length:
            # Client died mid-body: the connection's framing is gone, so
            # any reply must not be followed by another request on it.
            self.close_connection = True
            self._reply(400, {"error": "truncated request body"})
            return
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._reply(400, {"error": f"malformed JSON body: {exc}"})
            return
        queries = payload.get("queries") if isinstance(payload, dict) else None
        if not isinstance(queries, list):
            self._reply(400, {"error": 'body must be {"queries": [...]}'})
            return
        self._answer(
            lambda: {"results": self.server.service.batch(queries)}
        )

    # -- plumbing ------------------------------------------------------------

    def _answer(self, produce) -> None:
        """Run *produce*, mapping QueryError → 400 and success → 200."""
        try:
            body = produce()
        except QueryError as exc:
            self._reply(400, {"error": str(exc)})
            return
        self._reply(200, body)

    def _reply(self, status: int, body: dict) -> None:
        data = json.dumps(body).encode("utf-8")
        self._send(status, "application/json", data)

    def _reply_text(self, status: int, text: str) -> None:
        self._send(status, "text/plain; version=0.0.4", text.encode("utf-8"))

    def _send(self, status: int, content_type: str, data: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Respect the server's ``quiet`` flag instead of spamming stderr."""
        if not getattr(self.server, "quiet", True):
            super().log_message(format, *args)


class StatusHTTPServer(ManagedHTTPServer):
    """Control-plane server: fleet-wide ``/v1/status`` + ``/v1/metrics``.

    *status_provider* returns the JSON-able status dict;
    *metrics_provider* returns already-rendered Prometheus text.  Both
    are called per request — the fleet supervisor's providers do live
    seq-echoed round-trips to every worker, so a scrape here reflects
    the fleet *now*, not the monitor's last poll.
    """

    thread_prefix = "status-http"

    def __init__(self, address, status_provider, metrics_provider, quiet: bool = True):
        self.status_provider = status_provider
        self.metrics_provider = metrics_provider
        self.quiet = quiet
        self._serve_thread: threading.Thread | None = None
        super().__init__(address, StatusRequestHandler)


class StatusRequestHandler(BaseHTTPRequestHandler):
    """Two read-only control endpoints; anything else is a 404."""

    server: StatusHTTPServer

    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        """Serve ``/v1/status`` (JSON) and ``/v1/metrics`` (text)."""
        path = urlparse(self.path).path
        try:
            if path == "/v1/status":
                data = json.dumps(self.server.status_provider()).encode("utf-8")
                content_type = "application/json"
            elif path == "/v1/metrics":
                data = self.server.metrics_provider().encode("utf-8")
                content_type = "text/plain; version=0.0.4"
            else:
                data = json.dumps({"error": f"unknown path {path!r}"}).encode(
                    "utf-8"
                )
                self._send(404, "application/json", data)
                return
        except Exception as exc:  # supervisor races (stopping fleet, dead pipe)
            data = json.dumps({"error": str(exc)}).encode("utf-8")
            self._send(503, "application/json", data)
            return
        self._send(200, content_type, data)

    def _send(self, status: int, content_type: str, data: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not getattr(self.server, "quiet", True):
            super().log_message(format, *args)


def make_server(
    service: SiblingQueryService,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = True,
) -> SiblingHTTPServer:
    """Bind (but do not start) the HTTP server; ``port=0`` picks a free
    ephemeral port (``server.server_address`` tells which)."""
    return SiblingHTTPServer((host, port), service, quiet=quiet)


def serve_forever(service: SiblingQueryService, host: str, port: int) -> None:
    """Blocking convenience used by ``python -m repro serve``."""
    with make_server(service, host, port, quiet=False) as server:
        bound_host, bound_port = server.server_address[:2]
        print(f"serving sibling lookups on http://{bound_host}:{bound_port}/v1/")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("\nshutting down")
