"""Demo-scale JSON-over-HTTP surface for the query service.

A deliberately dependency-free endpoint on the stdlib's threading
``http.server`` — enough to demo and load-test the compiled index from
``curl``, not a production frontend (that is a later scaling PR; this
module is the seam it will replace).

Endpoints:

* ``GET /v1/lookup?ip=<address-or-prefix>`` — point longest-prefix
  match; 200 with ``{"found": false}`` on a miss, 400 on malformed
  queries.
* ``POST /v1/batch`` — body ``{"queries": ["…", …]}``; answers aligned
  with the input, malformed entries in-band per row.
* ``GET /v1/snapshot`` — current index generation metadata plus
  query/cache counters.

Anything else is a 404; all bodies are ``application/json``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.serving.service import QueryError, SiblingQueryService

#: Largest accepted ``POST /v1/batch`` body, a denial-of-accident guard.
MAX_BODY_BYTES = 4 * 1024 * 1024


class SiblingHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server that owns the query service reference.

    Lifecycle: :meth:`start` runs ``serve_forever`` in a background
    thread and returns ``self``; :meth:`close` stops that thread (if
    any), joins it, and releases the listening socket.  Used as a
    context manager the server closes on exit, so tests and embedders
    never leak sockets or rely on daemon-thread teardown.
    """

    daemon_threads = True

    def __init__(self, address, service: SiblingQueryService, quiet: bool = True):
        self.service = service
        self.quiet = quiet
        self._serve_thread: threading.Thread | None = None
        super().__init__(address, SiblingRequestHandler)

    def start(self) -> "SiblingHTTPServer":
        """Serve in a background thread; returns ``self`` for chaining."""
        if self._serve_thread is not None and self._serve_thread.is_alive():
            raise RuntimeError("server already started")
        self._serve_thread = threading.Thread(
            target=self.serve_forever,
            name=f"sibling-http-{self.server_address[1]}",
        )
        self._serve_thread.start()
        return self

    def close(self) -> None:
        """Stop serving (if started), join the thread, release the socket.

        Idempotent; safe on a server that was bound but never started
        (``shutdown`` is only called when the serve thread is live, so
        close never blocks on the never-set shutdown event).
        """
        thread = self._serve_thread
        if thread is not None and thread.is_alive():
            self.shutdown()
            thread.join(timeout=10)
        self._serve_thread = None
        self.server_close()

    def __exit__(self, *exc_info) -> None:
        self.close()


class SiblingRequestHandler(BaseHTTPRequestHandler):
    """Routes the three ``/v1`` endpoints onto the service."""

    server: SiblingHTTPServer

    #: HTTP/1.1 so keep-alive clients reuse their connection instead of
    #: paying a reconnect per query (every response carries an explicit
    #: Content-Length, which persistent connections require).
    protocol_version = "HTTP/1.1"
    disable_nagle_algorithm = True

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        """Dispatch ``/v1/lookup`` and ``/v1/snapshot``."""
        url = urlparse(self.path)
        if url.path == "/v1/lookup":
            query = parse_qs(url.query).get("ip", [])
            if len(query) != 1:
                self._reply(400, {"error": "exactly one ip= parameter required"})
                return
            self._answer(lambda: self.server.service.lookup(query[0]))
        elif url.path == "/v1/snapshot":
            self._answer(self.server.service.snapshot_info)
        else:
            self._reply(404, {"error": f"unknown path {url.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler naming)
        """Dispatch ``/v1/batch``.

        Error replies sent *before* the request body has been read
        close the connection — leftover body bytes on a persistent
        (HTTP/1.1) connection would be parsed as the next request line.
        """
        if urlparse(self.path).path != "/v1/batch":
            self.close_connection = True
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self.close_connection = True
            self._reply(400, {"error": "Content-Length required"})
            return
        if length < 0:
            self.close_connection = True
            self._reply(400, {"error": "negative Content-Length"})
            return
        if length > MAX_BODY_BYTES:
            self.close_connection = True
            self._reply(400, {"error": f"body too large (> {MAX_BODY_BYTES} bytes)"})
            return
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._reply(400, {"error": f"malformed JSON body: {exc}"})
            return
        queries = payload.get("queries") if isinstance(payload, dict) else None
        if not isinstance(queries, list):
            self._reply(400, {"error": 'body must be {"queries": [...]}'})
            return
        self._answer(
            lambda: {"results": self.server.service.batch(queries)}
        )

    # -- plumbing ------------------------------------------------------------

    def _answer(self, produce) -> None:
        """Run *produce*, mapping QueryError → 400 and success → 200."""
        try:
            body = produce()
        except QueryError as exc:
            self._reply(400, {"error": str(exc)})
            return
        self._reply(200, body)

    def _reply(self, status: int, body: dict) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Respect the server's ``quiet`` flag instead of spamming stderr."""
        if not getattr(self.server, "quiet", True):
            super().log_message(format, *args)


def make_server(
    service: SiblingQueryService,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = True,
) -> SiblingHTTPServer:
    """Bind (but do not start) the HTTP server; ``port=0`` picks a free
    ephemeral port (``server.server_address`` tells which)."""
    return SiblingHTTPServer((host, port), service, quiet=quiet)


def serve_forever(service: SiblingQueryService, host: str, port: int) -> None:
    """Blocking convenience used by ``python -m repro serve``."""
    with make_server(service, host, port, quiet=False) as server:
        bound_host, bound_port = server.server_address[:2]
        print(f"serving sibling lookups on http://{bound_host}:{bound_port}/v1/")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("\nshutting down")
