"""Serving: the compiled sibling-prefix lookup subsystem.

Detection (``core/``) produces a :class:`~repro.core.siblings.SiblingSet`
per snapshot; this package turns that output into something a consumer
can *query at interactive rates*:

* :mod:`repro.serving.index` — :class:`SiblingLookupIndex`, an immutable
  compiled index answering longest-prefix-match point queries and
  covering-prefix queries by binary search over packed network keys.
* :mod:`repro.serving.codec` — a versioned, checksummed binary format so
  indexes are built once and memory-loaded fast.
* :mod:`repro.serving.cache` — the LRU answer cache.
* :mod:`repro.serving.service` — :class:`SiblingQueryService`, the
  stateful façade adding batch APIs, caching, and atomic snapshot
  hot-swap for longitudinal runs.
* :mod:`repro.serving.http` — a stdlib ``http.server`` JSON endpoint
  (``/v1/lookup``, ``/v1/batch``, ``/v1/snapshot``) for demo-scale
  serving behind ``python -m repro serve``.
* :mod:`repro.serving.fleet` — :class:`ServingFleet`, the
  multi-process scale-out tier: N ``SO_REUSEPORT`` worker processes
  mmap-attached to one ``.sparch`` archive, with supervised restarts
  and fleet-wide atomic generation swaps (``repro serve --workers N``).

See ``docs/SERVING.md`` for the index layout, the binary format, and
the HTTP surface.
"""

from repro.serving.cache import LruCache
from repro.serving.codec import CodecError, load_index, save_index
from repro.serving.fleet import FleetError, ServiceSource, ServingFleet
from repro.serving.index import LookupResult, SiblingLookupIndex
from repro.serving.service import QueryError, SiblingQueryService

__all__ = [
    "CodecError",
    "FleetError",
    "LookupResult",
    "LruCache",
    "QueryError",
    "ServiceSource",
    "ServingFleet",
    "SiblingLookupIndex",
    "SiblingQueryService",
    "load_index",
    "save_index",
]
