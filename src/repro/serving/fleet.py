"""Multi-process serving fleet: N workers, one archive, one port.

The single-process HTTP endpoint (:mod:`repro.serving.http`) tops out
at one core.  This module scales it across processes without giving up
the atomic-swap guarantees :class:`~repro.serving.service.SiblingQueryService`
proves in-process:

* **Workers** are separate OS processes that each bind their *own*
  listening socket on the *same* ``(host, port)`` with ``SO_REUSEPORT``
  — the kernel load-balances incoming connections across them — and
  each :func:`mmap-attach <repro.storage.index_io.load_mapped_index>`
  the *same* ``.sparch`` archive, so the page cache backing the index
  is shared fleet-wide and per-worker memory stays flat.
* **Swap propagation**: the supervisor broadcasts a ``swap`` command
  over per-worker control pipes; each worker runs
  :meth:`~repro.serving.service.SiblingQueryService.swap_from_archive`
  (attach the newest committed generation, swap atomically, in-flight
  queries finish on the generation they started with) and acks with
  the generation it now serves.  Workers swap independently — two
  workers may briefly serve different generations, but every answer
  any worker returns is from a single *committed* generation, never a
  mix (``tests/test_serving_fleet.py`` stress-proves this under swap
  storms and worker kills).
* **Supervision**: a monitor thread restarts dead workers (crash,
  ``SIGKILL``); a restarted worker attaches the newest committed
  generation at startup, so it rejoins current.  :meth:`ServingFleet.status`
  aggregates per-worker liveness, generation, and counters.

Entry points: ``repro serve --workers N`` (CLI) and
:func:`repro.analysis.pipeline.serve_series_fleet` (detect a series
into an archive, then serve it with a fleet).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import multiprocessing.connection
import os
import pathlib
import socket
import threading

import time

from repro.core.kernels import kernel_name
from repro.obs.metrics import merge_snapshots, render_prometheus
from repro.obs.tracing import reset_registry
from repro.serving.http import SiblingHTTPServer, StatusHTTPServer
from repro.serving.service import SiblingQueryService

#: Seconds a freshly spawned worker gets to bind + attach + ack ready.
READY_TIMEOUT = 30.0

#: Seconds the supervisor waits for one command ack before giving up.
COMMAND_TIMEOUT = 30.0

#: Monitor thread liveness-poll period, seconds.
POLL_INTERVAL = 0.05


class FleetError(RuntimeError):
    """Fleet-level failure: no SO_REUSEPORT, worker never came up, …"""


def _require_reuseport() -> None:
    if not hasattr(socket, "SO_REUSEPORT"):
        raise FleetError(
            "this platform lacks SO_REUSEPORT; the serving fleet needs it "
            "to bind N workers on one port (use --workers 1)"
        )


@dataclasses.dataclass(frozen=True)
class ServiceSource:
    """Where a worker builds (and refreshes) its query service from.

    ``kind="archive"`` attaches the newest generation of a ``.sparch``
    snapshot archive zero-copy; ``kind="index"`` memory-loads a
    ``.sibidx`` binary index.  Both kinds support :meth:`refresh`
    (re-read the file, swap atomically), which is what the
    supervisor's ``swap`` broadcast triggers.
    """

    kind: str
    path: str
    cache_size: int = 4096

    @classmethod
    def archive(
        cls, path: "str | pathlib.Path", cache_size: int = 4096
    ) -> "ServiceSource":
        return cls("archive", str(path), cache_size)

    @classmethod
    def index(
        cls, path: "str | pathlib.Path", cache_size: int = 4096
    ) -> "ServiceSource":
        return cls("index", str(path), cache_size)

    def build(self) -> SiblingQueryService:
        """A fresh service over the newest committed state at `path`."""
        if self.kind == "archive":
            return SiblingQueryService.from_archive(
                self.path, cache_size=self.cache_size
            )
        if self.kind == "index":
            return SiblingQueryService.from_file(
                self.path, cache_size=self.cache_size
            )
        raise FleetError(f"unknown service source kind {self.kind!r}")

    def refresh(self, service: SiblingQueryService) -> None:
        """Swap *service* to the newest committed state at `path`.

        The previous index is dropped (not force-closed): in-flight
        queries still hold a reference and finish on it; the mapping
        is released when the last reference goes.
        """
        if self.kind == "archive":
            service.swap_from_archive(self.path)
        else:
            from repro.serving.codec import load_index

            service.swap(load_index(self.path))


class _FleetHTTPServer(SiblingHTTPServer):
    """The worker-side HTTP server: same handler, SO_REUSEPORT bind."""

    allow_reuse_port = True  # honored by socketserver on 3.11+

    def server_bind(self) -> None:
        if hasattr(socket, "SO_REUSEPORT"):  # belt and braces pre-3.11
            self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()


def _serving_info(slot: int, service: SiblingQueryService) -> dict:
    """One worker's status payload (ready/swapped/status replies)."""
    index = service.index
    info = service.snapshot_info()
    return {
        "slot": slot,
        "pid": os.getpid(),
        "generation": service.generation,
        "snapshot": None if index is None else index.snapshot.isoformat(),
        "swaps": info["swaps"],
        "queries": info["queries"],
        "uptime_seconds": info["uptime_seconds"],
        "generation_age_seconds": info["generation_age_seconds"],
    }


def _worker_main(
    slot: int,
    source: ServiceSource,
    host: str,
    port: int,
    conn,
    inherited_fds: "tuple[int, ...]" = (),
    quiet: bool = True,
) -> None:
    """Worker process body: bind, attach, serve, obey the control pipe.

    Protocol (strict request/response after the initial ready):

    * ``("ready", info)``   — sent once, after bind + attach succeed.
    * ``("swap", seq)``     → refresh from the source, reply
      ``("swapped", seq, info)``.
    * ``("status", seq)``   → reply ``("status", seq, info)``.
    * ``("metrics", seq)``  → reply ``("metrics", seq, {"info": …,
      "metrics": registry snapshot})`` — the fleet-aggregation leg.
    * ``("stop", seq)``     → reply ``("stopping", seq, info)``, shut
      the HTTP server down cleanly, exit 0.

    EOF on the pipe (supervisor gone) is a stop.
    """
    # Fork-start children inherit the supervisor's other fds (the port
    # guard, sibling pipes); close our copies so a dead supervisor
    # reliably EOFs every worker and the guard dies with its owner.
    for fd in inherited_fds:
        try:
            os.close(fd)
        except OSError:
            pass
    # A fork-started worker inherits the supervisor's process registry
    # — including any detection/archive metrics recorded before the
    # fleet started.  Fresh registry, or fleet merges double-count.
    registry = reset_registry()
    service = source.build()
    with _FleetHTTPServer((host, port), service, quiet=quiet) as server:
        server.worker_info = {"slot": slot}
        server.start()
        conn.send(("ready", _serving_info(slot, service)))
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            command, seq = message[0], message[1]
            if command == "swap":
                source.refresh(service)
                conn.send(("swapped", seq, _serving_info(slot, service)))
            elif command == "status":
                conn.send(("status", seq, _serving_info(slot, service)))
            elif command == "metrics":
                service.observe_gauges()
                conn.send(
                    (
                        "metrics",
                        seq,
                        {
                            "info": _serving_info(slot, service),
                            "metrics": registry.snapshot(),
                        },
                    )
                )
            elif command == "stop":
                conn.send(("stopping", seq, _serving_info(slot, service)))
                break
            else:
                conn.send(("error", seq, f"unknown command {command!r}"))


class _WorkerSlot:
    """Supervisor-side record of one worker: process + control pipe.

    ``generation_offset`` re-bases a restarted worker's generation
    counter: a fresh service restarts counting at 1, but the
    replacement attaches the newest committed state — without the
    offset it would report a phantom swap lag forever after.
    """

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.info: dict = {}
        self.generation_offset = 0

    def adjusted(self, info: dict) -> dict:
        """*info* with the generation re-based onto the fleet's count."""
        if self.generation_offset and "generation" in info:
            info = dict(info)
            info["generation"] += self.generation_offset
        return info


class ServingFleet:
    """Supervisor for N SO_REUSEPORT serving workers over one source.

    ``port=0`` picks a free ephemeral port once (a bound, never
    listening, guard socket reserves it for the fleet's lifetime —
    only listening sockets receive connections, so the guard steals
    none) and every worker binds it with ``SO_REUSEPORT``.

    The SO_REUSEPORT data port is kernel-load-balanced — no worker can
    answer for the fleet — so the supervisor additionally binds a
    *control port* (``control_port=0`` picks one; ``None`` disables)
    serving fleet-wide ``/v1/status`` (live per-worker round-trips:
    generation, restarts, swap lag) and ``/v1/metrics`` (per-worker
    registries merged via :func:`repro.obs.metrics.merge_snapshots`).

    Use as a context manager, or call :meth:`start` / :meth:`stop`.
    """

    def __init__(
        self,
        source: ServiceSource,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        quiet: bool = True,
        ready_timeout: float = READY_TIMEOUT,
        control_port: "int | None" = 0,
    ):
        if workers < 1:
            raise FleetError(f"workers must be >= 1, got {workers}")
        _require_reuseport()
        self.source = source
        self.workers = workers
        self.host = host
        self._requested_port = port
        self._requested_control_port = control_port
        self.quiet = quiet
        self.ready_timeout = ready_timeout
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._is_fork = "fork" in methods
        self._guard: socket.socket | None = None
        self._control: StatusHTTPServer | None = None
        self._slots: list[_WorkerSlot | None] = [None] * workers
        self._lock = threading.RLock()
        self._seq = 0
        self._restarts = 0
        self._slot_restarts = [0] * workers
        self._started_monotonic: "float | None" = None
        self._stopping = threading.Event()
        self._monitor_thread: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "ServingFleet":
        """Reserve the port, spawn every worker, await readiness."""
        if self._guard is not None:
            raise FleetError("fleet already started")
        guard = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            guard.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            guard.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            guard.bind((self.host, self._requested_port))
        except OSError:
            guard.close()
            raise
        self._guard = guard
        self._started_monotonic = time.monotonic()
        try:
            for slot in range(self.workers):
                self._spawn(slot)
            if self._requested_control_port is not None:
                self._control = StatusHTTPServer(
                    (self.host, self._requested_control_port),
                    status_provider=self.status,
                    metrics_provider=lambda: render_prometheus(
                        self.metrics()["merged"]
                    ),
                    quiet=self.quiet,
                )
                self._control.start()
        except Exception:
            self.stop()
            raise
        self._monitor_thread = threading.Thread(
            target=self._monitor, name="fleet-monitor", daemon=True
        )
        self._monitor_thread.start()
        return self

    def stop(self) -> None:
        """Stop workers (graceful, then force), the monitor, the guard."""
        self._stopping.set()
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=10)
            self._monitor_thread = None
        if self._control is not None:
            self._control.close()
            self._control = None
        with self._lock:
            for worker in self._slots:
                if worker is None:
                    continue
                try:
                    worker.conn.send(("stop", self._next_seq()))
                except (OSError, BrokenPipeError):
                    pass
            for worker in self._slots:
                if worker is None:
                    continue
                worker.process.join(timeout=5)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=2)
                if worker.process.is_alive():  # pragma: no cover - defensive
                    worker.process.kill()
                    worker.process.join(timeout=2)
                worker.conn.close()
            self._slots = [None] * self.workers
        if self._guard is not None:
            self._guard.close()
            self._guard = None

    def __enter__(self) -> "ServingFleet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- addressing -----------------------------------------------------------

    @property
    def port(self) -> int:
        """The fleet's bound port (after :meth:`start`)."""
        if self._guard is None:
            raise FleetError("fleet not started")
        return self._guard.getsockname()[1]

    @property
    def url(self) -> str:
        """Base URL clients hit, e.g. ``http://127.0.0.1:8080``."""
        return f"http://{self.host}:{self.port}"

    @property
    def control_port(self) -> "int | None":
        """The control-plane port (``None`` when disabled/not started)."""
        if self._control is None:
            return None
        return self._control.server_address[1]

    @property
    def control_url(self) -> "str | None":
        """Base URL of the fleet-wide status/metrics endpoints."""
        port = self.control_port
        if port is None:
            return None
        return f"http://{self.host}:{port}"

    # -- commands -------------------------------------------------------------

    def broadcast_swap(self, timeout: float = COMMAND_TIMEOUT) -> list[dict]:
        """Tell every live worker to swap to the newest generation.

        Returns one ack info dict per worker that acked (a worker that
        died mid-broadcast is skipped — its restart attaches the
        newest generation anyway, so it cannot come back stale).
        """
        acks = []
        with self._lock:
            pending = []
            for worker in self._slots:
                if worker is None:
                    continue
                seq = self._next_seq()
                try:
                    worker.conn.send(("swap", seq))
                except (OSError, BrokenPipeError):
                    continue
                pending.append((worker, seq))
            for worker, seq in pending:
                reply = self._recv_reply(worker, "swapped", seq, timeout)
                if reply is not None:
                    worker.info = worker.adjusted(reply)
                    acks.append(worker.info)
        return acks

    def status(self, timeout: float = COMMAND_TIMEOUT) -> dict:
        """Fleet status: address, restart counts, one row per worker.

        Every live worker is queried with a live seq-echoed round-trip
        (so ``generation`` / ``snapshot`` / counters reflect *now*,
        not the monitor's last poll); a dead-and-not-yet restarted
        slot reports ``alive: False`` with its last known info.  Each
        row carries the slot's cumulative ``restarts`` and its swap
        ``lag`` (fleet max generation minus the worker's, with
        restarted workers' counters re-based so a replacement on the
        newest state reports lag 0); the fleet level reports the max
        ``generation`` and worst ``swap_lag``.
        """
        rows = []
        with self._lock:
            for slot, worker in enumerate(self._slots):
                if worker is None:
                    rows.append(
                        {
                            "slot": slot,
                            "alive": False,
                            "restarts": self._slot_restarts[slot],
                        }
                    )
                    continue
                row = dict(worker.info)
                row["slot"] = slot
                row["alive"] = worker.process.is_alive()
                if row["alive"]:
                    seq = self._next_seq()
                    try:
                        worker.conn.send(("status", seq))
                        reply = self._recv_reply(worker, "status", seq, timeout)
                    except (OSError, BrokenPipeError):
                        reply = None
                    if reply is not None:
                        worker.info = worker.adjusted(reply)
                        row.update(worker.info, alive=True)
                    else:
                        row["alive"] = worker.process.is_alive()
                row["restarts"] = self._slot_restarts[slot]
                rows.append(row)
            generation = max(
                (
                    row["generation"]
                    for row in rows
                    if row["alive"] and "generation" in row
                ),
                default=0,
            )
            for row in rows:
                if row["alive"] and "generation" in row:
                    row["lag"] = generation - row["generation"]
            return {
                "host": self.host,
                "port": self.port if self._guard is not None else None,
                "control_port": self.control_port,
                # Workers are forked from (or spawned with the exported
                # REPRO_KERNEL of) this supervisor, so its active kernel
                # is the fleet's.
                "kernel": kernel_name(),
                "workers": rows,
                "restarts": self._restarts,
                "generation": generation,
                "swap_lag": max(
                    (row.get("lag", 0) for row in rows), default=0
                ),
                "uptime_seconds": (
                    None
                    if self._started_monotonic is None
                    else time.monotonic() - self._started_monotonic
                ),
            }

    def metrics(self, timeout: float = COMMAND_TIMEOUT) -> dict:
        """Fleet metrics: per-worker registry snapshots plus the merge.

        Issues a live seq-echoed ``metrics`` round-trip per worker and
        folds the returned snapshots with
        :func:`~repro.obs.metrics.merge_snapshots` (counters and
        histograms add; gauges take the max).  Supervisor-side fleet
        facts are injected as ``fleet.*`` gauges.  Returns
        ``{"workers": [...], "merged": snapshot}``.
        """
        per_worker = []
        with self._lock:
            pending = []
            for slot, worker in enumerate(self._slots):
                if worker is None or not worker.process.is_alive():
                    continue
                seq = self._next_seq()
                try:
                    worker.conn.send(("metrics", seq))
                except (OSError, BrokenPipeError):
                    continue
                pending.append((slot, worker, seq))
            for slot, worker, seq in pending:
                reply = self._recv_reply(worker, "metrics", seq, timeout)
                if reply is not None:
                    worker.info = worker.adjusted(reply["info"])
                    per_worker.append(
                        {
                            "slot": slot,
                            "info": worker.info,
                            "metrics": reply["metrics"],
                        }
                    )
            restarts = self._restarts
            started = self._started_monotonic
        merged = merge_snapshots(entry["metrics"] for entry in per_worker)
        gauges = merged["gauges"]
        gauges["fleet.workers"] = float(self.workers)
        gauges["fleet.workers_alive"] = float(len(per_worker))
        gauges["fleet.restarts"] = float(restarts)
        generations = [
            entry["info"].get("generation", 0) for entry in per_worker
        ]
        generation = max(generations, default=0)
        gauges["fleet.generation"] = float(generation)
        gauges["fleet.swap_lag"] = float(
            max((generation - g for g in generations), default=0)
        )
        if started is not None:
            gauges["fleet.uptime_seconds"] = time.monotonic() - started
        merged["gauges"] = dict(sorted(gauges.items()))
        return {"workers": per_worker, "merged": merged}

    # -- internals ------------------------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _inherited_fds(self) -> tuple:
        """Fds a fork-started child must close (guard + sibling pipes)."""
        if not self._is_fork:
            return ()
        fds = []
        if self._guard is not None:
            fds.append(self._guard.fileno())
        for worker in self._slots:
            if worker is not None:
                try:
                    fds.append(worker.conn.fileno())
                except OSError:
                    pass
        return tuple(fds)

    def _spawn(self, slot: int) -> None:
        """Start worker *slot* and wait for its ready ack."""
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                slot,
                self.source,
                self.host,
                self.port,
                child_conn,
                self._inherited_fds(),
                self.quiet,
            ),
            name=f"fleet-worker-{slot}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _WorkerSlot(process, parent_conn)
        if not parent_conn.poll(self.ready_timeout):
            process.terminate()
            process.join(timeout=2)
            parent_conn.close()
            raise FleetError(
                f"worker {slot} did not become ready within "
                f"{self.ready_timeout}s"
            )
        try:
            kind, info = parent_conn.recv()
        except (EOFError, OSError) as exc:
            process.join(timeout=2)
            parent_conn.close()
            raise FleetError(f"worker {slot} died during startup") from exc
        if kind != "ready":  # pragma: no cover - defensive
            raise FleetError(f"worker {slot} sent {kind!r} instead of ready")
        # A replacement rejoins on the newest committed state, so its
        # reported generation continues from the fleet's, not from 1.
        peers = [
            peer.info["generation"] + peer.generation_offset
            for peer in self._slots
            if peer is not None and "generation" in peer.info
        ]
        worker.generation_offset = max(
            0, max(peers, default=0) - info.get("generation", 0)
        )
        worker.info = worker.adjusted(info)
        self._slots[slot] = worker

    def _recv_reply(self, worker, expect: str, seq: int, timeout: float):
        """The reply payload for (*expect*, *seq*), or None on loss.

        Stale replies from an earlier timed-out command are drained and
        dropped (the seq echo makes them identifiable).
        """
        while True:
            try:
                if not worker.conn.poll(timeout):
                    return None
                message = worker.conn.recv()
            except (EOFError, OSError):
                return None
            if len(message) >= 2 and message[1] == seq:
                return message[2] if message[0] == expect else None
            # else: stale reply from a previous command; keep draining.

    def _monitor(self) -> None:
        """Restart dead workers until the fleet stops."""
        while not self._stopping.wait(POLL_INTERVAL):
            with self._lock:
                if self._stopping.is_set():
                    return
                for slot, worker in enumerate(self._slots):
                    if worker is not None:
                        if worker.process.is_alive():
                            continue
                        worker.process.join(timeout=0)
                        worker.conn.close()
                        self._slots[slot] = None
                    try:
                        self._spawn(slot)
                    except FleetError:
                        continue  # retry on the next tick
                    self._restarts += 1
                    self._slot_restarts[slot] += 1

    def __repr__(self) -> str:
        state = "started" if self._guard is not None else "stopped"
        return (
            f"ServingFleet({self.source.kind}:{self.source.path}, "
            f"workers={self.workers}, {state})"
        )
