"""Organization-level datasets.

Reimplementations of the three org datasets the paper consumes:
AS-to-organization mapping with sibling-AS merging (:mod:`repro.orgs.as2org`,
standing in for CAIDA's dataset and Chen et al.), the ASdb business-type
classification (:mod:`repro.orgs.asdb`), and the hypergiant/CDN registries
(:mod:`repro.orgs.hypergiants`).
"""

from repro.orgs.as2org import As2Org, As2OrgArchive
from repro.orgs.asdb import BUSINESS_CATEGORIES, AsdbDataset, BusinessCategory
from repro.orgs.hypergiants import (
    HGCDN_ORGS,
    HgCdnClass,
    HgCdnRegistry,
)

__all__ = [
    "As2Org",
    "As2OrgArchive",
    "AsdbDataset",
    "BUSINESS_CATEGORIES",
    "BusinessCategory",
    "HGCDN_ORGS",
    "HgCdnClass",
    "HgCdnRegistry",
]
