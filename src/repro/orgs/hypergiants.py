"""Hypergiant and CDN organization registries.

Stand-ins for the Böttger et al. hypergiant list, the Gigis et al. off-net
list, and the CDN Planet CDN list (Section 2.4).  The 24 organizations
named in the paper's Figure 17/23-25 are registered here together with the
deployment-style hints the synthetic universe uses to recreate their
characteristic Jaccard profiles (e.g. Cloudflare/Akamai's low-similarity
addressing agility).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable


class HgCdnClass(enum.Enum):
    HYPERGIANT = "hypergiant"
    CDN = "cdn"
    BOTH = "both"


class DeploymentStyle(enum.Enum):
    """How an organization maps domains onto its address space.

    These drive the synthetic service generator; the paper observes the
    resulting Jaccard distributions (Figure 17).
    """

    #: Dual-stack services aligned between one v4 and one v6 prefix.
    ALIGNED = "aligned"
    #: Many prefixes, domains spread across them, moderate alignment.
    MULTI_PREFIX = "multi_prefix"
    #: Addressing agility: domain→address bindings decoupled per family
    #: (Cloudflare/Akamai style, yields low prefix-level Jaccard).
    AGILITY = "agility"


@dataclass(frozen=True, slots=True)
class HgCdnOrg:
    name: str
    classification: HgCdnClass
    style: DeploymentStyle
    #: Relative footprint weight; scales how many sibling prefixes the
    #: synthetic universe gives the org (Amazon ≫ Internap).
    weight: int


#: The 24 hypergiant/CDN organizations of Figure 25, with the styles that
#: reproduce their observed similarity profiles and rough rank order.
HGCDN_ORGS: tuple[HgCdnOrg, ...] = (
    HgCdnOrg("Amazon", HgCdnClass.BOTH, DeploymentStyle.MULTI_PREFIX, 4564),
    HgCdnOrg("Microsoft", HgCdnClass.BOTH, DeploymentStyle.MULTI_PREFIX, 1125),
    HgCdnOrg("Akamai", HgCdnClass.BOTH, DeploymentStyle.AGILITY, 1056),
    HgCdnOrg("Google", HgCdnClass.BOTH, DeploymentStyle.ALIGNED, 1046),
    HgCdnOrg("Alibaba", HgCdnClass.BOTH, DeploymentStyle.MULTI_PREFIX, 403),
    HgCdnOrg("Cloudflare", HgCdnClass.BOTH, DeploymentStyle.AGILITY, 364),
    HgCdnOrg("Facebook", HgCdnClass.HYPERGIANT, DeploymentStyle.ALIGNED, 349),
    HgCdnOrg("GoDaddy", HgCdnClass.CDN, DeploymentStyle.ALIGNED, 236),
    HgCdnOrg("Apple", HgCdnClass.HYPERGIANT, DeploymentStyle.ALIGNED, 200),
    HgCdnOrg("Incapsula", HgCdnClass.CDN, DeploymentStyle.ALIGNED, 172),
    HgCdnOrg("Leaseweb", HgCdnClass.CDN, DeploymentStyle.ALIGNED, 148),
    HgCdnOrg("CDN77", HgCdnClass.CDN, DeploymentStyle.ALIGNED, 105),
    HgCdnOrg("Edgecast", HgCdnClass.CDN, DeploymentStyle.ALIGNED, 75),
    HgCdnOrg("Fastly", HgCdnClass.CDN, DeploymentStyle.MULTI_PREFIX, 70),
    HgCdnOrg("Rackspace", HgCdnClass.CDN, DeploymentStyle.ALIGNED, 56),
    HgCdnOrg("KPN", HgCdnClass.CDN, DeploymentStyle.ALIGNED, 47),
    HgCdnOrg("Yahoo", HgCdnClass.HYPERGIANT, DeploymentStyle.ALIGNED, 24),
    HgCdnOrg("Telenor", HgCdnClass.CDN, DeploymentStyle.ALIGNED, 16),
    HgCdnOrg("Netflix", HgCdnClass.HYPERGIANT, DeploymentStyle.ALIGNED, 14),
    HgCdnOrg("NTT", HgCdnClass.CDN, DeploymentStyle.ALIGNED, 11),
    HgCdnOrg("Telstra", HgCdnClass.CDN, DeploymentStyle.ALIGNED, 6),
    HgCdnOrg("Lumen", HgCdnClass.CDN, DeploymentStyle.ALIGNED, 3),
    HgCdnOrg("Telin", HgCdnClass.CDN, DeploymentStyle.ALIGNED, 2),
    HgCdnOrg("Internap", HgCdnClass.CDN, DeploymentStyle.ALIGNED, 1),
)


class HgCdnRegistry:
    """Membership tests over organization names."""

    def __init__(self, orgs: Iterable[HgCdnOrg] = HGCDN_ORGS):
        self._by_name = {org.name: org for org in orgs}

    def get(self, name: str) -> HgCdnOrg | None:
        return self._by_name.get(name)

    def is_hgcdn(self, name: str) -> bool:
        return name in self._by_name

    def classification(self, name: str) -> HgCdnClass | None:
        org = self._by_name.get(name)
        return org.classification if org is not None else None

    def names(self) -> list[str]:
        return list(self._by_name)

    def by_weight(self) -> list[HgCdnOrg]:
        return sorted(self._by_name.values(), key=lambda o: -o.weight)

    def __len__(self) -> int:
        return len(self._by_name)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name
