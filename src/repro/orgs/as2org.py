"""AS-to-organization mapping with sibling-AS support.

The paper classifies a sibling prefix pair as "same organization" when the
IPv4 and IPv6 origin ASes either share an AS number or are registered to
the same organization name (Section 4.5).  Two dataset generations are in
play: CAIDA's as2org before October 2022 and the Chen et al. sibling-AS
dataset afterwards; :class:`As2OrgArchive` switches between dated mappings
the same way.
"""

from __future__ import annotations

import bisect
import datetime
from typing import Iterable, Iterator

#: The paper's dataset switch point (Section 2.3).
CHEN_DATASET_EPOCH = datetime.date(2022, 10, 1)


class As2Org:
    """One generation of the ASN → organization mapping."""

    def __init__(self, entries: Iterable[tuple[int, str]] = ()):
        self._org_by_asn: dict[int, str] = {}
        self._asns_by_org: dict[str, set[int]] = {}
        for asn, org in entries:
            self.assign(asn, org)

    def assign(self, asn: int, org: str) -> None:
        if asn < 0 or asn >= 2**32:
            raise ValueError(f"invalid AS number: {asn}")
        previous = self._org_by_asn.get(asn)
        if previous is not None:
            self._asns_by_org[previous].discard(asn)
            if not self._asns_by_org[previous]:
                del self._asns_by_org[previous]
        self._org_by_asn[asn] = org
        self._asns_by_org.setdefault(org, set()).add(asn)

    def org_of(self, asn: int) -> str | None:
        return self._org_by_asn.get(asn)

    def asns_of(self, org: str) -> frozenset[int]:
        return frozenset(self._asns_by_org.get(org, ()))

    def siblings_of(self, asn: int) -> frozenset[int]:
        """All ASes registered to the same organization (including *asn*)."""
        org = self._org_by_asn.get(asn)
        if org is None:
            return frozenset({asn})
        return frozenset(self._asns_by_org[org])

    def same_org(self, asn_a: int, asn_b: int) -> bool:
        """The paper's same-organization test: equal ASN, or both mapped
        to one organization name."""
        if asn_a == asn_b:
            return True
        org_a = self._org_by_asn.get(asn_a)
        org_b = self._org_by_asn.get(asn_b)
        return org_a is not None and org_a == org_b

    def organizations(self) -> Iterator[str]:
        yield from self._asns_by_org

    def __len__(self) -> int:
        return len(self._org_by_asn)

    def __contains__(self, asn: object) -> bool:
        return asn in self._org_by_asn


class As2OrgArchive:
    """Dated as2org generations with latest-at-or-before lookup.

    Mirrors the paper's use of CAIDA data before 2022-10 and the Chen et
    al. dataset afterwards: callers just ask for the mapping in effect on
    a date.
    """

    def __init__(self):
        self._dates: list[datetime.date] = []
        self._mappings: dict[datetime.date, As2Org] = {}

    def add(self, date: datetime.date, mapping: As2Org) -> None:
        if date in self._mappings:
            raise ValueError(f"duplicate as2org generation for {date}")
        self._mappings[date] = mapping
        bisect.insort(self._dates, date)

    def at(self, date: datetime.date) -> As2Org:
        index = bisect.bisect_right(self._dates, date)
        if index == 0:
            raise LookupError(f"no as2org data at or before {date}")
        return self._mappings[self._dates[index - 1]]

    def dates(self) -> list[datetime.date]:
        return list(self._dates)

    def __len__(self) -> int:
        return len(self._dates)
