"""The ASdb business-type dataset (Ziv et al., IMC 2021).

ASdb classifies autonomous systems into one or more of 17 business
categories.  The paper (Section 4.6) keeps only origin ASes that map to a
*single* category (~80% of prefixes) and builds the IPv4-business ×
IPv6-business heatmap from them.
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator


class BusinessCategory(enum.Enum):
    """The 17 ASdb layer-1 business categories."""

    AGRICULTURE = "Agriculture"
    EDUCATION = "Education"
    ENTERTAINMENT = "Entertainment"
    FINANCE = "Finance"
    GOVERNMENT = "Government"
    HEALTH = "Health"
    IT = "IT"
    MANUFACTURING = "Manufacturing"
    MEDIA = "Media"
    NONPROFITS = "Nonprofits"
    OTHER = "Other"
    REAL_ESTATE = "Real Estate"
    RETAIL = "Retail"
    SERVICE = "Service"
    SHIPMENT = "Shipment"
    TRAVEL = "Travel"
    UTILITIES = "Utilities"


BUSINESS_CATEGORIES: tuple[BusinessCategory, ...] = tuple(BusinessCategory)


class AsdbDataset:
    """ASN → set of business categories."""

    def __init__(
        self, entries: Iterable[tuple[int, Iterable[BusinessCategory]]] = ()
    ):
        self._categories: dict[int, frozenset[BusinessCategory]] = {}
        for asn, categories in entries:
            self.classify(asn, categories)

    def classify(self, asn: int, categories: Iterable[BusinessCategory]) -> None:
        category_set = frozenset(categories)
        if not category_set:
            raise ValueError(f"AS{asn}: at least one category required")
        self._categories[asn] = category_set

    def categories_of(self, asn: int) -> frozenset[BusinessCategory]:
        return self._categories.get(asn, frozenset())

    def single_category_of(self, asn: int) -> BusinessCategory | None:
        """The category when the AS maps to exactly one, else None —
        the paper's single-type filter."""
        categories = self._categories.get(asn)
        if categories is not None and len(categories) == 1:
            return next(iter(categories))
        return None

    def asns(self) -> Iterator[int]:
        yield from self._categories

    def __len__(self) -> int:
        return len(self._categories)

    def __contains__(self, asn: object) -> bool:
        return asn in self._categories

    def single_category_share(self) -> float:
        """Fraction of classified ASes with exactly one category."""
        if not self._categories:
            return 0.0
        singles = sum(1 for c in self._categories.values() if len(c) == 1)
        return singles / len(self._categories)
