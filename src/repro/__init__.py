"""Reproduction of "Sibling Prefixes: Identifying Similarities in IPv4
and IPv6 Prefixes" (Osali, Sediqi, Gasser - IMC 2025).

Subpackage map (see README.md for the full architecture):

* :mod:`repro.nettypes` - addresses, prefixes, patricia tries
* :mod:`repro.dns` - zones, resolver, toplists, measurement snapshots
* :mod:`repro.bgp` - RIB, archives, prefix annotation
* :mod:`repro.orgs` - as2org, ASdb, hypergiant/CDN registries
* :mod:`repro.rpki` - ROAs, route-origin validation, repositories
* :mod:`repro.scan` - port-scan simulator and overlap analysis
* :mod:`repro.atlas` - vantage points and ground-truth coverage
* :mod:`repro.synth` - the seeded synthetic Internet universe
* :mod:`repro.core` - detection pipeline, SP-Tuner, set pairs, quality
* :mod:`repro.analysis` - the per-figure Section 4 analyses
* :mod:`repro.reporting` - containers, rendering, experiment registry
* :mod:`repro.publish` - the exportable sibling-prefix list
* :mod:`repro.cli` - ``python -m repro`` command line

Quickstart::

    from repro.core.detection import detect_with_index
    from repro.dates import REFERENCE_DATE
    from repro.synth import build_universe

    universe = build_universe("small")
    siblings, index = detect_with_index(
        universe.snapshot_at(REFERENCE_DATE),
        universe.annotator_at(REFERENCE_DATE),
    )
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
