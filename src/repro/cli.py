"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``detect``     — run the detection pipeline on a scenario and print or
  export the sibling prefix list (CSV/JSONL, optionally tuned), and/or
  compile the binary lookup index (``--emit-index``) or append to a
  ``.sparch`` snapshot archive (``--archive``).
* ``detect-series`` — run detection over a longitudinal date series
  (one shared substrate/intern pool across all snapshots); with
  ``--archive`` the series resumes from / appends to an archive.
* ``experiment`` — run any registered per-figure experiment.
* ``scenarios``  — list the available scenario presets.
* ``scenario``   — run a scripted longitudinal event scenario (rollout,
  renumber, rotation, aliased, orgchurn, mixed) through the incremental
  pipeline — or the full watch daemon with ``--via watch`` — and score
  detection exactly against the generator's ground-truth ledger
  (``--score``); ``detect-series --events NAME --score`` does the same
  over the plain series command.
* ``lookup``     — longest-prefix-match query against an export (binary
  index files are memory-loaded; CSV exports are streamed).
* ``serve``      — stand up the JSON HTTP lookup endpoint over an
  index/CSV file, or ``--archive`` for a zero-copy ``mmap`` attach;
  ``--workers N`` scales it to a multi-process SO_REUSEPORT fleet
  (``--status-port`` places the fleet's control-plane endpoints).
* ``status``     — fetch and render a serving endpoint's ``/v1/status``
  (fleet or single worker view).
* ``watch``      — the streaming ingestion daemon: tail a directory of
  snapshot files, roll each new snapshot through the incremental
  pipeline, append the generation to a ``.sparch`` archive, and
  hot-swap the (optionally HTTP-served) query service.
* ``archive``    — operate on a ``.sparch`` archive: ``verify`` scrubs
  every segment CRC, ``repair`` truncates a torn tail back to the last
  committed generation.

``detect`` and ``detect-series`` accept ``--stats`` to print the
per-stage wall/CPU timing table (Steps 1-4, per-shard) recorded by the
telemetry layer (:mod:`repro.obs`) after the run.

Exit codes: 0 success, 1 lookup miss, 2 usage/input error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.kernels import (
    KernelUnavailableError,
    available_kernel_names,
    set_kernel,
)
from repro.core.sptuner import SpTunerMS, TunerConfig
from repro.core.substrate import DEFAULT_SUBSTRATE, SUBSTRATES
from repro.dates import REFERENCE_DATE


def _add_substrate_options(command: argparse.ArgumentParser) -> None:
    """The shared Step 3-4 engine flags (``--substrate``, ``--workers``)."""
    command.add_argument(
        "--substrate",
        choices=sorted(SUBSTRATES),
        default=DEFAULT_SUBSTRATE,
        help="Step 3-4 engine (columnar: interned posting lists; "
        "sharded: columnar Step 3 across worker processes; "
        "reference: the paper-literal dict-of-sets path)",
    )
    command.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for --substrate sharded "
        "(0 = all cores; small inputs fall back to single-process)",
    )
    command.add_argument(
        "--kernel",
        choices=("numpy", "python"),
        default=None,
        help="Step 3-4 batch-op kernel (numpy: vectorized over the CSR "
        "buffers; python: bit-identical stdlib fallback); default "
        "follows REPRO_KERNEL, else numpy when importable",
    )
    command.add_argument(
        "--stats",
        action="store_true",
        help="after the run, print the per-stage wall/CPU timing table "
        "(Steps 1-4, per-shard, kernel-labeled) to stderr",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sibling prefix detection (IMC 2025 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    detect = sub.add_parser("detect", help="detect sibling prefixes")
    detect.add_argument("--scenario", default="tiny", help="scenario preset")
    detect.add_argument(
        "--tune",
        metavar="V4,V6",
        help="apply SP-Tuner with these thresholds, e.g. 28,96",
    )
    detect.add_argument(
        "--format", choices=("table", "csv", "jsonl"), default="table"
    )
    detect.add_argument(
        "--output", "-o", help="write to this file instead of stdout"
    )
    detect.add_argument(
        "--emit-index",
        metavar="PATH",
        help="also compile the result into a binary lookup index at PATH "
        "(servable via `repro serve`)",
    )
    detect.add_argument(
        "--archive",
        metavar="PATH",
        help="append this date's detection (sibling list, compiled lookup "
        "index, substrate state) to the .sparch snapshot archive at PATH, "
        "creating it if missing (servable via `repro serve --archive`)",
    )
    detect.add_argument(
        "--with-rov", action="store_true", help="attach ROV status (slower)"
    )
    detect.add_argument(
        "--min-jaccard", type=float, default=0.0, help="similarity floor"
    )
    _add_substrate_options(detect)

    series = sub.add_parser(
        "detect-series", help="detect over a longitudinal date series"
    )
    series.add_argument("--scenario", default="tiny", help="scenario preset")
    series.add_argument(
        "--offsets",
        choices=("paper", "stability"),
        default="paper",
        help="date grid: the paper's Year -4 … Day 0 axis, or the "
        "one-year stability lookback",
    )
    series.add_argument(
        "--format", choices=("table", "csv"), default="table"
    )
    series.add_argument(
        "--output", "-o", help="write to this file instead of stdout"
    )
    series.add_argument(
        "--incremental",
        action="store_true",
        help="detect date 0 in full, then roll snapshot deltas forward "
        "(bit-identical results; cost scales with daily churn)",
    )
    series.add_argument(
        "--archive",
        metavar="PATH",
        help="back the series by the .sparch snapshot archive at PATH: "
        "already-archived dates load back instead of recomputing "
        "(with --incremental the run resumes from the archived substrate "
        "state), and newly detected dates are appended",
    )
    series.add_argument(
        "--events",
        metavar="NAME",
        help="run over a scripted event scenario (see `repro scenario "
        "list`) instead of a calibrated universe; the date grid comes "
        "from the event script and --scenario/--offsets are ignored",
    )
    series.add_argument(
        "--score",
        action="store_true",
        help="after the run, print per-date precision/recall/F1 and "
        "churn-lag against the event script's ground-truth ledger "
        "(requires --events)",
    )
    _add_substrate_options(series)

    experiment = sub.add_parser("experiment", help="run a per-figure experiment")
    experiment.add_argument("experiment_id", help="e.g. fig05, sec42")
    experiment.add_argument("--scenario", default="tiny")

    sub.add_parser("scenarios", help="list scenario presets")

    scenario = sub.add_parser(
        "scenario",
        help="run a scripted longitudinal event scenario with exact "
        "ground-truth scoring",
    )
    scenario.add_argument(
        "op",
        choices=("run", "list"),
        help="run: drive the named event script through the incremental "
        "pipeline and score detection against the generator's ledger; "
        "list: show the scripted scenario grid",
    )
    scenario.add_argument(
        "name",
        nargs="?",
        help="event scenario name (e.g. rollout, rotation, aliased, "
        "mixed); required for run",
    )
    scenario.add_argument(
        "--score",
        action="store_true",
        help="print the per-date precision/recall/F1/churn-lag table "
        "against the ground-truth ledger",
    )
    scenario.add_argument(
        "--scale",
        type=int,
        default=1,
        metavar="N",
        help="multiply the script's deployment cast by N (the bench grid "
        "runs 1/10/100)",
    )
    scenario.add_argument(
        "--base",
        default="tiny",
        help="scenario preset supplying the organization population the "
        "scripted deployments are attributed to",
    )
    scenario.add_argument(
        "--archive",
        metavar="PATH",
        help="back the run by the .sparch snapshot archive at PATH "
        "(resume + append, exactly as detect-series --archive)",
    )
    scenario.add_argument(
        "--via",
        choices=("pipeline", "watch"),
        default="pipeline",
        help="pipeline: call detect_series directly; watch: write the "
        "event series into a snapshot-file feed and drain it through "
        "the `repro watch` daemon (archive-backed), then score the "
        "archived generations",
    )
    scenario.add_argument(
        "--full",
        action="store_true",
        help="rebuild every date from scratch instead of rolling "
        "snapshot deltas (results are bit-identical; this is the "
        "slow path)",
    )
    _add_substrate_options(scenario)

    lookup = sub.add_parser("lookup", help="query an exported list (LPM)")
    lookup.add_argument(
        "list_file",
        help="CSV export from `detect --format csv` or a binary index "
        "from `detect --emit-index`",
    )
    lookup.add_argument("query", help="IPv4/IPv6 prefix or address")

    serve = sub.add_parser("serve", help="run the JSON HTTP lookup service")
    serve.add_argument(
        "list_file",
        nargs="?",
        help="binary index or CSV export to serve (omit with --archive)",
    )
    serve.add_argument(
        "--archive",
        metavar="PATH",
        help="serve the newest generation of the .sparch snapshot archive "
        "at PATH (mmap attach: no recompilation at start)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="serving worker processes; N > 1 runs the SO_REUSEPORT "
        "fleet (binary index or --archive sources only), 1 serves "
        "in-process",
    )
    serve.add_argument(
        "--status-port",
        type=int,
        default=0,
        metavar="PORT",
        help="fleet control-plane port for the fleet-wide /v1/status and "
        "/v1/metrics endpoints (0 = pick a free port; single-worker "
        "serving exposes them on the main port instead)",
    )

    watch = sub.add_parser(
        "watch", help="stream snapshots from a directory into an archive"
    )
    watch.add_argument(
        "directory",
        help="snapshot source directory to tail (one JSON snapshot file "
        "per date; see repro.analysis.watch.write_snapshot_file)",
    )
    watch.add_argument(
        "--archive",
        metavar="PATH",
        required=True,
        help="the .sparch archive to append generations to (created if "
        "missing, repaired if a previous run crashed mid-append)",
    )
    watch.add_argument(
        "--scenario",
        default="tiny",
        help="scenario preset supplying the per-date routing annotators",
    )
    watch.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        metavar="S",
        help="seconds between source polls when idle",
    )
    watch.add_argument(
        "--budget",
        type=float,
        default=5.0,
        metavar="S",
        help="per-generation latency budget in seconds; overruns are "
        "counted on watch.budget_overruns (0 disables)",
    )
    watch.add_argument(
        "--once",
        action="store_true",
        help="drain the currently visible backlog and exit (replay mode)",
    )
    watch.add_argument(
        "--max-generations",
        type=int,
        default=None,
        metavar="N",
        help="exit after appending N new generations",
    )
    watch.add_argument("--host", default="127.0.0.1")
    watch.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="P",
        help="also serve lookups plus /v1/status and /v1/metrics over "
        "HTTP on this port (0 = pick a free port; omit to run headless)",
    )
    _add_substrate_options(watch)

    archive = sub.add_parser(
        "archive", help="verify or repair a .sparch snapshot archive"
    )
    archive.add_argument(
        "op",
        choices=("verify", "repair"),
        help="verify: CRC-scrub every segment (torn archives are "
        "rejected); repair: scan backward for the last committed footer "
        "and truncate the torn tail",
    )
    archive.add_argument("path", help="the .sparch archive file")

    status = sub.add_parser(
        "status", help="fetch and render a serving endpoint's /v1/status"
    )
    status.add_argument(
        "url",
        help="base URL of a serving or fleet-control endpoint, e.g. "
        "http://127.0.0.1:8080 (the /v1/status path is appended if "
        "missing)",
    )
    status.add_argument(
        "--json",
        action="store_true",
        help="print the raw JSON payload instead of the rendered view",
    )
    status.add_argument(
        "--timeout", type=float, default=10.0, help="HTTP timeout, seconds"
    )
    return parser


def _print_stage_stats() -> None:
    """The ``--stats`` payload: the telemetry layer's stage table."""
    from repro.obs.tracing import get_registry, stage_table

    print(stage_table(get_registry().snapshot()), file=sys.stderr)


def _parse_thresholds(text: str) -> TunerConfig:
    try:
        v4_text, v6_text = text.split(",")
        return TunerConfig(v4_threshold=int(v4_text), v6_threshold=int(v6_text))
    except (ValueError, TypeError) as exc:
        raise SystemExit(f"invalid --tune value {text!r}: {exc}")


def _cmd_detect(args: argparse.Namespace) -> int:
    from repro.core.detection import detect_with_index
    from repro.core.siblings import SiblingSet
    from repro import publish
    from repro.synth import build_universe

    universe = build_universe(args.scenario)
    siblings, index = detect_with_index(
        universe.snapshot_at(REFERENCE_DATE),
        universe.annotator_at(REFERENCE_DATE),
        substrate=args.substrate,
        workers=args.workers,
    )
    if args.tune:
        config = _parse_thresholds(args.tune)
        siblings = SpTunerMS(index, config).tune_all(siblings)
    if args.min_jaccard > 0.0:
        siblings = SiblingSet(
            siblings.date,
            (p for p in siblings if p.similarity >= args.min_jaccard),
        )

    repository = None
    if args.with_rov:
        from repro.rpki.builder import repository_from_universe

        repository = repository_from_universe(universe)
    published = publish.enrich_pairs(
        universe, siblings, REFERENCE_DATE, repository
    )
    if args.emit_index:
        count = publish.write_index(published, args.emit_index, REFERENCE_DATE)
        print(
            f"compiled {count} pairs into lookup index {args.emit_index}",
            file=sys.stderr,
        )
    if args.archive:
        from repro.analysis.pipeline import archive_detection

        archive_detection(
            args.archive,
            universe,
            REFERENCE_DATE,
            siblings,
            index=index,
            substrate=args.substrate,
            workers=args.workers,
            published=published,
            raw=not (args.tune or args.min_jaccard > 0.0),
        )
        print(
            f"archived {len(published)} pairs into {args.archive}",
            file=sys.stderr,
        )

    stream = open(args.output, "w") if args.output else sys.stdout
    try:
        if args.format == "csv":
            publish.write_csv(published, stream, REFERENCE_DATE)
        elif args.format == "jsonl":
            publish.write_jsonl(published, stream, REFERENCE_DATE)
        else:
            stream.write(
                f"{len(published)} sibling pairs "
                f"(perfect: {siblings.perfect_match_share:.1%})\n"
            )
            for pair in published:
                org = {True: "same-org", False: "diff-org", None: "?"}[pair.same_org]
                stream.write(
                    f"{str(pair.v4_prefix):<22} {str(pair.v6_prefix):<30} "
                    f"J={pair.jaccard:<8.3f} domains={pair.shared_domains:<5d} "
                    f"{org}"
                    + (f" rov={pair.rov_status}" if pair.rov_status else "")
                    + "\n"
                )
    finally:
        if args.output:
            stream.close()
    if args.stats:
        _print_stage_stats()
    return 0


def _cmd_detect_series(args: argparse.Namespace) -> int:
    from repro.analysis.pipeline import (
        detect_series,
        paper_offsets,
        stability_offsets,
    )
    from repro.synth import build_universe

    if args.score and not args.events:
        print("error: --score needs --events NAME (only event scripts "
              "carry a ground-truth ledger)", file=sys.stderr)
        return 2
    if args.events:
        from repro.synth.events import build_event_universe

        try:
            universe = build_event_universe(args.events)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        dates = universe.dates
        label_of = {date: f"t{i}" for i, date in enumerate(dates)}
    else:
        offsets_fn = (
            paper_offsets if args.offsets == "paper" else stability_offsets
        )
        labelled = offsets_fn(REFERENCE_DATE)
        label_of = {date: label for label, date in labelled}
        universe = build_universe(args.scenario)
        dates = [date for _, date in labelled]
    series = detect_series(
        universe,
        dates,
        substrate=args.substrate,
        workers=args.workers,
        incremental=args.incremental,
        archive=args.archive,
    )

    stream = open(args.output, "w") if args.output else sys.stdout
    try:
        if args.format == "csv":
            stream.write("label,date,pairs,perfect_share,mean_jaccard\n")
            for date, siblings in series:
                stream.write(
                    f"{label_of[date]},{date.isoformat()},{len(siblings)},"
                    f"{siblings.perfect_match_share:.6f},"
                    f"{siblings.mean_similarity:.6f}\n"
                )
        else:
            stream.write(
                f"{'label':<10} {'date':<12} {'pairs':>6} "
                f"{'perfect':>8} {'mean J':>8}\n"
            )
            for date, siblings in series:
                stream.write(
                    f"{label_of[date]:<10} {date.isoformat():<12} "
                    f"{len(siblings):>6} "
                    f"{siblings.perfect_match_share:>7.1%} "
                    f"{siblings.mean_similarity:>8.3f}\n"
                )
    finally:
        if args.output:
            stream.close()
    if args.score:
        from repro.analysis.quality import render_score, score_series

        print(
            render_score(
                score_series(series, universe.ledger, scenario=args.events)
            )
        )
    if args.stats:
        _print_stage_stats()
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.reporting.experiments import run_experiment
    from repro.synth import build_universe

    universe = build_universe(args.scenario)
    result = run_experiment(args.experiment_id, universe)
    print(result.title)
    print("=" * len(result.title))
    print(result.text)
    print()
    for line in result.summary_lines():
        print(line)
    return 0


def _cmd_scenarios() -> int:
    from repro.synth.scenarios import SCENARIOS

    for name, config in SCENARIOS.items():
        print(
            f"{name:<8} service_orgs={config.n_service_orgs:<6} "
            f"hgcdn={config.n_hgcdn_orgs:<3} probes={config.n_probes:<5} "
            f"monitoring={config.monitoring_v4_placements}x"
            f"{config.monitoring_v6_placements}"
        )
    return 0


def _scenario_results_via_watch(universe, args) -> list:
    """Drive the event series through the ``repro watch`` daemon.

    The series is written out as snapshot files, drained by a
    :class:`~repro.analysis.watch.SnapshotWatcher` into a ``.sparch``
    archive (the caller's ``--archive`` or a run-scoped temporary), and
    the committed generations are loaded back as the per-date results —
    the full snapshots → archive → serve loop, not a shortcut.
    """
    import contextlib
    import tempfile

    from repro.analysis.watch import (
        SnapshotDirectorySource,
        SnapshotWatcher,
        write_snapshot_file,
    )
    from repro.storage import substrate_io
    from repro.storage.archive import ArchiveReader

    with contextlib.ExitStack() as stack:
        feed_dir = stack.enter_context(tempfile.TemporaryDirectory())
        archive = args.archive
        if archive is None:
            archive_dir = stack.enter_context(tempfile.TemporaryDirectory())
            archive = f"{archive_dir}/scenario.sparch"
        for date in universe.dates:
            write_snapshot_file(universe.snapshot_at(date), feed_dir)
        watcher = SnapshotWatcher(
            SnapshotDirectorySource(feed_dir),
            universe.annotator_at,
            archive,
            substrate=args.substrate,
            workers=args.workers,
        )
        watcher.run(once=True)
        with ArchiveReader.open(archive) as reader:
            pool_names = reader.pool_names()
            by_date = {
                date: substrate_io.load_siblings(generation, pool_names)
                for date, generation in reader.generations_by_date(
                    substrate_io.SIBLINGS_KIND
                ).items()
            }
    # Archive generations are keyed by ISO date string.
    return [(date, by_date[date.isoformat()]) for date in universe.dates]


def _cmd_scenario(args: argparse.Namespace) -> int:
    """The ``repro scenario`` body: scripted events + exact scoring."""
    from repro.synth.events import EVENT_SCENARIOS, build_event_universe

    if args.op == "list":
        for name, script in EVENT_SCENARIOS.items():
            events = ", ".join(type(e).__name__ for e in script.events)
            print(
                f"{name:<10} dates={script.n_dates:<3} "
                f"deployments={script.n_deployments:<5} "
                f"domains/dep={script.domains_per_deployment}  [{events}]"
            )
        return 0
    if not args.name:
        print("error: scenario run needs a NAME (see `repro scenario "
              "list`)", file=sys.stderr)
        return 2
    try:
        universe = build_event_universe(
            args.name, base=args.base, scale=args.scale
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.via == "watch":
        results = _scenario_results_via_watch(universe, args)
    else:
        from repro.analysis.pipeline import detect_series

        results = detect_series(
            universe,
            universe.dates,
            substrate=args.substrate,
            workers=args.workers,
            incremental=not args.full,
            archive=args.archive,
        )

    script = universe.script
    print(
        f"scenario {script.name!r}: {script.n_deployments} deployments, "
        f"{len(results)} dates via {args.via}"
    )
    for date, siblings in results:
        print(f"  {date.isoformat()}  pairs={len(siblings)}")
    if args.score:
        from repro.analysis.quality import render_score, score_series

        print(render_score(score_series(results, universe.ledger,
                                        scenario=script.name)))
    if args.stats:
        _print_stage_stats()
    return 0


def _cmd_lookup(args: argparse.Namespace) -> int:
    import csv

    from repro import publish
    from repro.nettypes.prefix import PrefixError
    from repro.serving.codec import CodecError, is_index_file, load_index
    from repro.serving.index import parse_query

    try:
        query = parse_query(args.query)
    except PrefixError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    hits = []
    matched = None
    try:
        if is_index_file(args.list_file):
            # Binary index: memory-load once, answer by binary search.
            result = load_index(args.list_file).lookup(query)
            if result is not None:
                matched, hits = result.matched, list(result.pairs)
        else:
            # CSV export: stream rows, keep only the longest match.
            with open(args.list_file) as stream:
                for pair in publish.stream_csv(stream):
                    stored = (
                        pair.v4_prefix if query.version == 4 else pair.v6_prefix
                    )
                    if stored.length <= query.length and stored.contains(query):
                        if matched is None or stored.length > matched.length:
                            matched, hits = stored, [pair]
                        elif stored == matched:
                            hits.append(pair)
    except OSError as exc:
        print(f"error: cannot read {args.list_file!r}: {exc}", file=sys.stderr)
        return 2
    except (
        publish.PublishFormatError,
        CodecError,
        UnicodeDecodeError,
        csv.Error,
    ) as exc:
        print(f"error: {args.list_file!r}: {exc}", file=sys.stderr)
        return 2

    if matched is None:
        print(f"no sibling pair covers {query}")
        return 1
    for pair in hits:
        print(
            f"{pair.v4_prefix} <-> {pair.v6_prefix}  J={pair.jaccard:.3f} "
            f"domains={pair.shared_domains}"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import csv

    from repro import publish
    from repro.serving.codec import CodecError, is_index_file
    from repro.serving.http import serve_forever
    from repro.serving.index import SiblingLookupIndex
    from repro.serving.service import SiblingQueryService
    from repro.storage.format import ArchiveFormatError

    if bool(args.archive) == bool(args.list_file):
        print(
            "error: serve needs exactly one of FILE or --archive PATH",
            file=sys.stderr,
        )
        return 2
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2

    try:
        if args.archive:
            service = SiblingQueryService.from_archive(args.archive)
        elif is_index_file(args.list_file):
            service = SiblingQueryService.from_file(args.list_file)
        else:
            if args.workers > 1:
                print(
                    "error: --workers > 1 needs a reloadable source "
                    "(binary index or --archive); compile the CSV with "
                    "`repro detect --emit-index` first",
                    file=sys.stderr,
                )
                return 2
            with open(args.list_file) as stream:
                # Honor the export's own snapshot date when recorded.
                date = publish.header_snapshot_date(stream.readline())
                stream.seek(0)
                pairs = list(publish.stream_csv(stream))
            index = SiblingLookupIndex.from_pairs(
                pairs, date or REFERENCE_DATE
            )
            service = SiblingQueryService(index)
    except OSError as exc:
        print(f"error: cannot read {args.list_file!r}: {exc}", file=sys.stderr)
        return 2
    except (
        publish.PublishFormatError,
        CodecError,
        ArchiveFormatError,
        UnicodeDecodeError,
        csv.Error,
    ) as exc:
        print(
            f"error: {(args.archive or args.list_file)!r}: {exc}",
            file=sys.stderr,
        )
        return 2
    if args.workers > 1:
        return _serve_fleet(args)
    try:
        serve_forever(service, args.host, args.port)
    except OSError as exc:
        # e.g. port in use or privileged; a usage error, not a crash.
        print(
            f"error: cannot bind {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 2
    return 0


def _serve_fleet(args: argparse.Namespace) -> int:
    """The ``serve --workers N`` body: run a SO_REUSEPORT worker fleet.

    The source file was already opened once by :func:`_cmd_serve` for
    validation; here each worker re-attaches it independently.
    """
    import threading

    from repro.serving.fleet import FleetError, ServiceSource, ServingFleet

    source = (
        ServiceSource.archive(args.archive)
        if args.archive
        else ServiceSource.index(args.list_file)
    )
    fleet = ServingFleet(
        source,
        workers=args.workers,
        host=args.host,
        port=args.port,
        quiet=False,
        control_port=args.status_port,
    )
    try:
        fleet.start()
    except OSError as exc:
        print(
            f"error: cannot bind {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 2
    except FleetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        print(
            f"serving sibling lookups on http://{args.host}:{fleet.port}/v1/ "
            f"with {args.workers} workers"
        )
        if fleet.control_url:
            print(
                f"fleet status/metrics on {fleet.control_url}/v1/status "
                f"and {fleet.control_url}/v1/metrics"
            )
        threading.Event().wait()
    except KeyboardInterrupt:
        print("\nshutting down fleet")
    finally:
        fleet.stop()
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    """The ``repro watch`` body: snapshots → archive → hot-swap."""
    from repro.analysis.watch import SnapshotDirectorySource, SnapshotWatcher
    from repro.serving.http import make_server
    from repro.serving.service import SiblingQueryService
    from repro.storage.format import ArchiveFormatError
    from repro.synth import build_universe

    directory = args.directory
    import pathlib

    if not pathlib.Path(directory).is_dir():
        print(f"error: {directory!r} is not a directory", file=sys.stderr)
        return 2
    universe = build_universe(args.scenario)
    service = SiblingQueryService()
    try:
        watcher = SnapshotWatcher(
            SnapshotDirectorySource(directory),
            universe.annotator_at,
            args.archive,
            service=service,
            substrate=args.substrate,
            workers=args.workers,
            budget_seconds=args.budget or None,
            poll_interval=args.poll_interval,
        )
    except ArchiveFormatError as exc:
        print(f"error: {args.archive!r}: {exc}", file=sys.stderr)
        return 2
    server = None
    if args.port is not None:
        try:
            server = make_server(service, args.host, args.port).start()
        except OSError as exc:
            print(
                f"error: cannot bind {args.host}:{args.port}: {exc}",
                file=sys.stderr,
            )
            return 2
        server.status_extras["watch"] = watcher.status
        bound_host, bound_port = server.server_address[:2]
        print(
            f"serving lookups and watch status on "
            f"http://{bound_host}:{bound_port}/v1/",
            file=sys.stderr,
        )
    print(
        f"watching {directory} into {args.archive} "
        f"({watcher.generations} generations committed)",
        file=sys.stderr,
    )
    try:
        appended = watcher.run(
            once=args.once, max_generations=args.max_generations
        )
        print(f"appended {appended} generations", file=sys.stderr)
    except KeyboardInterrupt:
        print("\nshutting down watch", file=sys.stderr)
    finally:
        if server is not None:
            server.close()
    if args.stats:
        _print_stage_stats()
    return 0


def _cmd_archive(args: argparse.Namespace) -> int:
    """The ``repro archive`` body: verify / repair a ``.sparch`` file."""
    import os

    from repro.storage.archive import ArchiveReader, ArchiveWriter
    from repro.storage.format import ArchiveFormatError

    try:
        if args.op == "verify":
            with ArchiveReader.open(args.path) as reader:
                checked = reader.verify()
                print(
                    f"ok: {len(reader.generations)} generations, "
                    f"{checked} segments CRC-verified"
                )
            return 0
        before = os.path.getsize(args.path)
        with ArchiveWriter.open(args.path, recover=True) as writer:
            generations = len(writer.generation_dates)
        after = os.path.getsize(args.path)
        if after < before:
            print(
                f"repaired: truncated {before - after} torn bytes; "
                f"{generations} committed generations retained"
            )
        else:
            print(f"clean: {generations} committed generations, no torn tail")
    except (ArchiveFormatError, OSError) as exc:
        print(f"error: {args.path!r}: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    """Fetch ``/v1/status`` and render a fleet or worker view."""
    import json
    import urllib.error
    import urllib.request

    url = args.url.rstrip("/")
    if not url.endswith("/v1/status"):
        url += "/v1/status"
    try:
        with urllib.request.urlopen(url, timeout=args.timeout) as response:
            payload = json.load(response)
    except (urllib.error.URLError, OSError, ValueError) as exc:
        print(f"error: cannot fetch {url}: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if "workers" in payload:
        uptime = payload.get("uptime_seconds")
        kernel = payload.get("kernel")
        print(
            f"fleet {payload.get('host')}:{payload.get('port')}  "
            f"generation={payload.get('generation')}  "
            f"restarts={payload.get('restarts')}  "
            f"swap_lag={payload.get('swap_lag')}"
            + (f"  kernel={kernel}" if kernel is not None else "")
            + (f"  uptime={uptime:.1f}s" if uptime is not None else "")
        )
        print(
            f"{'slot':>4} {'alive':>5} {'pid':>8} {'generation':>10} "
            f"{'lag':>4} {'restarts':>8} {'queries':>8} {'snapshot':>12}"
        )
        for row in payload["workers"]:
            print(
                f"{row.get('slot', '?'):>4} "
                f"{str(bool(row.get('alive'))):>5} "
                f"{row.get('pid', '-'):>8} "
                f"{row.get('generation', '-'):>10} "
                f"{row.get('lag', '-'):>4} "
                f"{row.get('restarts', 0):>8} "
                f"{row.get('queries', '-'):>8} "
                f"{row.get('snapshot', '-'):>12}"
            )
    else:
        worker = payload.get("worker", {})
        service = payload.get("service", {})
        print(
            f"worker pid={worker.get('pid')} "
            f"generation={worker.get('generation')} "
            f"uptime={worker.get('uptime_seconds', 0.0):.1f}s"
        )
        for key in (
            "generation",
            "swaps",
            "queries",
            "kernel",
            "generation_age_seconds",
        ):
            if key in service:
                value = service[key]
                if isinstance(value, float):
                    value = round(value, 3)
                print(f"  {key}: {value}")
        cache = service.get("cache")
        if cache:
            print(
                f"  cache: size={cache.get('size')} hits={cache.get('hits')} "
                f"misses={cache.get('misses')}"
            )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if getattr(args, "kernel", None):
        try:
            set_kernel(args.kernel)
        except KernelUnavailableError as exc:
            print(f"error: {exc}", file=sys.stderr)
            print(
                f"available kernels: {', '.join(available_kernel_names())}",
                file=sys.stderr,
            )
            return 2
    if args.command == "detect":
        return _cmd_detect(args)
    if args.command == "detect-series":
        return _cmd_detect_series(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "scenarios":
        return _cmd_scenarios()
    if args.command == "scenario":
        return _cmd_scenario(args)
    if args.command == "lookup":
        return _cmd_lookup(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "watch":
        return _cmd_watch(args)
    if args.command == "archive":
        return _cmd_archive(args)
    if args.command == "status":
        return _cmd_status(args)
    raise SystemExit(f"unknown command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
