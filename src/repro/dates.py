"""Measurement calendar helpers.

The paper samples OpenINTEL "on every second Wednesday of each month from
September 2020 to September 2024, resulting in 49 snapshots" and RPKI
monthly over the same window.  These helpers generate that calendar.
"""

from __future__ import annotations

import datetime
from typing import Iterator

#: The paper's observation window.
STUDY_START = (2020, 9)
STUDY_END = (2024, 9)

#: The paper's reference snapshot ("day 0"), September 11, 2024 — which is
#: indeed the second Wednesday of that month.
REFERENCE_DATE = datetime.date(2024, 9, 11)


def second_wednesday(year: int, month: int) -> datetime.date:
    """The second Wednesday of the given month."""
    first = datetime.date(year, month, 1)
    # weekday(): Monday=0 ... Wednesday=2.
    offset = (2 - first.weekday()) % 7
    return first + datetime.timedelta(days=offset + 7)


def month_range(
    start: tuple[int, int] = STUDY_START, end: tuple[int, int] = STUDY_END
) -> Iterator[tuple[int, int]]:
    """Iterate (year, month) pairs inclusive of both endpoints."""
    year, month = start
    while (year, month) <= end:
        yield year, month
        month += 1
        if month > 12:
            year, month = year + 1, 1


def snapshot_dates(
    start: tuple[int, int] = STUDY_START, end: tuple[int, int] = STUDY_END
) -> list[datetime.date]:
    """All second-Wednesday snapshot dates in the study window."""
    return [second_wednesday(y, m) for y, m in month_range(start, end)]


def months_between(earlier: datetime.date, later: datetime.date) -> int:
    """Whole calendar months from *earlier* to *later*."""
    return (later.year - earlier.year) * 12 + (later.month - earlier.month)


def add_months(date: datetime.date, months: int) -> datetime.date:
    """Shift *date* by *months*, clamping the day to the month's end."""
    month_index = date.year * 12 + (date.month - 1) + months
    year, month = divmod(month_index, 12)
    month += 1
    day = min(date.day, _days_in_month(year, month))
    return datetime.date(year, month, day)


def _days_in_month(year: int, month: int) -> int:
    if month == 12:
        nxt = datetime.date(year + 1, 1, 1)
    else:
        nxt = datetime.date(year, month + 1, 1)
    return (nxt - datetime.timedelta(days=1)).day
