"""Stable, salt-free pseudo-randomness.

Python's built-in ``hash`` is salted per process for strings, so anything
that must be reproducible across runs (address churn schedules, snapshot
sampling, annotation gaps) goes through these helpers instead.  They are
keyed hashes over the repr of their arguments via BLAKE2b — deterministic,
well mixed, and cheap.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Sequence


def stable_hash(*parts: object) -> int:
    """A deterministic 64-bit hash of the argument tuple."""
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x1f")  # field separator so ("ab","c") != ("a","bc")
    return struct.unpack("<Q", h.digest())[0]


def stable_uniform(*parts: object) -> float:
    """A deterministic float in [0, 1) derived from the arguments."""
    return stable_hash(*parts) / 2**64


def stable_choice(options: Sequence, *parts: object):
    """Pick one of *options* deterministically from the key parts."""
    if not options:
        raise ValueError("cannot choose from an empty sequence")
    return options[stable_hash(*parts) % len(options)]


def stable_weighted_choice(
    options: Sequence, weights: Sequence[float], *parts: object
):
    """Weighted deterministic choice."""
    if len(options) != len(weights) or not options:
        raise ValueError("options and weights must be equal-length and non-empty")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    point = stable_uniform(*parts) * total
    cumulative = 0.0
    for option, weight in zip(options, weights):
        cumulative += weight
        if point < cumulative:
            return option
    return options[-1]


def stable_sample_count(n: int, fraction: float, *parts: object) -> int:
    """Deterministic rounding of ``n * fraction`` (stochastic rounding
    keyed on the arguments, so expectation is exact)."""
    exact = n * fraction
    base = int(exact)
    if stable_uniform(*parts, "frac") < exact - base:
        base += 1
    return min(base, n)
