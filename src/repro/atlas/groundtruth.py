"""Vantage-point coverage evaluation (Section 3.5).

For every dual-stack vantage point, check whether its IPv4 and IPv6
addresses fall inside the detected sibling prefixes (fully / partially /
not covered), and — among the fully covered — whether one best-match
sibling pair covers both addresses at once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.atlas.probes import VantagePoint
from repro.core.siblings import SiblingSet
from repro.nettypes.addr import IPV4, IPV6
from repro.nettypes.prefix import Prefix
from repro.nettypes.trie import PatriciaTrie


@dataclass
class CoverageReport:
    """Counts mirroring the paper's Section 3.5 evaluation."""

    fully_covered: int = 0
    partially_covered: int = 0
    not_covered: int = 0
    #: Of the fully covered: both addresses inside one sibling pair.
    in_best_match_pair: int = 0

    @property
    def total(self) -> int:
        return self.fully_covered + self.partially_covered + self.not_covered

    @property
    def fully_covered_share(self) -> float:
        return self.fully_covered / self.total if self.total else 0.0

    @property
    def partially_covered_share(self) -> float:
        return self.partially_covered / self.total if self.total else 0.0

    @property
    def not_covered_share(self) -> float:
        return self.not_covered / self.total if self.total else 0.0

    @property
    def best_match_share(self) -> float:
        """Among fully covered points (paper: 89.36%)."""
        if self.fully_covered == 0:
            return 0.0
        return self.in_best_match_pair / self.fully_covered


def evaluate_coverage(
    points: list[VantagePoint], siblings: SiblingSet
) -> CoverageReport:
    """Classify every vantage point against the sibling set."""
    trie_v4: PatriciaTrie = PatriciaTrie(IPV4)
    trie_v6: PatriciaTrie = PatriciaTrie(IPV6)
    # prefix → set of pair keys, so best-match pairing can be checked.
    for pair in siblings:
        existing4 = trie_v4.get(pair.v4_prefix) or set()
        existing4.add(pair.key)
        trie_v4.insert(pair.v4_prefix, existing4)
        existing6 = trie_v6.get(pair.v6_prefix) or set()
        existing6.add(pair.key)
        trie_v6.insert(pair.v6_prefix, existing6)

    report = CoverageReport()
    for point in points:
        pairs_v4: set = set()
        for _, keys in trie_v4.covering(Prefix.host(IPV4, point.v4_address)):
            pairs_v4 |= keys
        pairs_v6: set = set()
        for _, keys in trie_v6.covering(Prefix.host(IPV6, point.v6_address)):
            pairs_v6 |= keys
        covered_v4 = bool(pairs_v4)
        covered_v6 = bool(pairs_v6)
        if covered_v4 and covered_v6:
            report.fully_covered += 1
            if pairs_v4 & pairs_v6:
                report.in_best_match_pair += 1
        elif covered_v4 or covered_v6:
            report.partially_covered += 1
        else:
            report.not_covered += 1
    return report
