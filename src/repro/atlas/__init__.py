"""Ground-truth vantage points (Section 3.5).

Dual-stack vantage points — RIPE-Atlas-like probes and IPinfo-style
VPSes — are sampled from the universe with a controlled mix of placements
(fully inside sibling deployments, partially covered, uncovered), and
:mod:`repro.atlas.groundtruth` evaluates detected sibling sets against
them exactly as the paper does.
"""

from repro.atlas.groundtruth import CoverageReport, evaluate_coverage
from repro.atlas.probes import VantagePoint, VantageKind, generate_vantage_points

__all__ = [
    "CoverageReport",
    "VantageKind",
    "VantagePoint",
    "evaluate_coverage",
    "generate_vantage_points",
]
