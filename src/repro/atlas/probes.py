"""Vantage point generation.

Probe placement mirrors the populations the paper observes among 5174
dual-stack RIPE Atlas probes: ~42.5% with both addresses inside sibling
prefixes (of which ~89% inside one best-match pair), ~32% partially
covered, ~25% not covered at all (eyeball space without dual-stack
services).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.determinism import stable_hash, stable_uniform
from repro.nettypes.addr import IPV4
from repro.nettypes.prefix import Prefix
from repro.synth.universe import Universe

#: Placement mix (full-same, full-cross-deployment, partial, uncovered).
#: Slightly over-weighted toward coverage relative to the paper's
#: observed 42.5/32/25 split because probes placed in deployments whose
#: domains are not visible on the reference date degrade to partial/none.
_PLACEMENT_WEIGHTS = (0.50, 0.06, 0.28, 0.16)

_VPS_PROVIDERS = ("Google", "Azure", "Vultr", "AWS", "Hetzner", "OVH")


class VantageKind(enum.Enum):
    ATLAS_PROBE = "atlas"
    VPS = "vps"


class _Placement(enum.Enum):
    FULL_SAME = "full_same"
    FULL_CROSS = "full_cross"
    PARTIAL = "partial"
    UNCOVERED = "uncovered"


@dataclass(frozen=True, slots=True)
class VantagePoint:
    """One dual-stack vantage point with public IPv4+IPv6 addresses."""

    vp_id: int
    kind: VantageKind
    v4_address: int
    v6_address: int
    provider: str | None = None


def _probe_offset(block: Prefix, vp_id: int, tag: str) -> int:
    usable = min(block.num_addresses, 4096)
    if usable <= 2:
        return 0
    return 1 + stable_hash("vantage", tag, vp_id) % (usable - 2)


def _eyeball_prefixes(universe: Universe) -> tuple[list[Prefix], list[Prefix]]:
    v4: list[Prefix] = []
    v6: list[Prefix] = []
    eyeballs = set(universe.population.eyeball_org_ids)
    for announcement in universe.fabric.announcements:
        if announcement.org_id in eyeballs:
            if announcement.prefix.version == IPV4:
                v4.append(announcement.prefix)
            else:
                v6.append(announcement.prefix)
    return v4, v6


def generate_vantage_points(
    universe: Universe,
    count: int,
    kind: VantageKind = VantageKind.ATLAS_PROBE,
) -> list[VantagePoint]:
    """Sample *count* dual-stack vantage points from the universe."""
    deployments = universe.ground_truth_deployments()
    eyeball_v4, eyeball_v6 = _eyeball_prefixes(universe)
    if not deployments or not eyeball_v4 or not eyeball_v6:
        raise ValueError("universe lacks deployments or eyeball space")
    seed = universe.config.seed
    points: list[VantagePoint] = []
    for vp_id in range(count):
        u = stable_uniform(seed, "placement", kind.value, vp_id)
        if u < _PLACEMENT_WEIGHTS[0]:
            placement = _Placement.FULL_SAME
        elif u < sum(_PLACEMENT_WEIGHTS[:2]):
            placement = _Placement.FULL_CROSS
        elif u < sum(_PLACEMENT_WEIGHTS[:3]):
            placement = _Placement.PARTIAL
        else:
            placement = _Placement.UNCOVERED

        deployment = deployments[
            stable_hash(seed, "vp-dep", kind.value, vp_id) % len(deployments)
        ]
        other = deployments[
            stable_hash(seed, "vp-dep2", kind.value, vp_id) % len(deployments)
        ]
        eyeball4 = eyeball_v4[stable_hash(seed, "vp-eb4", vp_id) % len(eyeball_v4)]
        eyeball6 = eyeball_v6[stable_hash(seed, "vp-eb6", vp_id) % len(eyeball_v6)]

        if placement is _Placement.FULL_SAME:
            v4_block, v6_block = deployment.v4_block, deployment.v6_block
        elif placement is _Placement.FULL_CROSS:
            v4_block, v6_block = deployment.v4_block, other.v6_block
        elif placement is _Placement.PARTIAL:
            if stable_uniform(seed, "partial-side", vp_id) < 0.5:
                v4_block, v6_block = deployment.v4_block, eyeball6
            else:
                v4_block, v6_block = eyeball4, deployment.v6_block
        else:
            v4_block, v6_block = eyeball4, eyeball6

        provider = None
        if kind is VantageKind.VPS:
            provider = _VPS_PROVIDERS[
                stable_hash(seed, "provider", vp_id) % len(_VPS_PROVIDERS)
            ]
        points.append(
            VantagePoint(
                vp_id=vp_id,
                kind=kind,
                v4_address=v4_block.first_address + _probe_offset(v4_block, vp_id, "4"),
                v6_address=v6_block.first_address + _probe_offset(v6_block, vp_id, "6"),
                provider=provider,
            )
        )
    return points
