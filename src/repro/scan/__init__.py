"""The ZMap-equivalent port-scan substrate (Sections 2.7 and 3.6).

:mod:`repro.scan.ports` defines the paper's 14 well-known ports and the
service profiles deployments run; :mod:`repro.scan.zmap` simulates the
scan (responsiveness, blocklist, rate cap, per-family policy drift);
:mod:`repro.scan.analysis` computes the port-set Jaccard per sibling pair
and the DNS-vs-scan heatmap of Figure 6.
"""

from repro.scan.analysis import PairScanResult, portscan_overlap, scan_heatmap
from repro.scan.ports import SERVICE_PROFILES, WELL_KNOWN_PORTS
from repro.scan.zmap import PortScanner, ScanObservation

__all__ = [
    "PairScanResult",
    "PortScanner",
    "SERVICE_PROFILES",
    "ScanObservation",
    "WELL_KNOWN_PORTS",
    "portscan_overlap",
    "scan_heatmap",
]
