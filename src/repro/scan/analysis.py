"""Port-scan overlap analysis (Section 3.6, Figure 6).

For every sibling pair, gather the responsive ports of all scanned
addresses inside each side's prefix and compute the Jaccard similarity of
the two port sets.  Binning those values against the DNS-based Jaccard
yields the Figure 6 heatmap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import jaccard
from repro.core.siblings import SiblingSet
from repro.nettypes.addr import IPV4, IPV6
from repro.nettypes.trie import PatriciaTrie
from repro.nettypes.prefix import Prefix
from repro.scan.zmap import ScanObservation


@dataclass(frozen=True, slots=True)
class PairScanResult:
    """DNS-based vs scan-based similarity for one sibling pair."""

    v4_prefix: Prefix
    v6_prefix: Prefix
    dns_jaccard: float
    port_jaccard: float
    responsive: bool


def _port_index(observations: list[ScanObservation]) -> dict[int, PatriciaTrie]:
    tries = {IPV4: PatriciaTrie(IPV4), IPV6: PatriciaTrie(IPV6)}
    for observation in observations:
        if observation.is_responsive:
            tries[observation.version].insert(
                Prefix.host(observation.version, observation.address),
                observation.responsive_ports,
            )
    return tries


def portscan_overlap(
    siblings: SiblingSet, observations: list[ScanObservation]
) -> list[PairScanResult]:
    """Evaluate every sibling pair against the scan results."""
    tries = _port_index(observations)
    results: list[PairScanResult] = []
    for pair in siblings:
        v4_ports: set[int] = set()
        for _, ports in tries[IPV4].subtree_items(pair.v4_prefix):
            v4_ports |= ports
        v6_ports: set[int] = set()
        for _, ports in tries[IPV6].subtree_items(pair.v6_prefix):
            v6_ports |= ports
        responsive = bool(v4_ports) or bool(v6_ports)
        results.append(
            PairScanResult(
                v4_prefix=pair.v4_prefix,
                v6_prefix=pair.v6_prefix,
                dns_jaccard=pair.similarity,
                port_jaccard=jaccard(v4_ports, v6_ports),
                responsive=responsive,
            )
        )
    return results


def responsive_share(results: list[PairScanResult]) -> float:
    """Share of sibling pairs with any scan response (paper: 70.9%)."""
    if not results:
        return 0.0
    return sum(1 for r in results if r.responsive) / len(results)


def _bin_index(value: float, bins: int = 10) -> int:
    """Map [0,1] into 0..bins-1 with 1.0 landing in the top bin."""
    if value >= 1.0:
        return bins - 1
    return min(int(value * bins), bins - 1)


def scan_heatmap(
    results: list[PairScanResult], bins: int = 10, responsive_only: bool = True
) -> list[list[float]]:
    """The Figure 6 matrix: cell[scan_bin][dns_bin] = % of sibling pairs.

    Rows are scan-Jaccard bins (row 0 = lowest), columns DNS-Jaccard bins.
    """
    counts = [[0 for _ in range(bins)] for _ in range(bins)]
    total = 0
    for result in results:
        if responsive_only and not result.responsive:
            continue
        row = _bin_index(result.port_jaccard, bins)
        column = _bin_index(result.dns_jaccard, bins)
        counts[row][column] += 1
        total += 1
    if total == 0:
        return [[0.0] * bins for _ in range(bins)]
    return [[100.0 * c / total for c in row] for row in counts]
