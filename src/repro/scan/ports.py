"""Port inventory and service profiles.

The paper scans 14 well-known ports (Section 3.6): FTP data/control,
SSH, Telnet, SMTP, DNS, HTTP, POP3, NTP, IMAP, SNMP, IRC, HTTPS, and
TR-069 (CPE management).
"""

from __future__ import annotations

#: The paper's exact port set.
WELL_KNOWN_PORTS: tuple[int, ...] = (
    20, 21, 22, 23, 25, 53, 80, 110, 123, 143, 161, 194, 443, 7547,
)

#: What each deployment service profile listens on (within the scanned
#: port set).  The universe assigns profile names to deployments.
SERVICE_PROFILES: dict[str, frozenset[int]] = {
    "web": frozenset({80, 443}),
    "web_ssh": frozenset({22, 80, 443}),
    "mail": frozenset({25, 110, 143, 443}),
    "dns": frozenset({53, 443}),
    "mixed": frozenset({22, 25, 53, 80, 443}),
    "cpe": frozenset({23, 80, 7547}),
    "probe": frozenset({80, 443}),
    # Firewalled infrastructure: silently drops all scan probes on both
    # families — the population behind the paper's 29% unresponsive pairs.
    "stealth": frozenset(),
}


def profile_ports(profile: str) -> frozenset[int]:
    """The open ports of a profile; unknown profiles default to web."""
    return SERVICE_PROFILES.get(profile, SERVICE_PROFILES["web"])
