"""The port scanner simulator (ZMap / ZMapv6 stand-in).

Probes a host inventory (ground truth from the universe) and returns per
address the set of responsive scanned ports.  The response model captures
the effects the paper depends on:

* hosts answer on their profile's open ports, with per-host
  responsiveness below 1 (firewalls, rate limiting) — IPv6 slightly less
  responsive than IPv4, as observed in the wild;
* per-family *policy drift*: the IPv6 face of a host occasionally has an
  extra open port (Czyz et al.: "ports are nearly always more open in
  IPv6") or drops one;
* a blocklist is honoured and the scan rate is capped at 50 kpps, as the
  ethics section requires.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.determinism import stable_uniform, stable_choice
from repro.nettypes.addr import IPV4, IPV6
from repro.nettypes.prefix import Prefix
from repro.nettypes.sets import PrefixSet
from repro.scan.ports import WELL_KNOWN_PORTS, profile_ports

#: Per-host probability of answering the scan at all.
_RESPONSIVENESS = {IPV4: 0.92, IPV6: 0.82}

#: Probability the IPv6 face opens one extra port / closes one port.
_V6_EXTRA_OPEN = 0.15
_V6_CLOSED = 0.05

#: The ethics-section scanning rate cap.
MAX_PPS = 50_000


@dataclass(frozen=True, slots=True)
class ScanObservation:
    """Responsive ports for one probed address."""

    version: int
    address: int
    responsive_ports: frozenset[int]

    @property
    def is_responsive(self) -> bool:
        return bool(self.responsive_ports)


@dataclass
class ScanStats:
    """Bookkeeping the scanner reports alongside results."""

    probes_sent: int = 0
    responsive_addresses: int = 0
    blocked_addresses: int = 0
    duration_seconds: float = 0.0


class PortScanner:
    """Scan a ground-truth inventory over the 14 well-known ports."""

    def __init__(
        self,
        inventory: dict[tuple[int, int], str],
        seed: int = 0,
        blocklist: PrefixSet | None = None,
        ports: tuple[int, ...] = WELL_KNOWN_PORTS,
        rate_pps: int = MAX_PPS,
    ):
        if rate_pps <= 0 or rate_pps > MAX_PPS:
            raise ValueError(f"scan rate must be within (0, {MAX_PPS}] pps")
        self._inventory = inventory
        self._seed = seed
        self._blocklist = blocklist if blocklist is not None else PrefixSet()
        self._ports = ports
        self._rate_pps = rate_pps
        self.stats = ScanStats()

    def _open_ports(self, version: int, address: int, profile: str) -> frozenset[int]:
        ports = set(profile_ports(profile))
        if not ports:
            # Firewalled (stealth) hosts never answer; drift cannot open
            # a port through a drop-all policy.
            return frozenset()
        if version == IPV6:
            # Policy drift on the IPv6 face.
            if stable_uniform(self._seed, "drift-open", address) < _V6_EXTRA_OPEN:
                extra = stable_choice(
                    [p for p in self._ports if p not in ports] or [443],
                    "drift-port",
                    address,
                )
                ports.add(extra)
            if (
                len(ports) > 1
                and stable_uniform(self._seed, "drift-close", address) < _V6_CLOSED
            ):
                ports.discard(min(ports))
        return frozenset(p for p in ports if p in self._ports)

    def scan_address(self, version: int, address: int) -> ScanObservation:
        """Probe one address on all configured ports."""
        self.stats.probes_sent += len(self._ports)
        if self._blocklist.covers_address(version, address):
            self.stats.blocked_addresses += 1
            return ScanObservation(version, address, frozenset())
        profile = self._inventory.get((version, address))
        if profile is None:
            return ScanObservation(version, address, frozenset())
        if (
            stable_uniform(self._seed, "responsive", version, address)
            > _RESPONSIVENESS[version]
        ):
            return ScanObservation(version, address, frozenset())
        observation = ScanObservation(
            version, address, self._open_ports(version, address, profile)
        )
        if observation.is_responsive:
            self.stats.responsive_addresses += 1
        return observation

    def scan_inventory(self) -> list[ScanObservation]:
        """Probe every inventory address (the paper scans the addresses
        seen in the DNS data, not whole prefixes, for IPv6 feasibility)."""
        observations = [
            self.scan_address(version, address)
            for (version, address) in sorted(self._inventory)
        ]
        self.stats.duration_seconds = self.stats.probes_sent / self._rate_pps
        return observations

    def scan_prefix_v4(self, prefix: Prefix) -> list[ScanObservation]:
        """Exhaustively probe a (small) IPv4 prefix, ZMap style."""
        if prefix.version != IPV4:
            raise ValueError("exhaustive scanning is IPv4-only; use the hitlist")
        if prefix.host_bits > 16:
            raise ValueError("refusing to sweep more than a /16")
        observations = []
        for address in range(prefix.first_address, prefix.last_address + 1):
            observations.append(self.scan_address(IPV4, address))
        self.stats.duration_seconds = self.stats.probes_sent / self._rate_pps
        return observations
