"""Deterministic generation of organization and domain names."""

from __future__ import annotations

from repro.determinism import stable_choice, stable_hash

_ADJECTIVES = (
    "blue", "rapid", "quiet", "solar", "iron", "amber", "polar", "vivid",
    "lunar", "crisp", "bold", "clear", "prime", "brisk", "calm", "deep",
    "early", "fresh", "grand", "keen", "lively", "mild", "noble", "open",
)

_NOUNS = (
    "falcon", "harbor", "matrix", "signal", "summit", "garden", "anchor",
    "beacon", "canyon", "delta", "ember", "forge", "glacier", "horizon",
    "island", "junction", "kernel", "lantern", "meadow", "nexus", "orbit",
    "prairie", "quarry", "river",
)

_ORG_SUFFIXES = ("Networks", "Systems", "Hosting", "Online", "Group", "Labs",
                 "Digital", "Telecom", "Cloud", "Media")

#: gTLDs plus the ccTLDs OpenINTEL covers; ``fr`` is special-cased by the
#: toplist schedule (added August 2022).
TLDS = ("com", "net", "org", "io", "de", "nl", "se", "dk", "fi", "fr")


def org_name(org_id: int) -> str:
    """A readable, unique organization name."""
    adjective = stable_choice(_ADJECTIVES, "orgname-adj", org_id)
    noun = stable_choice(_NOUNS, "orgname-noun", org_id)
    suffix = stable_choice(_ORG_SUFFIXES, "orgname-sfx", org_id)
    return f"{adjective.capitalize()}{noun.capitalize()} {suffix} {org_id}"


def domain_name(domain_id: int, tld: str | None = None) -> str:
    """A unique second-level domain; TLD chosen deterministically unless
    pinned by the caller (e.g. forced ``.fr`` for the ccTLD event)."""
    adjective = stable_choice(_ADJECTIVES, "domain-adj", domain_id)
    noun = stable_choice(_NOUNS, "domain-noun", domain_id)
    if tld is None:
        tld = stable_choice(TLDS[:-1], "domain-tld", domain_id)  # .fr pinned only
    return f"{adjective}-{noun}-{domain_id}.{tld}"


def host_label(deployment_id: int, slot: int) -> str:
    """A hostname label for generated CNAME targets."""
    return f"edge-{stable_hash('edge', deployment_id, slot) % 997:03d}"
