"""Exact per-date sibling ground truth for scripted event universes.

The event engine (:mod:`repro.synth.events`) knows precisely which
IPv4/IPv6 prefix pairs belong to the same deployment on every date — it
placed them there.  This module is the ledger that records that truth so
detection output can be scored against it exactly
(:mod:`repro.analysis.quality`), instead of the distribution-level
proxies in :mod:`repro.core.quality`.

A :class:`TruthPair` carries the pair key (the *announced* prefixes, the
same identity the detection pipeline emits), the owning deployment and
organization, and a ``visible`` flag: a pair whose domains are absent or
v4-only on a date is still organizational truth but is not *detectable*
truth, so it never counts against recall.  Designed false-positive traps
(aliased prefix clusters à la Gasser et al.) are registered separately,
letting the scorer distinguish "fell into the trap" from any other
false positive.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.nettypes.prefix import Prefix

#: A pair's identity: the announced (v4, v6) prefixes — the same key a
#: detected :class:`~repro.core.siblings.SiblingPair` exposes.
PairKey = tuple[Prefix, Prefix]


@dataclass(frozen=True, slots=True)
class TruthPair:
    """One ground-truth sibling relation on one date."""

    v4_prefix: Prefix
    v6_prefix: Prefix
    deployment_id: int
    org_id: int
    #: False when the relation holds organizationally but cannot be
    #: detected from this date's snapshot (domains absent during a
    #: rotation blackout, v6 side not yet rolled out, addresses moved
    #: wholly into an aliased cluster).  Invisible pairs are excluded
    #: from the recall denominator but still shield a detection from
    #: being counted as a false positive.
    visible: bool = True

    @property
    def key(self) -> PairKey:
        return (self.v4_prefix, self.v6_prefix)


@dataclass(frozen=True, slots=True)
class LedgerChange:
    """Visible-truth churn between two consecutive ledger dates."""

    old_date: datetime.date
    date: datetime.date
    added: frozenset[PairKey]
    retracted: frozenset[PairKey]

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.retracted)


class GroundTruthLedger:
    """Date-ordered record of every true sibling pair and every trap."""

    def __init__(self) -> None:
        self._by_date: dict[datetime.date, tuple[TruthPair, ...]] = {}
        self._dates: list[datetime.date] = []
        self._traps: set[Prefix] = set()

    # -- recording -------------------------------------------------------------

    def record(self, date: datetime.date, pairs: Iterable[TruthPair]) -> None:
        """Record the complete truth for *date* (once per date)."""
        if date in self._by_date:
            raise ValueError(f"ledger already holds truth for {date}")
        if self._dates and date <= self._dates[-1]:
            raise ValueError(
                f"ledger dates must be recorded in order; got {date} "
                f"after {self._dates[-1]}"
            )
        self._by_date[date] = tuple(pairs)
        self._dates.append(date)

    def register_trap(self, prefix: Prefix) -> None:
        """Mark *prefix* as a designed false-positive trap (any detected
        pair touching it is scored as a trap hit, not an ordinary FP)."""
        self._traps.add(prefix)

    # -- access ----------------------------------------------------------------

    def dates(self) -> list[datetime.date]:
        return list(self._dates)

    @property
    def traps(self) -> frozenset[Prefix]:
        return frozenset(self._traps)

    def is_trap(self, prefix: Prefix) -> bool:
        """True when *prefix* is, or sits inside, a registered trap."""
        return any(
            prefix == trap or (prefix.version == trap.version and trap.contains(prefix))
            for trap in self._traps
        )

    def truth_at(self, date: datetime.date) -> tuple[TruthPair, ...]:
        """Every truth pair (visible or not) for *date*."""
        try:
            return self._by_date[date]
        except KeyError:
            raise LookupError(
                f"ledger holds no truth for {date}; recorded dates: "
                f"{', '.join(d.isoformat() for d in self._dates) or 'none'}"
            ) from None

    def visible_truth_at(self, date: datetime.date) -> tuple[TruthPair, ...]:
        return tuple(p for p in self.truth_at(date) if p.visible)

    def keys_at(self, date: datetime.date) -> frozenset[PairKey]:
        return frozenset(p.key for p in self.truth_at(date))

    def visible_keys_at(self, date: datetime.date) -> frozenset[PairKey]:
        return frozenset(p.key for p in self.truth_at(date) if p.visible)

    def org_truth_at(self, date: datetime.date) -> frozenset[tuple[int, int]]:
        """(org_id, deployment_id) relations on *date*, visibility-blind.

        Renumbering events move a deployment's networks — the pair keys
        change — but must never change this org-level view; the property
        test in ``tests/test_scenario_events.py`` holds the engine to it.
        """
        return frozenset(
            (p.org_id, p.deployment_id) for p in self.truth_at(date)
        )

    # -- churn -----------------------------------------------------------------

    def changes(self) -> Iterator[LedgerChange]:
        """Visible-truth deltas between consecutive ledger dates."""
        for older, newer in zip(self._dates, self._dates[1:]):
            old_keys = self.visible_keys_at(older)
            new_keys = self.visible_keys_at(newer)
            yield LedgerChange(
                old_date=older,
                date=newer,
                added=frozenset(new_keys - old_keys),
                retracted=frozenset(old_keys - new_keys),
            )

    def __len__(self) -> int:
        return len(self._dates)

    def __contains__(self, date: object) -> bool:
        return date in self._by_date

    def __repr__(self) -> str:
        return (
            f"GroundTruthLedger(dates={len(self._dates)}, "
            f"traps={len(self._traps)})"
        )
