"""The synthetic Internet universe.

Every external feed the paper consumes (OpenINTEL, Routeviews, RPKI,
as2org, ASdb, port scans, RIPE Atlas) is generated from one coherent,
seeded model of organizations, autonomous systems, address allocations,
announcements, and dual-stack service deployments evolving over the
2020-09 .. 2024-09 study window.

Key property: the generator records **ground truth** — which (IPv4 block,
IPv6 block) pairs each organization intentionally operates as dual-stack
siblings — so detection quality can be measured directly, not only
approximated via vantage points as in the paper.

Entry point: :func:`repro.synth.universe.build_universe` with a
:class:`repro.synth.scenarios.ScenarioConfig` preset.
"""

from repro.synth.entities import (
    Deployment,
    DeploymentTier,
    DomainSpec,
    HostingMode,
    Organization,
    VisibilityPattern,
)
from repro.synth.events import (
    EVENT_SCENARIOS,
    EventScript,
    EventUniverse,
    build_event_universe,
    event_scenario,
)
from repro.synth.groundtruth import GroundTruthLedger, TruthPair
from repro.synth.scenarios import SCENARIOS, ScenarioConfig, scenario
from repro.synth.universe import Universe, build_universe

__all__ = [
    "Deployment",
    "DeploymentTier",
    "DomainSpec",
    "EVENT_SCENARIOS",
    "EventScript",
    "EventUniverse",
    "GroundTruthLedger",
    "HostingMode",
    "Organization",
    "SCENARIOS",
    "ScenarioConfig",
    "TruthPair",
    "Universe",
    "VisibilityPattern",
    "build_event_universe",
    "build_universe",
    "event_scenario",
    "scenario",
]
