"""The assembled synthetic Internet.

:class:`Universe` wires the population (orgs, ASes, datasets), the service
fabric (deployments, domains, announcements), and the time dimension into
the exact interfaces the measurement pipeline consumes:

* ``zone_at(date)`` — authoritative DNS ground truth,
* ``queried_names_at(date)`` — the toplist-driven query set,
* ``snapshot_at(date)`` — an OpenINTEL-style measurement run,
* ``rib_at(date)`` / ``annotator_at(date)`` — Routeviews-style routing,
* ``as2org_at(date)`` / ``asdb`` / ``registry`` — org datasets,
* ``host_inventory(date)`` — ground truth for the port-scan simulator,
* ``ground_truth_deployments(date)`` — the intended sibling pairs.

Address assignment over time is computed lazily from per-domain churn
event schedules (renumbering within a prefix, prefix moves), sampled
deterministically per domain so any date can be queried in any order.
"""

from __future__ import annotations

import datetime
from typing import Iterator

from repro.bgp.rib import Rib
from repro.bgp.routeviews import PrefixAnnotator
from repro.dates import REFERENCE_DATE, month_range
from repro.determinism import stable_hash, stable_uniform
from repro.dns.openintel import DnsSnapshot, SnapshotSeries
from repro.dns.records import ResourceRecord
from repro.dns.toplists import FR_CCTLD_ADDED, ToplistSchedule
from repro.dns.zone import Zone
from repro.nettypes.addr import IPV4, IPV6
from repro.nettypes.prefix import Prefix
from repro.orgs.as2org import As2Org
from repro.orgs.asdb import AsdbDataset
from repro.orgs.hypergiants import HgCdnRegistry
from repro.synth.entities import (
    Deployment,
    DeploymentTier,
    DomainSpec,
    Organization,
    VisibilityPattern,
)
from repro.synth.scenarios import ScenarioConfig, scenario
from repro.synth.services import (
    MonitoringSpec,
    ServiceFabric,
    build_services,
)
from repro.synth.topology import Population, build_population

#: Churn events are sampled over this month window.
_CHURN_WINDOW: tuple[tuple[int, int], tuple[int, int]] = ((2018, 1), (2024, 12))


class _SmallCache:
    """A tiny FIFO cache: zones and snapshots are large, so only the few
    most recently used dates stay resident."""

    def __init__(self, capacity: int):
        self._capacity = capacity
        self._data: dict = {}

    def get(self, key):
        return self._data.get(key)

    def put(self, key, value) -> None:
        if len(self._data) >= self._capacity:
            self._data.pop(next(iter(self._data)))
        self._data[key] = value


class Universe:
    """One fully generated synthetic Internet (see module docstring)."""

    def __init__(self, config: ScenarioConfig):
        self.config = config
        self.population: Population = build_population(config)
        self.fabric: ServiceFabric = build_services(config, self.population)
        self.schedule = ToplistSchedule()
        self.reference_date = REFERENCE_DATE

        self._org_by_asn: dict[int, Organization] = {}
        for org in self.population.organizations.values():
            for asn in org.asns:
                self._org_by_asn[asn] = org

        self._churn_cache: dict[tuple, list[datetime.date]] = {}
        self._zone_cache = _SmallCache(2)
        self._snapshot_cache = _SmallCache(8)
        self._rib_cache: dict[tuple[int, int], Rib] = {}
        self._queried_cache = _SmallCache(8)

    # -- population passthroughs ------------------------------------------------

    @property
    def asdb(self) -> AsdbDataset:
        return self.population.asdb

    @property
    def registry(self) -> HgCdnRegistry:
        return self.population.registry

    @property
    def monitoring(self) -> MonitoringSpec | None:
        return self.fabric.monitoring

    def as2org_at(self, date: datetime.date) -> As2Org:
        return self.population.as2org_archive.at(date)

    def organizations(self) -> Iterator[Organization]:
        yield from self.population.organizations.values()

    def org(self, org_id: int) -> Organization:
        return self.population.org(org_id)

    def org_for_asn(self, asn: int) -> Organization | None:
        return self._org_by_asn.get(asn)

    # -- churn schedules -----------------------------------------------------------

    def _churn_dates(
        self, name: str, family: int, kind: str, monthly_probability: float
    ) -> list[datetime.date]:
        """The (sorted) dates on which a churn event of *kind* strikes
        this domain/family — sampled once, deterministically."""
        key = (name, family, kind)
        cached = self._churn_cache.get(key)
        if cached is not None:
            return cached
        months = list(month_range(*_CHURN_WINDOW))
        expected = monthly_probability * len(months)
        count = int(expected)
        if stable_uniform(self.config.seed, kind, name, family, "count") < (
            expected - count
        ):
            count += 1
        picks: set[int] = set()
        for index in range(count):
            picks.add(
                stable_hash(self.config.seed, kind, name, family, index) % len(months)
            )
        dates = sorted(
            datetime.date(months[i][0], months[i][1], 15) for i in picks
        )
        self._churn_cache[key] = dates
        return dates

    def _events_before(
        self, dates: list[datetime.date], created: datetime.date, when: datetime.date
    ) -> int:
        return sum(1 for d in dates if created < d <= when)

    # -- address bindings -------------------------------------------------------------

    def _offset_in(self, block: Prefix, *key_parts: object) -> int:
        usable = min(block.num_addresses, 65536)
        if usable <= 2:
            return 0
        return 1 + stable_hash(*key_parts) % (usable - 2)

    def _block_for(
        self, deployment: Deployment, spec: DomainSpec, family: int, when: datetime.date
    ) -> Prefix:
        primary = deployment.v4_block if family == IPV4 else deployment.v6_block
        alternate = (
            deployment.alt_v4_block if family == IPV4 else deployment.alt_v6_block
        )
        if alternate is None:
            return primary
        monthly = (
            self.config.move_monthly_v4
            if family == IPV4
            else self.config.move_monthly_v6
        )
        moves = self._events_before(
            self._churn_dates(spec.name, family, "move", monthly),
            spec.created,
            when,
        )
        return primary if moves % 2 == 0 else alternate

    def addresses_for(
        self, spec: DomainSpec, when: datetime.date
    ) -> tuple[list[int], list[int]]:
        """The (IPv4, IPv6) addresses of this domain on *when*."""
        network = self.fabric.agility_of(spec)
        if network is not None:
            return [network.v4_address_for(spec.name)], [
                network.v6_address_for(spec.name)
            ]
        deployment = self.fabric.deployment_of(spec)
        assert deployment is not None

        v4: list[int] = []
        v6: list[int] = []
        renumbers4 = self._events_before(
            self._churn_dates(spec.name, IPV4, "renumber", self.config.renumber_monthly),
            spec.created,
            when,
        )
        renumbers6 = self._events_before(
            self._churn_dates(spec.name, IPV6, "renumber", self.config.renumber_monthly),
            spec.created,
            when,
        )
        if deployment.tier is DeploymentTier.NOISY:
            # All domains of a noisy deployment share one address per
            # family (shared hosting): tuning can never split them.
            if not spec.v6_only:
                block4 = deployment.v4_block
                v4.append(
                    block4.first_address + self._offset_in(
                        block4, "noisy-addr", deployment.deployment_id, IPV4
                    )
                )
            if spec.dual_stack_on(when) or spec.v6_only:
                if spec.noise_v6 is not None:
                    v6.append(
                        spec.noise_v6.first_address
                        + self._offset_in(spec.noise_v6, "noise6", spec.name)
                    )
                else:
                    block6 = deployment.v6_block
                    v6.append(
                        block6.first_address + self._offset_in(
                            block6, "noisy-addr", deployment.deployment_id, IPV6
                        )
                    )
            return v4, v6

        if not spec.v6_only:
            block4 = self._block_for(deployment, spec, IPV4, when)
            v4.append(
                block4.first_address
                + self._offset_in(block4, "addr", spec.name, IPV4, renumbers4)
            )
        if spec.dual_stack_on(when) or spec.v6_only:
            if spec.noise_v6 is not None:
                v6.append(
                    spec.noise_v6.first_address
                    + self._offset_in(spec.noise_v6, "noise6", spec.name)
                )
            else:
                block6 = self._block_for(deployment, spec, IPV6, when)
                v6.append(
                    block6.first_address
                    + self._offset_in(block6, "addr", spec.name, IPV6, renumbers6)
                )
        return v4, v6

    # -- zone --------------------------------------------------------------------------

    def _mail_exchanges(
        self, zone: Zone, deployment: Deployment, when: datetime.date
    ) -> list[str]:
        """Publish the deployment's MX exchange hosts and return their
        names (mail-profile deployments only)."""
        names = []
        for rank in (1, 2):
            name = f"mx{rank}.d{deployment.deployment_id}.mail-infra.example"
            zone.add(
                ResourceRecord.a(
                    name,
                    deployment.v4_block.first_address
                    + self._offset_in(
                        deployment.v4_block, "mx", deployment.deployment_id, rank
                    ),
                )
            )
            zone.add(
                ResourceRecord.aaaa(
                    name,
                    deployment.v6_block.first_address
                    + self._offset_in(
                        deployment.v6_block, "mx", deployment.deployment_id, rank
                    ),
                )
            )
            names.append(name)
        return names

    def zone_at(self, when: datetime.date) -> Zone:
        cached = self._zone_cache.get(when)
        if cached is not None:
            return cached
        zone = Zone()
        exchange_cache: dict[int, list[str]] = {}
        for spec in self.fabric.domains.values():
            if spec.created > when:
                continue
            v4, v6 = self.addresses_for(spec, when)
            for address in v4:
                zone.add(ResourceRecord.a(spec.name, address))
            for address in v6:
                zone.add(ResourceRecord.aaaa(spec.name, address))
            if spec.alias is not None and (v4 or v6):
                zone.add(ResourceRecord.cname(spec.alias, spec.name))
            deployment = self.fabric.deployment_of(spec)
            if (
                deployment is not None
                and deployment.service_profile in ("mail", "mixed")
                and (v4 or v6)
            ):
                exchanges = exchange_cache.get(deployment.deployment_id)
                if exchanges is None:
                    exchanges = self._mail_exchanges(zone, deployment, when)
                    exchange_cache[deployment.deployment_id] = exchanges
                for rank, exchange in enumerate(exchanges, start=1):
                    zone.add(
                        ResourceRecord.mx(spec.name, exchange, preference=10 * rank)
                    )
        monitoring = self.fabric.monitoring
        if monitoring is not None:
            for _, _, address in monitoring.v4_placements:
                zone.add(ResourceRecord.a(monitoring.domain, address))
            for _, _, address in monitoring.v6_placements:
                zone.add(ResourceRecord.aaaa(monitoring.domain, address))
        self._zone_cache.put(when, zone)
        return zone

    # -- query set ------------------------------------------------------------------------

    def _pattern_visible(self, spec: DomainSpec, when: datetime.date) -> bool:
        if spec.pattern is VisibilityPattern.STABLE:
            return True
        if spec.pattern is VisibilityPattern.ONESHOT:
            return spec.oneshot_month == (when.year, when.month)
        return (
            stable_uniform(self.config.seed, "vis", spec.name, when.year, when.month)
            < self.config.intermittent_visibility
        )

    def queried_names_at(self, when: datetime.date) -> list[str]:
        """The domains the measurement queries on *when* (toplist-driven)."""
        cached = self._queried_cache.get(when)
        if cached is not None:
            return cached
        active = self.schedule.active(when)
        queried: list[str] = []
        for spec in self.fabric.domains.values():
            if spec.created > when:
                continue
            if spec.name.endswith(".fr") and when < FR_CCTLD_ADDED:
                continue
            if not (spec.sources & active):
                continue
            if not self._pattern_visible(spec, when):
                continue
            queried.append(spec.alias if spec.alias is not None else spec.name)
        monitoring = self.fabric.monitoring
        if monitoring is not None and monitoring.visible_on(when):
            queried.append(monitoring.domain)
        self._queried_cache.put(when, queried)
        return queried

    # -- measurement ---------------------------------------------------------------------

    def snapshot_at(self, when: datetime.date) -> DnsSnapshot:
        cached = self._snapshot_cache.get(when)
        if cached is not None:
            return cached
        snapshot = DnsSnapshot.measure(
            self.zone_at(when), self.queried_names_at(when), when
        )
        self._snapshot_cache.put(when, snapshot)
        return snapshot

    def series(self, dates: list[datetime.date]) -> SnapshotSeries:
        return SnapshotSeries(self.snapshot_at(date) for date in dates)

    # -- routing ------------------------------------------------------------------------------

    def rib_at(self, when: datetime.date) -> Rib:
        key = (when.year, when.month)
        cached = self._rib_cache.get(key)
        if cached is not None:
            return cached
        rib = Rib()
        for announcement in self.fabric.announcements:
            if announcement.announced > when:
                continue
            org = self.population.org(announcement.org_id)
            rib.announce(
                announcement.prefix,
                org.asn_for_family(announcement.prefix.version),
            )
        self._rib_cache[key] = rib
        return rib

    def annotator_at(self, when: datetime.date) -> PrefixAnnotator:
        rib = self.rib_at(when)
        return PrefixAnnotator(rib, rib, missing_fraction=0.01)

    # -- ground truth ----------------------------------------------------------------------------

    def ground_truth_deployments(
        self, when: datetime.date | None = None
    ) -> list[Deployment]:
        """Deployments alive on *when* (default: the reference date) —
        the intended sibling prefix pairs."""
        when = when if when is not None else self.reference_date
        return [
            d for d in self.fabric.deployments.values() if d.created <= when
        ]

    def monitoring_pair_count(self) -> int:
        monitoring = self.fabric.monitoring
        if monitoring is None:
            return 0
        return len(monitoring.v4_placements) * len(monitoring.v6_placements)

    # -- scanning ground truth ---------------------------------------------------------------------

    def host_inventory(
        self, when: datetime.date
    ) -> dict[tuple[int, int], str]:
        """(version, address) → service-profile name, for every address
        bound on *when* — the ground truth the port scanner probes."""
        inventory: dict[tuple[int, int], str] = {}
        for spec in self.fabric.domains.values():
            if spec.created > when:
                continue
            deployment = self.fabric.deployment_of(spec)
            profile = deployment.service_profile if deployment is not None else "web"
            v4, v6 = self.addresses_for(spec, when)
            for address in v4:
                inventory[(IPV4, address)] = profile
            for address in v6:
                inventory[(IPV6, address)] = profile
        monitoring = self.fabric.monitoring
        if monitoring is not None:
            for _, _, address in monitoring.v4_placements:
                inventory[(IPV4, address)] = "probe"
            for _, _, address in monitoring.v6_placements:
                inventory[(IPV6, address)] = "probe"
        return inventory

    def rdns_inventory(self, when: datetime.date) -> dict[tuple[int, int], str]:
        """(version, address) → reverse-DNS host name.

        The v4 and v6 faces of one logical host share an rDNS name, so
        reverse DNS works as an alternative sibling-detection input
        (Section 6).  The first domain bound to an address names it.
        """
        names: dict[tuple[int, int], str] = {}
        for domain in sorted(self.fabric.domains):
            spec = self.fabric.domains[domain]
            if spec.created > when:
                continue
            deployment = self.fabric.deployment_of(spec)
            asn = (
                self.population.org(deployment.org_id).asns[0]
                if deployment is not None
                else 0
            )
            node = stable_hash("rdns-node", spec.name) % 10**8
            name = f"node-{node:08d}.as{asn}.rev.example"
            v4, v6 = self.addresses_for(spec, when)
            for address in v4:
                names.setdefault((IPV4, address), name)
            for address in v6:
                names.setdefault((IPV6, address), name)
        return names

    def __repr__(self) -> str:
        return (
            f"Universe({self.config.name!r}, orgs={len(self.population.organizations)}, "
            f"deployments={len(self.fabric.deployments)}, "
            f"domains={len(self.fabric.domains)})"
        )


def build_universe(config: ScenarioConfig | str) -> Universe:
    """Build a universe from a config or preset name."""
    if isinstance(config, str):
        config = scenario(config)
    return Universe(config)
