"""Scenario presets — the size/rate knobs of the synthetic universe.

All behavioural rates default to values calibrated against the paper's
published distributions (see DESIGN.md §4 for the expected shapes); the
presets differ mainly in scale so tests stay fast while benches have
enough statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.synth.entities import DeploymentTier


def _default_tier_weights() -> dict[DeploymentTier, float]:
    # Calibrated so the default-case perfect-match share lands near the
    # paper's 52% and SP-Tuner(/28,/96) near 82% (Figure 5).
    return {
        DeploymentTier.DEDICATED: 0.28,
        DeploymentTier.ROUTABLE_SHARED: 0.20,
        DeploymentTier.DEEP_SHARED: 0.28,
        DeploymentTier.NOISY: 0.24,
    }


def _default_domain_buckets() -> tuple[tuple[tuple[int, int], float], ...]:
    # Dual-stack domains per deployment (Figure 8: 55% single-domain,
    # 21% 2-5, heavy tail beyond).
    return (
        ((1, 1), 0.55),
        ((2, 5), 0.21),
        ((6, 10), 0.09),
        ((11, 50), 0.09),
        ((51, 100), 0.03),
        ((101, 250), 0.03),
    )


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything the universe builder needs.

    Sizes (orgs, probes, monitoring placements) scale the universe;
    rates (churn, adoption, tier weights) shape the distributions.
    """

    name: str
    seed: int = 20250920

    # -- scale ---------------------------------------------------------------
    n_service_orgs: int = 150
    n_eyeball_orgs: int = 20
    n_hgcdn_orgs: int = 12           # top-N of the paper's 24 by weight
    n_hosting_orgs: int = 8          # IT orgs offering split hosting
    n_probes: int = 300              # RIPE-Atlas-like vantage points
    n_vpses: int = 40                # IPinfo-VPS-like vantage points
    monitoring_v4_placements: int = 24
    monitoring_v6_placements: int = 6
    #: Scales the hypergiant weight → deployment count conversion.
    hgcdn_deployment_scale: float = 0.02
    #: Scales the domains-per-deployment buckets (tail shrink for tests).
    domain_scale: float = 1.0

    # -- composition ------------------------------------------------------------
    tier_weights: dict = field(default_factory=_default_tier_weights)
    domain_buckets: tuple = field(default_factory=_default_domain_buckets)
    #: Deployments with IPv4 and IPv6 hosted by different organizations.
    split_hosting_fraction: float = 0.22
    #: Single-stack (IPv4-only) domains per dual-stack domain.
    singlestack_ratio: float = 3.0
    #: Fraction of single-stack domains that are IPv6-only instead.
    v6_only_fraction: float = 0.015

    # -- time dynamics -------------------------------------------------------------
    #: Fraction of deployments existing before the study window opens.
    preexisting_fraction: float = 0.32
    #: Monthly probability that a v4-only domain publishes AAAA.
    ds_adoption_monthly: float = 0.002
    #: Monthly per-domain probability of renumbering within the prefix.
    renumber_monthly: float = 0.0045
    #: Monthly per-domain probability of moving prefix, per family —
    #: applies only to deployments with alternate blocks, so the
    #: population-wide rates land near the paper's 9% (v4) / 6% (v6)
    #: yearly prefix changes.
    move_monthly_v4: float = 0.035
    move_monthly_v6: float = 0.025
    #: Fraction of deployments that expand into a second IPv6 prefix
    #: mid-window (the "changed Jaccard" population of Figure 10).
    expansion_fraction: float = 0.05
    #: Visibility pattern mix (Figure 7 left).
    stable_fraction: float = 0.45
    oneshot_fraction: float = 0.15
    intermittent_visibility: float = 0.55

    # -- RPKI ------------------------------------------------------------------------
    #: Share of orgs with ROAs before the window / by its end (Figure 18).
    rpki_initial_adoption: float = 0.30
    rpki_final_adoption: float = 0.68
    #: Probability an adopted org's prefix has an invalid ROA (misconfig).
    rpki_invalid_fraction: float = 0.05

    def __post_init__(self):
        if not 0 < self.n_hgcdn_orgs <= 24:
            raise ValueError("n_hgcdn_orgs must be within 1..24")
        weight_sum = sum(self.tier_weights.values())
        if abs(weight_sum - 1.0) > 1e-6:
            raise ValueError(f"tier weights must sum to 1 (got {weight_sum})")


#: Named presets.  ``tiny`` backs the unit tests, ``small`` the examples
#: and quick benches, ``medium`` the longitudinal benches.  ``paper``
#: documents the scale of the original study; building it takes hours and
#: is intentionally not wired into any test.
SCENARIOS: dict[str, ScenarioConfig] = {
    "tiny": ScenarioConfig(
        name="tiny",
        n_service_orgs=30,
        n_eyeball_orgs=6,
        n_hgcdn_orgs=6,
        n_hosting_orgs=3,
        n_probes=60,
        n_vpses=12,
        monitoring_v4_placements=8,
        monitoring_v6_placements=3,
        hgcdn_deployment_scale=0.004,
        domain_scale=0.35,
    ),
    "small": ScenarioConfig(
        name="small",
        n_service_orgs=150,
        n_eyeball_orgs=20,
        n_hgcdn_orgs=12,
        n_hosting_orgs=8,
        n_probes=300,
        n_vpses=40,
        monitoring_v4_placements=24,
        monitoring_v6_placements=6,
        hgcdn_deployment_scale=0.01,
        domain_scale=0.5,
    ),
    "medium": ScenarioConfig(
        name="medium",
        n_service_orgs=450,
        n_eyeball_orgs=40,
        n_hgcdn_orgs=24,
        n_hosting_orgs=16,
        n_probes=800,
        n_vpses=80,
        monitoring_v4_placements=60,
        monitoring_v6_placements=12,
        hgcdn_deployment_scale=0.02,
        domain_scale=0.8,
    ),
    "paper": ScenarioConfig(
        name="paper",
        n_service_orgs=30000,
        n_eyeball_orgs=3000,
        n_hgcdn_orgs=24,
        n_hosting_orgs=400,
        n_probes=5174,
        n_vpses=260,
        monitoring_v4_placements=376,
        monitoring_v6_placements=55,
        hgcdn_deployment_scale=1.0,
        domain_scale=1.0,
    ),
}


def scenario(name: str) -> ScenarioConfig:
    """Look up a preset by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None
