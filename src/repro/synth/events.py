"""Scripted longitudinal events with exact ground truth.

The calibrated :class:`~repro.synth.universe.Universe` replays the
paper's *distributions*; this module replays *events*.  An
:class:`EventScript` names a cast of dual-stack deployments and a
sequence of scripted churn events — staged dual-stack rollout waves,
renumbering waves, privacy-driven IPv6 prefix rotation (Herrmann et
al.), aliased-prefix cluster injection (the designed false-positive
trap from the IPv6 Hitlists work, Gasser et al.), and as2org-style
merges/splits.  :class:`EventUniverse` compiles the script into a dated
snapshot series plus a :class:`~repro.synth.groundtruth.GroundTruthLedger`
holding the exact sibling truth for every date.

Design constraints, both load-bearing for the longitudinal pipeline:

* **One constant RIB.**  Every block a deployment will *ever* use —
  base, renumber spares, the whole rotation ring, the aliased cluster —
  is announced up front, so the annotator's content signature never
  changes and ``detect_series(incremental=True)`` stays on the
  delta path for the entire series (a signature change forces a full
  rebuild; see :func:`repro.analysis.pipeline.detect_series`).
* **Private address plan.**  Each engine instance allocates from its own
  :class:`~repro.synth.addressplan.AddressPlan`, so two engines built
  from the same script produce bit-identical series regardless of what
  else has been generated in the process.

The engine duck-types the pipeline's universe protocol
(``snapshot_at`` / ``annotator_at``), so it drives ``detect_series``,
the ``.sparch`` archive, and ``repro watch`` unchanged.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, replace
from typing import Union

from repro.bgp.rib import Rib
from repro.bgp.routeviews import PrefixAnnotator
from repro.dates import REFERENCE_DATE
from repro.determinism import stable_hash, stable_uniform
from repro.dns.openintel import DnsSnapshot, DomainObservation, SnapshotSeries
from repro.nettypes.prefix import Prefix
from repro.synth.addressplan import AddressPlan
from repro.synth.groundtruth import GroundTruthLedger, TruthPair
from repro.synth.scenarios import ScenarioConfig, scenario
from repro.synth.topology import Population, build_population

# -- event vocabulary ---------------------------------------------------------


@dataclass(frozen=True, slots=True)
class DualStackRollout:
    """Staged IPv6 adoption: affected deployments start v4-only and flip
    dual-stack in waves.  Deployment *i*'s wave is a stable hash over
    the script seed, so membership is reproducible; wave *w* activates
    at date index ``start_index + w * interval``."""

    waves: int = 4
    start_index: int = 1
    interval: int = 1
    fraction: float = 1.0


@dataclass(frozen=True, slots=True)
class RenumberWave:
    """Affected deployments move to fresh pre-allocated blocks at
    ``at_index`` — the org keeps its siblings, the networks move.
    ``families`` picks which sides move ((4,), (6,), or both)."""

    at_index: int
    fraction: float = 0.3
    families: tuple[int, ...] = (4, 6)


@dataclass(frozen=True, slots=True)
class PrefixRotation:
    """Privacy-driven periodic IPv6 renumbering (à la Herrmann et al.):
    an affected deployment's v6 block cycles through a pre-announced
    ring every ``period`` dates, with a per-deployment phase jitter in
    ``[0, jitter]``.  With ``blackout=True`` the deployment's domains
    drop out of the snapshot entirely on each rotation date (the
    measurement missed the move) — the empty-window case
    ``SnapshotSeries`` must classify correctly."""

    period: int = 2
    jitter: int = 1
    fraction: float = 0.25
    ring: int = 3
    blackout: bool = False


@dataclass(frozen=True, slots=True)
class AliasedCluster:
    """Inject an aliased v6 prefix (à la Gasser et al.): from
    ``at_index`` on, every affected deployment's domains also answer
    from one shared /``length`` — a prefix that appears to host
    everything.  ``additive`` mode keeps the true AAAA records (the
    trap competes at Step-4 best-match and the tied trap pairs survive
    as designed false positives); ``hijack`` mode moves the AAAA
    records wholly into the cluster, making the true pairs undetectable
    (recorded invisible) and every detection involving the cluster a
    trap hit."""

    at_index: int = 1
    fraction: float = 0.1
    mode: str = "additive"  # "additive" | "hijack"
    length: int = 48


@dataclass(frozen=True, slots=True)
class OrgMerge:
    """as2org transition: affected deployments are re-attributed to one
    surviving organization from ``at_index`` on.  Pair truth is
    unchanged — only the org-level attribution moves."""

    at_index: int
    fraction: float = 0.3


@dataclass(frozen=True, slots=True)
class OrgSplit:
    """as2org transition: affected deployments spin out into fresh
    organization ids from ``at_index`` on."""

    at_index: int
    fraction: float = 0.2


Event = Union[
    DualStackRollout,
    RenumberWave,
    PrefixRotation,
    AliasedCluster,
    OrgMerge,
    OrgSplit,
]


@dataclass(frozen=True, slots=True)
class EventScript:
    """A named cast of deployments plus the events that churn them."""

    name: str
    events: tuple[Event, ...]
    n_dates: int = 8
    n_deployments: int = 24
    domains_per_deployment: int = 3
    seed: int = 11
    start: datetime.date = REFERENCE_DATE
    cadence_days: int = 7

    def dates(self) -> list[datetime.date]:
        step = datetime.timedelta(days=self.cadence_days)
        return [self.start + i * step for i in range(self.n_dates)]

    def scaled(self, factor: int) -> "EventScript":
        """The same script with ``factor``× the deployment cast."""
        if factor < 1:
            raise ValueError("scale factor must be >= 1")
        return replace(self, n_deployments=self.n_deployments * factor)


#: The scripted scenario grid — every later quality gate runs over these.
EVENT_SCENARIOS: dict[str, EventScript] = {
    "rollout": EventScript(
        name="rollout",
        events=(DualStackRollout(waves=4, start_index=1, interval=2),),
    ),
    "renumber": EventScript(
        name="renumber",
        events=(
            RenumberWave(at_index=2, fraction=0.4),
            RenumberWave(at_index=5, fraction=0.3, families=(6,)),
        ),
    ),
    "rotation": EventScript(
        name="rotation",
        events=(PrefixRotation(period=2, jitter=1, fraction=0.25, ring=3),),
    ),
    "aliased": EventScript(
        name="aliased",
        events=(AliasedCluster(at_index=2, fraction=0.15),),
    ),
    "orgchurn": EventScript(
        name="orgchurn",
        events=(OrgMerge(at_index=3, fraction=0.3), OrgSplit(at_index=5)),
    ),
    "mixed": EventScript(
        name="mixed",
        events=(
            DualStackRollout(waves=3, start_index=1, fraction=0.5),
            RenumberWave(at_index=3, fraction=0.25),
            PrefixRotation(period=3, jitter=2, fraction=0.2, ring=3),
            AliasedCluster(at_index=4, fraction=0.1),
            OrgMerge(at_index=5, fraction=0.2),
        ),
    ),
}


def event_scenario(name: str) -> EventScript:
    try:
        return EVENT_SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(EVENT_SCENARIOS))
        raise KeyError(f"unknown event scenario {name!r} (known: {known})") from None


# -- the engine ---------------------------------------------------------------


@dataclass(slots=True)
class _DeploymentPlan:
    """Everything allocated up-front for one scripted deployment."""

    dep_id: int
    org_id: int
    domains: tuple[str, ...]
    v4_blocks: tuple[Prefix, ...]  # base + one per v4 renumber wave
    v6_blocks: tuple[Prefix, ...]  # base + one per v6 renumber wave
    #: v6 rotation ring (ring[0] is the base block); empty = no rotation.
    ring: tuple[Prefix, ...] = ()
    rotation: PrefixRotation | None = None
    jitter: int = 0
    #: Date index when the v6 side comes up (0 = dual-stack from day one).
    activation_index: int = 0
    aliased: AliasedCluster | None = None


@dataclass(frozen=True, slots=True)
class _DeploymentState:
    """One deployment's resolved state on one date index."""

    v4_prefix: Prefix
    v6_prefix: Prefix
    v6_on: bool
    absent: bool
    hijacked: bool
    alias_extra: bool
    org_id: int


class EventUniverse:
    """Compile an :class:`EventScript` into snapshots + exact truth.

    Duck-types the detection pipeline's universe protocol: only
    ``snapshot_at`` and ``annotator_at`` are required by
    :func:`repro.analysis.pipeline.detect_series` and
    :class:`repro.analysis.watch.SnapshotWatcher`.
    """

    def __init__(
        self,
        script: EventScript,
        base: "str | ScenarioConfig | Population" = "tiny",
        scale: int = 1,
    ):
        if scale > 1:
            script = script.scaled(scale)
        self.script = script
        if isinstance(base, Population):
            population = base
        else:
            config = scenario(base) if isinstance(base, str) else base
            population = build_population(config)
        self.population = population
        self._plan = AddressPlan()
        self._rib = Rib()
        self.ledger = GroundTruthLedger()
        self._dates = script.dates()
        self._date_index = {date: i for i, date in enumerate(self._dates)}
        self._aliased_prefix: Prefix | None = None
        self._deployments = self._allocate(script, population)
        self._annotator = PrefixAnnotator(self._rib, missing_fraction=0.0)
        self._snapshots: dict[datetime.date, DnsSnapshot] = {}
        self._compile()

    # -- construction ----------------------------------------------------------

    def _affected(self, event_tag: str, fraction: float, dep_id: int) -> bool:
        if fraction >= 1.0:
            return True
        return (
            stable_uniform(self.script.seed, "event", event_tag, dep_id)
            < fraction
        )

    def _allocate(
        self, script: EventScript, population: Population
    ) -> list[_DeploymentPlan]:
        org_ids = population.service_org_ids or sorted(population.organizations)
        rollouts = [e for e in script.events if isinstance(e, DualStackRollout)]
        renumbers = [e for e in script.events if isinstance(e, RenumberWave)]
        rotations = [e for e in script.events if isinstance(e, PrefixRotation)]
        aliased = [e for e in script.events if isinstance(e, AliasedCluster)]
        if len(aliased) > 1:
            raise ValueError("at most one AliasedCluster per script")

        if aliased:
            self._aliased_prefix = self._plan.allocate_v6(aliased[0].length)
            self.ledger.register_trap(self._aliased_prefix)

        deployments: list[_DeploymentPlan] = []
        for i in range(script.n_deployments):
            org = population.org(org_ids[i % len(org_ids)])
            v4_blocks = [self._plan.allocate_v4(24)]
            v6_blocks = [self._plan.allocate_v6(48)]
            for e, event in enumerate(renumbers):
                if not self._affected(f"renumber:{e}", event.fraction, i):
                    # Hold the slot so block counts stay aligned with
                    # the wave list regardless of membership.
                    v4_blocks.append(v4_blocks[-1])
                    v6_blocks.append(v6_blocks[-1])
                    continue
                v4_blocks.append(
                    self._plan.allocate_v4(24)
                    if 4 in event.families
                    else v4_blocks[-1]
                )
                v6_blocks.append(
                    self._plan.allocate_v6(48)
                    if 6 in event.families
                    else v6_blocks[-1]
                )

            ring: tuple[Prefix, ...] = ()
            rotation = None
            jitter = 0
            for e, event in enumerate(rotations):
                if self._affected(f"rotation:{e}", event.fraction, i):
                    rotation = event
                    ring = (v6_blocks[0],) + tuple(
                        self._plan.allocate_v6(48)
                        for _ in range(max(event.ring - 1, 0))
                    )
                    if event.jitter:
                        jitter = stable_hash(
                            self.script.seed, "rotation-jitter", i
                        ) % (event.jitter + 1)
                    break

            activation = 0
            for e, event in enumerate(rollouts):
                if self._affected(f"rollout:{e}", event.fraction, i):
                    wave = stable_hash(
                        self.script.seed, "rollout-wave", e, i
                    ) % max(event.waves, 1)
                    activation = event.start_index + wave * event.interval
                    break

            cluster = None
            if aliased and self._affected(
                "aliased", aliased[0].fraction, i
            ):
                cluster = aliased[0]

            prefix = f"d{i:06d}"
            domains = tuple(
                f"{prefix}-{j}.{script.name}.example"
                for j in range(script.domains_per_deployment)
            )
            deployments.append(
                _DeploymentPlan(
                    dep_id=i,
                    org_id=org.org_id,
                    domains=domains,
                    v4_blocks=tuple(v4_blocks),
                    v6_blocks=tuple(v6_blocks),
                    ring=ring,
                    rotation=rotation,
                    jitter=jitter,
                    activation_index=activation,
                    aliased=cluster,
                )
            )
            # Announce every block this deployment will ever use, so the
            # RIB (and the annotator signature) is constant over the
            # whole series.
            for block in dict.fromkeys(v4_blocks):
                self._rib.announce(block, org.asn_for_family(4))
            for block in dict.fromkeys(tuple(v6_blocks) + ring):
                self._rib.announce(block, org.asn_for_family(6))

        if self._aliased_prefix is not None:
            hosts = population.hosting_org_ids or org_ids
            host = population.org(hosts[0])
            self._rib.announce(self._aliased_prefix, host.asn_for_family(6))
        return deployments

    def _state_at(self, plan: _DeploymentPlan, t: int) -> _DeploymentState:
        script = self.script
        renumbers = [
            e for e in script.events if isinstance(e, RenumberWave)
        ]
        # Renumbering: the latest wave at or before t wins per family.
        v4 = plan.v4_blocks[0]
        v6 = plan.v6_blocks[0]
        for e, event in enumerate(renumbers):
            if t >= event.at_index:
                v4 = plan.v4_blocks[e + 1]
                v6 = plan.v6_blocks[e + 1]

        absent = False
        if plan.rotation is not None and plan.ring:
            phase = t + plan.jitter
            turns = phase // plan.rotation.period
            v6 = plan.ring[turns % len(plan.ring)]
            if (
                plan.rotation.blackout
                and t > 0
                and phase % plan.rotation.period == 0
            ):
                absent = True

        v6_on = t >= plan.activation_index
        hijacked = (
            plan.aliased is not None
            and plan.aliased.mode == "hijack"
            and t >= plan.aliased.at_index
        )
        alias_extra = (
            plan.aliased is not None
            and plan.aliased.mode == "additive"
            and t >= plan.aliased.at_index
        )
        org_id = plan.org_id
        merge_target: int | None = None
        for event in script.events:
            if isinstance(event, OrgMerge) and t >= event.at_index:
                if self._affected("merge", event.fraction, plan.dep_id):
                    if merge_target is None:
                        merge_target = self._merge_target(event)
                    org_id = merge_target
            elif isinstance(event, OrgSplit) and t >= event.at_index:
                if self._affected("split", event.fraction, plan.dep_id):
                    # A fresh org id outside the population's range.
                    org_id = 10_000_000 + plan.dep_id
        return _DeploymentState(
            v4_prefix=v4,
            v6_prefix=v6,
            v6_on=v6_on,
            absent=absent,
            hijacked=hijacked,
            alias_extra=alias_extra,
            org_id=org_id,
        )

    def _merge_target(self, event: OrgMerge) -> int:
        """The surviving org: the first affected deployment's org."""
        for plan in self._deployments:
            if self._affected("merge", event.fraction, plan.dep_id):
                return plan.org_id
        return self._deployments[0].org_id

    def _compile(self) -> None:
        dpd = self.script.domains_per_deployment
        aliased_base = (
            self._aliased_prefix.first_address + 1
            if self._aliased_prefix is not None
            else 0
        )
        for t, date in enumerate(self._dates):
            observations: list[DomainObservation] = []
            truth: list[TruthPair] = []
            for plan in self._deployments:
                state = self._state_at(plan, t)
                detectable = (
                    state.v6_on and not state.absent and not state.hijacked
                )
                truth.append(
                    TruthPair(
                        v4_prefix=state.v4_prefix,
                        v6_prefix=state.v6_prefix,
                        deployment_id=plan.dep_id,
                        org_id=state.org_id,
                        visible=detectable,
                    )
                )
                if state.absent:
                    continue
                for j, domain in enumerate(plan.domains):
                    v4_addr = state.v4_prefix.first_address + 1 + j
                    v6_addrs: list[int] = []
                    if state.v6_on and not state.hijacked:
                        v6_addrs.append(state.v6_prefix.first_address + 1 + j)
                    if state.v6_on and (state.alias_extra or state.hijacked):
                        v6_addrs.append(aliased_base + plan.dep_id * dpd + j)
                    observations.append(
                        DomainObservation(
                            domain, (v4_addr,), tuple(sorted(v6_addrs))
                        )
                    )
            self._snapshots[date] = DnsSnapshot(date, observations)
            self.ledger.record(date, truth)

    # -- the universe protocol -------------------------------------------------

    @property
    def dates(self) -> list[datetime.date]:
        return list(self._dates)

    def snapshot_at(self, date: datetime.date) -> DnsSnapshot:
        try:
            return self._snapshots[date]
        except KeyError:
            raise LookupError(
                f"event universe {self.script.name!r} has no snapshot for "
                f"{date}"
            ) from None

    def annotator_at(self, date: datetime.date) -> PrefixAnnotator:
        return self._annotator

    def series(self) -> SnapshotSeries:
        return SnapshotSeries(self._snapshots.values())

    @property
    def aliased_prefix(self) -> Prefix | None:
        return self._aliased_prefix

    def __repr__(self) -> str:
        return (
            f"EventUniverse({self.script.name!r}, "
            f"deployments={len(self._deployments)}, "
            f"dates={len(self._dates)})"
        )


def build_event_universe(
    name_or_script: "str | EventScript",
    base: "str | ScenarioConfig | Population" = "tiny",
    scale: int = 1,
) -> EventUniverse:
    """Resolve *name_or_script* against :data:`EVENT_SCENARIOS` and build."""
    script = (
        event_scenario(name_or_script)
        if isinstance(name_or_script, str)
        else name_or_script
    )
    return EventUniverse(script, base=base, scale=scale)
