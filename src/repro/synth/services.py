"""Deployment, domain, and announcement generation.

This module decides *where services live*, which is what ultimately shapes
every figure in the paper:

* **DEDICATED** deployments own their announced prefixes — perfect
  Jaccard at default granularity (the ~52% of Figure 5).
* **ROUTABLE_SHARED** deployments sit in distinct /24 (IPv4) and /48
  (IPv6) blocks inside larger shared announcements — SP-Tuner fixes them
  at the routable thresholds (the 52% → 67% step).
* **DEEP_SHARED** deployments sit in distinct /28 and /96 blocks inside
  /24 and /48 announcements — only the deep thresholds fix them
  (the 67% → 82% step).
* **NOISY** deployments share one address among all their domains and
  point some AAAA records into a foreign "sink" prefix — irreducible
  imperfection (the residual ~18%).
* **Agility** networks (Cloudflare/Akamai style) bind domains to a small
  shared address pool independently per family — the low-Jaccard CDN rows
  of Figure 17.
* The **monitoring** org replicates the site24x7 case: one domain with an
  address in many single-purpose prefixes across many host organizations,
  producing a large cross-product of perfect, different-organization
  sibling pairs (Section 4.5).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field

from repro.dates import STUDY_END, STUDY_START, month_range, second_wednesday
from repro.determinism import (
    stable_hash,
    stable_sample_count,
    stable_uniform,
    stable_weighted_choice,
)
from repro.dns.toplists import Toplist
from repro.nettypes.addr import IPV4, IPV6
from repro.nettypes.prefix import Prefix
from repro.orgs.hypergiants import DeploymentStyle
from repro.synth.addressplan import AddressPlan
from repro.synth.entities import (
    Deployment,
    DeploymentTier,
    DomainSpec,
    HostingMode,
    VisibilityPattern,
)
from repro.synth.naming import domain_name
from repro.synth.scenarios import ScenarioConfig
from repro.synth.topology import (
    MONITORING_DOMAIN,
    Population,
    deployment_creation_date,
)

#: A pre-window date for infrastructure announced before the study.
EARLY_DATE = datetime.date(2018, 1, 1)

#: Months in which the monitoring domain is absent from the DNS data
#: (the paper observes gaps in 2021, 2022, and May 2023).
MONITORING_GAP_MONTHS: frozenset[tuple[int, int]] = frozenset(
    {(2021, 4), (2021, 10), (2022, 2), (2022, 7), (2023, 5)}
)

#: Announced CIDR length distributions for dedicated deployments —
#: calibrated against Figure 13 (/24 and /48 modal, /17-/24 × /32-/48
#: carrying ~88% of the mass).
_V4_DEDICATED_LENGTHS = ((16, 4.0), (17, 4.0), (18, 6.0), (19, 7.0), (20, 11.0),
                         (21, 11.0), (22, 14.0), (23, 10.0), (24, 30.0), (25, 0.5),
                         (26, 0.3), (14, 1.2), (12, 0.6))
_V6_DEDICATED_LENGTHS = ((32, 26.0), (36, 6.0), (40, 11.0), (44, 13.0),
                         (48, 40.0), (52, 1.5), (56, 1.5), (64, 0.5), (29, 0.5))

#: ``stealth`` deployments drop scan probes on both families — the
#: reason ~29% of sibling pairs are scan-unresponsive (Section 3.6).
_SERVICE_PROFILES = (("web", 0.30), ("web_ssh", 0.13), ("mail", 0.08),
                     ("dns", 0.04), ("mixed", 0.08), ("cpe", 0.05),
                     ("stealth", 0.32))

#: Fraction of dedicated deployments holding a second announced prefix
#: pair they occasionally renumber into (observable prefix changes,
#: Figure 7 centre).
_DEDICATED_ALT_FRACTION = 0.5

#: Announced length of the *dedicated* family of shared-tier
#: deployments; varied so the default CIDR heatmap is not a single
#: /24-/48 spike (Figure 13).
_SHARED_DEDICATED_V6_LENGTHS = ((48, 5.0), (44, 2.0), (40, 2.0), (32, 1.0))
_SHARED_DEDICATED_V4_LENGTHS = ((24, 5.0), (23, 2.0), (22, 2.0), (21, 1.0))

#: Fraction of all generated domains under the .fr ccTLD (queryable only
#: after the August 2022 ccTLD addition).
_FR_FRACTION = 0.12

#: Fraction of dual-stack domains reached through a CNAME alias.
_ALIAS_FRACTION = 0.15

#: Tier mixes by deployment style (ordinary orgs use the config weights).
_ALIGNED_TIER_WEIGHTS = {
    DeploymentTier.DEDICATED: 0.80,
    DeploymentTier.ROUTABLE_SHARED: 0.08,
    DeploymentTier.DEEP_SHARED: 0.07,
    DeploymentTier.NOISY: 0.05,
}
_MULTI_PREFIX_TIER_WEIGHTS = {
    DeploymentTier.DEDICATED: 0.30,
    DeploymentTier.ROUTABLE_SHARED: 0.15,
    DeploymentTier.DEEP_SHARED: 0.30,
    DeploymentTier.NOISY: 0.25,
}


@dataclass(frozen=True, slots=True)
class Announcement:
    """One BGP announcement: who originates which prefix since when."""

    prefix: Prefix
    org_id: int
    announced: datetime.date


@dataclass(frozen=True, slots=True)
class AgilityNetwork:
    """An addressing-agility CDN: domains bind to a small shared address
    pool, independently per family."""

    org_id: int
    v4_prefixes: tuple[Prefix, ...]
    v6_prefixes: tuple[Prefix, ...]
    v4_pool: tuple[int, ...]
    v6_pool: tuple[int, ...]

    def v4_address_for(self, name: str) -> int:
        return self.v4_pool[stable_hash("agility4", name) % len(self.v4_pool)]

    def v6_address_for(self, name: str) -> int:
        return self.v6_pool[stable_hash("agility6", name) % len(self.v6_pool)]


@dataclass(frozen=True, slots=True)
class MonitoringSpec:
    """The site24x7-like monitoring network."""

    org_id: int
    domain: str
    #: (prefix, host org id, address) triples, one per placement.
    v4_placements: tuple[tuple[Prefix, int, int], ...]
    v6_placements: tuple[tuple[Prefix, int, int], ...]
    gap_months: frozenset[tuple[int, int]]

    def visible_on(self, date: datetime.date) -> bool:
        return (date.year, date.month) not in self.gap_months


@dataclass
class ServiceFabric:
    """Everything the service generator produces."""

    deployments: dict[int, Deployment] = field(default_factory=dict)
    domains: dict[str, DomainSpec] = field(default_factory=dict)
    announcements: list[Announcement] = field(default_factory=list)
    agility_networks: dict[int, AgilityNetwork] = field(default_factory=dict)
    monitoring: MonitoringSpec | None = None
    #: Noise-sink v6 prefix per hosting org (NOISY deployments point
    #: stray AAAA records here).
    noise_sinks: list[Prefix] = field(default_factory=list)

    def deployment_of(self, spec: DomainSpec) -> Deployment | None:
        return self.deployments.get(spec.deployment_id)

    def agility_of(self, spec: DomainSpec) -> AgilityNetwork | None:
        if spec.deployment_id >= 0:
            return None
        return self.agility_networks.get(-spec.deployment_id)


class _SubAllocator:
    """Carve fixed-size children out of a covering prefix, in order."""

    def __init__(self, parent: Prefix, child_length: int):
        if child_length < parent.length:
            raise ValueError("child length must not be shorter than parent")
        self.parent = parent
        self.child_length = child_length
        self._next = parent.first_address
        self._step = 1 << (parent.bits - child_length)

    def take(self) -> Prefix | None:
        if self._next > self.parent.last_address:
            return None
        prefix = Prefix(self.parent.version, self._next, self.child_length)
        self._next += self._step
        return prefix


class _ServiceBuilder:
    """Stateful generator; :func:`build_services` is the public face."""

    def __init__(self, config: ScenarioConfig, population: Population):
        self.config = config
        self.population = population
        self.plan = AddressPlan()
        self.fabric = ServiceFabric()
        self.seed = config.seed
        self._next_deployment_id = 1
        self._next_domain_id = 1
        # Shared-container allocators keyed by (org_id, tier, family).
        self._containers: dict[tuple, _SubAllocator] = {}
        # Split-hosting allocators keyed by (host org, family).
        self._hosting_pools: dict[tuple, _SubAllocator] = {}
        self._noise_sink_allocs: list[_SubAllocator] = []

    # -- low-level helpers -----------------------------------------------------

    def _announce(self, prefix: Prefix, org_id: int, date: datetime.date) -> None:
        self.fabric.announcements.append(Announcement(prefix, org_id, date))

    def _take_deployment_id(self) -> int:
        deployment_id = self._next_deployment_id
        self._next_deployment_id += 1
        return deployment_id

    def _take_domain_name(self) -> str:
        domain_id = self._next_domain_id
        self._next_domain_id += 1
        if stable_uniform(self.seed, "is-fr", domain_id) < _FR_FRACTION:
            return domain_name(domain_id, tld="fr")
        return domain_name(domain_id)

    def _shared_block(
        self,
        org_id: int,
        tier: DeploymentTier,
        version: int,
    ) -> tuple[Prefix, Prefix]:
        """A block inside the org's shared container announcement for the
        tier; returns (block, covering announcement)."""
        if tier is DeploymentTier.ROUTABLE_SHARED:
            container_length = 21 if version == IPV4 else 32
            child_length = 24 if version == IPV4 else 48
        else:  # DEEP_SHARED
            container_length = 24 if version == IPV4 else 48
            child_length = 28 if version == IPV4 else 96
        key = (org_id, tier, version)
        allocator = self._containers.get(key)
        block = allocator.take() if allocator is not None else None
        if block is None:
            parent = self.plan.allocate(version, container_length)
            self._announce(parent, org_id, EARLY_DATE)
            allocator = _SubAllocator(parent, child_length)
            self._containers[key] = allocator
            block = allocator.take()
            assert block is not None
        return block, allocator.parent

    def _hosting_block(
        self, host_org_id: int, version: int, deep: bool = False
    ) -> tuple[Prefix, Prefix]:
        """A tenant block inside a hosting org's shared announcement.

        ``deep`` tenants sit in /28 (IPv4) and /96 (IPv6) blocks — the
        multi-CDN-style different-organization pairs that only the deep
        SP-Tuner thresholds can resolve.
        """
        key = (host_org_id, version, deep)
        allocator = self._hosting_pools.get(key)
        block = allocator.take() if allocator is not None else None
        if block is None:
            if version == IPV4:
                parent = self.plan.allocate(IPV4, 22 if deep else 19)
                allocator = _SubAllocator(parent, 28 if deep else 24)
            else:
                parent = self.plan.allocate(IPV6, 48 if deep else 32)
                allocator = _SubAllocator(parent, 96 if deep else 48)
            self._announce(parent, host_org_id, EARLY_DATE)
            self._hosting_pools[key] = allocator
            block = allocator.take()
            assert block is not None
        return block, allocator.parent

    def _noise_sink_block(self, index: int) -> Prefix:
        """A /64 inside a hosting org's noise-sink /48."""
        if not self._noise_sink_allocs:
            hosting = self.population.hosting_org_ids or self.population.service_org_ids
            for host_org_id in hosting[: max(1, len(hosting) // 2)]:
                sink = self.plan.allocate(IPV6, 48)
                self._announce(sink, host_org_id, EARLY_DATE)
                self.fabric.noise_sinks.append(sink)
                self._noise_sink_allocs.append(_SubAllocator(sink, 64))
        allocator = self._noise_sink_allocs[index % len(self._noise_sink_allocs)]
        block = allocator.take()
        if block is None:  # sink full: recycle deterministically
            allocator._next = allocator.parent.first_address
            block = allocator.take()
            assert block is not None
        return block

    # -- deployments -------------------------------------------------------------

    def _tier_for(
        self,
        org_style: DeploymentStyle | None,
        org_id: int,
        deployment_id: int,
    ) -> DeploymentTier:
        """Hypergiants (many deployments) mix tiers per deployment;
        ordinary orgs (1-4 deployments) pick one tier org-wide so their
        shared containers actually hold multiple deployments — without
        that, shared tiers degenerate into dedicated ones."""
        if org_style is DeploymentStyle.ALIGNED:
            weights = _ALIGNED_TIER_WEIGHTS
            key: object = deployment_id
        elif org_style is DeploymentStyle.MULTI_PREFIX:
            weights = _MULTI_PREFIX_TIER_WEIGHTS
            key = deployment_id
        else:
            weights = self.config.tier_weights
            key = ("org-tier", org_id)
        tiers = list(weights)
        return stable_weighted_choice(
            tiers, [weights[t] for t in tiers], self.seed, "tier", key
        )

    def _dedicated_lengths(self, deployment_id: int) -> tuple[int, int]:
        v4 = stable_weighted_choice(
            [l for l, _ in _V4_DEDICATED_LENGTHS],
            [w for _, w in _V4_DEDICATED_LENGTHS],
            self.seed, "dedlen4", deployment_id,
        )
        v6 = stable_weighted_choice(
            [l for l, _ in _V6_DEDICATED_LENGTHS],
            [w for _, w in _V6_DEDICATED_LENGTHS],
            self.seed, "dedlen6", deployment_id,
        )
        return v4, v6

    def _build_deployment(self, org_id: int, style: DeploymentStyle | None) -> Deployment:
        deployment_id = self._take_deployment_id()
        config = self.config
        tier = self._tier_for(style, org_id, deployment_id)
        created = deployment_creation_date(config, deployment_id)
        org = self.population.org(org_id)

        split = (
            style is None
            and self.population.hosting_org_ids
            and len(self.population.hosting_org_ids) >= 2
            and stable_uniform(self.seed, "split", deployment_id)
            < config.split_hosting_fraction
        )
        hosting = HostingMode.SPLIT if split else HostingMode.SELF

        alt_v4_block = alt_v6_block = None
        if hosting is HostingMode.SPLIT:
            hosts = self.population.hosting_org_ids
            host4 = hosts[stable_hash(self.seed, "host4", deployment_id) % len(hosts)]
            remaining = [h for h in hosts if h != host4]
            host6 = remaining[
                stable_hash(self.seed, "host6", deployment_id) % len(remaining)
            ]
            deep = stable_uniform(self.seed, "split-deep", deployment_id) < 0.45
            v4_block, v4_announced = self._hosting_block(host4, IPV4, deep)
            v6_block, v6_announced = self._hosting_block(host6, IPV6, deep)
            v4_origin_org, v6_origin_org = host4, host6
            tier = (
                DeploymentTier.DEEP_SHARED if deep else DeploymentTier.ROUTABLE_SHARED
            )
        elif tier is DeploymentTier.DEDICATED or tier is DeploymentTier.NOISY:
            length4, length6 = self._dedicated_lengths(deployment_id)
            v4_block = self.plan.allocate(IPV4, length4)
            v6_block = self.plan.allocate(IPV6, length6)
            v4_announced, v6_announced = v4_block, v6_block
            self._announce(v4_block, org_id, created)
            self._announce(v6_block, org_id, created)
            v4_origin_org = v6_origin_org = org_id
            if (
                tier is DeploymentTier.DEDICATED
                and stable_uniform(self.seed, "ded-alt", deployment_id)
                < _DEDICATED_ALT_FRACTION
            ):
                # A second announced prefix pair the deployment sometimes
                # renumbers into: the only churn that changes the
                # BGP-visible prefix of a domain.
                alt_v4_block = self.plan.allocate(IPV4, length4)
                alt_v6_block = self.plan.allocate(IPV6, length6)
                self._announce(alt_v4_block, org_id, created)
                self._announce(alt_v6_block, org_id, created)
        else:
            # Shared tiers model the IPv4-scarcity asymmetry: ONE family
            # lives in a shared container (multiple deployments of the
            # org inside one announcement, misaligning the default-size
            # domain sets) while the other gets a dedicated announcement.
            # This is exactly the structure SP-Tuner repairs: descending
            # the shared side to the deployment's sub-block restores a
            # perfect match at /24-/48 (ROUTABLE_SHARED) or /28-/96
            # (DEEP_SHARED).
            # The shared family is an org-level trait so the org's shared
            # deployments land in one container together.  IPv6 is shared
            # slightly more often: one /32 or /48 covers many services,
            # which is why the paper sees ~7k fewer unique IPv6 prefixes
            # than IPv4 (Section 4.5).
            share_v4 = stable_uniform(self.seed, "sharefam", org_id) < 0.4
            if share_v4:
                v4_block, v4_announced = self._shared_block(org_id, tier, IPV4)
                alt_v4_block, _ = self._shared_block(org_id, tier, IPV4)
                length6 = stable_weighted_choice(
                    [l for l, _ in _SHARED_DEDICATED_V6_LENGTHS],
                    [w for _, w in _SHARED_DEDICATED_V6_LENGTHS],
                    self.seed, "sharedlen6", deployment_id,
                )
                v6_block = self.plan.allocate(IPV6, length6)
                v6_announced = v6_block
                self._announce(v6_block, org_id, created)
            else:
                v6_block, v6_announced = self._shared_block(org_id, tier, IPV6)
                alt_v6_block, _ = self._shared_block(org_id, tier, IPV6)
                length4 = stable_weighted_choice(
                    [l for l, _ in _SHARED_DEDICATED_V4_LENGTHS],
                    [w for _, w in _SHARED_DEDICATED_V4_LENGTHS],
                    self.seed, "sharedlen4", deployment_id,
                )
                v4_block = self.plan.allocate(IPV4, length4)
                v4_announced = v4_block
                self._announce(v4_block, org_id, created)
            v4_origin_org = v6_origin_org = org_id

        profile = stable_weighted_choice(
            [p for p, _ in _SERVICE_PROFILES],
            [w for _, w in _SERVICE_PROFILES],
            self.seed, "profile", deployment_id,
        )

        deployment = Deployment(
            deployment_id=deployment_id,
            org_id=org_id,
            tier=tier,
            hosting=hosting,
            v4_block=v4_block,
            v6_block=v6_block,
            v4_announced=v4_announced,
            v6_announced=v6_announced,
            v4_origin_org=v4_origin_org,
            v6_origin_org=v6_origin_org,
            created=created,
            alt_v4_block=alt_v4_block,
            alt_v6_block=alt_v6_block,
            service_profile=profile,
        )
        self.fabric.deployments[deployment_id] = deployment
        self._build_domains(deployment)
        return deployment

    # -- domains ------------------------------------------------------------------

    def _domain_count(self, deployment_id: int) -> int:
        buckets = [b for b, _ in self.config.domain_buckets]
        weights = [w for _, w in self.config.domain_buckets]
        low, high = stable_weighted_choice(
            buckets, weights, self.seed, "bucket", deployment_id
        )
        span = high - low
        raw = low + (stable_hash(self.seed, "bucketpos", deployment_id) % (span + 1))
        return max(1, round(raw * self.config.domain_scale))

    def _visibility(self, name: str) -> VisibilityPattern:
        u = stable_uniform(self.seed, "pattern", name)
        if u < self.config.stable_fraction:
            return VisibilityPattern.STABLE
        if u < self.config.stable_fraction + self.config.oneshot_fraction:
            return VisibilityPattern.ONESHOT
        return VisibilityPattern.INTERMITTENT

    def _pattern_and_month(
        self, name: str, created: datetime.date
    ) -> tuple[VisibilityPattern, tuple[int, int] | None]:
        """Visibility pattern plus the single month for ONESHOT domains
        (a ONESHOT domain without its month would never be visible)."""
        pattern = self._visibility(name)
        if pattern is VisibilityPattern.ONESHOT:
            return pattern, self._oneshot_month(name, created)
        return pattern, None

    def _sources(self, name: str) -> frozenset[Toplist]:
        if name.endswith(".fr"):
            return frozenset({Toplist.OPEN_CCTLDS})
        pool = (
            Toplist.ALEXA,
            Toplist.UMBRELLA,
            Toplist.TRANCO,
            Toplist.CLOUDFLARE_RADAR,
            Toplist.OPEN_CCTLDS,
        )
        primary = pool[stable_hash(self.seed, "src1", name) % len(pool)]
        if stable_uniform(self.seed, "src2", name) < 0.4:
            secondary = pool[stable_hash(self.seed, "src3", name) % len(pool)]
            return frozenset({primary, secondary})
        return frozenset({primary})

    def _oneshot_month(self, name: str, created: datetime.date) -> tuple[int, int]:
        months = [
            (y, m)
            for y, m in month_range(STUDY_START, STUDY_END)
            if datetime.date(y, m, 28) >= created
        ]
        if not months:
            months = [STUDY_END]
        return months[stable_hash(self.seed, "oneshot", name) % len(months)]

    def _ds_adoption_date(self, name: str) -> datetime.date | None:
        """First month a single-stack domain publishes AAAA; None = never.
        (Returned as date.max sentinel-free: caller stores date or None.)"""
        for year, month in month_range(STUDY_START, STUDY_END):
            if (
                stable_uniform(self.seed, "adopt", name, year, month)
                < self.config.ds_adoption_monthly
            ):
                return second_wednesday(year, month)
        return None

    def _add_domain(self, spec: DomainSpec) -> None:
        self.fabric.domains[spec.name] = spec

    def _build_domains(self, deployment: Deployment) -> None:
        config = self.config
        count = self._domain_count(deployment.deployment_id)
        expansion = (
            stable_uniform(self.seed, "expand", deployment.deployment_id)
            < config.expansion_fraction
            and deployment.alt_v6_block is not None
        )
        for slot in range(count):
            name = self._take_domain_name()
            created = deployment.created
            pattern, oneshot_month = self._pattern_and_month(name, created)
            alias = (
                f"www.{name}"
                if stable_uniform(self.seed, "alias", name) < _ALIAS_FRACTION
                else None
            )
            noise_v6 = None
            if deployment.tier is DeploymentTier.NOISY:
                noise_share = 0.25 + 0.5 * stable_uniform(
                    self.seed, "noiseshare", deployment.deployment_id
                )
                if stable_uniform(self.seed, "noisy", name) < noise_share:
                    noise_v6 = self._noise_sink_block(
                        stable_hash(self.seed, "sinkpick", name)
                    )
            self._add_domain(
                DomainSpec(
                    name=name,
                    deployment_id=deployment.deployment_id,
                    slot=slot,
                    sources=self._sources(name),
                    created=created,
                    pattern=pattern,
                    oneshot_month=oneshot_month,
                    ds_adoption=None,
                    noise_v6=noise_v6,
                    alias=alias,
                )
            )
        # Expansion domains appear mid-window with their AAAA in the
        # alternate IPv6 block — the "changed Jaccard" population.
        if expansion:
            expansion_date = second_wednesday(2022, 6)
            for extra in range(1 + stable_hash(self.seed, "nexp", deployment.deployment_id) % 2):
                name = self._take_domain_name()
                self._add_domain(
                    DomainSpec(
                        name=name,
                        deployment_id=deployment.deployment_id,
                        slot=count + extra,
                        sources=self._sources(name),
                        created=max(expansion_date, deployment.created),
                        pattern=VisibilityPattern.STABLE,
                        ds_adoption=None,
                        noise_v6=deployment.alt_v6_block,
                        alias=None,
                    )
                )
        # Single-stack companions: IPv4-only (sometimes IPv6-only) domains
        # that may adopt dual stack later — the DS-share growth driver.
        ss_count = stable_sample_count(
            max(1, round(count * config.singlestack_ratio)),
            1.0,
            self.seed, "ss", deployment.deployment_id,
        )
        for extra in range(ss_count):
            name = self._take_domain_name()
            v6_only = (
                stable_uniform(self.seed, "v6only", name) < config.v6_only_fraction
            )
            adoption = None if v6_only else self._ds_adoption_date(name)
            pattern, oneshot_month = self._pattern_and_month(
                name, deployment.created
            )
            self._add_domain(
                DomainSpec(
                    name=name,
                    deployment_id=deployment.deployment_id,
                    slot=count + 2 + extra,
                    sources=self._sources(name),
                    created=deployment.created,
                    pattern=pattern,
                    oneshot_month=oneshot_month,
                    ds_adoption=adoption if adoption is not None else datetime.date.max,
                    v6_only=v6_only,
                    alias=None,
                )
            )

    # -- agility networks -----------------------------------------------------------

    def _build_agility(self, org_id: int, weight: int) -> None:
        v4_prefixes = tuple(self.plan.allocate(IPV4, 20) for _ in range(3))
        v6_prefixes = tuple(self.plan.allocate(IPV6, 32) for _ in range(3))
        for prefix in (*v4_prefixes, *v6_prefixes):
            self._announce(prefix, org_id, EARLY_DATE)
        v4_pool = tuple(
            prefix.first_address + 7 + i for prefix in v4_prefixes for i in range(2)
        )
        v6_pool = tuple(
            prefix.first_address + 7 + i for prefix in v6_prefixes for i in range(2)
        )
        network = AgilityNetwork(org_id, v4_prefixes, v6_prefixes, v4_pool, v6_pool)
        self.fabric.agility_networks[org_id] = network

        n_domains = max(
            12, round(weight * self.config.hgcdn_deployment_scale * 12)
        )
        for _ in range(n_domains):
            name = self._take_domain_name()
            created = deployment_creation_date(
                self.config, stable_hash("agility-created", name) % 10_000_000
            )
            pattern, oneshot_month = self._pattern_and_month(name, created)
            self._add_domain(
                DomainSpec(
                    name=name,
                    deployment_id=-org_id,
                    slot=0,
                    sources=self._sources(name),
                    created=created,
                    pattern=pattern,
                    oneshot_month=oneshot_month,
                    ds_adoption=None,
                    alias=None,
                )
            )

    # -- monitoring -------------------------------------------------------------------

    def _build_monitoring(self) -> None:
        config = self.config
        population = self.population
        host_pool = population.service_org_ids + population.eyeball_org_ids
        if not host_pool:
            return
        v4_placements = []
        for index in range(config.monitoring_v4_placements):
            host = host_pool[index % len(host_pool)]
            prefix = self.plan.allocate(IPV4, 24)
            self._announce(prefix, host, EARLY_DATE)
            v4_placements.append((prefix, host, prefix.first_address + 14))
        v6_placements = []
        for index in range(config.monitoring_v6_placements):
            host = host_pool[(index * 7 + 3) % len(host_pool)]
            prefix = self.plan.allocate(IPV6, 48)
            self._announce(prefix, host, EARLY_DATE)
            v6_placements.append((prefix, host, prefix.first_address + 14))
        self.fabric.monitoring = MonitoringSpec(
            org_id=population.monitoring_org_id,
            domain=MONITORING_DOMAIN,
            v4_placements=tuple(v4_placements),
            v6_placements=tuple(v6_placements),
            gap_months=MONITORING_GAP_MONTHS,
        )

    # -- eyeballs ---------------------------------------------------------------------

    def _build_eyeballs(self) -> None:
        for org_id in self.population.eyeball_org_ids:
            n_v4 = 1 + stable_hash(self.seed, "eyeball4", org_id) % 3
            for _ in range(n_v4):
                length = 16 + stable_hash(self.seed, "eyeball4len", org_id, _) % 5
                self._announce(self.plan.allocate(IPV4, length), org_id, EARLY_DATE)
            n_v6 = 1 + stable_hash(self.seed, "eyeball6", org_id) % 2
            for _ in range(n_v6):
                self._announce(self.plan.allocate(IPV6, 32), org_id, EARLY_DATE)

    # -- top level --------------------------------------------------------------------

    def build(self) -> ServiceFabric:
        population = self.population
        config = self.config
        for name, org_id in population.hgcdn_org_ids.items():
            org = population.org(org_id)
            entry = population.registry.get(name)
            assert entry is not None
            if org.style is DeploymentStyle.AGILITY:
                self._build_agility(org_id, entry.weight)
                n_deployments = max(2, round(entry.weight * config.hgcdn_deployment_scale * 0.5))
            else:
                n_deployments = max(2, round(entry.weight * config.hgcdn_deployment_scale))
            for _ in range(n_deployments):
                self._build_deployment(org_id, org.style)
        for org_id in population.service_org_ids:
            org_tier = self._tier_for(None, org_id, 0)
            if org_tier in (
                DeploymentTier.ROUTABLE_SHARED,
                DeploymentTier.DEEP_SHARED,
            ):
                # Shared-tier orgs need several deployments per container
                # for the default-size misalignment to exist at all.
                n_deployments = 2 + stable_hash(self.seed, "ndep", org_id) % 3
            else:
                n_deployments = 1 + stable_hash(self.seed, "ndep", org_id) % 3
            for _ in range(n_deployments):
                self._build_deployment(org_id, None)
        self._build_monitoring()
        self._build_eyeballs()
        return self.fabric


def build_services(config: ScenarioConfig, population: Population) -> ServiceFabric:
    """Generate all deployments, domains, and announcements."""
    return _ServiceBuilder(config, population).build()
