"""Sequential, collision-free address allocation.

A bump allocator over curated global-unicast superblocks.  Every prefix
the universe announces comes from here, so prefixes never overlap across
organizations (other than deliberate block-inside-announcement nesting,
which callers construct themselves by sub-allocating within a prefix they
already own).
"""

from __future__ import annotations

from repro.nettypes.addr import IPV4, IPV6, MAX_LENGTH
from repro.nettypes.prefix import Prefix

#: Global-unicast /8s that contain none of the reserved ranges.
_V4_SUPERBLOCKS = tuple(
    Prefix.parse(text)
    for text in (
        "5.0.0.0/8",
        "23.0.0.0/8",
        "45.0.0.0/8",
        "64.0.0.0/8",
        "80.0.0.0/8",
        "93.0.0.0/8",
        "101.0.0.0/8",
        "128.0.0.0/8",
        "151.0.0.0/8",
        "163.0.0.0/8",
        "178.0.0.0/8",
        "193.0.0.0/8",
        "199.0.0.0/8",
        "217.0.0.0/8",
    )
)

#: Clean global-unicast IPv6 space (avoids 2001::/23, 2001:db8::/32, 2002::/16).
_V6_SUPERBLOCKS = (Prefix.parse("2600::/12"), Prefix.parse("2a00::/12"))


class AddressPlanExhausted(RuntimeError):
    """Raised when the plan runs out of superblock space."""


class AddressPlan:
    """Bump allocator handing out non-overlapping prefixes."""

    def __init__(self):
        self._superblocks = {IPV4: _V4_SUPERBLOCKS, IPV6: _V6_SUPERBLOCKS}
        self._block_index = {IPV4: 0, IPV6: 0}
        self._cursor = {
            IPV4: _V4_SUPERBLOCKS[0].first_address,
            IPV6: _V6_SUPERBLOCKS[0].first_address,
        }
        self.allocated = {IPV4: 0, IPV6: 0}

    def allocate(self, version: int, length: int) -> Prefix:
        """Hand out the next free prefix of the requested length."""
        bits = MAX_LENGTH[version]
        if not 0 < length <= bits:
            raise ValueError(f"invalid prefix length /{length} for IPv{version}")
        size = 1 << (bits - length)
        while True:
            blocks = self._superblocks[version]
            index = self._block_index[version]
            if index >= len(blocks):
                raise AddressPlanExhausted(
                    f"IPv{version} address plan exhausted at /{length}"
                )
            block = blocks[index]
            if length < block.length:
                raise ValueError(
                    f"/{length} larger than superblock {block}; refusing"
                )
            # Align the cursor up to the requested size.
            cursor = self._cursor[version]
            aligned = (cursor + size - 1) & ~(size - 1)
            if aligned + size - 1 <= block.last_address:
                self._cursor[version] = aligned + size
                self.allocated[version] += 1
                return Prefix(version, aligned, length)
            # Current superblock exhausted: advance.
            self._block_index[version] = index + 1
            if self._block_index[version] < len(blocks):
                self._cursor[version] = blocks[self._block_index[version]].first_address

    def allocate_v4(self, length: int) -> Prefix:
        return self.allocate(IPV4, length)

    def allocate_v6(self, length: int) -> Prefix:
        return self.allocate(IPV6, length)
