"""Organization, AS, and dataset generation.

Builds the organization population (ordinary service orgs, eyeball
networks, hosting providers, the hypergiant/CDN roster, and the
site24x7-like monitoring org), assigns AS numbers, and derives the two
as2org dataset generations plus the ASdb classification from them.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.dates import STUDY_END, STUDY_START, month_range, second_wednesday
from repro.determinism import stable_uniform, stable_weighted_choice
from repro.orgs.as2org import CHEN_DATASET_EPOCH, As2Org, As2OrgArchive
from repro.orgs.asdb import AsdbDataset, BusinessCategory
from repro.orgs.hypergiants import HgCdnOrg, HgCdnRegistry
from repro.synth.entities import Organization
from repro.synth.naming import org_name
from repro.synth.scenarios import ScenarioConfig

#: Business-category mix for ordinary orgs — IT dominates (Figure 16).
_CATEGORY_WEIGHTS: tuple[tuple[BusinessCategory, float], ...] = (
    (BusinessCategory.IT, 0.38),
    (BusinessCategory.EDUCATION, 0.09),
    (BusinessCategory.SERVICE, 0.08),
    (BusinessCategory.FINANCE, 0.07),
    (BusinessCategory.MEDIA, 0.06),
    (BusinessCategory.RETAIL, 0.06),
    (BusinessCategory.OTHER, 0.06),
    (BusinessCategory.GOVERNMENT, 0.05),
    (BusinessCategory.MANUFACTURING, 0.04),
    (BusinessCategory.ENTERTAINMENT, 0.03),
    (BusinessCategory.TRAVEL, 0.02),
    (BusinessCategory.REAL_ESTATE, 0.02),
    (BusinessCategory.UTILITIES, 0.01),
    (BusinessCategory.AGRICULTURE, 0.01),
    (BusinessCategory.NONPROFITS, 0.01),
    (BusinessCategory.HEALTH, 0.005),
    (BusinessCategory.SHIPMENT, 0.005),
)

#: ~20% of classified ASes carry more than one category, which the
#: paper's single-type filter then excludes.
_MULTI_CATEGORY_FRACTION = 0.2

_FIRST_ASN = 1000

#: Country mix for generated organizations (roughly hosting-market-like).
_COUNTRIES: tuple[tuple[str, float], ...] = (
    ("US", 0.30), ("DE", 0.12), ("NL", 0.08), ("FR", 0.08), ("GB", 0.07),
    ("SE", 0.05), ("JP", 0.05), ("SG", 0.04), ("BR", 0.04), ("IN", 0.04),
    ("CA", 0.04), ("AU", 0.03), ("ZA", 0.03), ("FI", 0.03),
)

MONITORING_ORG_NAME = "WatchTower Monitoring (site24x7-like)"
MONITORING_DOMAIN = "probe.watchtower-monitoring.com"


@dataclass
class Population:
    """Everything :func:`build_population` produces."""

    organizations: dict[int, Organization]
    service_org_ids: list[int]
    eyeball_org_ids: list[int]
    hosting_org_ids: list[int]
    hgcdn_org_ids: dict[str, int]  # org name → org_id
    monitoring_org_id: int
    as2org_archive: As2OrgArchive
    asdb: AsdbDataset
    registry: HgCdnRegistry

    def org(self, org_id: int) -> Organization:
        return self.organizations[org_id]


def _rpki_adoption_date(config: ScenarioConfig, seed: int, org_id: int) -> datetime.date | None:
    """When this org starts publishing ROAs, reproducing the Figure 18
    adoption curve: ``rpki_initial_adoption`` before the window, growing
    linearly to ``rpki_final_adoption`` by its end."""
    u = stable_uniform(seed, "rpki-adoption", org_id)
    if u < config.rpki_initial_adoption:
        return datetime.date(2015, 1, 1)
    if u >= config.rpki_final_adoption:
        return None
    months = list(month_range(STUDY_START, STUDY_END))
    span = config.rpki_final_adoption - config.rpki_initial_adoption
    position = (u - config.rpki_initial_adoption) / span
    index = min(int(position * len(months)), len(months) - 1)
    year, month = months[index]
    return datetime.date(year, month, 1)


def _categories(seed: int, org_id: int) -> frozenset[BusinessCategory]:
    options = [c for c, _ in _CATEGORY_WEIGHTS]
    weights = [w for _, w in _CATEGORY_WEIGHTS]
    primary = stable_weighted_choice(options, weights, seed, "category", org_id)
    if stable_uniform(seed, "multi-category", org_id) < _MULTI_CATEGORY_FRACTION:
        secondary = stable_weighted_choice(
            options, weights, seed, "category2", org_id
        )
        if secondary is not primary:
            return frozenset({primary, secondary})
    return frozenset({primary})


def build_population(config: ScenarioConfig) -> Population:
    """Generate all organizations, their ASNs, and the org datasets."""
    seed = config.seed
    organizations: dict[int, Organization] = {}
    next_org_id = 1
    next_asn = _FIRST_ASN

    def take_asns(org_id: int, multi_probability: float) -> tuple[int, ...]:
        nonlocal next_asn
        count = 2 if stable_uniform(seed, "multi-asn", org_id) < multi_probability else 1
        asns = tuple(range(next_asn, next_asn + count))
        next_asn += count
        return asns

    def new_org(
        *,
        name: str | None = None,
        style=None,
        is_eyeball: bool = False,
        multi_asn_probability: float = 0.3,
        categories: frozenset[BusinessCategory] | None = None,
    ) -> Organization:
        nonlocal next_org_id
        org_id = next_org_id
        next_org_id += 1
        org = Organization(
            org_id=org_id,
            name=name if name is not None else org_name(org_id),
            categories=(
                categories if categories is not None else _categories(seed, org_id)
            ),
            asns=take_asns(org_id, multi_asn_probability),
            style=style,
            rpki_adoption=_rpki_adoption_date(config, seed, org_id),
            is_eyeball=is_eyeball,
            country=stable_weighted_choice(
                [c for c, _ in _COUNTRIES],
                [w for _, w in _COUNTRIES],
                seed, "country", org_id,
            ),
        )
        organizations[org_id] = org
        return org

    # Hypergiants / CDNs first (stable ids across scales).
    registry = HgCdnRegistry()
    hgcdn_org_ids: dict[str, int] = {}
    chosen: list[HgCdnOrg] = registry.by_weight()[: config.n_hgcdn_orgs]
    for entry in chosen:
        org = new_org(
            name=entry.name,
            style=entry.style,
            multi_asn_probability=0.8,
            categories=frozenset({BusinessCategory.IT}),
        )
        hgcdn_org_ids[entry.name] = org.org_id

    service_org_ids = [
        new_org().org_id for _ in range(config.n_service_orgs)
    ]
    # Hosting orgs are IT organizations offering split hosting.
    hosting_org_ids = [
        new_org(categories=frozenset({BusinessCategory.IT})).org_id
        for _ in range(config.n_hosting_orgs)
    ]
    eyeball_org_ids = [
        new_org(is_eyeball=True).org_id for _ in range(config.n_eyeball_orgs)
    ]
    monitoring_org = new_org(
        name=MONITORING_ORG_NAME,
        categories=frozenset({BusinessCategory.IT}),
        multi_asn_probability=0.0,
    )

    as2org_archive = _build_as2org(seed, organizations)
    asdb = _build_asdb(organizations)

    return Population(
        organizations=organizations,
        service_org_ids=service_org_ids,
        eyeball_org_ids=eyeball_org_ids,
        hosting_org_ids=hosting_org_ids,
        hgcdn_org_ids=hgcdn_org_ids,
        monitoring_org_id=monitoring_org.org_id,
        as2org_archive=as2org_archive,
        asdb=asdb,
        registry=registry,
    )


def _build_as2org(
    seed: int, organizations: dict[int, Organization]
) -> As2OrgArchive:
    """Two dataset generations: the CAIDA-era mapping misses some sibling
    merges (second ASNs registered under a legacy name variant); the Chen
    et al. generation merges them — reproducing the paper's epoch switch."""
    caida = As2Org()
    chen = As2Org()
    for org in organizations.values():
        for index, asn in enumerate(org.asns):
            chen.assign(asn, org.name)
            if index > 0 and stable_uniform(seed, "caida-unmerged", asn) < 0.35:
                caida.assign(asn, f"{org.name} (legacy registration)")
            else:
                caida.assign(asn, org.name)
    archive = As2OrgArchive()
    archive.add(datetime.date(2015, 1, 1), caida)
    archive.add(CHEN_DATASET_EPOCH, chen)
    return archive


def _build_asdb(organizations: dict[int, Organization]) -> AsdbDataset:
    dataset = AsdbDataset()
    for org in organizations.values():
        for asn in org.asns:
            dataset.classify(asn, org.categories)
    return dataset


def deployment_creation_date(
    config: ScenarioConfig, deployment_id: int
) -> datetime.date:
    """When a deployment comes online.  ``preexisting_fraction`` predate
    the window; the rest spread across it with later months favoured, so
    the sibling count roughly doubles over four years (Figure 9)."""
    u = stable_uniform(config.seed, "deployment-created", deployment_id)
    if u < config.preexisting_fraction:
        return datetime.date(2018, 1, 1)
    months = list(month_range(STUDY_START, STUDY_END))
    position = (u - config.preexisting_fraction) / (1 - config.preexisting_fraction)
    # sqrt skews mass toward later months (growth accelerates).
    index = min(int(position**0.75 * len(months)), len(months) - 1)
    year, month = months[index]
    return second_wednesday(year, month)
