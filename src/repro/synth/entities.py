"""Entity types of the synthetic Internet universe."""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass

from repro.dns.toplists import Toplist
from repro.nettypes.prefix import Prefix
from repro.orgs.asdb import BusinessCategory
from repro.orgs.hypergiants import DeploymentStyle


class DeploymentTier(enum.Enum):
    """How a deployment's address blocks relate to BGP announcements.

    The tier controls where SP-Tuner can fix an imperfect default match
    (Sections 3.3-3.4): ``DEDICATED`` pairs are already perfect at the
    announced size, ``ROUTABLE_SHARED`` pairs resolve at /24-/48,
    ``DEEP_SHARED`` pairs only at /28-/96, and ``NOISY`` pairs never fully
    resolve (cross-prefix noise domains).
    """

    DEDICATED = "dedicated"
    ROUTABLE_SHARED = "routable_shared"
    DEEP_SHARED = "deep_shared"
    NOISY = "noisy"


class HostingMode(enum.Enum):
    """Whose network a deployment's two address families live in."""

    #: Both families in the owning organization's prefixes.
    SELF = "self"
    #: IPv4 from one host organization, IPv6 from another — the paper's
    #: "different organization" origin-AS category (multi-CDN, split
    #: upstreams, Catchpoint-style probes).
    SPLIT = "split"


class VisibilityPattern(enum.Enum):
    """How consistently a domain appears across monthly snapshots
    (Figure 7 left: ~40% always, ~20% once, ~40% intermittent)."""

    STABLE = "stable"
    INTERMITTENT = "intermittent"
    ONESHOT = "oneshot"


@dataclass(frozen=True, slots=True)
class Organization:
    """An organization owning ASes, allocations and deployments."""

    org_id: int
    name: str
    categories: frozenset[BusinessCategory]
    asns: tuple[int, ...]
    #: Hypergiant/CDN deployment style, None for ordinary orgs.
    style: DeploymentStyle | None = None
    #: Month the org started publishing ROAs, None = never (drives Fig 18).
    rpki_adoption: datetime.date | None = None
    #: Eyeball networks announce space and host probes but no services.
    is_eyeball: bool = False
    #: ISO-3166-ish country of the org's infrastructure (geolocation
    #: ground truth for the transfer use case in the paper's intro).
    country: str = "ZZ"

    @property
    def is_hgcdn(self) -> bool:
        return self.style is not None

    def asn_for_family(self, version: int) -> int:
        """Origin ASN used for announcements of the given IP family.

        Orgs with multiple ASNs originate IPv6 from their second AS —
        the common same-organization / different-ASN pattern the paper's
        sibling-AS merge is designed to catch.
        """
        if len(self.asns) > 1 and version == 6:
            return self.asns[1]
        return self.asns[0]


@dataclass(frozen=True, slots=True)
class Deployment:
    """One dual-stack service deployment: the ground-truth sibling unit.

    ``v4_block``/``v6_block`` are the address blocks actually hosting the
    service; ``v4_announced``/``v6_announced`` the covering BGP routes.
    For DEDICATED deployments block == announced.
    """

    deployment_id: int
    org_id: int
    tier: DeploymentTier
    hosting: HostingMode
    v4_block: Prefix
    v6_block: Prefix
    v4_announced: Prefix
    v6_announced: Prefix
    #: Origin orgs of the announced prefixes (differ from org_id for
    #: SPLIT hosting).
    v4_origin_org: int
    v6_origin_org: int
    created: datetime.date
    #: Alternate blocks used when prefix-move churn strikes (may be None).
    alt_v4_block: Prefix | None = None
    alt_v6_block: Prefix | None = None
    #: Open-port service profile name (see repro.scan.ports).
    service_profile: str = "web"

    @property
    def is_same_org(self) -> bool:
        return self.v4_origin_org == self.v6_origin_org


@dataclass(frozen=True, slots=True)
class DomainSpec:
    """One domain and its binding to a deployment.

    Address assignment over time is *computed*, not stored: the universe
    derives the concrete A/AAAA records for any date from the spec plus
    stable churn hashes (see :mod:`repro.synth.universe`).
    """

    name: str
    deployment_id: int
    #: Slot index inside the deployment's blocks (base for addressing).
    slot: int
    sources: frozenset[Toplist]
    created: datetime.date
    pattern: VisibilityPattern
    #: For ONESHOT domains: the single snapshot month they appear in.
    oneshot_month: tuple[int, int] | None = None
    #: None → dual-stack since creation; a date → AAAA added then;
    #: datetime.date.max → never (IPv4-only domain).
    ds_adoption: datetime.date | None = None
    #: v6-only domains have no A records at all.
    v6_only: bool = False
    #: Extra noise: fraction of NOISY deployments' domains also appear at
    #: an address inside a foreign prefix (breaks perfect Jaccard).
    noise_v4: Prefix | None = None
    noise_v6: Prefix | None = None
    #: Queried alias that CNAMEs to this (final) name, if any.
    alias: str | None = None

    def dual_stack_on(self, date: datetime.date) -> bool:
        if self.v6_only:
            return False
        if self.ds_adoption is None:
            return True
        return date >= self.ds_adoption
