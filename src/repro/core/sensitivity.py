"""SP-Tuner threshold sensitivity sweep (Figures 4 and 19).

For every (IPv4 threshold, IPv6 threshold) combination, re-run SP-Tuner-MS
over the detected sibling pairs and record the mean and standard deviation
of the tuned Jaccard values — the two numbers in each heatmap cell.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.domainsets import PrefixDomainIndex
from repro.core.siblings import SiblingSet
from repro.core.sptuner import SpTunerMS, TunerConfig

#: The axes of the paper's Figure 4 (the truncated heatmap).
FIG4_V4_THRESHOLDS = (16, 18, 20, 22, 24, 26, 28)
FIG4_V6_THRESHOLDS = (32, 40, 48, 56, 64, 80, 96)

#: The full Figure 19 axes.
FIG19_V4_THRESHOLDS = tuple(range(16, 32))
FIG19_V6_THRESHOLDS = tuple(range(32, 125, 4))


@dataclass(frozen=True, slots=True)
class SensitivityCell:
    """One heatmap cell: thresholds → tuned-Jaccard mean/std."""

    v4_threshold: int
    v6_threshold: int
    mean: float
    std: float
    pair_count: int


def sweep_thresholds(
    siblings: SiblingSet,
    index: PrefixDomainIndex,
    v4_thresholds: tuple[int, ...] = FIG4_V4_THRESHOLDS,
    v6_thresholds: tuple[int, ...] = FIG4_V6_THRESHOLDS,
) -> list[SensitivityCell]:
    """Evaluate the full threshold grid; cells in row-major (v6, v4) order."""
    cells: list[SensitivityCell] = []
    for v6_threshold in v6_thresholds:
        for v4_threshold in v4_thresholds:
            tuner = SpTunerMS(
                index,
                TunerConfig(v4_threshold=v4_threshold, v6_threshold=v6_threshold),
            )
            tuned = tuner.tune_all(siblings)
            cells.append(
                SensitivityCell(
                    v4_threshold=v4_threshold,
                    v6_threshold=v6_threshold,
                    mean=tuned.mean_similarity,
                    std=tuned.std_similarity,
                    pair_count=len(tuned),
                )
            )
    return cells


def cell_at(
    cells: list[SensitivityCell], v4_threshold: int, v6_threshold: int
) -> SensitivityCell:
    """Look up the swept cell for one threshold combination."""
    for cell in cells:
        if (cell.v4_threshold, cell.v6_threshold) == (v4_threshold, v6_threshold):
            return cell
    raise KeyError((v4_threshold, v6_threshold))
