"""Detection quality against the recorded ground truth.

The original study can only validate against vantage points (Section
3.5); the synthetic universe records which (IPv4 block, IPv6 block) pairs
each organization *intended* as dual-stack siblings, so this module
measures detection quality directly:

* **recall** — the share of ground-truth deployments matched by a
  detected pair covering both of their blocks,
* **precision proxy** — the share of detected pairs explained by some
  ground-truth structure (a deployment, the monitoring cross product, or
  an agility network); unexplained pairs would be spurious detections.

A deployment only counts as *detectable* when at least one of its
dual-stack domains was actually queried and resolved on the evaluation
date — domains invisible to DNS are invisible to any DNS-based method.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.core.siblings import SiblingSet
from repro.nettypes.addr import IPV4, IPV6
from repro.nettypes.prefix import Prefix
from repro.nettypes.trie import PatriciaTrie
from repro.synth.universe import Universe


@dataclass(frozen=True, slots=True)
class DetectionQuality:
    """Ground-truth evaluation outcome."""

    detectable_deployments: int
    recalled_deployments: int
    undetectable_deployments: int
    total_pairs: int
    explained_pairs: int

    @property
    def recall(self) -> float:
        if self.detectable_deployments == 0:
            return 0.0
        return self.recalled_deployments / self.detectable_deployments

    @property
    def precision_proxy(self) -> float:
        if self.total_pairs == 0:
            return 0.0
        return self.explained_pairs / self.total_pairs


def _pair_tries(siblings: SiblingSet) -> tuple[PatriciaTrie, PatriciaTrie]:
    trie_v4: PatriciaTrie = PatriciaTrie(IPV4)
    trie_v6: PatriciaTrie = PatriciaTrie(IPV6)
    for pair in siblings:
        keys4 = trie_v4.get(pair.v4_prefix) or set()
        keys4.add(pair.key)
        trie_v4.insert(pair.v4_prefix, keys4)
        keys6 = trie_v6.get(pair.v6_prefix) or set()
        keys6.add(pair.key)
        trie_v6.insert(pair.v6_prefix, keys6)
    return trie_v4, trie_v6


def _pairs_overlapping(trie: PatriciaTrie, block: Prefix) -> set:
    """Pair keys whose prefix overlaps *block* (covering or covered)."""
    keys: set = set()
    for _, found in trie.covering(block):
        keys |= found
    for _, found in trie.subtree_items(block):
        keys |= found
    return keys


def evaluate_quality(
    universe: Universe, siblings: SiblingSet, date: datetime.date
) -> DetectionQuality:
    """Score *siblings* against the universe's ground truth on *date*."""
    snapshot = universe.snapshot_at(date)
    visible_domains = snapshot.dual_stack_domains()
    trie_v4, trie_v6 = _pair_tries(siblings)

    visible_by_deployment: set[int] = set()
    for spec in universe.fabric.domains.values():
        if spec.name in visible_domains:
            visible_by_deployment.add(spec.deployment_id)

    detectable = recalled = undetectable = 0
    explained_keys: set = set()
    for deployment in universe.ground_truth_deployments(date):
        has_visible_domain = deployment.deployment_id in visible_by_deployment
        if not has_visible_domain:
            undetectable += 1
            continue
        detectable += 1
        keys_v4 = _pairs_overlapping(trie_v4, deployment.v4_block)
        if deployment.alt_v4_block is not None:
            keys_v4 |= _pairs_overlapping(trie_v4, deployment.alt_v4_block)
        keys_v6 = _pairs_overlapping(trie_v6, deployment.v6_block)
        if deployment.alt_v6_block is not None:
            keys_v6 |= _pairs_overlapping(trie_v6, deployment.alt_v6_block)
        matched = keys_v4 & keys_v6
        if matched:
            recalled += 1
        # Any pair touching either block (or the deployment's alternate
        # blocks) is explained by this deployment — noise-sink pairs
        # touch only the v4 side, for example.
        explained_keys |= keys_v4 | keys_v6

    monitoring = universe.fabric.monitoring
    if monitoring is not None:
        for prefix, _, _ in monitoring.v4_placements:
            explained_keys |= _pairs_overlapping(trie_v4, prefix)
        for prefix, _, _ in monitoring.v6_placements:
            explained_keys |= _pairs_overlapping(trie_v6, prefix)
    for network in universe.fabric.agility_networks.values():
        for prefix in network.v4_prefixes:
            explained_keys |= _pairs_overlapping(trie_v4, prefix)
        for prefix in network.v6_prefixes:
            explained_keys |= _pairs_overlapping(trie_v6, prefix)
    for sink in universe.fabric.noise_sinks:
        explained_keys |= _pairs_overlapping(trie_v6, sink)

    all_keys = {pair.key for pair in siblings}
    return DetectionQuality(
        detectable_deployments=detectable,
        recalled_deployments=recalled,
        undetectable_deployments=undetectable,
        total_pairs=len(siblings),
        explained_pairs=len(explained_keys & all_keys),
    )
