"""Sharded parallel execution of the columnar Step-3 accumulation.

The columnar substrate made Step 3 (shared-domain counting over packed
``(v4_row << 32) | v6_row`` keys) a flat integer loop; this module
spreads that loop over ``multiprocessing`` workers.  The pair space is
partitioned **by v4 group key**: shard *s* owns every packed key whose
v4 row satisfies ``v4_row % n_shards == s``.  Because the partition is
a function of the key alone, shard-local counters are disjoint and the
merge is a plain dict union — no shard can ever disagree with another
about a pair, so the merged counts are *identical* to the
single-process :meth:`~repro.core.substrate.ColumnarSubstrate.pair_counts`
(property-tested in ``tests/test_differential_engines.py``).

What crosses the process boundary is deliberately pickle-light: each
shard receives flat CSR ``array`` payloads (its slice of the per-domain
v4 bases plus the aligned v6 row segments) and returns its counter as
two parallel arrays (packed keys + counts).  No Python sets, dicts of
prefixes, or domain strings are shipped; workers never rebuild an
index.

Process spin-up has a fixed cost, so :class:`ShardedSubstrate` falls
back to the inherited single-process columnar path when the
accumulation is small (fewer than :attr:`ShardedSubstrate.min_pair_rows`
emitted pair rows) or when only one worker is effective — the fallback
is exact by construction, it runs the very code being parallelized.
Everything outside Step 3 (scoring, best-match selection, lazy
shared-domain materialization, ``group_stats``) is inherited unchanged
from :class:`~repro.core.substrate.ColumnarSubstrate`, including the
reusable intern pool that longitudinal runs thread across snapshots.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from array import array
from typing import ClassVar

from repro.core.kernels import PairCounts, get_kernel
from repro.core.substrate import SUBSTRATES, ColumnarSubstrate, _ColumnarState
from repro.obs.tracing import record_stage

#: Below this many emitted Step-3 pair rows the accumulation is cheaper
#: than forking workers, and the engine transparently runs the
#: single-process columnar path instead.  Re-tuned for the vectorized
#: numpy kernel (see benchmarks/results/parallel_detect.txt): the old
#: 200k crossover was measured against the pure-Python loop; the numpy
#: kernel clears 200k rows in low single-digit milliseconds, far below
#: worker fork+IPC cost, so the sharded path only starts paying for
#: itself in the millions of emitted rows.
DEFAULT_MIN_PAIR_ROWS = 2_000_000


class ShardedDetectionError(RuntimeError):
    """A shard worker failed (or could not be dispatched).

    Raised by :meth:`ShardedSubstrate.pair_counts` with the failing
    shard's own error message attached; the worker pool is torn down
    before this propagates, so a crashed worker surfaces as a clear
    exception instead of a hung ``detect`` run.
    """


def estimate_pair_rows(state: _ColumnarState) -> int:
    """How many packed pair rows Step 3 would emit for *state*.

    The exact count — ``sum(|v4 members| * |v6 members|)`` over domains
    — computed in O(domains) without emitting anything.  This is the
    work measure the sharded/columnar fallback decision is based on.
    """
    return sum(
        len(bases) * len(rows)
        for bases, rows in zip(state.dom_bases, state.dom_rows)
    )


def build_shard_payloads(
    state: _ColumnarState, n_shards: int, fail_shard: int | None = None
) -> list[tuple]:
    """Deterministically partition *state*'s accumulation into payloads.

    Shard assignment is ``v4_row % n_shards`` (the v4 group key), so
    the packed-key spaces of the shards are disjoint and every shard
    count merges without conflict.  Each payload is a tuple of flat
    ``array`` objects in CSR layout: per segment (one per domain that
    touches the shard) a slice of premultiplied v4 bases and the
    domain's full v6 row list.  *fail_shard* marks one payload to raise
    inside the worker — the crash-path test hook.
    """
    return build_shard_payloads_from_rows(
        state.dom_bases, state.dom_rows, n_shards, fail_shard=fail_shard
    )


def build_shard_payloads_from_rows(
    dom_bases, dom_rows, n_shards: int, fail_shard: int | None = None
) -> list[tuple]:
    """:func:`build_shard_payloads` over bare (bases, rows) lists.

    Used directly by the incremental path: delta retract/add rows go
    through the *same* ``v4_row % n_shards`` partition as a full run,
    so a delta update touches each shard-local key space exactly where
    a full accumulation would have counted it.
    """
    bases_data = [array("Q") for _ in range(n_shards)]
    bases_offsets = [array("I", [0]) for _ in range(n_shards)]
    rows_data = [array("I") for _ in range(n_shards)]
    rows_offsets = [array("I", [0]) for _ in range(n_shards)]
    shift_mod = n_shards
    for bases, rows in zip(dom_bases, dom_rows):
        if len(bases) == 1:
            segments = (((bases[0] >> 32) % shift_mod, bases),)
        else:
            by_shard: dict[int, list[int]] = {}
            for base in bases:
                by_shard.setdefault((base >> 32) % shift_mod, []).append(base)
            segments = tuple(by_shard.items())
        for shard, shard_bases in segments:
            bases_data[shard].extend(shard_bases)
            bases_offsets[shard].append(len(bases_data[shard]))
            rows_data[shard].extend(rows)
            rows_offsets[shard].append(len(rows_data[shard]))
    return [
        (
            shard,
            bases_data[shard],
            bases_offsets[shard],
            rows_data[shard],
            rows_offsets[shard],
            shard == fail_shard,
        )
        for shard in range(n_shards)
    ]


def accumulate_shard(payload: tuple) -> tuple[int, object, object, float, float]:
    """Step-3 accumulation for one shard (the worker entry point).

    Runs in a ``multiprocessing`` worker but is a pure function, so the
    differential tests also call it in-process.  Returns the shard id,
    the shard-local counter flattened into two parallel key/count
    columns (``array`` on the python kernel, ndarrays on numpy — both
    pickle-light) and the shard's own wall/CPU seconds, which the
    parent records as per-shard stage timings (workers can't reach the
    parent's registry).  Forked workers inherit the parent's active
    kernel; spawned ones re-select it from the exported
    ``REPRO_KERNEL``.  Any failure is re-raised tagged with the shard
    id, so the parent's :class:`ShardedDetectionError` always names
    the failing shard.
    """
    shard = payload[0]
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    try:
        shard, keys, counts = _accumulate(payload)
    except Exception as exc:
        raise RuntimeError(f"shard {shard} failed: {exc}") from exc
    return (
        shard,
        keys,
        counts,
        time.perf_counter() - wall0,
        time.process_time() - cpu0,
    )


def _accumulate(payload: tuple) -> tuple[int, object, object]:
    """The untagged accumulation body of :func:`accumulate_shard`.

    Delegates the CSR expansion + counting to the active kernel
    (:meth:`repro.core.kernels.Kernel.accumulate_packed`) — the
    sharded engine and the vectorized kernel compound.
    """
    shard, bases_data, bases_offsets, rows_data, rows_offsets, fail = payload
    if fail:
        raise RuntimeError("injected failure")
    keys, counts = get_kernel().accumulate_packed(
        bases_data, bases_offsets, rows_data, rows_offsets
    )
    return shard, keys, counts


class ShardedSubstrate(ColumnarSubstrate):
    """Multi-process execution of the columnar engine's Step 3.

    Identical results to :class:`ColumnarSubstrate` by construction
    (disjoint shard key spaces; same scoring arithmetic) and by test
    (the property-based differential suite).  ``workers=0`` means "use
    ``os.cpu_count()``"; small accumulations transparently fall back to
    the inherited single-process path, so the engine is safe to use as
    a default on any input size.

    The instance carries the same reusable domain intern pool as its
    parent — thread one instance through
    :func:`repro.analysis.pipeline.detect_series` and every snapshot
    shares it.  Workers never see the pool; they operate purely on
    interned integer arrays.
    """

    name = "sharded"

    #: What :attr:`workers` resets to when the shared registry instance
    #: is resolved by name without an explicit worker count (see
    #: :func:`repro.core.substrate.get_substrate`): ``0`` = all cores.
    DEFAULT_WORKERS: ClassVar[int] = 0

    #: Start method for worker processes: ``fork`` where the platform
    #: offers it (cheap, no re-import), else the platform default.
    START_METHOD: ClassVar[str | None] = (
        "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    )

    def __init__(
        self,
        workers: int = 0,
        min_pair_rows: int = DEFAULT_MIN_PAIR_ROWS,
    ) -> None:
        super().__init__()
        #: Worker process count; ``0`` resolves to ``os.cpu_count()``.
        self.workers = workers
        #: Fallback threshold, in emitted Step-3 pair rows.
        self.min_pair_rows = min_pair_rows
        #: How the most recent :meth:`pair_counts` call executed —
        #: ``{"mode": "sharded" | "fallback", "workers": ..., "shards":
        #: ..., "pair_rows": ...}``; introspection for tests/benches.
        self.last_run: dict | None = None
        # Crash-path test hook: mark one shard to fail inside its worker.
        self._fail_shard_for_testing: int | None = None

    def effective_workers(self) -> int:
        """Resolve :attr:`workers` (``0``/negative → ``os.cpu_count()``)."""
        workers = self.workers
        if workers is None or workers <= 0:
            workers = os.cpu_count() or 1
        return max(1, int(workers))

    def pair_counts(self, state: _ColumnarState):  # type: ignore[override]
        """Step 3 over *state*, sharded across worker processes.

        Overrides the columnar staticmethod as an instance method (the
        base ``select`` dispatches through ``self``, so Steps 4+ run
        unmodified on the merged counts).  The merged mapping's
        *contents* are identical whatever the worker count; iteration
        order follows the shard layout and is not part of the contract
        (nothing downstream observes it).
        """
        n_workers = self.effective_workers()
        pair_rows = estimate_pair_rows(state)
        if (
            n_workers < 2 or pair_rows < self.min_pair_rows
        ) and self._fail_shard_for_testing is None:
            self.last_run = {
                "mode": "fallback",
                "workers": n_workers,
                "shards": 0,
                "pair_rows": pair_rows,
            }
            return ColumnarSubstrate.pair_counts(state)

        return self._map_and_merge(
            build_shard_payloads(
                state, n_workers, fail_shard=self._fail_shard_for_testing
            ),
            n_workers,
            pair_rows,
            mode="sharded",
            what="Step-3 accumulation",
        )

    def _map_and_merge(
        self, payloads, n_workers: int, pair_rows: int, mode: str, what: str
    ) -> PairCounts:
        """Dispatch shard payloads to a worker pool and merge the counts.

        The shared leg of the full and delta accumulations; *mode* tags
        :attr:`last_run`, *what* names the operation in the
        :class:`ShardedDetectionError` a crashed worker surfaces as.
        """
        context = multiprocessing.get_context(self.START_METHOD)
        try:
            with context.Pool(processes=n_workers) as pool:
                shard_results = pool.map(accumulate_shard, payloads)
        except Exception as exc:
            raise ShardedDetectionError(
                f"sharded {what} failed ({n_workers} workers): {exc}"
            ) from exc

        # Disjoint key spaces: a plain union merges without conflict —
        # dict union on the python kernel, concatenate + one argsort on
        # numpy.  The merged mapping's contents are worker-count
        # invariant; kernels normalize iteration order downstream
        # (select emits survivors in ascending packed-key order).
        columns = []
        for shard, keys, counts, wall, cpu in shard_results:
            columns.append((keys, counts))
            record_stage(
                "step3.shard", wall, cpu, items=len(keys), shard=str(shard)
            )
        merged = get_kernel().merge_disjoint(columns)
        self.last_run = {
            "mode": mode,
            "workers": n_workers,
            "shards": len(payloads),
            "pair_rows": pair_rows,
        }
        return merged

    def _accumulate_rows(self, dom_bases, dom_rows) -> PairCounts:
        """Delta-row accumulation, sharded exactly like a full run.

        Retract/add rows are partitioned by the same ``v4_row %
        n_shards`` rule as :meth:`pair_counts`, so every delta key is
        counted on the shard that owns it in a full accumulation.
        Small deltas (the common case — daily churn) fall back to the
        in-process kernel below :attr:`min_pair_rows`, mirroring the
        full-run fallback.
        """
        dom_bases = list(dom_bases)
        dom_rows = list(dom_rows)
        n_workers = self.effective_workers()
        pair_rows = sum(
            len(bases) * len(rows)
            for bases, rows in zip(dom_bases, dom_rows)
        )
        if n_workers < 2 or pair_rows < self.min_pair_rows:
            self.last_run = {
                "mode": "delta-fallback",
                "workers": n_workers,
                "shards": 0,
                "pair_rows": pair_rows,
            }
            return ColumnarSubstrate._accumulate_rows(self, dom_bases, dom_rows)
        return self._map_and_merge(
            build_shard_payloads_from_rows(dom_bases, dom_rows, n_workers),
            n_workers,
            pair_rows,
            mode="delta-sharded",
            what="delta accumulation",
        )


SUBSTRATES[ShardedSubstrate.name] = ShardedSubstrate
