"""Longitudinal comparison of sibling sets (Section 4.3, Figure 10).

Pairs are classified by comparing an old snapshot's sibling set with the
current one:

* **NEW** — present now, absent then (88% at paper scale: domain growth
  plus dual-stack adoption),
* **UNCHANGED** — present in both with the same Jaccard value,
* **CHANGED** — present in both with a different Jaccard value,
* **GONE** — present then, absent now (not plotted by the paper but
  reported here for completeness).

Classification compares :class:`~repro.core.siblings.SiblingSet` values
and is substrate-agnostic; produce the snapshots with
:func:`repro.analysis.pipeline.detect_series`, which threads one
substrate instance through the whole run so the columnar engine reuses
its interned domain table across snapshots.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.siblings import SiblingPair, SiblingSet

_JACCARD_TOLERANCE = 1e-9


class ChangeClass(enum.Enum):
    """The four longitudinal fates of a sibling pair (module doc)."""

    NEW = "new"
    UNCHANGED = "unchanged"
    CHANGED = "changed"
    GONE = "gone"


@dataclass
class ChangeReport:
    """Outcome of :func:`classify_changes`."""

    new: list[SiblingPair] = field(default_factory=list)
    unchanged: list[SiblingPair] = field(default_factory=list)
    #: (old pair, current pair) for pairs whose similarity moved.
    changed: list[tuple[SiblingPair, SiblingPair]] = field(default_factory=list)
    gone: list[SiblingPair] = field(default_factory=list)

    @property
    def total_current(self) -> int:
        return len(self.new) + len(self.unchanged) + len(self.changed)

    def share(self, change_class: ChangeClass) -> float:
        """Fraction of the current pairs in *change_class*."""
        total = self.total_current
        if total == 0:
            return 0.0
        counts = {
            ChangeClass.NEW: len(self.new),
            ChangeClass.UNCHANGED: len(self.unchanged),
            ChangeClass.CHANGED: len(self.changed),
            ChangeClass.GONE: len(self.gone),
        }
        return counts[change_class] / total

    def changed_old_similarities(self) -> list[float]:
        """Old-snapshot Jaccard values of the CHANGED pairs."""
        return [old.similarity for old, _ in self.changed]

    def changed_current_similarities(self) -> list[float]:
        """Current-snapshot Jaccard values of the CHANGED pairs."""
        return [current.similarity for _, current in self.changed]


def classify_changes(old: SiblingSet, current: SiblingSet) -> ChangeReport:
    """Classify every pair of *current* against *old* (see module doc)."""
    report = ChangeReport()
    for pair in current:
        previous = old.get(pair.v4_prefix, pair.v6_prefix)
        if previous is None:
            report.new.append(pair)
        elif abs(previous.similarity - pair.similarity) <= _JACCARD_TOLERANCE:
            report.unchanged.append(pair)
        else:
            report.changed.append((previous, pair))
    for pair in old:
        if current.get(pair.v4_prefix, pair.v6_prefix) is None:
            report.gone.append(pair)
    return report


def classify_series(snapshots: Sequence[SiblingSet]) -> list[ChangeReport]:
    """Classify every consecutive snapshot pair of a longitudinal run.

    Returns one :class:`ChangeReport` per step, oldest first — the
    Figure 10 walk over a whole series instead of a single lookback.
    """
    return [
        classify_changes(old, current)
        for old, current in zip(snapshots, snapshots[1:])
    ]
