"""Sibling prefix *set* pairs — the paper's stated future work.

Section 6: "it might be useful to look into sibling prefix set pairs,
i.e., a set of IPv4 prefixes which are siblings of a set of IPv6
prefixes. This could alleviate challenges such as address space
fragmentation by pairing different IPv4 fragments with their IPv6
counterpart."

The construction groups sibling pairs into connected components of the
bipartite prefix-pair graph (two pairs connect when they share an IPv4
or IPv6 prefix), then evaluates each component at the *set* level: the
union of DS domains across the component's IPv4 prefixes against the
union across its IPv6 prefixes.  Fragmented-but-equivalent address space
(one /48 split across four /24 fragments) scores poorly pair-by-pair but
perfectly as a set pair.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.core.domainsets import PrefixDomainIndex
from repro.core.metrics import jaccard_from_counts
from repro.core.siblings import SiblingSet
from repro.core.substrate import Substrate, get_substrate
from repro.nettypes.prefix import Prefix


@dataclass(frozen=True, slots=True)
class SiblingSetPair:
    """A set of IPv4 prefixes paired with a set of IPv6 prefixes."""

    v4_prefixes: frozenset[Prefix]
    v6_prefixes: frozenset[Prefix]
    similarity: float
    shared_domains: frozenset[str]
    v4_domain_count: int
    v6_domain_count: int

    @property
    def is_fragmented(self) -> bool:
        """True when either side holds more than one prefix."""
        return len(self.v4_prefixes) > 1 or len(self.v6_prefixes) > 1

    @property
    def is_perfect(self) -> bool:
        return self.similarity >= 1.0


class _UnionFind:
    """Plain disjoint-set over hashable items."""

    def __init__(self):
        self._parent: dict = {}

    def find(self, item):
        parent = self._parent.setdefault(item, item)
        if parent is item or parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a, b) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a


def build_set_pairs(
    siblings: SiblingSet,
    index: PrefixDomainIndex,
    substrate: "str | Substrate | None" = None,
    workers: int | None = None,
) -> list[SiblingSetPair]:
    """Group pairs into components and score them at set level.

    Components are induced by shared prefixes: if (A4, X6) and (A4, Y6)
    are both sibling pairs, then {A4} pairs with {X6, Y6} as a set.
    Domain sets are re-derived from the index so the set-level Jaccard
    is exact, not an aggregate of pair values.  The union/intersection
    work runs on the chosen substrate
    (:meth:`~repro.core.substrate.Substrate.group_stats`); *workers*
    configures parallel engines and is ignored by the rest — the
    sharded engine inherits the columnar ``group_stats``, so set-pair
    scoring reuses whatever posting-list state detection already built.
    """
    engine = get_substrate(substrate, workers=workers)
    union_find = _UnionFind()
    for pair in siblings:
        # Tag-prefix the two families so an identical value/length can
        # never collide across families in the union-find keyspace.
        union_find.union(("4", pair.v4_prefix), ("6", pair.v6_prefix))

    components: dict[object, tuple[set[Prefix], set[Prefix]]] = {}
    for pair in siblings:
        root = union_find.find(("4", pair.v4_prefix))
        v4_set, v6_set = components.setdefault(root, (set(), set()))
        v4_set.add(pair.v4_prefix)
        v6_set.add(pair.v6_prefix)

    result: list[SiblingSetPair] = []
    for v4_set, v6_set in components.values():
        stats = engine.group_stats(index, v4_set, v6_set)
        if not stats.shared_domains:
            continue
        result.append(
            SiblingSetPair(
                v4_prefixes=frozenset(v4_set),
                v6_prefixes=frozenset(v6_set),
                similarity=jaccard_from_counts(
                    len(stats.shared_domains),
                    stats.v4_domain_count,
                    stats.v6_domain_count,
                ),
                shared_domains=stats.shared_domains,
                v4_domain_count=stats.v4_domain_count,
                v6_domain_count=stats.v6_domain_count,
            )
        )
    result.sort(key=lambda sp: (-len(sp.shared_domains), -sp.similarity))
    return result


@dataclass
class SetPairSummary:
    """Aggregate comparison of pair-level vs set-level similarity."""

    date: datetime.date
    pair_count: int
    set_pair_count: int
    fragmented_count: int
    pair_perfect_share: float
    set_perfect_share: float
    pair_mean: float
    set_mean: float


def summarize_set_pairs(
    siblings: SiblingSet, set_pairs: list[SiblingSetPair]
) -> SetPairSummary:
    """The headline numbers for the future-work experiment: set pairing
    should never hurt and should help fragmented deployments."""
    pair_values = siblings.similarities()
    set_values = [sp.similarity for sp in set_pairs]
    return SetPairSummary(
        date=siblings.date,
        pair_count=len(siblings),
        set_pair_count=len(set_pairs),
        fragmented_count=sum(1 for sp in set_pairs if sp.is_fragmented),
        pair_perfect_share=siblings.perfect_match_share,
        set_perfect_share=(
            sum(1 for v in set_values if v >= 1.0) / len(set_values)
            if set_values
            else 0.0
        ),
        pair_mean=sum(pair_values) / len(pair_values) if pair_values else 0.0,
        set_mean=sum(set_values) / len(set_values) if set_values else 0.0,
    )
