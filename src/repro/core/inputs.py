"""Alternative input signals for sibling detection (Section 6).

The paper argues the methodology generalizes beyond forward DNS: "we can
identify sibling prefixes using other services, such as DNS MX records,
rDNS names, or aliased hosts. As long as these inputs result in a mapping
from a prefix to a set, our technique ... can still be applied."

Three input builders share :func:`~repro.core.domainsets.build_index_from_entries`:

* ``domains``  — the default forward-DNS signal (Steps 1-2),
* ``mx``       — mail domains mapped through their MX exchanges' addresses,
* ``rdns``     — reverse-DNS host names per address.

:func:`compare_inputs` quantifies how much the resulting sibling sets
agree, which is the experiment backing the Section 6 claim.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.bgp.routeviews import PrefixAnnotator
from repro.core.domainsets import (
    PrefixDomainIndex,
    build_index,
    build_index_from_entries,
)
from repro.core.siblings import SiblingSet
from repro.core.substrate import Substrate, get_substrate
from repro.dns.openintel import DnsSnapshot
from repro.dns.records import RRType
from repro.dns.resolver import Resolver
from repro.dns.zone import Zone


def index_from_domains(
    snapshot: DnsSnapshot, annotator: PrefixAnnotator
) -> PrefixDomainIndex:
    """The default signal: dual-stack forward-DNS domains."""
    return build_index(snapshot, annotator)


def index_from_mx(
    zone: Zone,
    queried_domains: list[str],
    annotator: PrefixAnnotator,
    date: datetime.date,
) -> PrefixDomainIndex:
    """Mail-domain signal: each domain maps to the addresses of its MX
    exchange hosts (both families resolved through the zone)."""
    resolver = Resolver(zone)
    entries: list[tuple[str, list[int], list[int]]] = []
    for domain in queried_domains:
        exchanges = resolver.resolve_mx(domain)
        if not exchanges:
            continue
        v4: list[int] = []
        v6: list[int] = []
        for exchange in exchanges:
            result_a = resolver.resolve(exchange, RRType.A)
            result_aaaa = resolver.resolve(exchange, RRType.AAAA)
            if result_a.ok:
                v4.extend(result_a.addresses)
            if result_aaaa.ok:
                v6.extend(result_aaaa.addresses)
        if v4 and v6:
            entries.append((domain, v4, v6))
    return build_index_from_entries(date, entries, annotator)


def index_from_rdns(
    rdns_names: dict[tuple[int, int], str],
    annotator: PrefixAnnotator,
    date: datetime.date,
) -> PrefixDomainIndex:
    """Reverse-DNS signal: hosts appearing under the same rDNS name on
    both families behave exactly like dual-stack domains."""
    v4_by_name: dict[str, list[int]] = {}
    v6_by_name: dict[str, list[int]] = {}
    for (version, address), name in rdns_names.items():
        if version == 4:
            v4_by_name.setdefault(name, []).append(address)
        else:
            v6_by_name.setdefault(name, []).append(address)
    entries = [
        (name, v4_by_name[name], v6_by_name[name])
        for name in v4_by_name.keys() & v6_by_name.keys()
    ]
    return build_index_from_entries(date, sorted(entries), annotator)


def siblings_from_index(
    index: PrefixDomainIndex,
    substrate: "str | Substrate | None" = None,
    workers: int | None = None,
) -> SiblingSet:
    """Steps 3-4 over any pre-built index, on the chosen substrate.

    *workers* configures parallel engines (see
    :func:`repro.core.substrate.get_substrate`); others ignore it.
    """
    return get_substrate(substrate, workers=workers).select(index)


@dataclass(frozen=True, slots=True)
class InputAgreement:
    """Pairwise agreement between two input signals' sibling sets."""

    label_a: str
    label_b: str
    pairs_a: int
    pairs_b: int
    #: Pairs of *a* whose IPv4 AND IPv6 prefixes overlap some pair of *b*.
    compatible: int

    @property
    def compatibility_share(self) -> float:
        return self.compatible / self.pairs_a if self.pairs_a else 0.0


def compare_inputs(
    label_a: str, siblings_a: SiblingSet, label_b: str, siblings_b: SiblingSet
) -> InputAgreement:
    """How often does signal *b* confirm signal *a*'s pairs?

    Exact pair equality is too strict across signals (prefix grouping
    differs), so agreement means overlapping prefixes on both sides.
    """
    compatible = 0
    b_pairs = list(siblings_b)
    for pair in siblings_a:
        for other in b_pairs:
            if pair.v4_prefix.overlaps(other.v4_prefix) and pair.v6_prefix.overlaps(
                other.v6_prefix
            ):
                compatible += 1
                break
    return InputAgreement(
        label_a=label_a,
        label_b=label_b,
        pairs_a=len(siblings_a),
        pairs_b=len(siblings_b),
        compatible=compatible,
    )
