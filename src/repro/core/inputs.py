"""Alternative input signals for sibling detection (Section 6).

The paper argues the methodology generalizes beyond forward DNS: "we can
identify sibling prefixes using other services, such as DNS MX records,
rDNS names, or aliased hosts. As long as these inputs result in a mapping
from a prefix to a set, our technique ... can still be applied."

Three input builders share :func:`~repro.core.domainsets.build_index_from_entries`:

* ``domains``  — the default forward-DNS signal (Steps 1-2),
* ``mx``       — mail domains mapped through their MX exchanges' addresses,
* ``rdns``     — reverse-DNS host names per address.

:func:`compare_inputs` quantifies how much the resulting sibling sets
agree, which is the experiment backing the Section 6 claim.
"""

from __future__ import annotations

import datetime
from bisect import bisect_left
from dataclasses import dataclass

from repro.bgp.routeviews import PrefixAnnotator
from repro.nettypes.prefix import Prefix
from repro.core.domainsets import (
    PrefixDomainIndex,
    build_index,
    build_index_from_entries,
)
from repro.core.siblings import SiblingSet
from repro.core.substrate import Substrate, get_substrate
from repro.dns.openintel import DnsSnapshot
from repro.dns.records import RRType
from repro.dns.resolver import Resolver
from repro.dns.zone import Zone


def index_from_domains(
    snapshot: DnsSnapshot, annotator: PrefixAnnotator
) -> PrefixDomainIndex:
    """The default signal: dual-stack forward-DNS domains."""
    return build_index(snapshot, annotator)


def index_from_mx(
    zone: Zone,
    queried_domains: list[str],
    annotator: PrefixAnnotator,
    date: datetime.date,
) -> PrefixDomainIndex:
    """Mail-domain signal: each domain maps to the addresses of its MX
    exchange hosts (both families resolved through the zone)."""
    resolver = Resolver(zone)
    entries: list[tuple[str, list[int], list[int]]] = []
    for domain in queried_domains:
        exchanges = resolver.resolve_mx(domain)
        if not exchanges:
            continue
        v4: list[int] = []
        v6: list[int] = []
        for exchange in exchanges:
            result_a = resolver.resolve(exchange, RRType.A)
            result_aaaa = resolver.resolve(exchange, RRType.AAAA)
            if result_a.ok:
                v4.extend(result_a.addresses)
            if result_aaaa.ok:
                v6.extend(result_aaaa.addresses)
        if v4 and v6:
            entries.append((domain, v4, v6))
    return build_index_from_entries(date, entries, annotator)


def index_from_rdns(
    rdns_names: dict[tuple[int, int], str],
    annotator: PrefixAnnotator,
    date: datetime.date,
) -> PrefixDomainIndex:
    """Reverse-DNS signal: hosts appearing under the same rDNS name on
    both families behave exactly like dual-stack domains."""
    v4_by_name: dict[str, list[int]] = {}
    v6_by_name: dict[str, list[int]] = {}
    for (version, address), name in rdns_names.items():
        if version == 4:
            v4_by_name.setdefault(name, []).append(address)
        else:
            v6_by_name.setdefault(name, []).append(address)
    entries = [
        (name, v4_by_name[name], v6_by_name[name])
        for name in v4_by_name.keys() & v6_by_name.keys()
    ]
    return build_index_from_entries(date, sorted(entries), annotator)


def siblings_from_index(
    index: PrefixDomainIndex,
    substrate: "str | Substrate | None" = None,
    workers: int | None = None,
) -> SiblingSet:
    """Steps 3-4 over any pre-built index, on the chosen substrate.

    *workers* configures parallel engines (see
    :func:`repro.core.substrate.get_substrate`); others ignore it.
    """
    return get_substrate(substrate, workers=workers).select(index)


@dataclass(frozen=True, slots=True)
class InputAgreement:
    """Pairwise agreement between two input signals' sibling sets."""

    label_a: str
    label_b: str
    pairs_a: int
    pairs_b: int
    #: Pairs of *a* whose IPv4 AND IPv6 prefixes overlap some pair of *b*.
    compatible: int

    @property
    def compatibility_share(self) -> float:
        return self.compatible / self.pairs_a if self.pairs_a else 0.0


class PrefixOverlapIndex:
    """Which of a pair list's entries overlap a queried prefix?

    Per family, the stored prefixes are grouped by length into sorted
    packed-:attr:`~repro.nettypes.prefix.Prefix.network_key` arrays with
    aligned pair-position tuples.  A query prefix then overlaps a stored
    prefix iff, at one of the stored lengths, either the query's key
    truncated to that length matches exactly (the stored prefix contains
    the query) or the stored key falls in the query's key range at that
    length (the query contains it) — both answered by bisect, so one
    query costs ``O(lengths × log n + hits)`` instead of a full scan.
    """

    def __init__(self, prefixes_with_positions: "dict[Prefix, list[int]]"):
        # length → (sorted keys, aligned position tuples), per family.
        self._tables: dict[tuple[int, int], tuple[list[int], list[tuple[int, ...]]]] = {}
        by_table: dict[tuple[int, int], dict[int, tuple[int, ...]]] = {}
        for prefix, positions in prefixes_with_positions.items():
            table = by_table.setdefault((prefix.version, prefix.length), {})
            table[prefix.network_key] = tuple(positions)
        for (version, length), table in by_table.items():
            keys = sorted(table)
            self._tables[(version, length)] = (
                keys,
                [table[key] for key in keys],
            )

    def overlapping_positions(self, query: Prefix) -> set[int]:
        """Positions of every stored pair whose prefix overlaps *query*."""
        found: set[int] = set()
        query_length = query.length
        query_key = query.network_key
        for (version, length), (keys, positions) in self._tables.items():
            if version != query.version:
                continue
            if length <= query_length:
                # Stored prefixes at most as specific: they overlap iff
                # they contain the query — exact key match at *length*.
                probe = query_key >> (query_length - length)
                at = bisect_left(keys, probe)
                if at < len(keys) and keys[at] == probe:
                    found.update(positions[at])
            else:
                # More-specific stored prefixes: those the query contains
                # occupy a contiguous key range at *length*.
                low = query_key << (length - query_length)
                high = (query_key + 1) << (length - query_length)
                start = bisect_left(keys, low)
                stop = bisect_left(keys, high)
                for at in range(start, stop):
                    found.update(positions[at])
        return found


def compare_inputs(
    label_a: str, siblings_a: SiblingSet, label_b: str, siblings_b: SiblingSet
) -> InputAgreement:
    """How often does signal *b* confirm signal *a*'s pairs?

    Exact pair equality is too strict across signals (prefix grouping
    differs), so agreement means overlapping prefixes on both sides: a
    pair of *a* is compatible when some single pair of *b* overlaps it
    on the IPv4 AND the IPv6 side.  Both sides are answered from
    :class:`PrefixOverlapIndex` bisect probes, so the comparison is
    near-linear in the two list sizes rather than their product.
    """
    v4_positions: dict[Prefix, list[int]] = {}
    v6_positions: dict[Prefix, list[int]] = {}
    for position, other in enumerate(siblings_b):
        v4_positions.setdefault(other.v4_prefix, []).append(position)
        v6_positions.setdefault(other.v6_prefix, []).append(position)
    v4_index = PrefixOverlapIndex(v4_positions)
    v6_index = PrefixOverlapIndex(v6_positions)
    compatible = 0
    for pair in siblings_a:
        candidates = v4_index.overlapping_positions(pair.v4_prefix)
        if candidates and candidates & v6_index.overlapping_positions(
            pair.v6_prefix
        ):
            compatible += 1
    return InputAgreement(
        label_a=label_a,
        label_b=label_b,
        pairs_a=len(siblings_a),
        pairs_b=len(siblings_b),
        compatible=compatible,
    )
