"""Pluggable execution substrates for Steps 3-4 of the methodology.

A *substrate* is a strategy for evaluating the sparse similarity matrix
(Step 3) and the best-match selection (Step 4) over a
:class:`~repro.core.domainsets.PrefixDomainIndex`.  Two implementations
ship:

* ``"reference"`` — the literal dict-of-sets transcription of the paper:
  every candidate pair materializes a Python ``set`` of shared domains
  up front (:func:`~repro.core.detection.compute_pair_stats` followed by
  :func:`~repro.core.detection.select_best_matches`).  Easy to audit,
  pays per-pair object overhead.
* ``"columnar"`` — the production engine.  Domains and prefixes are
  interned into dense integer ids, group memberships become sorted
  posting lists in CSR layout (``array('I')`` data + offsets), and the
  Step 3 accumulation runs over packed 64-bit keys
  ``(v4_row << 32) | v6_row`` so no per-pair Python containers exist.
  Shared-domain sets materialize lazily, only for the pairs that survive
  best-match selection.

A third engine, ``"sharded"`` (:mod:`repro.core.parallel`), extends the
columnar substrate by partitioning the packed pair space by v4 group
key and running the Step 3 accumulation in ``multiprocessing`` workers;
it registers itself here on import and falls back to the columnar path
on small inputs.

Both substrates are exact: for the same index, metric and mode they
produce identical :class:`~repro.core.siblings.SiblingSet` contents
(pairs, similarities, tie sets and shared-domain sets) — enforced by
``tests/test_substrate_equivalence.py``.

The columnar intern pool lives on the substrate *instance*, so passing
one instance through a longitudinal run reuses the interned domain table
across snapshots (see :func:`repro.analysis.pipeline.detect_series`).
:func:`get_substrate` resolves names to a process-wide shared instance.

The columnar state model is *persistent-with-retraction*: the prepared
state carries the Step-3 counter across calls, and when the underlying
index mutates through :meth:`~repro.core.domainsets.PrefixDomainIndex.
apply_delta`, :meth:`ColumnarSubstrate.prepare` patches the cached state
and counter in place (retracting the removed domains' packed pair
contributions, adding the new ones) instead of rebuilding — the engine
room of ``detect_series(..., incremental=True)``.
"""

from __future__ import annotations

import abc
from array import array
from typing import ClassVar, Iterable, NamedTuple

from repro.core.detection import (
    TIE_EPSILON,
    BestMatchMode,
    compute_pair_stats,
    select_best_matches,
)
from repro.core.domainsets import PrefixDomainIndex
from repro.core.kernels import PairCounts, get_kernel, kernel_name
from repro.core.siblings import SiblingPair, SiblingSet
from repro.nettypes.prefix import Prefix
from repro.obs.tracing import trace

_LOW32 = 0xFFFFFFFF


class GroupStats(NamedTuple):
    """Set-level domain statistics for a group of prefixes per family.

    Produced by :meth:`Substrate.group_stats` and consumed by the
    sibling-set-pair construction (:mod:`repro.core.setpairs`).
    """

    shared_domains: frozenset[str]
    v4_domain_count: int
    v6_domain_count: int


class Substrate(abc.ABC):
    """Strategy interface for Step 3-4 execution.

    Implementations must be exact — substrates trade speed and memory
    layout, never results.
    """

    #: Registry key, also shown in CLI help.
    name: ClassVar[str]

    @abc.abstractmethod
    def select(
        self,
        index: PrefixDomainIndex,
        metric: str = "jaccard",
        mode: BestMatchMode = BestMatchMode.EITHER,
    ) -> SiblingSet:
        """Run Steps 3-4 over *index* and return the sibling pairs."""

    @abc.abstractmethod
    def group_stats(
        self,
        index: PrefixDomainIndex,
        v4_prefixes: Iterable[Prefix],
        v6_prefixes: Iterable[Prefix],
    ) -> GroupStats:
        """Domain-set statistics for a (v4 group, v6 group) pair.

        The shared set is the intersection of the families' domain
        unions; the counts are the union sizes per family.
        """


class ReferenceSubstrate(Substrate):
    """The paper-literal dict-of-sets path, kept as the oracle.

    Stateless; every call re-derives everything from the index.
    """

    name = "reference"

    def select(
        self,
        index: PrefixDomainIndex,
        metric: str = "jaccard",
        mode: BestMatchMode = BestMatchMode.EITHER,
    ) -> SiblingSet:
        """Steps 3-4 via eager :class:`~repro.core.detection.PairStats`."""
        return select_best_matches(
            compute_pair_stats(index), index, metric=metric, mode=mode
        )

    def group_stats(
        self,
        index: PrefixDomainIndex,
        v4_prefixes: Iterable[Prefix],
        v6_prefixes: Iterable[Prefix],
    ) -> GroupStats:
        """Union the per-prefix domain sets with plain Python sets."""
        domains_v4: set[str] = set()
        for prefix in v4_prefixes:
            domains_v4 |= index.domains_of(prefix)
        domains_v6: set[str] = set()
        for prefix in v6_prefixes:
            domains_v6 |= index.domains_of(prefix)
        return GroupStats(
            shared_domains=frozenset(domains_v4 & domains_v6),
            v4_domain_count=len(domains_v4),
            v6_domain_count=len(domains_v6),
        )


class _ColumnarState:
    """Interned, columnar view of one :class:`PrefixDomainIndex`.

    Built once per (index, intern pool) and cached on the index object;
    every field is positional/flat so Step 3 touches only machine-sized
    integers.
    """

    __slots__ = (
        "v4_prefixes",
        "v6_prefixes",
        "v4_row_of",
        "v6_row_of",
        "v4_sizes",
        "v6_sizes",
        "dom_bases",
        "dom_rows",
        "dom_pos",
        "free_positions",
        "counts",
        "v4_post_data",
        "v4_post_offsets",
        "v6_post_data",
        "v6_post_offsets",
        "_v4_gid_sets",
        "_v6_gid_sets",
    )

    def __init__(self, index: PrefixDomainIndex, intern_domain) -> None:
        # Dense per-snapshot rows for each family's prefixes.  The row,
        # not the prefix object, is what Step 3 packs into its keys.
        self.v4_prefixes: list[Prefix] = list(index.v4_domains)
        self.v6_prefixes: list[Prefix] = list(index.v6_domains)
        # v4 rows are stored premultiplied (<< 32) so the accumulation
        # loop packs keys with a single OR.
        self.v4_row_of = {
            prefix: row << 32 for row, prefix in enumerate(self.v4_prefixes)
        }
        self.v6_row_of = {
            prefix: row for row, prefix in enumerate(self.v6_prefixes)
        }
        self.v4_sizes = array("I", (len(s) for s in index.v4_domains.values()))
        self.v6_sizes = array("I", (len(s) for s in index.v6_domains.values()))

        # Per-domain membership rows — the transposed view Step 3 walks.
        # The v6 side is looked up by domain key (not zipped positionally)
        # so the two rows always describe the same domain even if the
        # index dicts were populated in different orders.
        v4_row_of = self.v4_row_of
        v6_row_of = self.v6_row_of
        domain_v6_prefixes = index.domain_v6_prefixes
        self.dom_bases: list[list[int]] = []
        self.dom_rows: list[list[int]] = []
        #: domain → its position in dom_bases/dom_rows, so delta patching
        #: can retract exactly the rows a domain contributed.
        self.dom_pos: dict[str, int] = {}
        for position, (domain, v4_prefixes) in enumerate(
            index.domain_v4_prefixes.items()
        ):
            self.dom_pos[domain] = position
            self.dom_bases.append([v4_row_of[p] for p in v4_prefixes])
            self.dom_rows.append(
                [v6_row_of[p] for p in domain_v6_prefixes[domain]]
            )
        #: Tombstoned dom positions available for reuse by delta adds.
        self.free_positions: list[int] = []
        #: Persistent Step-3 counter (:class:`~repro.core.kernels.
        #: PairCounts`, backend per active kernel).  ``None`` until the
        #: first full accumulation; afterwards kept current by delta
        #: retract/add (:meth:`ColumnarSubstrate._patch_state`) so
        #: repeated selects and incremental runs never re-accumulate
        #: unchanged domains.
        self.counts: PairCounts | None = None

        # Per-prefix domain posting lists in CSR layout: sorted global
        # domain ids, one flat array + offsets per family.
        self.v4_post_data, self.v4_post_offsets = _build_csr(
            index.v4_domains.values(), intern_domain
        )
        self.v6_post_data, self.v6_post_offsets = _build_csr(
            index.v6_domains.values(), intern_domain
        )
        # Lazy per-row frozensets of domain ids, built on first
        # materialization of a surviving pair.
        self._v4_gid_sets: dict[int, frozenset[int]] = {}
        self._v6_gid_sets: dict[int, frozenset[int]] = {}

    def v4_gids(self, row: int) -> frozenset[int]:
        """Domain-id set of v4 prefix *row* (cached/patched overlay)."""
        gids = self._v4_gid_sets.get(row)
        if gids is None:
            offsets = self.v4_post_offsets
            if row + 1 >= len(offsets):
                # Row allocated by delta patching after the CSR build;
                # its membership lives only in the overlay, which the
                # patch fills for every touched prefix.
                gids = frozenset()
            else:
                gids = frozenset(
                    self.v4_post_data[offsets[row] : offsets[row + 1]]
                )
            self._v4_gid_sets[row] = gids
        return gids

    def v6_gids(self, row: int) -> frozenset[int]:
        """Domain-id set of v6 prefix *row* (cached/patched overlay)."""
        gids = self._v6_gid_sets.get(row)
        if gids is None:
            offsets = self.v6_post_offsets
            if row + 1 >= len(offsets):
                gids = frozenset()
            else:
                gids = frozenset(
                    self.v6_post_data[offsets[row] : offsets[row + 1]]
                )
            self._v6_gid_sets[row] = gids
        return gids

    # -- delta patching support ------------------------------------------------

    def v4_base_for(self, prefix: Prefix) -> int:
        """The premultiplied v4 row for *prefix*, allocating if unseen."""
        base = self.v4_row_of.get(prefix)
        if base is None:
            base = len(self.v4_prefixes) << 32
            self.v4_prefixes.append(prefix)
            self.v4_row_of[prefix] = base
            self.v4_sizes.append(0)
        return base

    def v6_row_for(self, prefix: Prefix) -> int:
        """The v6 row for *prefix*, allocating if unseen."""
        row = self.v6_row_of.get(prefix)
        if row is None:
            row = len(self.v6_prefixes)
            self.v6_prefixes.append(prefix)
            self.v6_row_of[prefix] = row
            self.v6_sizes.append(0)
        return row


def _build_csr(
    domain_sets: Iterable[set[str]], intern_domain
) -> tuple[array, array]:
    """Sorted posting lists for an iterable of domain sets, CSR layout."""
    data = array("I")
    offsets = array("I", [0])
    for domains in domain_sets:
        data.extend(sorted(map(intern_domain, domains)))
        offsets.append(len(data))
    return data, offsets


def accumulate_rowlists(dom_bases, dom_rows) -> PairCounts:
    """Step-3 accumulation over aligned (bases, rows) membership lists.

    The single-process accumulation entry, shared by the full
    :meth:`ColumnarSubstrate.pair_counts` pass and the delta retract/add
    passes (which feed it only the touched domains' rows).  Executes on
    the active kernel (:func:`repro.core.kernels.get_kernel`) —
    vectorized numpy batch ops when available, the bit-identical
    stdlib ``Counter`` loop otherwise.
    """
    return get_kernel().accumulate_rowlists(dom_bases, dom_rows)


class _ColumnarCacheEntry:
    """The per-index cache slot for one prepared columnar state.

    Tracks which substrate instance and intern-pool generation built the
    state, plus the index version/fingerprint it is current for — the
    keys :meth:`ColumnarSubstrate.prepare` checks before reusing or
    patching it.
    """

    __slots__ = ("owner", "generation", "version", "fingerprint", "state")

    def __init__(self, owner, generation, version, fingerprint, state):
        self.owner = owner
        self.generation = generation
        self.version = version
        self.fingerprint = fingerprint
        self.state = state


class ColumnarSubstrate(Substrate):
    """Interned-id, posting-list execution of Steps 3-4.

    The domain intern table persists on the instance, so reusing one
    substrate across snapshots (longitudinal runs, SP-Tuner sweeps)
    hashes every domain string exactly once.
    """

    name = "columnar"

    _STATE_ATTR = "_columnar_state"

    def __init__(self) -> None:
        self._domain_gids: dict[str, int] = {}
        self._domain_names: list[str] = []
        #: Bumped by :meth:`reset_pool`; cached states from older
        #: generations reference retired ids and must not be reused.
        self._generation = 0

    # -- interning -----------------------------------------------------------

    def _intern_domain(self, domain: str) -> int:
        """Dense id for *domain*, allocated on first sight."""
        gid = self._domain_gids.get(domain)
        if gid is None:
            gid = len(self._domain_names)
            self._domain_gids[domain] = gid
            self._domain_names.append(domain)
        return gid

    @property
    def interned_domain_count(self) -> int:
        """How many distinct domains this pool has seen (all snapshots)."""
        return len(self._domain_names)

    def intern(self, domain: str) -> int:
        """Public interning hook: the dense pool gid for *domain*.

        Used by the snapshot archive (:mod:`repro.storage`) to encode
        shared-domain sets as gids against the same pool the substrate
        persists.
        """
        return self._intern_domain(domain)

    def export_pool(self) -> list[str]:
        """A snapshot copy of the interned pool, gid order.

        Position *i* is the domain with gid *i* — the exact layout the
        archive's ``pool.*`` segments persist.
        """
        return list(self._domain_names)

    def adopt_pool(self, names: Iterable[str]) -> None:
        """Align this substrate's intern pool with an archived one.

        Interns every name in order and then verifies positions:
        archived gids are positional, so the archived pool must end up
        a prefix of (or equal to) this instance's pool.  A fresh
        instance adopts wholesale; an instance whose pool already
        diverged raises ``ValueError`` — the caller should fall back
        to a full rebuild with a fresh substrate rather than mix two
        gid spaces.
        """
        names = list(names)
        for name in names:
            self._intern_domain(name)
        if self._domain_names[: len(names)] != names:
            raise ValueError(
                "cannot adopt archived domain pool: this substrate's "
                "intern pool already diverged from it"
            )

    def reset_pool(self) -> None:
        """Drop the interned domain table.

        The pool otherwise grows with every distinct domain this
        instance ever sees — fine within one study, unbounded in a
        long-lived process hopping across unrelated universes.  Cached
        columnar states referencing the old ids become stale; they are
        invalidated here so the next :meth:`prepare` rebuilds.
        """
        self._domain_gids = {}
        self._domain_names = []
        self._generation += 1

    # -- state management ----------------------------------------------------

    def columnarize(self, index: PrefixDomainIndex) -> _ColumnarState:
        """Build the columnar view of *index* (no caching).

        This is the Steps 1-2 conversion cost; :meth:`prepare` caches the
        result on the index so repeated Step 3 runs don't pay it again.
        """
        return _ColumnarState(index, self._intern_domain)

    @staticmethod
    def _fingerprint(index: PrefixDomainIndex) -> tuple[int, ...]:
        """Cheap staleness signature of the index's group structure."""
        return (
            len(index.domain_v4_prefixes),
            len(index.v4_domains),
            len(index.v6_domains),
            sum(len(s) for s in index.v4_domains.values()),
            sum(len(s) for s in index.v6_domains.values()),
        )

    @staticmethod
    def _state_fingerprint(state: _ColumnarState) -> tuple[int, ...]:
        """:meth:`_fingerprint` as derivable from a columnar state.

        Emptied groups keep their rows at size 0 (the index deletes the
        key), so non-zero sizes count the index's groups and the size
        sums its memberships — a cheap integer pass that lets the patch
        path cross-check itself against the index without rebuilding.
        """
        return (
            len(state.dom_pos),
            sum(1 for size in state.v4_sizes if size),
            sum(1 for size in state.v6_sizes if size),
            sum(state.v4_sizes),
            sum(state.v6_sizes),
        )

    def prepare(self, index: PrefixDomainIndex) -> _ColumnarState:
        """Cached :meth:`columnarize`, keyed on this substrate's pool.

        Freshness is keyed on the index's mutation :attr:`~repro.core.
        domainsets.PrefixDomainIndex.version`: when the version moved and
        the index's delta log still covers the gap, the cached state is
        *patched* in place (:meth:`_patch_state`) — O(touched domains),
        with the persistent Step-3 counter retracted/re-added — instead
        of rebuilt.  A broken chain (``mark_mutated``, trimmed log, or a
        pool reset) rebuilds from scratch.  The structural fingerprint
        stays as a safety net against legacy in-place edits that never
        bumped the version; count-preserving edits *must* bump it.
        """
        fingerprint = self._fingerprint(index)
        version = index.version
        cached = getattr(index, self._STATE_ATTR, None)
        if (
            cached is not None
            and cached.owner is self
            and cached.generation == self._generation
        ):
            if cached.version == version and cached.fingerprint == fingerprint:
                return cached.state
            if cached.version != version:
                deltas = index.deltas_since(cached.version)
                if deltas is not None:
                    with trace("step12.patch", items=len(deltas)):
                        for delta in deltas:
                            self._patch_state(cached.state, index, delta)
                    # The safety net survives the patch path: the patched
                    # state's own structure must land on the index's
                    # fingerprint — an unmarked hand-edit hiding behind
                    # the deltas shows up as drift and forces a rebuild.
                    if self._state_fingerprint(cached.state) == fingerprint:
                        cached.version = version
                        cached.fingerprint = fingerprint
                        return cached.state
        with trace("step12.columnarize") as span:
            state = self.columnarize(index)
            span.add_items(len(state.dom_pos))
        setattr(
            index,
            self._STATE_ATTR,
            _ColumnarCacheEntry(
                self, self._generation, version, fingerprint, state
            ),
        )
        return state

    def adopt_state(self, index: PrefixDomainIndex, state: _ColumnarState) -> None:
        """Attach a restored columnar *state* as *index*'s cached view.

        The resume hook of the snapshot archive
        (:func:`repro.storage.substrate_io.restore_state`): instead of
        :meth:`columnarize`-ing a freshly rebuilt index and
        re-accumulating Step 3 from scratch, the archived state — CSR
        posting lists, row tables, and the persistent Step-3 counter —
        is adopted wholesale.  The structural fingerprint of the state
        must land exactly on the index's (the same cross-check the
        delta-patch path uses); a mismatch raises ``ValueError`` and
        the caller should fall back to a full rebuild.
        """
        fingerprint = self._fingerprint(index)
        if self._state_fingerprint(state) != fingerprint:
            raise ValueError(
                "archived columnar state does not match this index's "
                "group structure; rebuild instead of adopting"
            )
        setattr(
            index,
            self._STATE_ATTR,
            _ColumnarCacheEntry(
                self, self._generation, index.version, fingerprint, state
            ),
        )

    # -- incremental patching --------------------------------------------------

    def _patch_state(self, state: _ColumnarState, index: PrefixDomainIndex, delta) -> None:
        """Replay one :class:`~repro.core.domainsets.IndexDelta` onto *state*.

        Retracts the removed domains' membership rows, adds the new
        ones (reusing tombstoned positions), refreshes the sizes and
        posting-list overlay of every touched prefix from the already
        mutated index, and — when the persistent counter exists —
        retracts/adds exactly those domains' packed pair contributions
        against it.  Equivalent by construction to a from-scratch
        rebuild + full re-accumulation on the mutated index.
        """
        retract_bases: list[list[int]] = []
        retract_rows: list[list[int]] = []
        add_bases: list[list[int]] = []
        add_rows: list[list[int]] = []
        touched_v4: set[Prefix] = set()
        touched_v6: set[Prefix] = set()

        for domain, v4_prefixes, v6_prefixes in delta.removed:
            position = state.dom_pos.pop(domain)
            retract_bases.append(state.dom_bases[position])
            retract_rows.append(state.dom_rows[position])
            state.dom_bases[position] = []
            state.dom_rows[position] = []
            state.free_positions.append(position)
            touched_v4 |= v4_prefixes
            touched_v6 |= v6_prefixes
        for domain, v4_prefixes, v6_prefixes in delta.added:
            bases = [state.v4_base_for(p) for p in v4_prefixes]
            rows = [state.v6_row_for(p) for p in v6_prefixes]
            if state.free_positions:
                position = state.free_positions.pop()
                state.dom_bases[position] = bases
                state.dom_rows[position] = rows
            else:
                position = len(state.dom_bases)
                state.dom_bases.append(bases)
                state.dom_rows.append(rows)
            state.dom_pos[domain] = position
            add_bases.append(bases)
            add_rows.append(rows)
            touched_v4 |= v4_prefixes
            touched_v6 |= v6_prefixes

        # Refresh sizes and the gid overlay from the (already mutated)
        # index — the CSR arrays stay untouched; touched rows answer
        # from the overlay instead.
        # Allocation (not plain lookup) also for removal-touched rows: a
        # delta recorded after an unmarked hand-edit can mention a prefix
        # this state never saw; allocating keeps the patch total, and the
        # fingerprint cross-check in prepare() decides whether the
        # patched state is actually usable.
        intern = self._intern_domain
        for prefix in touched_v4:
            row = state.v4_base_for(prefix) >> 32
            members = index.v4_domains.get(prefix, ())
            state.v4_sizes[row] = len(members)
            state._v4_gid_sets[row] = frozenset(map(intern, members))
        for prefix in touched_v6:
            row = state.v6_row_for(prefix)
            members = index.v6_domains.get(prefix, ())
            state.v6_sizes[row] = len(members)
            state._v6_gid_sets[row] = frozenset(map(intern, members))

        counts = state.counts
        if counts is None:
            return
        counts.patch(
            self._accumulate_rows(retract_bases, retract_rows)
            if retract_bases
            else None,
            self._accumulate_rows(add_bases, add_rows) if add_bases else None,
        )

    def _accumulate_rows(self, dom_bases, dom_rows) -> PairCounts:
        """Accumulate packed pair counts for a subset of domains' rows.

        The delta-sized sibling of :meth:`pair_counts`; parallel engines
        override it to route the rows through the same shard partition
        as a full run.
        """
        return accumulate_rowlists(dom_bases, dom_rows)

    # -- Steps 3-4 -----------------------------------------------------------

    @staticmethod
    def pair_counts(state: _ColumnarState) -> PairCounts:
        """Step 3: shared-domain counts per packed ``(v4 << 32) | v6`` key.

        One flat pass over the per-domain membership rows, executed on
        the active kernel (vectorized numpy expansion + unique, or the
        stdlib Counter loop).
        """
        return accumulate_rowlists(state.dom_bases, state.dom_rows)

    def select(
        self,
        index: PrefixDomainIndex,
        metric: str = "jaccard",
        mode: BestMatchMode = BestMatchMode.EITHER,
    ) -> SiblingSet:
        """Steps 3-4 over packed keys; see the module docstring.

        The Step-3 counter persists on the prepared state: the first
        call accumulates it in full, later calls reuse it as-is, and
        delta patching (:meth:`_patch_state`) keeps it current across
        index mutations — the substrate state model is
        persistent-with-retraction, not per-call.
        """
        state = self.prepare(index)
        counts = state.counts
        if counts is None:
            with trace("step3.accumulate", kernel=kernel_name()) as span:
                counts = self.pair_counts(state)
                span.add_items(len(counts))
            state.counts = counts
        with trace("step4.select", kernel=kernel_name()) as step4:
            v4_sizes = state.v4_sizes
            v6_sizes = state.v6_sizes

            # The scoring + best-match fold runs on the active kernel
            # (vectorized metric columns and np.maximum.at bests, or
            # the scalar two-pass loop); the mode predicate is
            # specialized here once.
            want_v4 = mode in (BestMatchMode.EITHER, BestMatchMode.BOTH, BestMatchMode.V4_ONLY)
            want_v6 = mode in (BestMatchMode.EITHER, BestMatchMode.BOTH, BestMatchMode.V6_ONLY)
            need_both = mode is BestMatchMode.BOTH
            kept_keys, kept_values, scored = get_kernel().select_scored(
                counts,
                v4_sizes,
                v6_sizes,
                metric,
                want_v4,
                want_v6,
                need_both,
                TIE_EPSILON,
            )

            result = SiblingSet(index.date)
            v4_prefixes = state.v4_prefixes
            v6_prefixes = state.v6_prefixes
            names = self._domain_names
            for key, value in zip(kept_keys, kept_values):
                a = key >> 32
                b = key & _LOW32
                # Lazy materialization: only surviving pairs intersect their
                # posting lists and map ids back to domain strings.
                gids_a = state.v4_gids(a)
                gids_b = state.v6_gids(b)
                result.add(
                    SiblingPair(
                        v4_prefix=v4_prefixes[a],
                        v6_prefix=v6_prefixes[b],
                        similarity=value,
                        shared_domains=frozenset(
                            map(names.__getitem__, gids_a & gids_b)
                        ),
                        v4_domain_count=v4_sizes[a],
                        v6_domain_count=v6_sizes[b],
                    )
                )
            step4.add_items(scored)
        return result

    def group_stats(
        self,
        index: PrefixDomainIndex,
        v4_prefixes: Iterable[Prefix],
        v6_prefixes: Iterable[Prefix],
    ) -> GroupStats:
        """Union the posting lists in id space, intersect, map back."""
        state = self.prepare(index)
        gids_v4: set[int] = set()
        for prefix in v4_prefixes:
            base = state.v4_row_of.get(prefix)
            if base is not None:
                gids_v4 |= state.v4_gids(base >> 32)
        gids_v6: set[int] = set()
        for prefix in v6_prefixes:
            row = state.v6_row_of.get(prefix)
            if row is not None:
                gids_v6 |= state.v6_gids(row)
        names = self._domain_names
        return GroupStats(
            shared_domains=frozenset(
                map(names.__getitem__, gids_v4 & gids_v6)
            ),
            v4_domain_count=len(gids_v4),
            v6_domain_count=len(gids_v6),
        )


#: Registered substrate classes, keyed by CLI/registry name.
SUBSTRATES: dict[str, type[Substrate]] = {
    ReferenceSubstrate.name: ReferenceSubstrate,
    ColumnarSubstrate.name: ColumnarSubstrate,
}

#: The engine used when callers don't ask for a specific one.
DEFAULT_SUBSTRATE = ColumnarSubstrate.name

_shared_instances: dict[str, Substrate] = {}


def _ensure_registered() -> None:
    """Import the modules whose substrates register on import.

    :mod:`repro.core.parallel` depends on this module, so it cannot be
    imported at the top without a cycle; resolving lazily here keeps
    ``get_substrate("sharded")`` working no matter which module the
    process imported first.
    """
    from repro.core import parallel  # noqa: F401  (registers "sharded")


def get_substrate(
    spec: "str | Substrate | None" = None, workers: int | None = None
) -> Substrate:
    """Resolve *spec* to a substrate instance.

    ``None`` means :data:`DEFAULT_SUBSTRATE`.  Names resolve to a
    process-wide shared instance (so the columnar intern pool is reused
    across calls); pass an explicit instance for an isolated pool.  The
    shared pool grows with every distinct domain seen process-wide —
    long-lived processes crossing unrelated universes should call
    ``get_substrate().reset_pool()`` between studies or use per-study
    instances.

    *workers* configures engines that execute in parallel (the sharded
    substrate's worker-process count; ``0`` means ``os.cpu_count()``).
    Substrates without a worker pool ignore it.  The knob never leaks
    between callers: resolving a *name* with ``workers=None`` resets
    the shared instance to its class default, while passing an explicit
    :class:`Substrate` instance leaves its configuration untouched
    unless *workers* is given (so e.g. ``detect_series`` can configure
    an engine once and thread it through per-date calls).  A caller
    that needs a worker count pinned across unrelated calls should own
    its instance (``ShardedSubstrate(workers=...)``) rather than rely
    on the name-resolved singleton, which any caller may reconfigure.
    """
    _ensure_registered()
    if isinstance(spec, Substrate):
        instance = spec
    else:
        name = DEFAULT_SUBSTRATE if spec is None else spec
        try:
            factory = SUBSTRATES[name]
        except KeyError:
            raise KeyError(
                f"unknown substrate {name!r}; choose from {sorted(SUBSTRATES)}"
            ) from None
        instance = _shared_instances.get(name)
        if instance is None:
            instance = factory()
            _shared_instances[name] = instance
        if workers is None:
            default_workers = getattr(type(instance), "DEFAULT_WORKERS", None)
            if default_workers is not None:
                instance.workers = default_workers
    if workers is not None and hasattr(instance, "workers"):
        instance.workers = workers
    return instance
