"""Steps 3-4: the similarity matrix and best-match sibling selection.

Step 3 evaluates the chosen similarity metric for every (IPv4 prefix,
IPv6 prefix) pair that shares at least one dual-stack domain — the sparse
non-zero region of the paper's "Jaccard similarity matrix".  Step 4 keeps
each prefix's best match(es), ties included; pairs with similarity 0 never
materialize.

*How* Steps 3-4 execute is delegated to a pluggable substrate
(:mod:`repro.core.substrate`): the ``"reference"`` substrate runs the
dict-of-sets transcription in this module
(:func:`compute_pair_stats` + :func:`select_best_matches`), while the
default ``"columnar"`` substrate interns domains and prefixes into dense
ids and accumulates over packed integer keys.  Both are exact;
:func:`detect_siblings` and :func:`detect_with_index` accept a
``substrate=`` argument (a registry name or instance) to pick one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.bgp.routeviews import PrefixAnnotator
from repro.core.domainsets import PrefixDomainIndex, build_index
from repro.core.metrics import METRICS_FROM_COUNTS
from repro.core.siblings import SiblingPair, SiblingSet
from repro.dns.openintel import DnsSnapshot
from repro.nettypes.prefix import Prefix

if TYPE_CHECKING:  # runtime import would be circular; see substrate.py
    from repro.core.substrate import Substrate


class BestMatchMode(enum.Enum):
    """How Step 4 selects sibling pairs from the similarity matrix.

    The paper keeps the pairs achieving the highest similarity "for the
    corresponding IPv4 and IPv6 prefixes"; ``EITHER`` (the default)
    realizes that as the union of per-IPv4-prefix maxima and
    per-IPv6-prefix maxima.  The other modes are ablation variants.
    """

    EITHER = "either"
    BOTH = "both"
    V4_ONLY = "v4"
    V6_ONLY = "v6"


@dataclass(frozen=True, slots=True)
class PairStats:
    """Raw counts for one candidate prefix pair."""

    v4_prefix: Prefix
    v6_prefix: Prefix
    shared_domains: frozenset[str]
    v4_domain_count: int
    v6_domain_count: int

    def similarity(self, metric: str) -> float:
        """Evaluate the named metric over this pair's counts."""
        fn = METRICS_FROM_COUNTS[metric]
        return fn(len(self.shared_domains), self.v4_domain_count, self.v6_domain_count)


def compute_pair_stats(index: PrefixDomainIndex) -> list[PairStats]:
    """All prefix pairs with a non-empty domain intersection (Step 3)."""
    shared: dict[tuple[Prefix, Prefix], set[str]] = {}
    for domain, v4_prefixes in index.domain_v4_prefixes.items():
        v6_prefixes = index.domain_v6_prefixes[domain]
        for v4_prefix in v4_prefixes:
            for v6_prefix in v6_prefixes:
                shared.setdefault((v4_prefix, v6_prefix), set()).add(domain)
    return [
        PairStats(
            v4_prefix=v4_prefix,
            v6_prefix=v6_prefix,
            shared_domains=frozenset(domains),
            v4_domain_count=len(index.v4_domains[v4_prefix]),
            v6_domain_count=len(index.v6_domains[v6_prefix]),
        )
        for (v4_prefix, v6_prefix), domains in shared.items()
    ]


#: Tolerance when comparing a pair's similarity against a prefix's
#: maximum — shared by every substrate so tie sets agree exactly.
TIE_EPSILON = 1e-12


def select_best_matches(
    stats: list[PairStats],
    index: PrefixDomainIndex,
    metric: str = "jaccard",
    mode: BestMatchMode = BestMatchMode.EITHER,
) -> SiblingSet:
    """Step 4: keep each prefix's maximum-similarity pairs (ties kept)."""
    best_v4: dict[Prefix, float] = {}
    best_v6: dict[Prefix, float] = {}
    scored: list[tuple[PairStats, float]] = []
    for pair in stats:
        value = pair.similarity(metric)
        if value <= 0.0:
            continue
        scored.append((pair, value))
        if value > best_v4.get(pair.v4_prefix, 0.0):
            best_v4[pair.v4_prefix] = value
        if value > best_v6.get(pair.v6_prefix, 0.0):
            best_v6[pair.v6_prefix] = value

    result = SiblingSet(index.date)
    for pair, value in scored:
        is_best_v4 = value >= best_v4[pair.v4_prefix] - TIE_EPSILON
        is_best_v6 = value >= best_v6[pair.v6_prefix] - TIE_EPSILON
        keep = {
            BestMatchMode.EITHER: is_best_v4 or is_best_v6,
            BestMatchMode.BOTH: is_best_v4 and is_best_v6,
            BestMatchMode.V4_ONLY: is_best_v4,
            BestMatchMode.V6_ONLY: is_best_v6,
        }[mode]
        if keep:
            result.add(
                SiblingPair(
                    v4_prefix=pair.v4_prefix,
                    v6_prefix=pair.v6_prefix,
                    similarity=value,
                    shared_domains=pair.shared_domains,
                    v4_domain_count=pair.v4_domain_count,
                    v6_domain_count=pair.v6_domain_count,
                )
            )
    return result


def detect_siblings(
    snapshot: DnsSnapshot,
    annotator: PrefixAnnotator,
    metric: str = "jaccard",
    mode: BestMatchMode = BestMatchMode.EITHER,
    substrate: "str | Substrate | None" = None,
    workers: int | None = None,
) -> SiblingSet:
    """The full four-step pipeline on one snapshot.

    *substrate* picks the Step 3-4 engine — a name from
    :data:`repro.core.substrate.SUBSTRATES` or a
    :class:`~repro.core.substrate.Substrate` instance; ``None`` means the
    default (columnar).  *workers* configures parallel engines (the
    ``"sharded"`` substrate's process count; ``0`` = all cores) and is
    ignored by single-process substrates.

    >>> siblings = detect_siblings(universe.snapshot_at(date),
    ...                            universe.annotator_at(date))   # doctest: +SKIP
    """
    return detect_with_index(
        snapshot,
        annotator,
        metric=metric,
        mode=mode,
        substrate=substrate,
        workers=workers,
    )[0]


def detect_with_index(
    snapshot: DnsSnapshot,
    annotator: PrefixAnnotator,
    metric: str = "jaccard",
    mode: BestMatchMode = BestMatchMode.EITHER,
    substrate: "str | Substrate | None" = None,
    workers: int | None = None,
) -> tuple[SiblingSet, PrefixDomainIndex]:
    """Like :func:`detect_siblings` but also returns the index, which the
    SP-Tuner and several analyses need."""
    from repro.core.substrate import get_substrate
    from repro.obs.tracing import trace

    with trace("step12.build_index") as span:
        index = build_index(snapshot, annotator)
        span.add_items(len(index.domain_v4_prefixes))
    engine = get_substrate(substrate, workers=workers)
    with trace("step34.select") as span:
        result = engine.select(index, metric=metric, mode=mode)
        span.add_items(len(result))
    return result, index
