"""Steps 1-2 of the methodology: dual-stack domains → prefix groups.

Takes one measurement snapshot, keeps the dual-stack domains, maps every
address to its BGP prefix through the annotator (with the paper's
reserved-address discard and Routeviews fallback), and groups domains by
prefix per family.  The resulting :class:`PrefixDomainIndex` is the input
to both the similarity matrix (Step 3) and the SP-Tuner tries.

The index itself stays a dict-of-sets; the Step 3-4 substrates
(:mod:`repro.core.substrate`) derive their own layouts from it.  The
columnar substrate caches its interned posting-list view directly on the
index object (one conversion per snapshot), so repeated detection runs —
different metrics, best-match modes, or SP-Tuner sweeps — reuse it.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Iterable

from repro.bgp.routeviews import PrefixAnnotator
from repro.dns.openintel import DnsSnapshot
from repro.nettypes.addr import IPV4, IPV6
from repro.nettypes.prefix import Prefix


@dataclass
class PrefixDomainIndex:
    """Bidirectional domain ↔ prefix grouping for one snapshot."""

    date: datetime.date
    #: prefix → dual-stack domains with at least one address inside it.
    v4_domains: dict[Prefix, set[str]] = field(default_factory=dict)
    v6_domains: dict[Prefix, set[str]] = field(default_factory=dict)
    #: domain → prefixes of its addresses.
    domain_v4_prefixes: dict[str, set[Prefix]] = field(default_factory=dict)
    domain_v6_prefixes: dict[str, set[Prefix]] = field(default_factory=dict)
    #: domain → concrete addresses (consumed by the SP-Tuner tries).
    domain_v4_addresses: dict[str, tuple[int, ...]] = field(default_factory=dict)
    domain_v6_addresses: dict[str, tuple[int, ...]] = field(default_factory=dict)
    #: DS domains dropped because no address annotated on one family
    #: (reserved/unrouted).
    dropped_domains: int = 0

    @property
    def domain_count(self) -> int:
        return len(self.domain_v4_prefixes)

    @property
    def v4_prefix_count(self) -> int:
        return len(self.v4_domains)

    @property
    def v6_prefix_count(self) -> int:
        return len(self.v6_domains)

    def domains_of(self, prefix: Prefix) -> frozenset[str]:
        """The DS domains grouped under *prefix* (empty if unknown)."""
        table = self.v4_domains if prefix.version == IPV4 else self.v6_domains
        return frozenset(table.get(prefix, ()))

    def origin_asns(self, annotator_rib) -> tuple[set[int], set[int]]:
        """Origin AS sets of the indexed v4 and v6 prefixes."""
        v4 = set()
        for prefix in self.v4_domains:
            route = annotator_rib.exact_route(prefix)
            if route is not None:
                v4.update(route.origins)
        v6 = set()
        for prefix in self.v6_domains:
            route = annotator_rib.exact_route(prefix)
            if route is not None:
                v6.update(route.origins)
        return v4, v6


def build_index_from_entries(
    date: datetime.date,
    entries: "Iterable[tuple[str, Iterable[int], Iterable[int]]]",
    annotator: PrefixAnnotator,
) -> PrefixDomainIndex:
    """Group arbitrary (label, v4 addrs, v6 addrs) entries by prefix.

    The methodology only needs "a mapping from a prefix to a set"
    (Section 3.7) — the label can be a domain, an MX exchange's mail
    domain, or a reverse-DNS host name.
    """
    index = PrefixDomainIndex(date=date)
    for label, raw_v4, raw_v6 in entries:
        v4_prefixes: set[Prefix] = set()
        v4_addresses: list[int] = []
        for address in raw_v4:
            route = annotator.annotate(IPV4, address)
            if route is not None:
                v4_prefixes.add(route.prefix)
                v4_addresses.append(address)
        v6_prefixes: set[Prefix] = set()
        v6_addresses: list[int] = []
        for address in raw_v6:
            route = annotator.annotate(IPV6, address)
            if route is not None:
                v6_prefixes.add(route.prefix)
                v6_addresses.append(address)
        if not v4_prefixes or not v6_prefixes:
            # All addresses of one family were reserved or unrouted: the
            # entry is no longer usable for prefix pairing.
            index.dropped_domains += 1
            continue
        index.domain_v4_prefixes[label] = v4_prefixes
        index.domain_v6_prefixes[label] = v6_prefixes
        index.domain_v4_addresses[label] = tuple(v4_addresses)
        index.domain_v6_addresses[label] = tuple(v6_addresses)
        for prefix in v4_prefixes:
            index.v4_domains.setdefault(prefix, set()).add(label)
        for prefix in v6_prefixes:
            index.v6_domains.setdefault(prefix, set()).add(label)
    return index


def build_index(
    snapshot: DnsSnapshot, annotator: PrefixAnnotator
) -> PrefixDomainIndex:
    """Extract DS domains and group them by annotated prefix."""
    return build_index_from_entries(
        snapshot.date,
        (
            (o.domain, o.v4_addresses, o.v6_addresses)
            for o in snapshot.dual_stack_observations()
        ),
        annotator,
    )
