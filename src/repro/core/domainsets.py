"""Steps 1-2 of the methodology: dual-stack domains → prefix groups.

Takes one measurement snapshot, keeps the dual-stack domains, maps every
address to its BGP prefix through the annotator (with the paper's
reserved-address discard and Routeviews fallback), and groups domains by
prefix per family.  The resulting :class:`PrefixDomainIndex` is the input
to both the similarity matrix (Step 3) and the SP-Tuner tries.

The index itself stays a dict-of-sets; the Step 3-4 substrates
(:mod:`repro.core.substrate`) derive their own layouts from it.  The
columnar substrate caches its interned posting-list view directly on the
index object (one conversion per snapshot), so repeated detection runs —
different metrics, best-match modes, or SP-Tuner sweeps — reuse it.

The index is also *incrementally maintainable*: :meth:`PrefixDomainIndex.
apply_delta` replays a :class:`~repro.dns.openintel.SnapshotDelta` in
place (re-running the Steps 1-2 annotation only for the touched domains)
and records the membership changes as an :class:`IndexDelta` in a short
log.  Substrates use that log to *patch* their cached derived views
instead of rebuilding them — the contract is the :attr:`PrefixDomainIndex.
version` counter: every mutation bumps it (external mutators must call
:meth:`PrefixDomainIndex.mark_mutated`), and any cached view keyed on an
older version is stale.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Iterable

from repro.bgp.routeviews import PrefixAnnotator
from repro.dns.openintel import DnsSnapshot, SnapshotDelta
from repro.nettypes.addr import IPV4, IPV6
from repro.nettypes.prefix import Prefix

#: How many :class:`IndexDelta` entries an index keeps for view patching;
#: a cached view lagging further behind simply rebuilds from scratch.
DELTA_LOG_LIMIT = 64

#: Sentinel distinguishing "no precomputed annotation" from the ``None``
#: that :func:`_annotate_entry` returns for an unusable entry.
_UNANNOTATED = object()


@dataclass(frozen=True, slots=True)
class IndexDelta:
    """Membership changes one :meth:`PrefixDomainIndex.apply_delta` made.

    Each entry is ``(domain, v4 prefixes, v6 prefixes)`` — for
    ``removed`` the membership the domain *had*, for ``added`` the
    membership it *gained*.  A changed domain whose annotation kept the
    exact same prefix sets (renumbering inside its prefixes) appears in
    neither: its pair contributions are unchanged by construction, which
    is precisely what makes delta application cheap under address churn.
    """

    version: int
    date: datetime.date
    removed: tuple[tuple[str, frozenset[Prefix], frozenset[Prefix]], ...]
    added: tuple[tuple[str, frozenset[Prefix], frozenset[Prefix]], ...]

    @property
    def is_empty(self) -> bool:
        return not (self.removed or self.added)


@dataclass
class PrefixDomainIndex:
    """Bidirectional domain ↔ prefix grouping for one snapshot."""

    date: datetime.date
    #: prefix → dual-stack domains with at least one address inside it.
    v4_domains: dict[Prefix, set[str]] = field(default_factory=dict)
    v6_domains: dict[Prefix, set[str]] = field(default_factory=dict)
    #: domain → prefixes of its addresses.
    domain_v4_prefixes: dict[str, set[Prefix]] = field(default_factory=dict)
    domain_v6_prefixes: dict[str, set[Prefix]] = field(default_factory=dict)
    #: domain → concrete addresses (consumed by the SP-Tuner tries).
    domain_v4_addresses: dict[str, tuple[int, ...]] = field(default_factory=dict)
    domain_v6_addresses: dict[str, tuple[int, ...]] = field(default_factory=dict)
    #: DS domains dropped because no address annotated on one family
    #: (reserved/unrouted).
    dropped_domains: int = 0
    #: The labels behind :attr:`dropped_domains` — needed so deltas can
    #: transition a domain between dropped and indexed exactly.
    dropped_labels: set[str] = field(default_factory=set, repr=False)
    #: Mutation counter.  Cached derived views (the columnar state) are
    #: keyed on it; every in-place change must bump it, either through
    #: :meth:`apply_delta` or :meth:`mark_mutated`.
    version: int = 0
    #: Recent (version, IndexDelta) entries, newest last, for view patching.
    _delta_log: list[IndexDelta] = field(
        default_factory=list, repr=False, compare=False
    )

    @property
    def domain_count(self) -> int:
        return len(self.domain_v4_prefixes)

    @property
    def v4_prefix_count(self) -> int:
        return len(self.v4_domains)

    @property
    def v6_prefix_count(self) -> int:
        return len(self.v6_domains)

    def domains_of(self, prefix: Prefix) -> frozenset[str]:
        """The DS domains grouped under *prefix* (empty if unknown)."""
        table = self.v4_domains if prefix.version == IPV4 else self.v6_domains
        return frozenset(table.get(prefix, ()))

    def content_signature(self) -> str:
        """Order-independent hex digest of the full membership content.

        Two indexes with identical domain → (v4 prefixes, v6 prefixes)
        mappings — however they were built, from scratch or through any
        delta sequence — hash identically.  The snapshot archive
        (:mod:`repro.storage`) records this per state generation and
        refuses to resume from a state whose signature does not match
        the freshly rebuilt index, so a changed scenario or date grid
        degrades to a rebuild instead of serving stale counters.
        """
        import hashlib

        digest = hashlib.sha256()
        for domain in sorted(self.domain_v4_prefixes):
            digest.update(domain.encode("utf-8"))
            digest.update(b"\x00")
            for prefix in sorted(self.domain_v4_prefixes[domain]):
                digest.update(str(prefix).encode("ascii"))
                digest.update(b";")
            digest.update(b"\x01")
            for prefix in sorted(self.domain_v6_prefixes[domain]):
                digest.update(str(prefix).encode("ascii"))
                digest.update(b";")
            digest.update(b"\x02")
        digest.update(str(self.dropped_domains).encode("ascii"))
        return digest.hexdigest()

    # -- mutation protocol ----------------------------------------------------

    def mark_mutated(self) -> None:
        """Declare an external in-place mutation of the index.

        Bumps :attr:`version` without recording an :class:`IndexDelta`,
        so cached derived views cannot patch across the change and must
        rebuild.  Anything that edits the membership dicts by hand
        (tests, ad-hoc analyses) must call this — the columnar cache's
        structural fingerprint cannot detect count-preserving edits
        such as moving a domain between equal-sized prefixes.
        """
        self.version += 1

    def deltas_since(self, version: int) -> "list[IndexDelta] | None":
        """The contiguous delta chain from *version* to :attr:`version`.

        Returns ``None`` when the chain is broken — the log was trimmed,
        or :meth:`mark_mutated` bumped the version without a delta — in
        which case a cached view must rebuild rather than patch.
        """
        if version == self.version:
            return []
        chain = [d for d in self._delta_log if d.version > version]
        if not chain:
            return None
        expected = range(version + 1, self.version + 1)
        if [d.version for d in chain] != list(expected):
            return None
        return chain

    def apply_delta(
        self, delta: SnapshotDelta, annotator: PrefixAnnotator
    ) -> IndexDelta:
        """Replay a snapshot delta in place (incremental Steps 1-2).

        Only the touched domains are re-annotated; everything else keeps
        its groups, which is exact as long as the annotator's contents
        are unchanged between the two dates (the caller's obligation —
        :func:`repro.analysis.pipeline.detect_series` gates on
        :meth:`repro.bgp.routeviews.PrefixAnnotator.signature`).  The
        resulting index is equal to a from-scratch
        :func:`build_index` of the new snapshot.

        Returns the :class:`IndexDelta` describing the membership
        changes; it is also appended to the index's delta log so cached
        columnar views can patch themselves forward.
        """
        removed_entries: list[tuple[str, frozenset[Prefix], frozenset[Prefix]]] = []
        added_entries: list[tuple[str, frozenset[Prefix], frozenset[Prefix]]] = []

        for domain in delta.removed:
            self._remove_label(domain, removed_entries)
        for old_observation, observation in delta.changed:
            domain = observation.domain
            annotated = _UNANNOTATED
            if (
                observation.is_dual_stack
                and domain in self.domain_v4_prefixes
            ):
                annotated = _annotate_entry(
                    observation.v4_addresses, observation.v6_addresses, annotator
                )
                if annotated is not None:
                    v4_prefixes, v4_addresses, v6_prefixes, v6_addresses = annotated
                    if (
                        v4_prefixes == self.domain_v4_prefixes[domain]
                        and v6_prefixes == self.domain_v6_prefixes[domain]
                    ):
                        # Renumbered inside its prefixes: group membership
                        # is untouched, only the concrete addresses move.
                        self.domain_v4_addresses[domain] = v4_addresses
                        self.domain_v6_addresses[domain] = v6_addresses
                        continue
            self._remove_label(domain, removed_entries)
            self._insert_observation(
                observation, annotator, added_entries, annotated=annotated
            )
        for observation in delta.added:
            self._insert_observation(observation, annotator, added_entries)

        self.date = delta.new_date
        self.version += 1
        index_delta = IndexDelta(
            version=self.version,
            date=self.date,
            removed=tuple(removed_entries),
            added=tuple(added_entries),
        )
        self._delta_log.append(index_delta)
        if len(self._delta_log) > DELTA_LOG_LIMIT:
            del self._delta_log[: -DELTA_LOG_LIMIT]
        return index_delta

    def _remove_label(
        self,
        domain: str,
        removed_entries: list,
    ) -> None:
        """Remove one domain's contributions (no-op if unknown)."""
        if domain in self.dropped_labels:
            self.dropped_labels.discard(domain)
            self.dropped_domains -= 1
            return
        v4_prefixes = self.domain_v4_prefixes.pop(domain, None)
        if v4_prefixes is None:
            return
        v6_prefixes = self.domain_v6_prefixes.pop(domain)
        del self.domain_v4_addresses[domain]
        del self.domain_v6_addresses[domain]
        for prefix in v4_prefixes:
            members = self.v4_domains[prefix]
            members.discard(domain)
            if not members:
                del self.v4_domains[prefix]
        for prefix in v6_prefixes:
            members = self.v6_domains[prefix]
            members.discard(domain)
            if not members:
                del self.v6_domains[prefix]
        removed_entries.append(
            (domain, frozenset(v4_prefixes), frozenset(v6_prefixes))
        )

    def _insert_observation(
        self,
        observation,
        annotator: PrefixAnnotator,
        added_entries: list,
        annotated=_UNANNOTATED,
    ) -> None:
        """Annotate and insert one observation (dual-stack ones only).

        *annotated* lets the changed-domain path hand over an already
        computed :func:`_annotate_entry` result (including ``None`` for
        an unusable entry) so a prefix-moving domain is not annotated
        twice per delta.
        """
        if not observation.is_dual_stack:
            return
        domain = observation.domain
        if annotated is _UNANNOTATED:
            annotated = _annotate_entry(
                observation.v4_addresses, observation.v6_addresses, annotator
            )
        if annotated is None:
            self.dropped_labels.add(domain)
            self.dropped_domains += 1
            return
        v4_prefixes, v4_addresses, v6_prefixes, v6_addresses = annotated
        self.domain_v4_prefixes[domain] = set(v4_prefixes)
        self.domain_v6_prefixes[domain] = set(v6_prefixes)
        self.domain_v4_addresses[domain] = v4_addresses
        self.domain_v6_addresses[domain] = v6_addresses
        for prefix in v4_prefixes:
            self.v4_domains.setdefault(prefix, set()).add(domain)
        for prefix in v6_prefixes:
            self.v6_domains.setdefault(prefix, set()).add(domain)
        added_entries.append((domain, v4_prefixes, v6_prefixes))

    def origin_asns(self, annotator_rib) -> tuple[set[int], set[int]]:
        """Origin AS sets of the indexed v4 and v6 prefixes."""
        v4 = set()
        for prefix in self.v4_domains:
            route = annotator_rib.exact_route(prefix)
            if route is not None:
                v4.update(route.origins)
        v6 = set()
        for prefix in self.v6_domains:
            route = annotator_rib.exact_route(prefix)
            if route is not None:
                v6.update(route.origins)
        return v4, v6


def _annotate_entry(
    raw_v4: Iterable[int],
    raw_v6: Iterable[int],
    annotator: PrefixAnnotator,
) -> "tuple[frozenset[Prefix], tuple[int, ...], frozenset[Prefix], tuple[int, ...]] | None":
    """Annotate one entry's addresses; ``None`` when a family is unusable.

    The shared Steps 1-2 kernel behind :func:`build_index_from_entries`
    and :meth:`PrefixDomainIndex.apply_delta` — keeping both paths on one
    implementation is what makes delta application exact.
    """
    v4_prefixes: set[Prefix] = set()
    v4_addresses: list[int] = []
    for address in raw_v4:
        route = annotator.annotate(IPV4, address)
        if route is not None:
            v4_prefixes.add(route.prefix)
            v4_addresses.append(address)
    v6_prefixes: set[Prefix] = set()
    v6_addresses: list[int] = []
    for address in raw_v6:
        route = annotator.annotate(IPV6, address)
        if route is not None:
            v6_prefixes.add(route.prefix)
            v6_addresses.append(address)
    if not v4_prefixes or not v6_prefixes:
        # All addresses of one family were reserved or unrouted: the
        # entry is no longer usable for prefix pairing.
        return None
    return (
        frozenset(v4_prefixes),
        tuple(v4_addresses),
        frozenset(v6_prefixes),
        tuple(v6_addresses),
    )


def build_index_from_entries(
    date: datetime.date,
    entries: "Iterable[tuple[str, Iterable[int], Iterable[int]]]",
    annotator: PrefixAnnotator,
) -> PrefixDomainIndex:
    """Group arbitrary (label, v4 addrs, v6 addrs) entries by prefix.

    The methodology only needs "a mapping from a prefix to a set"
    (Section 3.7) — the label can be a domain, an MX exchange's mail
    domain, or a reverse-DNS host name.
    """
    index = PrefixDomainIndex(date=date)
    for label, raw_v4, raw_v6 in entries:
        annotated = _annotate_entry(raw_v4, raw_v6, annotator)
        if annotated is None:
            index.dropped_labels.add(label)
            index.dropped_domains += 1
            continue
        v4_prefixes, v4_addresses, v6_prefixes, v6_addresses = annotated
        index.domain_v4_prefixes[label] = set(v4_prefixes)
        index.domain_v6_prefixes[label] = set(v6_prefixes)
        index.domain_v4_addresses[label] = v4_addresses
        index.domain_v6_addresses[label] = v6_addresses
        for prefix in v4_prefixes:
            index.v4_domains.setdefault(prefix, set()).add(label)
        for prefix in v6_prefixes:
            index.v6_domains.setdefault(prefix, set()).add(label)
    return index


def build_index(
    snapshot: DnsSnapshot, annotator: PrefixAnnotator
) -> PrefixDomainIndex:
    """Extract DS domains and group them by annotated prefix."""
    return build_index_from_entries(
        snapshot.date,
        (
            (o.domain, o.v4_addresses, o.v6_addresses)
            for o in snapshot.dual_stack_observations()
        ),
        annotator,
    )
