"""The Sibling Prefix Tuner (SP-Tuner), Section 3.3.

Both published variants are implemented over the patricia tries from
:mod:`repro.nettypes.trie`:

* :class:`SpTunerMS` (Algorithm 1, more-specific) descends from each
  sibling pair toward more specific subprefixes while the Jaccard value
  does not degrade, stopping at configurable per-family prefix-length
  thresholds.  Branches carrying domains that fall outside the chosen
  subprefix are re-queued as fresh candidate pairs (``UpdateBranches``),
  so no domain is lost.
* :class:`SpTunerLS` (Algorithm 2, less-specific) walks toward covering
  supernets, stopping when the origin AS changes or the level threshold
  is exceeded.  As the paper observes, it essentially never improves the
  similarity — supernets only grow the union.

The tries map host routes (/32, /128) of every dual-stack domain address
to the domain sets at that address; subtree aggregation (memoised in the
trie) yields each candidate prefix's domain set.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.bgp.rib import Rib
from repro.core.domainsets import PrefixDomainIndex
from repro.core.metrics import jaccard
from repro.core.siblings import SiblingPair, SiblingSet
from repro.nettypes.addr import IPV4, IPV6
from repro.nettypes.prefix import Prefix
from repro.nettypes.trie import PatriciaTrie, union_of_frozensets


@dataclass(frozen=True, slots=True)
class TunerConfig:
    """SP-Tuner-MS thresholds: the maximum prefix lengths the refinement
    may descend to.  The paper's defaults are /28 and /96; the "routable"
    alternative is /24 and /48."""

    v4_threshold: int = 28
    v6_threshold: int = 96
    #: Disable to ablate the ``UpdateBranches`` step (domains will be lost).
    track_branches: bool = True

    def __post_init__(self):
        if not 0 < self.v4_threshold <= 32:
            raise ValueError(f"invalid IPv4 threshold /{self.v4_threshold}")
        if not 0 < self.v6_threshold <= 128:
            raise ValueError(f"invalid IPv6 threshold /{self.v6_threshold}")


ROUTABLE_CONFIG = TunerConfig(v4_threshold=24, v6_threshold=48)
DEFAULT_CONFIG = TunerConfig(v4_threshold=28, v6_threshold=96)


def _build_tries(
    index: PrefixDomainIndex,
) -> tuple[PatriciaTrie, PatriciaTrie]:
    """Host-route tries: address → frozenset of domains at that address."""
    at_v4: dict[int, set[str]] = {}
    at_v6: dict[int, set[str]] = {}
    for domain, addresses in index.domain_v4_addresses.items():
        for address in addresses:
            at_v4.setdefault(address, set()).add(domain)
    for domain, addresses in index.domain_v6_addresses.items():
        for address in addresses:
            at_v6.setdefault(address, set()).add(domain)
    trie_v4 = PatriciaTrie(IPV4, aggregate=union_of_frozensets)
    for address, domains in at_v4.items():
        trie_v4.insert(Prefix.host(IPV4, address), frozenset(domains))
    trie_v6 = PatriciaTrie(IPV6, aggregate=union_of_frozensets)
    for address, domains in at_v6.items():
        trie_v6.insert(Prefix.host(IPV6, address), frozenset(domains))
    return trie_v4, trie_v6


class SpTunerMS:
    """Algorithm 1: refine sibling pairs into more specific subprefixes."""

    def __init__(self, index: PrefixDomainIndex, config: TunerConfig = DEFAULT_CONFIG):
        self.config = config
        self._trie_v4, self._trie_v6 = _build_tries(index)

    # -- trie helpers ----------------------------------------------------------

    def _domains_under(self, prefix: Prefix) -> frozenset[str]:
        trie = self._trie_v4 if prefix.version == IPV4 else self._trie_v6
        aggregated = trie.aggregate_under(prefix)
        return aggregated if aggregated is not None else frozenset()

    def _threshold(self, version: int) -> int:
        return (
            self.config.v4_threshold if version == IPV4 else self.config.v6_threshold
        )

    def _truncate(self, prefix: Prefix, threshold: int) -> Prefix:
        if prefix.length <= threshold:
            return prefix
        return Prefix.from_address(prefix.version, prefix.value, threshold)

    def _next_subprefixes(self, prefix: Prefix) -> list[Prefix]:
        """``GetNextSubprefixes``: where the populated space below
        *prefix* diverges, truncated to the threshold.  Returns [] when
        no strictly deeper candidates exist."""
        threshold = self._threshold(prefix.version)
        if prefix.length >= threshold:
            return []
        trie = self._trie_v4 if prefix.version == IPV4 else self._trie_v6
        children = trie.branch_children(prefix)
        deeper = [
            self._truncate(child, threshold)
            for child in children
            if child.length > prefix.length
        ]
        return [candidate for candidate in deeper if candidate.length > prefix.length]

    # -- tuning -------------------------------------------------------------------

    def tune_pair(self, v4_prefix: Prefix, v6_prefix: Prefix) -> list[SiblingPair]:
        """Refine one sibling pair; returns the refined pair plus any
        sibling pairs recovered from side branches."""
        results: dict[tuple[Prefix, Prefix], SiblingPair] = {}
        work: deque[tuple[Prefix, Prefix]] = deque([(v4_prefix, v6_prefix)])
        seen: set[tuple[Prefix, Prefix]] = set()

        while work:
            current_v4, current_v6 = work.popleft()
            if (current_v4, current_v6) in seen:
                continue
            seen.add((current_v4, current_v6))
            domains_v4 = self._domains_under(current_v4)
            domains_v6 = self._domains_under(current_v6)
            if not (domains_v4 & domains_v6):
                continue  # zero similarity: discarded, like Step 4
            current_jacc = jaccard(domains_v4, domains_v6)

            while True:
                candidates_v4 = self._next_subprefixes(current_v4) or [current_v4]
                candidates_v6 = self._next_subprefixes(current_v6) or [current_v6]
                if candidates_v4 == [current_v4] and candidates_v6 == [current_v6]:
                    break
                best: tuple[float, int, Prefix, Prefix] | None = None
                for cand_v4 in candidates_v4:
                    cand_domains_v4 = self._domains_under(cand_v4)
                    for cand_v6 in candidates_v6:
                        value = jaccard(cand_domains_v4, self._domains_under(cand_v6))
                        depth = cand_v4.length + cand_v6.length
                        key = (value, depth, cand_v4, cand_v6)
                        if best is None or key > best:
                            best = key
                assert best is not None
                best_jacc, _, best_v4, best_v6 = best
                if best_jacc < current_jacc:
                    break
                if self.config.track_branches:
                    # UpdateBranches: domains in unchosen subtrees become
                    # fresh candidate pairs so they are not lost.
                    for cand_v4 in candidates_v4:
                        if cand_v4 != best_v4:
                            work.append((cand_v4, current_v6))
                    for cand_v6 in candidates_v6:
                        if cand_v6 != best_v6:
                            work.append((current_v4, cand_v6))
                if (best_v4, best_v6) == (current_v4, current_v6):
                    break
                current_v4, current_v6 = best_v4, best_v6
                current_jacc = best_jacc

            final_v4 = self._domains_under(current_v4)
            final_v6 = self._domains_under(current_v6)
            shared = frozenset(final_v4 & final_v6)
            if not shared:
                continue
            results[(current_v4, current_v6)] = SiblingPair(
                v4_prefix=current_v4,
                v6_prefix=current_v6,
                similarity=jaccard(final_v4, final_v6),
                shared_domains=shared,
                v4_domain_count=len(final_v4),
                v6_domain_count=len(final_v6),
            )
        return list(results.values())

    def tune_all(self, siblings: SiblingSet) -> SiblingSet:
        """Apply the tuner to every pair; deduplicates refined pairs that
        multiple inputs converge on."""
        tuned = SiblingSet(siblings.date)
        for pair in siblings:
            for refined in self.tune_pair(pair.v4_prefix, pair.v6_prefix):
                existing = tuned.get(refined.v4_prefix, refined.v6_prefix)
                if existing is None or refined.similarity > existing.similarity:
                    tuned.add(refined)
        return tuned


@dataclass(frozen=True, slots=True)
class LsConfig:
    """SP-Tuner-LS thresholds: how many levels *up* each family may walk
    (the paper uses 1 for IPv4 and 4 for IPv6).  ``unbounded`` ablates
    the threshold entirely (Figure 22's 'without threshold' line)."""

    v4_levels_up: int = 1
    v6_levels_up: int = 4
    unbounded: bool = False


class SpTunerLS:
    """Algorithm 2: try covering supernets instead of subprefixes.

    Reproduces the paper's negative result — growing a prefix only ever
    grows the union, so the Jaccard value (almost) never improves.  The
    walk stops when the supernet would be originated by a different AS.
    """

    def __init__(
        self,
        index: PrefixDomainIndex,
        rib: Rib,
        config: LsConfig = LsConfig(),
    ):
        self.config = config
        self._rib = rib
        self._trie_v4, self._trie_v6 = _build_tries(index)

    def _domains_under(self, prefix: Prefix) -> frozenset[str]:
        trie = self._trie_v4 if prefix.version == IPV4 else self._trie_v6
        aggregated = trie.aggregate_under(prefix)
        return aggregated if aggregated is not None else frozenset()

    def _origin_changes(self, old: Prefix, new: Prefix) -> bool:
        """IsASnumChange: does widening to *new* leave the origin AS?"""
        old_route = self._rib.route_for_prefix(old)
        new_route = self._rib.route_for_prefix(new)
        if old_route is None or new_route is None:
            return old_route is not new_route
        return not (old_route.origins & new_route.origins)

    def tune_pair(self, v4_prefix: Prefix, v6_prefix: Prefix) -> SiblingPair:
        """Widen one pair supernet-by-supernet while Jaccard improves."""
        current_v4, current_v6 = v4_prefix, v6_prefix
        current = jaccard(
            self._domains_under(current_v4), self._domains_under(current_v6)
        )
        steps_v4 = steps_v6 = 0
        while True:
            candidates: list[tuple[float, Prefix, Prefix]] = []
            can_v4 = current_v4.length > 0 and (
                self.config.unbounded or steps_v4 < self.config.v4_levels_up
            )
            can_v6 = current_v6.length > 0 and (
                self.config.unbounded or steps_v6 < self.config.v6_levels_up
            )
            up_v4 = current_v4.supernet() if can_v4 else None
            up_v6 = current_v6.supernet() if can_v6 else None
            if up_v4 is not None and self._origin_changes(current_v4, up_v4):
                up_v4 = None
            if up_v6 is not None and self._origin_changes(current_v6, up_v6):
                up_v6 = None
            if up_v4 is not None:
                candidates.append(
                    (
                        jaccard(
                            self._domains_under(up_v4), self._domains_under(current_v6)
                        ),
                        up_v4,
                        current_v6,
                    )
                )
            if up_v6 is not None:
                candidates.append(
                    (
                        jaccard(
                            self._domains_under(current_v4), self._domains_under(up_v6)
                        ),
                        current_v4,
                        up_v6,
                    )
                )
            if up_v4 is not None and up_v6 is not None:
                candidates.append(
                    (
                        jaccard(self._domains_under(up_v4), self._domains_under(up_v6)),
                        up_v4,
                        up_v6,
                    )
                )
            if not candidates:
                break
            best_jacc, best_v4, best_v6 = max(
                candidates, key=lambda c: (c[0], -(c[1].length + c[2].length))
            )
            if best_jacc <= current:
                break  # strict improvement required when widening
            if best_v4 != current_v4:
                steps_v4 += 1
            if best_v6 != current_v6:
                steps_v6 += 1
            current_v4, current_v6, current = best_v4, best_v6, best_jacc

        domains_v4 = self._domains_under(current_v4)
        domains_v6 = self._domains_under(current_v6)
        return SiblingPair(
            v4_prefix=current_v4,
            v6_prefix=current_v6,
            similarity=jaccard(domains_v4, domains_v6),
            shared_domains=frozenset(domains_v4 & domains_v6),
            v4_domain_count=len(domains_v4),
            v6_domain_count=len(domains_v6),
        )

    def tune_all(self, siblings: SiblingSet) -> SiblingSet:
        """Apply the less-specific walk to every pair of *siblings*."""
        tuned = SiblingSet(siblings.date)
        for pair in siblings:
            refined = self.tune_pair(pair.v4_prefix, pair.v6_prefix)
            existing = tuned.get(refined.v4_prefix, refined.v6_prefix)
            if existing is None or refined.similarity > existing.similarity:
                tuned.add(refined)
        return tuned
