"""Set-similarity metrics (Section 3.2).

The paper evaluates three candidates and chooses Jaccard: the overlap
coefficient saturates at 1 whenever one set contains the other (unsuitable
— it finds *overlapping*, not *similar* prefixes), and Dice is more
lenient to slight overlaps.  All three are implemented so the Figure 2
comparison can be reproduced.
"""

from __future__ import annotations

from typing import AbstractSet, Callable

SimilarityMetric = Callable[[int, int, int], float]
# All metrics are expressed over (intersection, size_a, size_b) so the
# detection pipeline can evaluate them from counters without re-touching
# the underlying sets.


def jaccard_from_counts(intersection: int, size_a: int, size_b: int) -> float:
    """|A ∩ B| / |A ∪ B| from pre-computed counts (Equation 1)."""
    union = size_a + size_b - intersection
    if union <= 0:
        return 0.0
    return intersection / union


def dice_from_counts(intersection: int, size_a: int, size_b: int) -> float:
    """2·|A ∩ B| / (|A| + |B|) (Equation 3)."""
    total = size_a + size_b
    if total <= 0:
        return 0.0
    return 2.0 * intersection / total


def overlap_from_counts(intersection: int, size_a: int, size_b: int) -> float:
    """|A ∩ B| / min(|A|, |B|) (Equation 2)."""
    smaller = min(size_a, size_b)
    if smaller <= 0:
        return 0.0
    return intersection / smaller


def jaccard(a: AbstractSet, b: AbstractSet) -> float:
    """Jaccard similarity index of two sets."""
    if not a and not b:
        return 0.0
    intersection = len(a & b)
    return jaccard_from_counts(intersection, len(a), len(b))


def dice(a: AbstractSet, b: AbstractSet) -> float:
    """Dice coefficient of two sets."""
    intersection = len(a & b)
    return dice_from_counts(intersection, len(a), len(b))


def overlap_coefficient(a: AbstractSet, b: AbstractSet) -> float:
    """Overlap (Szymkiewicz–Simpson) coefficient of two sets."""
    intersection = len(a & b)
    return overlap_from_counts(intersection, len(a), len(b))


METRICS_FROM_COUNTS: dict[str, SimilarityMetric] = {
    "jaccard": jaccard_from_counts,
    "dice": dice_from_counts,
    "overlap": overlap_from_counts,
}
