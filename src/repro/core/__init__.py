"""The paper's primary contribution: sibling-prefix detection and tuning.

* :mod:`repro.core.metrics` — Jaccard / Dice / overlap set similarity.
* :mod:`repro.core.domainsets` — Steps 1-2: dual-stack domain extraction
  and prefix grouping.
* :mod:`repro.core.detection` — Steps 3-4: the similarity matrix and
  best-match sibling selection.
* :mod:`repro.core.substrate` — pluggable Step 3-4 engines: the
  paper-literal ``"reference"`` path and the interned, posting-list
  ``"columnar"`` production engine.
* :mod:`repro.core.parallel` — the ``"sharded"`` engine: the columnar
  Step 3 accumulation partitioned by v4 group key across
  ``multiprocessing`` workers.
* :mod:`repro.core.siblings` — result containers.
* :mod:`repro.core.sptuner` — the SP-Tuner algorithm, more-specific
  (Algorithm 1) and less-specific (Algorithm 2) variants.
* :mod:`repro.core.sensitivity` — the threshold-grid sweep of Figure 4.
* :mod:`repro.core.longitudinal` — new/unchanged/changed classification.
"""

from repro.core.detection import BestMatchMode, compute_pair_stats, detect_siblings
from repro.core.domainsets import PrefixDomainIndex, build_index
from repro.core.metrics import dice, jaccard, overlap_coefficient
from repro.core.longitudinal import ChangeClass, classify_changes
from repro.core.parallel import ShardedDetectionError, ShardedSubstrate
from repro.core.sensitivity import SensitivityCell, sweep_thresholds
from repro.core.siblings import SiblingPair, SiblingSet
from repro.core.sptuner import SpTunerLS, SpTunerMS, TunerConfig
from repro.core.substrate import (
    DEFAULT_SUBSTRATE,
    SUBSTRATES,
    ColumnarSubstrate,
    ReferenceSubstrate,
    Substrate,
    get_substrate,
)

__all__ = [
    "BestMatchMode",
    "ChangeClass",
    "ColumnarSubstrate",
    "DEFAULT_SUBSTRATE",
    "PrefixDomainIndex",
    "ShardedDetectionError",
    "ShardedSubstrate",
    "ReferenceSubstrate",
    "SensitivityCell",
    "SiblingPair",
    "SiblingSet",
    "SpTunerLS",
    "SpTunerMS",
    "Substrate",
    "SUBSTRATES",
    "TunerConfig",
    "build_index",
    "classify_changes",
    "compute_pair_stats",
    "detect_siblings",
    "dice",
    "get_substrate",
    "jaccard",
    "overlap_coefficient",
    "sweep_thresholds",
]
