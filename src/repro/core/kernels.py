"""Batch-operation kernels for Steps 3-4: numpy backend, python fallback.

The columnar substrate (:mod:`repro.core.substrate`) reduced Steps 3-4
to integer batch operations over contiguous buffers — packed
``(v4_row << 32) | v6_row`` u64 keys, CSR ``array`` posting lists,
``array('I')`` size columns.  This module is the *kernel seam* those
operations execute behind:

* the ``numpy`` kernel casts the buffers zero-copy into ndarrays and
  runs Step-3 accumulation as ``np.repeat`` expansion +
  ``np.unique(return_counts=True)``, the incremental retract/add merge
  as a sorted-array merge with zero-count elimination, and Step-4
  scoring as vectorized metric evaluation with ``np.maximum.at``
  best-match folds;
* the ``python`` kernel is the stdlib fallback — the exact
  ``Counter``-based loops the substrate shipped with.

Both kernels are **bit-identical**: every similarity is an IEEE-754
float64 produced by the same division of the same integers (exact in
both runtimes below 2**53 operands), and the best-match/tie arithmetic
is order-independent, so the hypothesis differential suite holds
{reference, columnar, sharded} x {python, numpy} to one output.

Selection happens at import: numpy importable -> ``numpy``, else
``python``.  The ``REPRO_KERNEL`` environment variable pins a kernel
(``REPRO_KERNEL=numpy`` without numpy installed raises
:class:`KernelUnavailableError` — a silent fallback would invalidate
benchmarks), and the CLI ``--kernel`` flag calls :func:`set_kernel`
per run.  :func:`set_kernel` also exports ``REPRO_KERNEL`` so worker
processes spawned later re-select the same kernel.

Counter state crosses the seam as :class:`PairCounts` — a ``Counter``
on the python kernel, sorted key/count columns on numpy — with one
mapping-style API, so the substrate, the sharded engine, the delta
patch path, and the archive round-trip never touch backend types.
"""

from __future__ import annotations

import abc
import os
from array import array
from collections import Counter
from typing import ClassVar, Iterable, Sequence

from repro.core.metrics import METRICS_FROM_COUNTS

try:  # numpy is the optional [perf] extra; core stays stdlib-importable
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free CI
    _np = None

#: Environment variable that pins the kernel across processes.
KERNEL_ENV = "REPRO_KERNEL"

_LOW32 = 0xFFFFFFFF


class KernelUnavailableError(RuntimeError):
    """A requested kernel cannot run in this interpreter.

    Raised when ``REPRO_KERNEL=numpy`` (or ``set_kernel("numpy")``) is
    requested but numpy is not importable, or when an unknown kernel
    name is requested.  Never raised by automatic selection — with no
    explicit request the python fallback is always eligible.
    """


def numpy_available() -> bool:
    """Whether the numpy backend can run in this interpreter."""
    return _np is not None


def resolve_kernel_name(
    requested: str | None, numpy_ok: bool | None = None
) -> str:
    """Pick the kernel name for *requested* (``None``/empty = automatic).

    Pure selection logic, unit-testable without toggling imports:
    automatic selection prefers ``numpy`` when available and falls back
    to ``python`` cleanly; an explicit ``numpy`` request without numpy
    raises :class:`KernelUnavailableError` with install guidance.
    """
    if numpy_ok is None:
        numpy_ok = numpy_available()
    if not requested:
        return "numpy" if numpy_ok else "python"
    if requested not in ("python", "numpy"):
        raise KernelUnavailableError(
            f"unknown kernel {requested!r}; choose from ['numpy', 'python']"
        )
    if requested == "numpy" and not numpy_ok:
        raise KernelUnavailableError(
            "kernel 'numpy' requested (REPRO_KERNEL or --kernel) but numpy "
            "is not importable in this interpreter; install the [perf] "
            "extra (pip install 'repro-sibling-prefixes[perf]') or select "
            "the 'python' fallback"
        )
    return requested


class PairCounts(abc.ABC):
    """Step-3 counter state behind one mapping-style API.

    Keys are packed ``(v4_row << 32) | v6_row`` integers, values the
    shared-domain counts.  The python kernel backs this with a
    ``Counter``; the numpy kernel with sorted parallel columns.  Both
    expose enough of the mapping protocol (``keys``/``__getitem__``/
    ``items``/``len``/``in``) for ``dict(pair_counts)`` and the
    white-box tests to treat them interchangeably, plus the two seam
    operations the pipeline needs: :meth:`sorted_columns` (the archive
    wire format) and :meth:`patch` (the incremental retract/add merge).
    """

    __slots__ = ()

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of distinct packed pair keys with non-zero count."""

    @abc.abstractmethod
    def keys(self) -> Iterable[int]:
        """The packed pair keys as Python ints."""

    @abc.abstractmethod
    def items(self) -> Iterable[tuple[int, int]]:
        """``(packed_key, shared_count)`` pairs as Python ints."""

    @abc.abstractmethod
    def get(self, key: int, default: int = 0) -> int:
        """Count for *key*, or *default* when absent."""

    @abc.abstractmethod
    def sorted_columns(self) -> tuple:
        """``(keys, counts)`` columns sorted by key, both buffer-backed.

        Keys serialize as u64, counts as u32 — the kernel-neutral wire
        format :mod:`repro.storage.substrate_io` persists, so archives
        written under one kernel restore under the other.
        """

    @abc.abstractmethod
    def patch(self, retract: "PairCounts | None", add: "PairCounts | None") -> None:
        """Apply a delta in place: subtract *retract*, add *add*.

        Keys whose count reaches exactly zero are eliminated from the
        mapping (and from :meth:`sorted_columns`).  Either operand may
        be ``None`` or from the other backend; the final mapping is
        identical whichever kernel produced the operands.
        """

    def __iter__(self):
        """Iterate the packed keys (mapping protocol)."""
        return iter(self.keys())

    def __getitem__(self, key: int) -> int:
        """Count for *key*; ``0`` when absent (Counter semantics)."""
        return self.get(key, 0)

    def __contains__(self, key: int) -> bool:
        """Whether *key* has a non-zero entry."""
        sentinel = self.get(key, None)
        return sentinel is not None

    def __eq__(self, other) -> bool:
        """Mapping equality across backends (and against plain dicts)."""
        if isinstance(other, PairCounts):
            return dict(self.items()) == dict(other.items())
        if isinstance(other, dict):
            return dict(self.items()) == other
        return NotImplemented

    def __hash__(self):  # pragma: no cover - mutable mapping
        """Unhashable, like the mutable mappings it stands in for."""
        raise TypeError("PairCounts is unhashable")


class PythonPairCounts(PairCounts):
    """``Counter``-backed :class:`PairCounts` (the stdlib fallback)."""

    __slots__ = ("_counts",)

    def __init__(self, counts: Counter | None = None) -> None:
        """Wrap *counts* (taken by reference) or start empty."""
        self._counts: Counter = Counter() if counts is None else counts

    def __len__(self) -> int:
        """Number of distinct packed pair keys."""
        return len(self._counts)

    def keys(self):
        """The underlying Counter's key view."""
        return self._counts.keys()

    def items(self):
        """The underlying Counter's item view."""
        return self._counts.items()

    def get(self, key: int, default: int = 0) -> int:
        """Counter lookup with explicit default."""
        return self._counts.get(key, default)

    def sorted_columns(self) -> tuple[array, array]:
        """Sort the Counter's keys once; emit u64/u32 ``array`` columns."""
        ordered = sorted(self._counts)
        return (
            array("Q", ordered),
            array("I", (self._counts[key] for key in ordered)),
        )

    def patch(self, retract, add) -> None:
        """Retract-then-add against the Counter, deleting exact zeros."""
        counts = self._counts
        if retract is not None:
            for key, retracted in retract.items():
                remaining = counts[key] - retracted
                if remaining:
                    counts[key] = remaining
                else:
                    del counts[key]
        if add is not None:
            counts.update(dict(add.items()))


class NumpyPairCounts(PairCounts):
    """Sorted-column :class:`PairCounts` (the numpy backend).

    State is two parallel ndarrays: strictly increasing ``uint64``
    packed keys and their ``int64`` counts.  Sorted order is the
    invariant every operation preserves — it is what makes the delta
    merge a ``searchsorted`` pass and the archive serialization a pair
    of ``tobytes`` calls.
    """

    __slots__ = ("keys_column", "counts_column")

    def __init__(self, keys_column, counts_column) -> None:
        """Adopt pre-sorted, duplicate-free key/count columns."""
        self.keys_column = keys_column
        self.counts_column = counts_column

    def __len__(self) -> int:
        """Number of distinct packed pair keys."""
        return int(self.keys_column.shape[0])

    def keys(self):
        """The key column as a list of Python ints."""
        return self.keys_column.tolist()

    def items(self):
        """Aligned ``(key, count)`` pairs as Python ints."""
        return zip(self.keys_column.tolist(), self.counts_column.tolist())

    def get(self, key: int, default: int = 0) -> int:
        """Binary-search lookup in the sorted key column."""
        keys = self.keys_column
        position = int(_np.searchsorted(keys, _np.uint64(key)))
        if position < keys.shape[0] and int(keys[position]) == key:
            return int(self.counts_column[position])
        return default

    def sorted_columns(self) -> tuple:
        """Already sorted: the key column and a u32 view of the counts."""
        return self.keys_column, self.counts_column.astype(_np.uint32)

    def patch(self, retract, add) -> None:
        """Sorted-array merge-subtract/add with zero-count elimination.

        The retract and add operands are folded into one net signed
        delta column (duplicate keys summed; exact-zero nets dropped),
        then merged against the sorted state in a single
        ``searchsorted`` pass: existing keys update in place, new keys
        insert at their sorted positions, and counts that land on
        exactly zero are eliminated.  Equivalent to the Counter
        retract-then-add by commutativity of integer addition.
        """
        parts_keys = []
        parts_vals = []
        for operand, sign in ((retract, -1), (add, 1)):
            if operand is None or len(operand) == 0:
                continue
            op_keys, op_vals = _operand_columns(operand)
            parts_keys.append(op_keys)
            parts_vals.append(sign * op_vals)
        if not parts_keys:
            return
        if len(parts_keys) == 1:
            delta_keys = parts_keys[0]
            delta_vals = parts_vals[0]
        else:
            delta_keys = _np.concatenate(parts_keys)
            delta_vals = _np.concatenate(parts_vals)
            order = _np.argsort(delta_keys, kind="stable")
            delta_keys = delta_keys[order]
            delta_vals = delta_vals[order]
        unique_keys, inverse = _np.unique(delta_keys, return_inverse=True)
        if unique_keys.shape[0] != delta_keys.shape[0]:
            sums = _np.zeros(unique_keys.shape[0], dtype=_np.int64)
            _np.add.at(sums, inverse, delta_vals)
            live = sums != 0
            delta_keys = unique_keys[live]
            delta_vals = sums[live]
        if delta_keys.shape[0] == 0:
            return

        keys = self.keys_column
        counts = self.counts_column
        positions = _np.searchsorted(keys, delta_keys)
        if keys.shape[0]:
            exists = positions < keys.shape[0]
            probe = _np.where(exists, positions, 0)
            exists &= keys[probe] == delta_keys
        else:
            exists = _np.zeros(delta_keys.shape[0], dtype=bool)
        if exists.any():
            counts = counts.copy()
            counts[positions[exists]] += delta_vals[exists]
        fresh = ~exists
        if fresh.any():
            keys = _np.insert(keys, positions[fresh], delta_keys[fresh])
            counts = _np.insert(counts, positions[fresh], delta_vals[fresh])
        dead = counts == 0
        if dead.any():
            keep = ~dead
            keys = keys[keep]
            counts = counts[keep]
        self.keys_column = keys
        self.counts_column = counts


def _operand_columns(operand: PairCounts):
    """A patch operand as ``(uint64 keys, int64 vals)`` sorted ndarrays."""
    if isinstance(operand, NumpyPairCounts):
        return operand.keys_column, operand.counts_column
    keys, vals = operand.sorted_columns()
    return (
        _np.frombuffer(keys, dtype=_np.uint64),
        _np.frombuffer(vals, dtype=_np.uint32).astype(_np.int64),
    )


class Kernel(abc.ABC):
    """One batch-operation backend for Steps 3-4.

    Implementations must be exact: the differential suite holds every
    kernel to bit-identical similarities and pair sets.
    """

    #: Registry key, also shown in CLI help and ``kernel=`` labels.
    name: ClassVar[str]

    @abc.abstractmethod
    def accumulate_rowlists(self, dom_bases, dom_rows) -> PairCounts:
        """Step-3 accumulation over aligned per-domain (bases, rows) lists.

        *dom_bases* holds each domain's premultiplied v4 rows
        (``row << 32``), *dom_rows* the aligned v6 rows; the result
        counts every ``base | row`` combination.
        """

    @abc.abstractmethod
    def accumulate_packed(self, bases_data, bases_offsets, rows_data, rows_offsets):
        """Step-3 accumulation over one CSR shard payload.

        The worker-process entry: consumes the pickle-light flat
        columns (:func:`repro.core.parallel.build_shard_payloads`) and
        returns ``(keys, counts)`` columns — buffer-backed, picklable,
        keys unique and sorted is *not* guaranteed for the python
        kernel (insertion order) but keys are always distinct.
        """

    @abc.abstractmethod
    def merge_disjoint(self, columns: Sequence[tuple]) -> PairCounts:
        """Union per-shard ``(keys, counts)`` columns into one counter.

        Shard key spaces are disjoint by construction (``v4_row %
        n_shards`` partition), so this is a conflict-free union.
        """

    @abc.abstractmethod
    def counts_from_columns(self, keys, values) -> PairCounts:
        """Rebuild counter state from archived key/count columns.

        *keys* is a u64 buffer (memoryview/array), *values* a u32
        buffer, sorted by key — the :meth:`PairCounts.sorted_columns`
        wire format.
        """

    @abc.abstractmethod
    def select_scored(
        self,
        counts: PairCounts,
        v4_sizes,
        v6_sizes,
        metric: str,
        want_v4: bool,
        want_v6: bool,
        need_both: bool,
        tie_epsilon: float,
    ):
        """Step-4 scoring: metric evaluation + best-match keep predicate.

        Scores every counted pair with *metric* against the per-row
        size columns, folds best-per-v4-row and best-per-v6-row, and
        applies the mode predicate within *tie_epsilon* of the best.
        Returns ``(kept_keys, kept_values, scored)``: the surviving
        packed keys and their similarities as Python lists (bit-exact
        float64), plus how many pairs scored positive — the substrate
        materializes shared-domain sets only for the survivors.
        """


class PythonKernel(Kernel):
    """The stdlib fallback: ``Counter`` loops, bit-identical reference."""

    name = "python"

    def accumulate_rowlists(self, dom_bases, dom_rows) -> PairCounts:
        """One flat pass; the Counter runs at C speed over plain ints."""
        packed: list[int] = []
        append = packed.append
        extend = packed.extend
        for bases, rows in zip(dom_bases, dom_rows):
            if len(bases) == 1:
                base = bases[0]
                if len(rows) == 1:
                    append(base | rows[0])
                else:
                    extend([base | row for row in rows])
            else:
                for base in bases:
                    extend([base | row for row in rows])
        return PythonPairCounts(Counter(packed))

    def accumulate_packed(self, bases_data, bases_offsets, rows_data, rows_offsets):
        """Segment-wise expansion into a Counter, flattened to columns."""
        packed: list[int] = []
        append = packed.append
        extend = packed.extend
        for segment in range(len(bases_offsets) - 1):
            b_lo = bases_offsets[segment]
            b_hi = bases_offsets[segment + 1]
            # tolist() once per segment: iterating a list beats iterating
            # an array slice in the hot comprehension below.
            rows = rows_data[
                rows_offsets[segment] : rows_offsets[segment + 1]
            ].tolist()
            if b_hi - b_lo == 1:
                base = bases_data[b_lo]
                if len(rows) == 1:
                    append(base | rows[0])
                else:
                    extend([base | row for row in rows])
            else:
                for base in bases_data[b_lo:b_hi].tolist():
                    extend([base | row for row in rows])
        counts = Counter(packed)
        return array("Q", counts.keys()), array("I", counts.values())

    def merge_disjoint(self, columns) -> PairCounts:
        """Disjoint-key union via ``dict.update`` (no add semantics paid)."""
        merged: Counter = Counter()
        for keys, counts in columns:
            dict.update(merged, zip(keys, counts))
        return PythonPairCounts(merged)

    def counts_from_columns(self, keys, values) -> PairCounts:
        """Zip archived columns straight into a Counter."""
        return PythonPairCounts(Counter(dict(zip(keys, values))))

    def select_scored(
        self,
        counts,
        v4_sizes,
        v6_sizes,
        metric,
        want_v4,
        want_v6,
        need_both,
        tie_epsilon,
    ):
        """Two scalar passes: score + fold bests, then keep predicate."""
        metric_fn = METRICS_FROM_COUNTS[metric]
        best_v4: dict[int, float] = {}
        best_v6: dict[int, float] = {}
        best_v4_get = best_v4.get
        best_v6_get = best_v6.get
        scored: list[tuple[int, float]] = []
        scored_append = scored.append
        for key, shared in counts.items():
            a = key >> 32
            b = key & _LOW32
            value = metric_fn(shared, v4_sizes[a], v6_sizes[b])
            if value <= 0.0:
                continue
            scored_append((key, value))
            if value > best_v4_get(a, 0.0):
                best_v4[a] = value
            if value > best_v6_get(b, 0.0):
                best_v6[b] = value
        kept: list[tuple[int, float]] = []
        for key, value in scored:
            a = key >> 32
            b = key & _LOW32
            is_best_v4 = want_v4 and value >= best_v4[a] - tie_epsilon
            is_best_v6 = want_v6 and value >= best_v6[b] - tie_epsilon
            if need_both:
                keep = is_best_v4 and is_best_v6
            else:
                keep = is_best_v4 or is_best_v6
            if keep:
                kept.append((key, value))
        # Ascending packed-key order, matching the numpy kernel's sorted
        # columns — so downstream iteration order (and any float sum
        # over it, e.g. mean similarity) is kernel-independent.
        kept.sort(key=lambda pair: pair[0])
        return (
            [key for key, _ in kept],
            [value for _, value in kept],
            len(scored),
        )


def _expand_packed(bases_np, bases_per_segment, rows_np, rows_per_segment):
    """Vectorized Step-3 key expansion: every ``base | row`` per segment.

    *bases_np* (u64, premultiplied) and *rows_np* (u64) are the flat
    concatenations; the ``*_per_segment`` i64 vectors give each
    segment's lengths.  Each base emits one full pass over its
    segment's rows, so the output block for a base is its segment's
    row slice verbatim — which makes the whole expansion two
    ``np.repeat`` ladders and one fancy-index gather, no Python loop.
    """
    rows_per_base = _np.repeat(rows_per_segment, bases_per_segment)
    total = int(rows_per_base.sum())
    if total == 0:
        return _np.empty(0, dtype=_np.uint64)
    base_part = _np.repeat(bases_np, rows_per_base)
    segment_row_start = _np.cumsum(rows_per_segment) - rows_per_segment
    base_row_start = _np.repeat(
        _np.repeat(segment_row_start, bases_per_segment), rows_per_base
    )
    block_start = _np.cumsum(rows_per_base) - rows_per_base
    local = _np.arange(total, dtype=_np.int64) - _np.repeat(
        block_start, rows_per_base
    )
    return base_part | rows_np[base_row_start + local]


class NumpyKernel(Kernel):
    """Vectorized batch ops over zero-copy casts of the CSR buffers."""

    name = "numpy"

    def accumulate_rowlists(self, dom_bases, dom_rows) -> PairCounts:
        """Flatten the rowlists once, then expand + ``np.unique``."""
        bases_data = array("Q")
        bases_lengths = array("q")
        rows_data = array("I")
        rows_lengths = array("q")
        for bases, rows in zip(dom_bases, dom_rows):
            if not bases or not rows:
                continue
            bases_data.extend(bases)
            bases_lengths.append(len(bases))
            rows_data.extend(rows)
            rows_lengths.append(len(rows))
        if not bases_data:
            return NumpyPairCounts(
                _np.empty(0, dtype=_np.uint64), _np.empty(0, dtype=_np.int64)
            )
        packed = _expand_packed(
            _np.frombuffer(bases_data, dtype=_np.uint64),
            _np.frombuffer(bases_lengths, dtype=_np.int64),
            _np.frombuffer(rows_data, dtype=_np.uint32).astype(_np.uint64),
            _np.frombuffer(rows_lengths, dtype=_np.int64),
        )
        keys, counts = _np.unique(packed, return_counts=True)
        return NumpyPairCounts(keys, counts.astype(_np.int64))

    def accumulate_packed(self, bases_data, bases_offsets, rows_data, rows_offsets):
        """Zero-copy cast of the shard payload, then expand + unique."""
        if len(bases_data) == 0:
            return (
                _np.empty(0, dtype=_np.uint64),
                _np.empty(0, dtype=_np.int64),
            )
        bases_offsets_np = _np.frombuffer(bases_offsets, dtype=_np.uint32).astype(
            _np.int64
        )
        rows_offsets_np = _np.frombuffer(rows_offsets, dtype=_np.uint32).astype(
            _np.int64
        )
        packed = _expand_packed(
            _np.frombuffer(bases_data, dtype=_np.uint64),
            _np.diff(bases_offsets_np),
            _np.frombuffer(rows_data, dtype=_np.uint32).astype(_np.uint64),
            _np.diff(rows_offsets_np),
        )
        keys, counts = _np.unique(packed, return_counts=True)
        return keys, counts.astype(_np.int64)

    def merge_disjoint(self, columns) -> PairCounts:
        """Concatenate the disjoint columns and argsort once by key."""
        key_parts = [
            _np.frombuffer(keys, dtype=_np.uint64)
            if not isinstance(keys, _np.ndarray)
            else keys
            for keys, _ in columns
        ]
        count_parts = [
            _np.frombuffer(counts, dtype=_np.uint32).astype(_np.int64)
            if not isinstance(counts, _np.ndarray)
            else counts.astype(_np.int64, copy=False)
            for _, counts in columns
        ]
        if not key_parts:
            return NumpyPairCounts(
                _np.empty(0, dtype=_np.uint64), _np.empty(0, dtype=_np.int64)
            )
        keys = _np.concatenate(key_parts)
        counts = _np.concatenate(count_parts)
        order = _np.argsort(keys, kind="stable")
        return NumpyPairCounts(keys[order], counts[order])

    def counts_from_columns(self, keys, values) -> PairCounts:
        """Copy the archived columns into owned, sorted ndarrays."""
        keys_np = _np.frombuffer(keys, dtype=_np.uint64).copy()
        counts_np = _np.frombuffer(values, dtype=_np.uint32).astype(_np.int64)
        if keys_np.shape[0] > 1 and not bool(
            _np.all(keys_np[1:] > keys_np[:-1])
        ):
            # The wire format promises sorted keys; re-sort defensively
            # so a hand-built column set cannot corrupt the invariant.
            order = _np.argsort(keys_np, kind="stable")
            keys_np = keys_np[order]
            counts_np = counts_np[order]
        return NumpyPairCounts(keys_np, counts_np)

    def select_scored(
        self,
        counts,
        v4_sizes,
        v6_sizes,
        metric,
        want_v4,
        want_v6,
        need_both,
        tie_epsilon,
    ):
        """Vectorized scoring: metric columns, ``np.maximum.at`` bests."""
        if isinstance(counts, NumpyPairCounts):
            keys = counts.keys_column
            shared = counts.counts_column
        else:
            keys_arr, vals_arr = counts.sorted_columns()
            keys = _np.frombuffer(keys_arr, dtype=_np.uint64)
            shared = _np.frombuffer(vals_arr, dtype=_np.uint32).astype(_np.int64)
        if keys.shape[0] == 0:
            return [], [], 0
        a = (keys >> _np.uint64(32)).astype(_np.int64)
        b = (keys & _np.uint64(_LOW32)).astype(_np.int64)
        sizes_a = _np.frombuffer(v4_sizes, dtype=_np.uint32).astype(_np.int64)[a]
        sizes_b = _np.frombuffer(v6_sizes, dtype=_np.uint32).astype(_np.int64)[b]
        vector_fn = _VECTOR_METRICS.get(metric)
        if vector_fn is None:
            # Unknown-to-the-vector-table metric: fall back to the scalar
            # function per pair (same KeyError surface for bad names).
            metric_fn = METRICS_FROM_COUNTS[metric]
            values = _np.array(
                [
                    metric_fn(int(s), int(x), int(y))
                    for s, x, y in zip(
                        shared.tolist(), sizes_a.tolist(), sizes_b.tolist()
                    )
                ],
                dtype=_np.float64,
            )
        else:
            values = vector_fn(shared, sizes_a, sizes_b)
        positive = values > 0.0
        scored = int(positive.sum())
        if scored == 0:
            return [], [], 0
        best_v4 = _np.zeros(len(v4_sizes), dtype=_np.float64)
        best_v6 = _np.zeros(len(v6_sizes), dtype=_np.float64)
        _np.maximum.at(best_v4, a[positive], values[positive])
        _np.maximum.at(best_v6, b[positive], values[positive])
        is_best_v4 = want_v4 & (values >= best_v4[a] - tie_epsilon)
        is_best_v6 = want_v6 & (values >= best_v6[b] - tie_epsilon)
        if need_both:
            keep = positive & is_best_v4 & is_best_v6
        else:
            keep = positive & (is_best_v4 | is_best_v6)
        return keys[keep].tolist(), values[keep].tolist(), scored


def _vector_jaccard(shared, sizes_a, sizes_b):
    """|A∩B| / |A∪B| as float64 columns (exact: int64/int64 divide)."""
    union = sizes_a + sizes_b - shared
    safe = _np.where(union > 0, union, 1)
    return _np.where(union > 0, shared / safe, 0.0)


def _vector_dice(shared, sizes_a, sizes_b):
    """2|A∩B| / (|A|+|B|), matching the scalar ``2.0 * shared / total``."""
    total = sizes_a + sizes_b
    safe = _np.where(total > 0, total, 1)
    return _np.where(total > 0, (2.0 * shared) / safe, 0.0)


def _vector_overlap(shared, sizes_a, sizes_b):
    """|A∩B| / min(|A|,|B|) as float64 columns."""
    smaller = _np.minimum(sizes_a, sizes_b)
    safe = _np.where(smaller > 0, smaller, 1)
    return _np.where(smaller > 0, shared / safe, 0.0)


#: Vectorized twins of :data:`repro.core.metrics.METRICS_FROM_COUNTS`.
#: Each is bit-identical to its scalar sibling: the same float64
#: division of the same sub-2**53 integers, guards replicated via
#: ``np.where``.
_VECTOR_METRICS = {
    "jaccard": _vector_jaccard,
    "dice": _vector_dice,
    "overlap": _vector_overlap,
}


#: Registered kernels by name.
KERNELS: dict[str, Kernel] = {PythonKernel.name: PythonKernel()}
if _np is not None:
    KERNELS[NumpyKernel.name] = NumpyKernel()

_active: Kernel = KERNELS[resolve_kernel_name(os.environ.get(KERNEL_ENV))]


def get_kernel() -> Kernel:
    """The process-active kernel (import-selected or :func:`set_kernel`)."""
    return _active


def kernel_name() -> str:
    """Name of the process-active kernel (``"python"`` or ``"numpy"``)."""
    return _active.name


def available_kernel_names() -> list[str]:
    """Names of the kernels this interpreter can actually run, sorted."""
    return sorted(KERNELS)


def set_kernel(name: str | None) -> str:
    """Select the active kernel; returns the *previous* kernel's name.

    ``None``/empty re-runs automatic selection.  The choice is also
    exported as ``REPRO_KERNEL`` so worker processes spawned after this
    call (sharded accumulation, serving fleets) re-select the same
    kernel; raises :class:`KernelUnavailableError` for an impossible
    request, leaving the active kernel and environment untouched.
    """
    global _active
    resolved = resolve_kernel_name(name)
    previous = _active.name
    _active = KERNELS[resolved]
    os.environ[KERNEL_ENV] = resolved
    return previous


class use_kernel:
    """Context manager pinning the active kernel within a block.

    Restores both the previously active kernel and the prior
    ``REPRO_KERNEL`` environment value on exit — the test harness for
    running one suite under both kernels in-process.
    """

    def __init__(self, name: str) -> None:
        """Remember the requested kernel *name*."""
        self._name = name
        self._saved_kernel: str | None = None
        self._saved_env: str | None = None

    def __enter__(self) -> Kernel:
        """Activate the requested kernel; return it."""
        self._saved_env = os.environ.get(KERNEL_ENV)
        self._saved_kernel = set_kernel(self._name)
        return _active

    def __exit__(self, *exc_info) -> None:
        """Restore the prior kernel and environment value."""
        set_kernel(self._saved_kernel)
        if self._saved_env is None:
            os.environ.pop(KERNEL_ENV, None)
        else:
            os.environ[KERNEL_ENV] = self._saved_env
