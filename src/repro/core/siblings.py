"""Result containers for sibling prefix pairs."""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.nettypes.prefix import Prefix


@dataclass(frozen=True, slots=True)
class SiblingPair:
    """One detected sibling prefix pair."""

    v4_prefix: Prefix
    v6_prefix: Prefix
    similarity: float
    #: The dual-stack domains the two prefixes share.
    shared_domains: frozenset[str]
    #: Domain-set sizes on each side (the union is derivable).
    v4_domain_count: int
    v6_domain_count: int

    @property
    def key(self) -> tuple[Prefix, Prefix]:
        return (self.v4_prefix, self.v6_prefix)

    @property
    def union_size(self) -> int:
        return self.v4_domain_count + self.v6_domain_count - len(self.shared_domains)

    @property
    def is_perfect(self) -> bool:
        return self.similarity >= 1.0


class SiblingSet:
    """A collection of sibling pairs for one snapshot date."""

    def __init__(
        self, date: datetime.date, pairs: Iterable[SiblingPair] = ()
    ):
        self.date = date
        self._pairs: dict[tuple[Prefix, Prefix], SiblingPair] = {}
        for pair in pairs:
            self.add(pair)

    def add(self, pair: SiblingPair) -> None:
        """Insert *pair*, replacing any pair with the same prefixes."""
        self._pairs[pair.key] = pair

    def get(self, v4_prefix: Prefix, v6_prefix: Prefix) -> SiblingPair | None:
        """The pair for exactly these prefixes, or ``None``."""
        return self._pairs.get((v4_prefix, v6_prefix))

    def __iter__(self) -> Iterator[SiblingPair]:
        yield from self._pairs.values()

    def __len__(self) -> int:
        return len(self._pairs)

    def __contains__(self, key: object) -> bool:
        return key in self._pairs

    # -- views -----------------------------------------------------------------

    def pairs_of_v4(self, prefix: Prefix) -> list[SiblingPair]:
        """Every pair whose IPv4 side is *prefix*."""
        return [p for p in self._pairs.values() if p.v4_prefix == prefix]

    def pairs_of_v6(self, prefix: Prefix) -> list[SiblingPair]:
        """Every pair whose IPv6 side is *prefix*."""
        return [p for p in self._pairs.values() if p.v6_prefix == prefix]

    def unique_v4_prefixes(self) -> set[Prefix]:
        """The distinct IPv4 prefixes appearing in any pair."""
        return {p.v4_prefix for p in self._pairs.values()}

    def unique_v6_prefixes(self) -> set[Prefix]:
        """The distinct IPv6 prefixes appearing in any pair."""
        return {p.v6_prefix for p in self._pairs.values()}

    def same_pairs(self, other: "SiblingSet") -> bool:
        """True when *other* holds exactly the same pairs — every field
        of every pair equal — regardless of the snapshot dates.

        The longitudinal publisher uses this to skip recompiling a
        lookup index for a date whose sibling list did not change.
        """
        if len(self._pairs) != len(other._pairs):
            return False
        other_pairs = other._pairs
        for key, pair in self._pairs.items():
            candidate = other_pairs.get(key)
            if candidate is None or candidate != pair:
                return False
        return True

    # -- statistics --------------------------------------------------------------

    def similarities(self) -> list[float]:
        """All pair similarity values, in insertion order."""
        return [p.similarity for p in self._pairs.values()]

    @property
    def perfect_match_share(self) -> float:
        if not self._pairs:
            return 0.0
        perfect = sum(1 for p in self._pairs.values() if p.is_perfect)
        return perfect / len(self._pairs)

    @property
    def mean_similarity(self) -> float:
        values = self.similarities()
        return sum(values) / len(values) if values else 0.0

    @property
    def std_similarity(self) -> float:
        values = self.similarities()
        if not values:
            return 0.0
        mean = sum(values) / len(values)
        return (sum((v - mean) ** 2 for v in values) / len(values)) ** 0.5

    def __repr__(self) -> str:
        return (
            f"SiblingSet({self.date.isoformat()}, pairs={len(self)}, "
            f"perfect={self.perfect_match_share:.0%})"
        )
