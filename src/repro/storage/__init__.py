"""Persistent snapshot archive: the ``.sparch`` on-disk format.

The detection pipeline is fast but not free; a production service must
not recompute interned pools, columnar substrate state, and compiled
lookup indexes on every process start.  This package persists all three
into a single versioned, CRC-checked, page-aligned archive file that
readers attach to via ``mmap``:

* :mod:`repro.storage.format` — byte-level primitives (pages, CRCs,
  header/footer, :class:`~repro.storage.format.MappedBuffer`), shared
  with :mod:`repro.serving.codec`.
* :mod:`repro.storage.archive` — the append-only
  :class:`~repro.storage.archive.ArchiveWriter` and the zero-copy
  :class:`~repro.storage.archive.ArchiveReader` over the manifest of
  per-date *generations*.
* :mod:`repro.storage.index_io` — compiled
  :class:`~repro.serving.index.SiblingLookupIndex` blobs; the mapped
  load path serves longest-prefix-match lookups straight from the
  page cache without materializing Python pair objects up front.
* :mod:`repro.storage.substrate_io` — the columnar substrate's interned
  pool, CSR posting lists and packed Step-3 counters, plus per-date
  sibling sets, so ``detect_series`` resumes a partially-built series
  instead of recomputing it.

The full byte-level specification lives in ``docs/STORAGE.md``.
"""

from repro.storage.archive import ArchiveReader, ArchiveWriter
from repro.storage.format import ArchiveFormatError

__all__ = ["ArchiveFormatError", "ArchiveReader", "ArchiveWriter"]
