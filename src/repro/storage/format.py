"""Low-level ``.sparch`` on-disk primitives: pages, CRCs, mmap views.

The persistent snapshot archive (:mod:`repro.storage.archive`) and the
single-index codec (:mod:`repro.serving.codec`) share the byte-level
machinery defined here:

* **page alignment** — every archive segment starts on a
  :data:`PAGE_SIZE` boundary so a reader can hand out ``mmap``-backed
  :class:`memoryview` slices that cast cleanly to typed arrays
  (``view.cast("Q")`` etc.) and fault in only the pages a query
  touches;
* **checksums** — :func:`crc32_view` computes a CRC-32 over any buffer
  *without copying it*, which is what lets both the archive reader and
  the refactored :func:`repro.serving.codec.load_index` validate
  multi-megabyte files straight out of the page cache;
* **mapped files** — :class:`MappedBuffer` wraps ``open`` + ``mmap``
  behind one context manager and exposes the file as a read-only
  :class:`memoryview`.

File skeleton (all fixed-width integers little-endian, the native
order of every platform this repo targets — the manifest records the
writer's byte order and readers refuse a mismatch rather than decode
byte-swapped arrays)::

    offset          size   field
    0               8      magic  b"SPARCH1\\n"
    8               2      format version (currently 1)
    10              2      reserved (zero)
    12              4      page size P (4096)
    16              P-16   zero padding to the first page boundary
    P * k           ...    segments, each starting on a page boundary
    align(P)        M      manifest: UTF-8 JSON describing every segment
    EOF-32          32     footer: magic b"SPFOOT1\\n", manifest offset
                           (u64), manifest length (u64), manifest
                           CRC-32 (u32), reserved (u32)

Readers find the manifest through the footer (fixed size, at EOF), so
appending new segments + a new manifest + a new footer never rewrites
existing bytes — old generations stay mapped and valid.  Every failure
mode raises :class:`ArchiveFormatError`; loaders must reject rather
than guess.

>>> align_up(0)
0
>>> align_up(1)
4096
>>> align_up(4096)
4096
>>> crc32_view(memoryview(b"sibling")) == crc32_view(b"sibling")
True
"""

from __future__ import annotations

import mmap
import pathlib
import struct
import zlib

MAGIC = b"SPARCH1\n"
FOOTER_MAGIC = b"SPFOOT1\n"
FORMAT_VERSION = 1

#: Segment alignment; also the header's reserved prefix size.
PAGE_SIZE = 4096

#: The fixed 16-byte preamble at offset 0 (rest of page 0 is zero).
HEADER = struct.Struct("<8sHHI")

#: The fixed 32-byte trailer at EOF.
FOOTER = struct.Struct("<8sQQII")


class ArchiveFormatError(ValueError):
    """Raised when an archive file is malformed, corrupt, truncated, or
    from an unsupported format version."""


def align_up(offset: int, page: int = PAGE_SIZE) -> int:
    """Round *offset* up to the next multiple of *page*.

    >>> align_up(4097)
    8192
    """
    return (offset + page - 1) // page * page


def crc32_view(buffer) -> int:
    """CRC-32 of any bytes-like *buffer* without copying it.

    ``zlib.crc32`` accepts the buffer protocol directly, so passing a
    ``mmap``-backed :class:`memoryview` checksums straight out of the
    page cache — the shared no-copy validation path of the archive
    reader and :func:`repro.serving.codec.load_index`.

    >>> crc32_view(b"") == 0
    True
    """
    return zlib.crc32(buffer) & 0xFFFFFFFF


def pack_header(page_size: int = PAGE_SIZE) -> bytes:
    """The file's first *page_size* bytes: preamble + zero padding."""
    head = HEADER.pack(MAGIC, FORMAT_VERSION, 0, page_size)
    return head + b"\x00" * (page_size - len(head))


def pack_footer(manifest_offset: int, manifest_length: int, crc: int) -> bytes:
    """The fixed 32-byte trailer pointing at the current manifest."""
    return FOOTER.pack(FOOTER_MAGIC, manifest_offset, manifest_length, crc, 0)


def check_header(view) -> int:
    """Validate the preamble of a mapped archive; returns the page size."""
    if len(view) < HEADER.size + FOOTER.size:
        raise ArchiveFormatError(
            "truncated archive: shorter than header + footer"
        )
    magic, version, _reserved, page_size = HEADER.unpack_from(view, 0)
    if magic != MAGIC:
        raise ArchiveFormatError(
            f"not a snapshot archive (bad magic {bytes(magic)!r})"
        )
    if version != FORMAT_VERSION:
        raise ArchiveFormatError(
            f"unsupported archive format version {version} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    if page_size <= 0 or page_size % 8:
        raise ArchiveFormatError(f"invalid archive page size {page_size}")
    return page_size


def read_footer(view) -> tuple[int, int, int]:
    """Validate the trailer; returns (manifest offset, length, CRC-32)."""
    magic, offset, length, crc, _reserved = FOOTER.unpack_from(
        view, len(view) - FOOTER.size
    )
    if magic != FOOTER_MAGIC:
        raise ArchiveFormatError(
            "archive has no valid footer (torn append or truncation); "
            "reopen with recover=True (or `repro archive repair`) to "
            "truncate back to the last committed generation"
        )
    if offset + length > len(view) - FOOTER.size:
        raise ArchiveFormatError("archive footer points past end of file")
    return offset, length, crc


def _footer_at(view, position: int) -> "tuple[int, int, int] | None":
    """Parse and validate a footer candidate ending the commit at
    *position*; ``None`` unless magic, adjacency, and manifest CRC all
    hold."""
    if position < PAGE_SIZE or position + FOOTER.size > len(view):
        return None
    magic, offset, length, crc, _reserved = FOOTER.unpack_from(view, position)
    if magic != FOOTER_MAGIC:
        return None
    # The commit protocol writes manifest then footer back to back, so
    # a genuine footer sits immediately after the manifest it points at.
    # Adjacency rejects stale magic bytes that survive inside segment
    # payloads or alignment gaps.
    if offset < PAGE_SIZE or offset + length != position:
        return None
    if crc32_view(view[offset:offset + length]) != crc:
        return None
    return offset, length, crc


#: Backward-scan chunk size; overlapped by ``len(FOOTER_MAGIC) - 1`` so
#: a magic straddling a chunk boundary is still found.
_SCAN_CHUNK = 1 << 20


def scan_last_footer(view) -> "tuple[int, int, int, int] | None":
    """Find the newest committed footer anywhere in *view*.

    The recovery primitive behind ``ArchiveReader.open(..., recover=True)``:
    a crash between segment writes and :func:`pack_footer` leaves a torn
    tail *after* the last committed footer, so scanning backward for the
    newest ``FOOTER_MAGIC`` whose manifest adjacency and CRC both check
    out recovers every committed generation.  Returns ``(manifest
    offset, manifest length, crc, committed end)`` — *committed end* is
    the file size the last successful :meth:`ArchiveWriter.commit`
    truncated to — or ``None`` when no valid footer exists (never
    committed, or corrupted beyond the commit protocol's guarantees).
    """
    # Fast path: an untorn archive ends in its footer.
    tail = len(view) - FOOTER.size
    parsed = _footer_at(view, tail)
    if parsed is not None:
        return (*parsed, len(view))
    overlap = len(FOOTER_MAGIC) - 1
    high = len(view)  # exclusive search bound for magic start positions
    while high > PAGE_SIZE:
        low = max(PAGE_SIZE, high - _SCAN_CHUNK)
        chunk = bytes(view[low:min(high + overlap, len(view))])
        found = chunk.rfind(FOOTER_MAGIC)
        while found != -1:
            parsed = _footer_at(view, low + found)
            if parsed is not None:
                return (*parsed, low + found + FOOTER.size)
            found = chunk.rfind(FOOTER_MAGIC, 0, found)
        high = low
    return None


class MappedBuffer:
    """A read-only ``mmap`` of one file behind a :class:`memoryview`.

    The shared attach primitive: the archive reader keeps one of these
    open for the lifetime of every view it hands out, and the index
    codec opens one transiently to parse without reading the file into
    a ``bytes`` copy first.  Closing is idempotent; views must not be
    used after :meth:`close`.
    """

    def __init__(self, path: "str | pathlib.Path"):
        self.path = pathlib.Path(path)
        try:
            self._file = open(self.path, "rb")
        except OSError as exc:
            raise ArchiveFormatError(
                f"cannot open {self.path}: {exc}"
            ) from exc
        try:
            if self.path.stat().st_size == 0:
                raise ArchiveFormatError(f"{self.path} is empty")
            self._mmap = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
        except ArchiveFormatError:
            self._file.close()
            raise
        except (OSError, ValueError) as exc:
            self._file.close()
            raise ArchiveFormatError(
                f"cannot map {self.path}: {exc}"
            ) from exc
        self.view = memoryview(self._mmap)

    def __len__(self) -> int:
        return len(self.view)

    def close(self) -> None:
        """Release the view, the mapping, and the file descriptor.

        If derived views are still referenced — e.g. held alive by an
        in-flight exception traceback — the mapping itself cannot be
        closed yet; it is left for the garbage collector to finalize
        once those references die, while the descriptor closes now.
        """
        if self._mmap is not None:
            self.view.release()
            try:
                self._mmap.close()
            except BufferError:
                pass
            self._file.close()
            self._mmap = None

    def __enter__(self) -> "MappedBuffer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "ArchiveFormatError",
    "FOOTER",
    "FOOTER_MAGIC",
    "FORMAT_VERSION",
    "HEADER",
    "MAGIC",
    "MappedBuffer",
    "PAGE_SIZE",
    "align_up",
    "check_header",
    "crc32_view",
    "pack_footer",
    "pack_header",
    "read_footer",
    "scan_last_footer",
]
