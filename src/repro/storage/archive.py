"""The ``.sparch`` snapshot archive: append-only writer, mmap reader.

An archive is one file holding a *series* of detection artifacts — per
date ("generation"): the detected sibling list, the compiled lookup
index, and optionally the columnar substrate state — plus the interned
domain pool shared by every generation.  The physical layout is defined
in :mod:`repro.storage.format` and specified byte-for-byte in
``docs/STORAGE.md``; this module owns the manifest (what lives where)
and the two access paths:

* :class:`ArchiveWriter` — opens (or creates) an archive and *appends*:
  new page-aligned segments, then a new manifest, then a new footer.
  Existing bytes are never rewritten, so readers attached to an older
  generation stay valid, and a torn append is detected (footer/manifest
  CRC) rather than silently served.
* :class:`ArchiveReader` — ``mmap``s the file, validates footer and
  manifest CRCs without copying, and hands out :class:`memoryview`
  slices per segment.  Segment CRCs are validated lazily on first
  access (and cached), so attaching to a multi-gigabyte archive costs
  one manifest parse, not a full file read — the cold-start property
  ``benchmarks/bench_archive_coldstart.py`` measures.

The manifest is UTF-8 JSON::

    {"format_version": 1, "byte_order": "little",
     "pool": {"segments": [{"name": "pool.0", "count": 412}], "count": 412},
     "generations": [
        {"gid": 1, "date": "2024-09-11",
         "annotator_signature": "...", "index_signature": "...",
         "meta": {"siblings": {...}, "index": {...}, "state": {...}},
         "segments": {"siblings.records": [offset, length, crc32], ...}}]}

Round-trip example (the segment payload comes back bit-identical,
through a real file and ``mmap``):

>>> import tempfile, pathlib
>>> with tempfile.TemporaryDirectory() as tmp:
...     path = pathlib.Path(tmp) / "demo.sparch"
...     with ArchiveWriter.open(path) as writer:
...         gid = writer.append_generation(
...             "2024-09-11", {"demo.blob": b"\\x01\\x02\\x03"}, {"kind": "demo"})
...     with ArchiveReader.open(path) as reader:
...         generation = reader.generations[-1]
...         (generation.date, bytes(generation.segment("demo.blob")))
('2024-09-11', b'\\x01\\x02\\x03')
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
from typing import Iterable

from repro.obs.tracing import trace
from repro.storage.format import (
    FOOTER,
    PAGE_SIZE,
    ArchiveFormatError,
    MappedBuffer,
    align_up,
    check_header,
    crc32_view,
    pack_footer,
    pack_header,
    read_footer,
    scan_last_footer,
)

#: Conventional file extension, used by CLI help text only.
EXTENSION = ".sparch"


class Generation:
    """One archived date: its manifest entry plus lazy segment views.

    Handed out by :class:`ArchiveReader`; all attribute access is
    read-only.  ``meta`` holds the per-kind JSON metadata the encoders
    in :mod:`repro.storage.index_io` / :mod:`repro.storage.substrate_io`
    recorded at write time.
    """

    __slots__ = ("gid", "date", "meta", "annotator_signature",
                 "index_signature", "_reader", "_segments")

    def __init__(self, reader: "ArchiveReader", entry: dict):
        self._reader = reader
        self.gid = int(entry["gid"])
        self.date = str(entry["date"])
        self.meta = dict(entry.get("meta", {}))
        self.annotator_signature = entry.get("annotator_signature")
        self.index_signature = entry.get("index_signature")
        self._segments = {
            name: tuple(desc) for name, desc in entry["segments"].items()
        }

    def has_segment(self, name: str) -> bool:
        """Whether this generation recorded a segment called *name*."""
        return name in self._segments

    def segment(self, name: str) -> memoryview:
        """CRC-validated zero-copy view of one named segment."""
        try:
            offset, length, crc = self._segments[name]
        except KeyError:
            raise ArchiveFormatError(
                f"generation {self.gid} ({self.date}) has no segment "
                f"{name!r}; it holds {sorted(self._segments)}"
            ) from None
        return self._reader._segment_view(name, offset, length, crc)

    def segment_names(self) -> list[str]:
        """The names of every segment this generation recorded."""
        return sorted(self._segments)


class ArchiveReader:
    """Zero-copy, CRC-checked view of a ``.sparch`` archive.

    Construction maps the file and validates header, footer, and
    manifest checksums (over the mapping — no copies).  Segment
    payloads are validated once, lazily, on first access.  Keep the
    reader open for as long as any returned :class:`memoryview` (or any
    mapped index built from one) is alive.
    """

    def __init__(self, buffer: MappedBuffer, recover: bool = False):
        self._buffer = buffer
        self._validated: set[str] = set()
        view = buffer.view
        self.page_size = check_header(view)
        #: File size at the last committed footer — ``len(view)`` for an
        #: untorn archive, smaller when :attr:`recovered` a torn tail.
        self.committed_end = len(view)
        #: Whether a torn tail was skipped to reach the manifest.
        self.recovered = False
        try:
            offset, length, crc = read_footer(view)
            if crc32_view(view[offset:offset + length]) != crc:
                raise ArchiveFormatError(
                    "archive manifest checksum mismatch: file is corrupt"
                )
        except ArchiveFormatError:
            if not recover:
                raise
            found = scan_last_footer(view)
            if found is None:
                raise ArchiveFormatError(
                    "no committed generation to recover: the archive has "
                    "no valid footer anywhere"
                ) from None
            offset, length, crc, self.committed_end = found
            self.recovered = self.committed_end != len(view)
        manifest_view = view[offset:offset + length]
        try:
            manifest = json.loads(bytes(manifest_view).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ArchiveFormatError(f"malformed archive manifest: {exc}") from exc
        byte_order = manifest.get("byte_order")
        if byte_order != sys.byteorder:
            raise ArchiveFormatError(
                f"archive written on a {byte_order}-endian host cannot be "
                f"mapped on this {sys.byteorder}-endian host"
            )
        self.manifest = manifest
        try:
            self.generations = [
                Generation(self, entry) for entry in manifest["generations"]
            ]
            self._pool_entries = list(manifest["pool"]["segments"])
            self.pool_count = int(manifest["pool"]["count"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ArchiveFormatError(f"malformed archive manifest: {exc}") from exc

    @classmethod
    def open(
        cls, path: "str | pathlib.Path", recover: bool = False
    ) -> "ArchiveReader":
        """Map *path* and validate its manifest; raises
        :class:`ArchiveFormatError` on anything suspect.

        With ``recover=True`` a torn tail (crash mid-append) is skipped
        by scanning backward for the last committed footer instead of
        rejecting the archive; :attr:`recovered` reports whether that
        happened and :attr:`committed_end` where the commit ends.  The
        mapped file is *not* modified — truncation is the writer's job.
        """
        with trace("archive.attach"):
            buffer = MappedBuffer(path)
            try:
                return cls(buffer, recover=recover)
            except ArchiveFormatError:
                buffer.close()
                raise

    # -- access ---------------------------------------------------------------

    def _segment_view(
        self, name: str, offset: int, length: int, crc: int
    ) -> memoryview:
        view = self._buffer.view
        if offset < 0 or offset + length > len(view):
            raise ArchiveFormatError(
                f"segment {name!r} extends past end of archive"
            )
        segment = view[offset:offset + length]
        key = f"{name}@{offset}"
        if key not in self._validated:
            if crc32_view(segment) != crc:
                raise ArchiveFormatError(
                    f"segment {name!r} checksum mismatch: archive is corrupt"
                )
            self._validated.add(key)
        return segment

    def pool_names(self) -> list[str]:
        """The interned domain pool, gid order, across all pool segments."""
        names: list[str] = []
        for entry in self._pool_entries:
            descriptor = entry["segment"]
            payload = self._segment_view(
                entry["name"], descriptor[0], descriptor[1], descriptor[2]
            )
            if len(payload):
                names.extend(bytes(payload).decode("utf-8").split("\n"))
            else:
                # Legacy archives written before append_pool rejected
                # empty names: a single "" joins to a zero-length
                # payload.  (Two or more empty names still produce the
                # "\n" separators, so only count == 1 can land here.)
                names.extend([""] * int(entry.get("count", 0)))
        if len(names) != self.pool_count:
            raise ArchiveFormatError(
                f"domain pool holds {len(names)} names but the manifest "
                f"promises {self.pool_count}"
            )
        return names

    def latest(self, kind: str) -> Generation | None:
        """The newest generation whose ``meta`` records *kind*."""
        for generation in reversed(self.generations):
            if kind in generation.meta:
                return generation
        return None

    def generations_by_date(self, kind: str) -> dict[str, Generation]:
        """ISO date → newest generation recording *kind* for that date."""
        by_date: dict[str, Generation] = {}
        for generation in self.generations:
            if kind in generation.meta:
                by_date[generation.date] = generation
        return by_date

    def verify(self) -> int:
        """Eagerly CRC-check every segment; returns the count checked.

        The lazy per-access validation means a never-read segment's
        corruption goes unnoticed; operators can run this as a scrub.
        """
        checked = 0
        for generation in self.generations:
            for name in generation.segment_names():
                generation.segment(name)
                checked += 1
        for entry in self._pool_entries:
            descriptor = entry["segment"]
            self._segment_view(
                entry["name"], descriptor[0], descriptor[1], descriptor[2]
            )
            checked += 1
        return checked

    def close(self) -> None:
        """Release the underlying mapping (idempotent)."""
        self._buffer.close()

    def __enter__(self) -> "ArchiveReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ArchiveWriter:
    """Append-only ``.sparch`` writer.

    Opening an existing archive loads its manifest; opening a missing
    path creates a fresh archive.  Appends accumulate in the file
    immediately (segments are written as they arrive), but the new
    manifest + footer land only on :meth:`commit` — a crash mid-append
    leaves the previous footer bytes intact *behind* the partial tail,
    and the reader rejects the torn tail via the footer/manifest CRC.
    Use as a context manager; the normal exit path commits.
    """

    def __init__(self, path: "str | pathlib.Path", manifest: dict, end: int):
        self.path = pathlib.Path(path)
        self._manifest = manifest
        self._end = end  # next byte to append at (pre-alignment)
        self._committed_end = end
        self._file = open(self.path, "r+b")
        self._dirty = False
        self._next_gid = 1 + max(
            (int(e["gid"]) for e in manifest["generations"]), default=0
        )

    @classmethod
    def open(
        cls, path: "str | pathlib.Path", recover: bool = True
    ) -> "ArchiveWriter":
        """Open *path* for appending, creating a fresh archive if absent.

        Recovery is the *default*: a torn tail left by a crash between
        segment writes and :meth:`commit` (or by a truncated copy) is
        located by the backward footer scan and the file is truncated
        back to the committed end before appending resumes — so kill -9
        at any point costs only the uncommitted tail, never the archive.
        Pass ``recover=False`` to reject a torn archive instead (the
        conservative mode ``repro archive verify`` relies on).
        """
        path = pathlib.Path(path)
        if not path.exists():
            manifest = {
                "format_version": 1,
                "byte_order": sys.byteorder,
                "page_size": PAGE_SIZE,
                "pool": {"segments": [], "count": 0},
                "generations": [],
            }
            path.write_bytes(pack_header())
            writer = cls(path, manifest, PAGE_SIZE)
            writer._dirty = True  # force a manifest+footer even if empty
            return writer
        try:
            with ArchiveReader.open(path, recover=recover) as reader:
                manifest = reader.manifest
                # Appends go after the current manifest; the old footer
                # bytes are simply abandoned inside the next alignment gap.
                end = reader.committed_end
                torn = reader.recovered
            restarted = False
        except ArchiveFormatError:
            if not recover:
                raise
            # No committed footer anywhere.  If the header is intact
            # this is a crash before the *first* commit — nothing was
            # ever durable, so restart the archive empty.  Anything
            # else (bad magic, foreign file) stays an error.
            with MappedBuffer(path) as buffer:
                check_header(buffer.view)
            manifest = {
                "format_version": 1,
                "byte_order": sys.byteorder,
                "page_size": PAGE_SIZE,
                "pool": {"segments": [], "count": 0},
                "generations": [],
            }
            end, torn, restarted = PAGE_SIZE, True, True
        writer = cls(path, manifest, end)
        if restarted:
            writer._dirty = True  # restarted empty: commit a footer
        if torn:
            # Drop the torn tail now so a crash *during this session*
            # cannot stack a second torn region behind the first.
            writer._file.truncate(end)
            writer._file.flush()
            os.fsync(writer._file.fileno())
        return writer

    # -- appending ------------------------------------------------------------

    def _append_segment(self, payload) -> list:
        """Write one page-aligned segment; returns [offset, length, crc]."""
        offset = align_up(self._end)
        self._file.seek(offset)
        self._file.write(payload)
        self._end = offset + len(payload)
        self._dirty = True
        return [offset, len(payload), crc32_view(payload)]

    def append_pool(self, names: Iterable[str]) -> int:
        """Append new interned domain names (gid order continues).

        Callers pass only the names *beyond* the archive's current
        ``pool.count`` — gids are positional, so the archived pool must
        stay a prefix of the writer's pool.  Returns the new count.
        """
        names = list(names)
        if names:
            if any("\n" in name for name in names):
                raise ArchiveFormatError(
                    "domain names must not contain newlines"
                )
            if any(not name for name in names):
                # An all-empty batch joins to a zero-length payload the
                # reader's count check would reject — refuse up front.
                raise ArchiveFormatError("domain names must not be empty")
            payload = "\n".join(names).encode("utf-8")
            pool = self._manifest["pool"]
            entry_name = f"pool.{len(pool['segments'])}"
            pool["segments"].append(
                {
                    "name": entry_name,
                    "count": len(names),
                    "segment": self._append_segment(payload),
                }
            )
            pool["count"] = int(pool["count"]) + len(names)
        return int(self._manifest["pool"]["count"])

    def append_generation(
        self,
        date: str,
        segments: dict,
        meta: dict,
        annotator_signature: "str | None" = None,
        index_signature: "str | None" = None,
    ) -> int:
        """Append one generation (segments + manifest entry); returns gid.

        *segments* maps segment name → bytes-like payload; *meta* is the
        JSON-able metadata the matching decoder needs (keyed by kind:
        ``"siblings"``, ``"index"``, ``"state"``).
        """
        with trace("archive.append", items=len(segments)):
            descriptors = {
                name: self._append_segment(payload)
                for name, payload in segments.items()
            }
        gid = self._next_gid
        self._next_gid += 1
        self._manifest["generations"].append(
            {
                "gid": gid,
                "date": date,
                "annotator_signature": annotator_signature,
                "index_signature": index_signature,
                "meta": meta,
                "segments": descriptors,
            }
        )
        self._dirty = True
        return gid

    @property
    def pool_count(self) -> int:
        """How many domain names the archive's pool currently holds."""
        return int(self._manifest["pool"]["count"])

    @property
    def generation_dates(self) -> list[str]:
        """ISO dates of every generation already in the manifest."""
        return [str(e["date"]) for e in self._manifest["generations"]]

    def has_generation(
        self,
        date: str,
        kind: str,
        annotator_signature: "str | None" = None,
    ) -> bool:
        """Whether a generation for *date* already records *kind*.

        With *annotator_signature*, the generation must also match it —
        the idempotence check appenders use: a date whose routing
        changed since it was archived does *not* count as present, so
        the recomputed generation is appended and (being newest) wins
        on read.
        """
        for entry in self._manifest["generations"]:
            if (
                str(entry["date"]) == date
                and kind in entry.get("meta", {})
                and (
                    annotator_signature is None
                    or entry.get("annotator_signature") == annotator_signature
                )
            ):
                return True
        return False

    # -- durability -----------------------------------------------------------

    def commit(self) -> None:
        """Write the new manifest + footer and fsync (idempotent)."""
        if not self._dirty:
            return
        with trace("archive.commit"):
            payload = json.dumps(self._manifest, separators=(",", ":")).encode(
                "utf-8"
            )
            offset = align_up(self._end)
            self._file.seek(offset)
            self._file.write(payload)
            self._file.write(
                pack_footer(offset, len(payload), crc32_view(payload))
            )
            self._end = offset + len(payload) + FOOTER.size
            self._file.truncate(self._end)
            self._file.flush()
            os.fsync(self._file.fileno())
            self._committed_end = self._end
            self._dirty = False

    def close(self) -> None:
        """Commit pending appends and release the file handle."""
        if self._file.closed:
            return
        try:
            self.commit()
        finally:
            self._file.close()

    def __enter__(self) -> "ArchiveWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()

    def abort(self) -> None:
        """Discard uncommitted appends and close.

        Readers locate the manifest through the *last 32 bytes*, so an
        uncommitted tail would render the file unreadable; truncating
        back to the committed footer keeps every committed generation
        servable.  (A fresh never-committed archive stays footer-less
        and is rejected cleanly on open.)
        """
        if self._file.closed:
            return
        try:
            self._file.truncate(self._committed_end)
            self._file.flush()
        finally:
            self._file.close()

    def __del__(self):  # pragma: no cover - defensive
        if hasattr(self, "_file") and not self._file.closed:
            self._file.close()
