"""Compiled lookup indexes inside the archive: write once, mmap forever.

A :class:`~repro.serving.index.SiblingLookupIndex` is already laid out
as flat sorted key arrays + posting lists; this module persists exactly
that layout into per-generation archive segments and attaches to it
zero-copy:

* **keys** — per family, the sorted packed network keys of every
  length group, concatenated in probe order (longest length first).
  Keys that fit 64 bits land in a native ``u64`` segment a reader
  casts with ``memoryview.cast("Q")`` and bisects *in place*; the rare
  longer-than-/64 IPv6 groups go to a separate 16-byte-big-endian
  segment wrapped by :class:`_WideKeys` (same bisect protocol, decoded
  per probe).
* **postings** — one family-global ``u32`` array of pair-table
  positions plus a ``u64`` offsets array aligned with the concatenated
  keys; a hit slices its posting list out of the view.
* **records** — the same fixed 44-byte pair records as the ``.sibidx``
  codec (:func:`repro.serving.codec.pack_records`), decoded *lazily*:
  :class:`MappedPairTable` materializes a
  :class:`~repro.publish.PublishedPair` only for the records a query
  actually returns.

Cold start therefore costs one manifest parse — no pair objects, no
sort, no group compilation — which is what
``benchmarks/bench_archive_coldstart.py`` measures against the codec
load-and-compile path.  Answers are bit-identical to the in-memory
index (``tests/test_storage_archive.py`` property-tests this).
"""

from __future__ import annotations

import datetime
import pathlib
from array import array
from bisect import bisect_left
from typing import Iterator, Sequence

from repro.nettypes.addr import MAX_LENGTH
from repro.nettypes.prefix import Prefix
from repro.serving import codec
from repro.serving.index import SiblingLookupIndex
from repro.storage.archive import ArchiveReader, Generation
from repro.storage.format import ArchiveFormatError

#: Keys at most this many network bits live in the castable u64 segment.
_NARROW_BITS = 64

#: Bytes per wide (``> /64`` IPv6) key.
_WIDE_KEY_BYTES = 16

#: Manifest meta kind for these segments.
KIND = "index"


def index_segments(index: SiblingLookupIndex) -> tuple[dict, dict]:
    """Encode a compiled *index* into archive segments.

    Returns ``(segments, meta)`` for
    :meth:`~repro.storage.archive.ArchiveWriter.append_generation`.
    The segment payloads mirror the in-memory layout of
    :class:`~repro.serving.index.SiblingLookupIndex` so the mapped
    reader does no recompilation.
    """
    records, rov_table = codec.pack_records(index.pairs)
    segments: dict[str, bytes] = {"index.records": records}
    families_meta: dict[str, list] = {}
    for version in (4, 6):
        family = index._families[version]
        narrow = array("Q")
        wide = bytearray()
        postings = array("I")
        offsets = array("Q", [0])
        groups_meta = []
        for slot, length in enumerate(family.lengths):
            keys = family.keys[slot]
            groups_meta.append([length, len(keys)])
            if length <= _NARROW_BITS:
                narrow.extend(keys)
            else:
                for key in keys:
                    wide += key.to_bytes(_WIDE_KEY_BYTES, "big")
            for posting in family.postings[slot]:
                postings.extend(posting)
                offsets.append(len(postings))
        segments[f"index.v{version}.keys"] = narrow.tobytes()
        segments[f"index.v{version}.wide"] = bytes(wide)
        segments[f"index.v{version}.postings"] = postings.tobytes()
        segments[f"index.v{version}.offsets"] = offsets.tobytes()
        families_meta[str(version)] = groups_meta
    meta = {
        "snapshot": index.snapshot.isoformat(),
        "pairs": len(index.pairs),
        "rov_statuses": rov_table,
        "families": families_meta,
    }
    return segments, meta


def append_index(
    path: "str | pathlib.Path", index: SiblingLookupIndex
) -> int:
    """Append *index* as a new archive generation at *path*; returns gid.

    Creates the archive if missing.  This is the minimal publisher a
    serving fleet needs: commit a new compiled generation (footer
    protocol makes it atomic for readers), then have every worker
    :meth:`~repro.serving.service.SiblingQueryService.swap_from_archive`.
    Full detection runs archive richer generations (sibling lists,
    substrate state) via :mod:`repro.analysis.pipeline`.
    """
    from repro.storage.archive import ArchiveWriter

    segments, meta = index_segments(index)
    with ArchiveWriter.open(path) as writer:
        return writer.append_generation(
            index.snapshot.isoformat(), segments, {KIND: meta}
        )


class MappedPairTable(Sequence):
    """Lazy pair table over a mapped record segment.

    Quacks like the ``pairs`` tuple of an in-memory index —
    ``len()``, indexing, iteration — but decodes a
    :class:`~repro.publish.PublishedPair` from its 44 bytes only when
    asked, so attaching a million-pair archive allocates nothing up
    front and a lookup materializes exactly the pairs it returns.
    """

    __slots__ = ("_records", "_count", "_rov_table")

    def __init__(self, records: memoryview, count: int, rov_table: Sequence[str]):
        if len(records) != count * codec.RECORD_SIZE:
            raise ArchiveFormatError(
                f"index records segment holds {len(records)} bytes, "
                f"expected {count * codec.RECORD_SIZE} for {count} pairs"
            )
        self._records = records
        self._count = count
        self._rov_table = tuple(rov_table)

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, position):
        if isinstance(position, slice):
            return tuple(
                self[index] for index in range(*position.indices(self._count))
            )
        if position < 0:
            position += self._count
        if not 0 <= position < self._count:
            raise IndexError(position)
        return codec.decode_record(self._records, position, self._rov_table)

    def __iter__(self) -> Iterator:
        for position in range(self._count):
            yield self[position]


class _WideKeys:
    """Bisectable view over 16-byte big-endian keys (IPv6 ``> /64``)."""

    __slots__ = ("_view", "_start", "_count")

    def __init__(self, view: memoryview, start: int, count: int):
        self._view = view
        self._start = start
        self._count = count

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, position: int) -> int:
        offset = (self._start + position) * _WIDE_KEY_BYTES
        return int.from_bytes(
            self._view[offset:offset + _WIDE_KEY_BYTES], "big"
        )


class _MappedFamily:
    """The mapped counterpart of ``serving.index._FamilyIndex``.

    Same probe algorithm — mask the query once per populated length,
    longest first, bisect the length's key array — but the key arrays
    are cast ``mmap`` views and the posting list of a hit is a ``u32``
    view slice.  Interface-compatible with ``_FamilyIndex`` as far as
    :class:`~repro.serving.index.SiblingLookupIndex` consumes it
    (``lookup``, ``covering``, ``lengths``, ``size``).
    """

    __slots__ = ("version", "bits", "lengths", "size", "_groups",
                 "_offsets", "_postings")

    def __init__(
        self,
        version: int,
        groups_meta: Sequence[Sequence[int]],
        keys_view: memoryview,
        wide_view: memoryview,
        postings_view: memoryview,
        offsets_view: memoryview,
    ):
        self.version = version
        self.bits = MAX_LENGTH[version]
        self.lengths = tuple(int(length) for length, _count in groups_meta)
        narrow_keys = keys_view.cast("Q")
        self._offsets = offsets_view.cast("Q")
        self._postings = postings_view.cast("I")
        #: Per group in probe order: (length, keys sequence, global base).
        self._groups: list[tuple[int, Sequence[int], int]] = []
        narrow_base = wide_base = global_base = 0
        for length, count in ((int(l), int(c)) for l, c in groups_meta):
            if length <= _NARROW_BITS:
                keys: Sequence[int] = narrow_keys[
                    narrow_base:narrow_base + count
                ]
                narrow_base += count
            else:
                keys = _WideKeys(wide_view, wide_base, count)
                wide_base += count
            self._groups.append((length, keys, global_base))
            global_base += count
        self.size = global_base
        if len(self._offsets) != global_base + 1:
            raise ArchiveFormatError(
                f"family {version} offsets segment holds "
                f"{len(self._offsets)} entries, expected {global_base + 1}"
            )

    def lookup(self, value: int, max_length: "int | None" = None):
        """LPM for integer address *value*: ``(prefix, posting)`` or None."""
        for length, keys, base in self._groups:
            if max_length is not None and length > max_length:
                continue
            key = value >> (self.bits - length) if length else 0
            position = bisect_left(keys, key)
            if position < len(keys) and keys[position] == key:
                prefix = Prefix.from_network_key(self.version, key, length)
                start = self._offsets[base + position]
                end = self._offsets[base + position + 1]
                return prefix, self._postings[start:end]
        return None

    def covering(self, value: int, max_length: int):
        """Every stored prefix containing *value*, shortest first."""
        found = []
        for slot in range(len(self._groups) - 1, -1, -1):
            length, keys, base = self._groups[slot]
            if length > max_length:
                continue
            key = value >> (self.bits - length) if length else 0
            position = bisect_left(keys, key)
            if position < len(keys) and keys[position] == key:
                prefix = Prefix.from_network_key(self.version, key, length)
                start = self._offsets[base + position]
                end = self._offsets[base + position + 1]
                found.append((prefix, self._postings[start:end]))
        return found


class MappedSiblingIndex(SiblingLookupIndex):
    """A :class:`~repro.serving.index.SiblingLookupIndex` served out of
    an ``mmap``-ed archive generation.

    Query behaviour and answers are identical to the in-memory class it
    subclasses — only the storage differs: keys, postings, and pair
    records stay in the page cache; pairs materialize per answer.  The
    index holds the :class:`~repro.storage.archive.ArchiveReader` it
    was attached through (when it owns one) and must be :meth:`close`-d
    — or simply dropped — only after its answers are no longer in use.
    """

    def __init__(
        self,
        pairs: MappedPairTable,
        snapshot: datetime.date,
        families: dict,
        reader: "ArchiveReader | None" = None,
    ):
        super().__init__(pairs, snapshot, families)
        self._reader = reader

    def close(self) -> None:
        """Release the owned archive mapping, if any (idempotent).

        Drops the internal view-holding structures first — an ``mmap``
        refuses to close while exported buffers exist — so a closed
        index answers no further queries.
        """
        self.pairs = ()
        self._families = {}
        if self._reader is not None:
            self._reader.close()
            self._reader = None


def attach_index(
    reader: ArchiveReader, generation: "Generation | None" = None
) -> MappedSiblingIndex:
    """Attach to a generation's index segments (newest if omitted).

    No decompression, no recompilation: the returned index serves
    straight from *reader*'s mapping, which must outlive it.
    """
    if generation is None:
        generation = reader.latest(KIND)
        if generation is None:
            raise ArchiveFormatError(
                f"{reader._buffer.path} holds no compiled index generation"
            )
    meta = generation.meta[KIND]
    try:
        snapshot = datetime.date.fromisoformat(meta["snapshot"])
        count = int(meta["pairs"])
        rov_table = list(meta["rov_statuses"])
        families_meta = meta["families"]
    except (KeyError, TypeError, ValueError) as exc:
        raise ArchiveFormatError(f"malformed index metadata: {exc}") from exc
    pairs = MappedPairTable(
        generation.segment("index.records"), count, rov_table
    )
    families = {
        version: _MappedFamily(
            version,
            families_meta[str(version)],
            generation.segment(f"index.v{version}.keys"),
            generation.segment(f"index.v{version}.wide"),
            generation.segment(f"index.v{version}.postings"),
            generation.segment(f"index.v{version}.offsets"),
        )
        for version in (4, 6)
    }
    return MappedSiblingIndex(pairs, snapshot, families)


def load_mapped_index(path: "str | pathlib.Path") -> MappedSiblingIndex:
    """Open *path* and attach to its newest compiled index generation.

    The returned index owns the reader: dropping (or :meth:`closing
    <MappedSiblingIndex.close>`) it releases the mapping.  This is the
    ``repro serve --archive`` cold-start path.
    """
    reader = ArchiveReader.open(path)
    try:
        index = attach_index(reader)
    except ArchiveFormatError:
        reader.close()
        raise
    index._reader = reader
    return index


__all__ = [
    "KIND",
    "MappedPairTable",
    "MappedSiblingIndex",
    "append_index",
    "attach_index",
    "index_segments",
    "load_mapped_index",
]
