"""Columnar substrate state and sibling sets inside the archive.

Two encoders/decoders, both keyed off the archive's shared interned
domain pool (gids are positions into it, so the pool segments must be
restored into — or adopted by — the substrate before anything here is
decoded):

* **sibling sets** (kind ``"siblings"``) — one fixed 38-byte record
  per pair (prefixes, bit-exact similarity double, family domain
  counts) plus a CSR of shared-domain gids, enough to rebuild the
  exact :class:`~repro.core.siblings.SiblingSet` a detection run
  produced.  This is what lets ``detect_series(..., archive=...)``
  return already-archived dates without recomputing them.
* **columnar state** (kind ``"state"``) — the full persistent
  :class:`~repro.core.substrate._ColumnarState` of the *newest*
  archived date: prefix row tables, group sizes, per-row CSR posting
  lists, the per-domain membership transpose (tombstones included, so
  future delta patching continues exactly where the archived run
  stopped), and the packed Step-3 counter.  Restoring it skips the
  interning, CSR build, *and* the full Step-3 accumulation — the
  resume path pays only Steps 1-2 on the resume date.

Safety: every state generation records the
:meth:`~repro.core.domainsets.PrefixDomainIndex.content_signature` of
the index it describes.  :func:`restore_state` only attaches when the
freshly rebuilt index hashes to the same signature; any mismatch (a
changed scenario, annotator, or date grid) falls back to a full
rebuild rather than serving stale counters.
"""

from __future__ import annotations

import struct
from array import array
from typing import Callable, Iterable

from repro.core.kernels import get_kernel
from repro.core.siblings import SiblingPair, SiblingSet
from repro.core.substrate import _ColumnarState
from repro.nettypes.prefix import Prefix
from repro.storage.archive import Generation
from repro.storage.format import ArchiveFormatError

#: Per-pair sibling record: v4 value/length, v6 value (16B)/length,
#: similarity double, v4/v6 domain counts.
_SIBLING_RECORD = struct.Struct("<IB16sBdII")

#: v4 prefix row record / v6 prefix row record.
_V4_PREFIX = struct.Struct("<IB")
_V6_PREFIX = struct.Struct("<16sB")

#: Tombstoned dom position marker in the ``state.dom_gids`` segment.
_NO_DOMAIN = 0xFFFFFFFF

#: Manifest meta kinds.
SIBLINGS_KIND = "siblings"
STATE_KIND = "state"


def _csr(lists: Iterable[Iterable[int]], typecode: str) -> tuple[bytes, bytes]:
    """Flatten integer lists into (data, u64 offsets) native segments."""
    data = array(typecode)
    offsets = array("Q", [0])
    for items in lists:
        data.extend(items)
        offsets.append(len(data))
    return data.tobytes(), offsets.tobytes()


def _csr_views(generation: Generation, name: str, typecode: str):
    """The (data, offsets) cast views of one CSR segment pair."""
    data = generation.segment(f"{name}_data").cast(typecode)
    offsets = generation.segment(f"{name}_offsets").cast("Q")
    return data, offsets


def _csr_lists(generation: Generation, name: str, typecode: str) -> list[list[int]]:
    """Decode one CSR segment pair back into a list of lists."""
    data, offsets = _csr_views(generation, name, typecode)
    return [
        list(data[offsets[row]:offsets[row + 1]])
        for row in range(len(offsets) - 1)
    ]


def annotator_digest(annotator) -> str:
    """Stable hex digest of a :class:`~repro.bgp.routeviews.
    PrefixAnnotator`'s content signature.

    :meth:`~repro.bgp.routeviews.PrefixAnnotator.signature` returns
    nested frozensets — content-equal but not serializable and with no
    stable iteration order.  The archive needs a *textual* identity to
    store per generation, so the route sets are sorted and hashed;
    equal signatures produce equal digests on any host or run.
    """
    import hashlib

    primary, fallback, fraction = annotator.signature()
    digest = hashlib.sha256()
    for rib_signature in (primary, fallback):
        for line in sorted(
            f"{prefix}|{','.join(map(str, sorted(origins)))}"
            for prefix, origins in rib_signature
        ):
            digest.update(line.encode("ascii"))
            digest.update(b"\n")
        digest.update(b"--\n")
    digest.update(repr(fraction).encode("ascii"))
    return digest.hexdigest()


# -- sibling sets -------------------------------------------------------------


def siblings_segments(
    siblings: SiblingSet, intern: Callable[[str], int]
) -> tuple[dict, dict]:
    """Encode one detection result into archive segments.

    *intern* maps a domain name to its pool gid (the columnar
    substrate's intern function, or a standalone pool for the
    reference engine); every shared domain is interned so the caller's
    pool — which it must persist via
    :meth:`~repro.storage.archive.ArchiveWriter.append_pool` — covers
    all gids written here.
    """
    records = bytearray()
    gid_lists: list[list[int]] = []
    ordered = sorted(siblings, key=lambda pair: (pair.v4_prefix, pair.v6_prefix))
    for pair in ordered:
        records += _SIBLING_RECORD.pack(
            pair.v4_prefix.value,
            pair.v4_prefix.length,
            pair.v6_prefix.value.to_bytes(16, "big"),
            pair.v6_prefix.length,
            pair.similarity,
            pair.v4_domain_count,
            pair.v6_domain_count,
        )
        gid_lists.append(sorted(intern(domain) for domain in pair.shared_domains))
    gids_data, gids_offsets = _csr(gid_lists, "I")
    segments = {
        "siblings.records": bytes(records),
        "siblings.gids_data": gids_data,
        "siblings.gids_offsets": gids_offsets,
    }
    meta = {"date": siblings.date.isoformat(), "pairs": len(ordered)}
    return segments, meta


def load_siblings(generation: Generation, pool_names: list[str]) -> SiblingSet:
    """Rebuild the exact :class:`SiblingSet` one generation archived."""
    import datetime

    meta = generation.meta[SIBLINGS_KIND]
    count = int(meta["pairs"])
    records = generation.segment("siblings.records")
    if len(records) != count * _SIBLING_RECORD.size:
        raise ArchiveFormatError(
            f"siblings records segment holds {len(records)} bytes, "
            f"expected {count * _SIBLING_RECORD.size}"
        )
    gids_data, gids_offsets = _csr_views(generation, "siblings.gids", "I")
    result = SiblingSet(datetime.date.fromisoformat(meta["date"]))
    for position in range(count):
        (
            v4_value,
            v4_length,
            v6_bytes,
            v6_length,
            similarity,
            v4_count,
            v6_count,
        ) = _SIBLING_RECORD.unpack_from(
            records, position * _SIBLING_RECORD.size
        )
        shared = frozenset(
            pool_names[gid]
            for gid in gids_data[gids_offsets[position]:gids_offsets[position + 1]]
        )
        result.add(
            SiblingPair(
                v4_prefix=Prefix(4, v4_value, v4_length),
                v6_prefix=Prefix(6, int.from_bytes(v6_bytes, "big"), v6_length),
                similarity=similarity,
                shared_domains=shared,
                v4_domain_count=v4_count,
                v6_domain_count=v6_count,
            )
        )
    return result


# -- columnar state -----------------------------------------------------------


def _row_gids(row: int, overlay: dict, data, offsets) -> list[int]:
    """One row's sorted domain gids: overlay if patched, else CSR.

    The same precedence as ``_ColumnarState.v4_gids`` but *without*
    populating its memo — exporting every row through the memoizing
    accessor would pin a frozenset per prefix into the live state for
    rows no query ever touched.
    """
    gids = overlay.get(row)
    if gids is None:
        if row + 1 >= len(offsets):
            return []
        return sorted(data[offsets[row]:offsets[row + 1]])
    return sorted(gids)


def state_segments(state: _ColumnarState) -> tuple[dict, dict]:
    """Encode one prepared columnar state into archive segments.

    The per-row CSR posting lists are re-derived row by row with the
    overlay taking precedence over the raw CSR arrays: a delta-patched
    state keeps churned rows only in its overlay, and that combined
    view is the one representation that is always current.  The
    restored state therefore has a complete CSR and an empty overlay —
    identical answers, canonical layout.
    """
    v4_rows = len(state.v4_prefixes)
    v6_rows = len(state.v6_prefixes)
    v4_prefix_records = b"".join(
        _V4_PREFIX.pack(prefix.value, prefix.length)
        for prefix in state.v4_prefixes
    )
    v6_prefix_records = b"".join(
        _V6_PREFIX.pack(prefix.value.to_bytes(16, "big"), prefix.length)
        for prefix in state.v6_prefixes
    )
    v4_csr_data, v4_csr_offsets = _csr(
        (
            _row_gids(
                row, state._v4_gid_sets, state.v4_post_data,
                state.v4_post_offsets,
            )
            for row in range(v4_rows)
        ),
        "I",
    )
    v6_csr_data, v6_csr_offsets = _csr(
        (
            _row_gids(
                row, state._v6_gid_sets, state.v6_post_data,
                state.v6_post_offsets,
            )
            for row in range(v6_rows)
        ),
        "I",
    )
    bases_data, bases_offsets = _csr(state.dom_bases, "Q")
    rows_data, rows_offsets = _csr(state.dom_rows, "I")
    # The counter serializes through the kernel-neutral sorted-column
    # wire format (PairCounts.sorted_columns: u64 keys / u32 counts),
    # so archives written under one kernel restore under the other.
    if state.counts is not None:
        counts_keys, counts_vals = state.counts.sorted_columns()
        counts_key_bytes = counts_keys.tobytes()
        counts_val_bytes = counts_vals.tobytes()
        pair_count = len(state.counts)
    else:
        counts_key_bytes = b""
        counts_val_bytes = b""
        pair_count = 0
    segments = {
        "state.v4_prefixes": v4_prefix_records,
        "state.v6_prefixes": v6_prefix_records,
        "state.v4_sizes": state.v4_sizes.tobytes(),
        "state.v6_sizes": state.v6_sizes.tobytes(),
        "state.v4_csr_data": v4_csr_data,
        "state.v4_csr_offsets": v4_csr_offsets,
        "state.v6_csr_data": v6_csr_data,
        "state.v6_csr_offsets": v6_csr_offsets,
        "state.dom_bases_data": bases_data,
        "state.dom_bases_offsets": bases_offsets,
        "state.dom_rows_data": rows_data,
        "state.dom_rows_offsets": rows_offsets,
        "state.counts_keys": counts_key_bytes,
        "state.counts_vals": counts_val_bytes,
    }
    meta = {
        "v4_rows": v4_rows,
        "v6_rows": v6_rows,
        "positions": len(state.dom_bases),
        "pairs": pair_count,
        "has_counts": state.counts is not None,
    }
    return segments, meta


def state_dom_gids(state: _ColumnarState, gid_of: Callable[[str], int]) -> bytes:
    """The ``state.dom_gids`` segment: pool gid per dom position.

    Separate from :func:`state_segments` because mapping positions back
    to domains needs the intern pool, which the substrate owns.
    Tombstoned (free) positions record :data:`_NO_DOMAIN`.
    """
    gids = array("I", [_NO_DOMAIN] * len(state.dom_bases))
    for domain, position in state.dom_pos.items():
        gids[position] = gid_of(domain)
    return gids.tobytes()


def restore_state(generation: Generation, pool_names: list[str]) -> _ColumnarState:
    """Decode one archived columnar state back into a live object.

    The caller (:meth:`repro.core.substrate.ColumnarSubstrate.
    adopt_state`) is responsible for verifying the state belongs to the
    index it is attached to — this function only rebuilds the
    in-memory representation.
    """
    meta = generation.meta[STATE_KIND]
    v4_rows = int(meta["v4_rows"])
    v6_rows = int(meta["v6_rows"])

    state = object.__new__(_ColumnarState)
    v4_records = generation.segment("state.v4_prefixes")
    if len(v4_records) != v4_rows * _V4_PREFIX.size:
        raise ArchiveFormatError("v4 prefix table size mismatch")
    state.v4_prefixes = [
        Prefix(4, *_V4_PREFIX.unpack_from(v4_records, row * _V4_PREFIX.size))
        for row in range(v4_rows)
    ]
    v6_records = generation.segment("state.v6_prefixes")
    if len(v6_records) != v6_rows * _V6_PREFIX.size:
        raise ArchiveFormatError("v6 prefix table size mismatch")
    state.v6_prefixes = []
    for row in range(v6_rows):
        value_bytes, length = _V6_PREFIX.unpack_from(
            v6_records, row * _V6_PREFIX.size
        )
        state.v6_prefixes.append(
            Prefix(6, int.from_bytes(value_bytes, "big"), length)
        )
    state.v4_row_of = {
        prefix: row << 32 for row, prefix in enumerate(state.v4_prefixes)
    }
    state.v6_row_of = {
        prefix: row for row, prefix in enumerate(state.v6_prefixes)
    }
    state.v4_sizes = array("I")
    state.v4_sizes.frombytes(bytes(generation.segment("state.v4_sizes")))
    state.v6_sizes = array("I")
    state.v6_sizes.frombytes(bytes(generation.segment("state.v6_sizes")))

    state.v4_post_data = array("I")
    state.v4_post_data.frombytes(bytes(generation.segment("state.v4_csr_data")))
    state.v4_post_offsets = array("Q")
    state.v4_post_offsets.frombytes(
        bytes(generation.segment("state.v4_csr_offsets"))
    )
    state.v6_post_data = array("I")
    state.v6_post_data.frombytes(bytes(generation.segment("state.v6_csr_data")))
    state.v6_post_offsets = array("Q")
    state.v6_post_offsets.frombytes(
        bytes(generation.segment("state.v6_csr_offsets"))
    )

    state.dom_bases = _csr_lists(generation, "state.dom_bases", "Q")
    state.dom_rows = _csr_lists(generation, "state.dom_rows", "I")
    dom_gids = generation.segment("state.dom_gids").cast("I")
    if len(dom_gids) != len(state.dom_bases):
        raise ArchiveFormatError("dom_gids/dom_bases length mismatch")
    state.dom_pos = {}
    state.free_positions = []
    for position, gid in enumerate(dom_gids):
        if gid == _NO_DOMAIN:
            state.free_positions.append(position)
        else:
            state.dom_pos[pool_names[gid]] = position

    keys = generation.segment("state.counts_keys").cast("Q")
    vals = generation.segment("state.counts_vals").cast("I")
    if len(keys) != len(vals):
        raise ArchiveFormatError("counter keys/values length mismatch")
    if meta.get("has_counts", True):
        # Rebuilt on the *restoring* process's active kernel — the
        # sorted-column wire format is kernel-neutral.
        state.counts = get_kernel().counts_from_columns(keys, vals)
    else:
        state.counts = None
    state._v4_gid_sets = {}
    state._v6_gid_sets = {}
    return state


__all__ = [
    "SIBLINGS_KIND",
    "STATE_KIND",
    "annotator_digest",
    "load_siblings",
    "restore_state",
    "siblings_segments",
    "state_dom_gids",
    "state_segments",
]
