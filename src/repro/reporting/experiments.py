"""The per-experiment registry: one runner per paper figure/table.

Every entry takes a universe (plus optional knobs), reproduces the
corresponding figure's data, and returns an :class:`ExperimentResult`
holding the rendered table plus the headline numbers recorded in
EXPERIMENTS.md.  The ``benchmarks/`` tree wires these runners to concrete
scenarios under pytest-benchmark.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.business import (
    BusinessVariant,
    business_type_heatmap,
    dominant_category,
    it_involvement_share,
)
from repro.analysis.cidr import (
    V4_GROUPS_TUNED,
    V6_GROUPS_TUNED,
    cidr_size_heatmap,
    modal_combination,
)
from repro.analysis.dataset_stats import dataset_evolution
from repro.analysis.domain_bins import diagonal_share, domain_count_heatmap
from repro.analysis.dynamics import analyze_dynamics
from repro.analysis.hgcdn import hgcdn_distribution, hgcdn_heatmap
from repro.analysis.organizations import split_by_organization, unique_prefix_counts
from repro.analysis.pipeline import detect_at, paper_offsets, tuned_at
from repro.analysis.rov import at_least_one_valid_share, pair_rov_shares, rov_timeline
from repro.analysis.timeline import org_split_timeline, sibling_count_timeline
from repro.atlas.groundtruth import evaluate_coverage
from repro.atlas.probes import VantageKind, generate_vantage_points
from repro.core.detection import BestMatchMode, detect_siblings
from repro.core.longitudinal import ChangeClass, classify_changes
from repro.core.sensitivity import cell_at, sweep_thresholds
from repro.core.sptuner import (
    DEFAULT_CONFIG,
    ROUTABLE_CONFIG,
    LsConfig,
    SpTunerLS,
    SpTunerMS,
    TunerConfig,
)
from repro.dates import REFERENCE_DATE, snapshot_dates
from repro.reporting.containers import EcdfSeries, Heatmap, ecdf
from repro.reporting.tables import (
    format_ecdf_summary,
    format_heatmap,
    format_stacked_area,
    format_timeseries,
)
from repro.rpki.builder import repository_from_universe
from repro.rpki.pair_status import PairRovStatus
from repro.scan.analysis import portscan_overlap, responsive_share, scan_heatmap
from repro.scan.zmap import PortScanner
from repro.synth.universe import Universe


@dataclass
class ExperimentResult:
    """One reproduced figure: rendered text plus headline numbers."""

    experiment_id: str
    title: str
    text: str
    key_values: dict[str, float] = field(default_factory=dict)

    def summary_lines(self) -> list[str]:
        return [f"{key} = {value:.4g}" for key, value in self.key_values.items()]


Runner = Callable[..., ExperimentResult]
EXPERIMENTS: dict[str, Runner] = {}


def experiment(experiment_id: str) -> Callable[[Runner], Runner]:
    def register(runner: Runner) -> Runner:
        EXPERIMENTS[experiment_id] = runner
        return runner
    return register


def run_experiment(experiment_id: str, universe: Universe, **kwargs) -> ExperimentResult:
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return runner(universe, **kwargs)


def _siblings_for_case(universe: Universe, case: str):
    """Shared case selector for experiments with default/tuned variants:
    ``default`` (BGP-announced), ``routable`` (/24-/48), ``deep`` (/28-/96).
    """
    if case == "default":
        return detect_at(universe, REFERENCE_DATE)
    if case == "routable":
        return tuned_at(universe, REFERENCE_DATE, ROUTABLE_CONFIG)
    if case == "deep":
        return tuned_at(universe, REFERENCE_DATE, DEFAULT_CONFIG)
    raise ValueError(f"unknown case {case!r}; use default/routable/deep")


def _sampled_snapshot_dates(every: int = 4) -> list[datetime.date]:
    """Every *every*-th of the 49 study snapshots (keeps benches fast),
    always including the first and last."""
    dates = snapshot_dates()
    sampled = dates[::every]
    if dates[-1] not in sampled:
        sampled.append(dates[-1])
    return sampled


# ---------------------------------------------------------------------------
# Section 2 / datasets
# ---------------------------------------------------------------------------


@experiment("fig01")
def fig01_dataset_evolution(universe: Universe, every: int = 4) -> ExperimentResult:
    dates = _sampled_snapshot_dates(every)
    series = dataset_evolution(universe, dates)
    return ExperimentResult(
        "fig01",
        "Figure 1: domains and dual-stack domains over time",
        format_timeseries(series, precision=1),
        {
            "total_domains_start": series.first("total_domains"),
            "total_domains_end": series.last("total_domains"),
            "ds_share_start_pct": series.first("ds_share_pct"),
            "ds_share_end_pct": series.last("ds_share_pct"),
        },
    )


# ---------------------------------------------------------------------------
# Section 3 / methodology
# ---------------------------------------------------------------------------


@experiment("fig02")
def fig02_metric_comparison(universe: Universe) -> ExperimentResult:
    snapshot = universe.snapshot_at(REFERENCE_DATE)
    annotator = universe.annotator_at(REFERENCE_DATE)
    lines: list[EcdfSeries] = []
    shares: dict[str, float] = {}
    for metric in ("jaccard", "dice", "overlap"):
        siblings = detect_siblings(snapshot, annotator, metric=metric)
        line = ecdf(metric, siblings.similarities())
        lines.append(line)
        shares[f"{metric}_share_at_1"] = line.share_equal(1.0)
    return ExperimentResult(
        "fig02",
        "Figure 2: Jaccard vs Dice vs overlap coefficient",
        format_ecdf_summary(lines),
        shares,
    )


@experiment("fig04")
def fig04_sensitivity_heatmap(
    universe: Universe,
    v4_thresholds: tuple[int, ...] = (16, 20, 24, 28),
    v6_thresholds: tuple[int, ...] = (32, 48, 64, 96),
) -> ExperimentResult:
    siblings, index = detect_at(universe, REFERENCE_DATE)
    cells = sweep_thresholds(siblings, index, v4_thresholds, v6_thresholds)
    heatmap = Heatmap(
        title="Figure 4: SP-Tuner mean Jaccard (std) per threshold pair",
        row_labels=[f"/{t}" for t in v6_thresholds],
        column_labels=[f"/{t}" for t in v4_thresholds],
        cells=[
            [cell_at(cells, v4, v6).mean for v4 in v4_thresholds]
            for v6 in v6_thresholds
        ],
        secondary=[
            [cell_at(cells, v4, v6).std for v4 in v4_thresholds]
            for v6 in v6_thresholds
        ],
    )
    loosest = cell_at(cells, v4_thresholds[0], v6_thresholds[0])
    tightest = cell_at(cells, v4_thresholds[-1], v6_thresholds[-1])
    return ExperimentResult(
        "fig04",
        heatmap.title,
        format_heatmap(heatmap, precision=3),
        {
            "mean_at_loosest": loosest.mean,
            "mean_at_tightest": tightest.mean,
            "std_at_loosest": loosest.std,
            "std_at_tightest": tightest.std,
        },
    )


@experiment("fig05")
def fig05_sptuner_ecdf(universe: Universe) -> ExperimentResult:
    siblings, index = detect_at(universe, REFERENCE_DATE)
    routable = SpTunerMS(index, ROUTABLE_CONFIG).tune_all(siblings)
    deep = SpTunerMS(index, DEFAULT_CONFIG).tune_all(siblings)
    lines = [
        ecdf("Default (BGP-announced)", siblings.similarities()),
        ecdf("SP-Tuner (/24,/48)", routable.similarities()),
        ecdf("SP-Tuner (/28,/96)", deep.similarities()),
    ]
    return ExperimentResult(
        "fig05",
        "Figure 5: Jaccard ECDF, default vs SP-Tuner",
        format_ecdf_summary(lines),
        {
            "default_perfect_share": siblings.perfect_match_share,
            "routable_perfect_share": routable.perfect_match_share,
            "deep_perfect_share": deep.perfect_match_share,
        },
    )


@experiment("fig06")
def fig06_portscan_overlap(universe: Universe) -> ExperimentResult:
    tuned, _ = tuned_at(universe, REFERENCE_DATE)
    inventory = universe.host_inventory(REFERENCE_DATE)
    scanner = PortScanner(inventory, seed=universe.config.seed)
    observations = scanner.scan_inventory()
    results = portscan_overlap(tuned, observations)
    matrix = scan_heatmap(results)
    labels = [f"{low/10:.1f}-{(low+1)/10:.1f}" for low in range(10)]
    heatmap = Heatmap(
        title="Figure 6: DNS Jaccard (cols) vs port-scan Jaccard (rows), % of pairs",
        row_labels=list(reversed(labels)),
        column_labels=labels,
        cells=list(reversed(matrix)),
    )
    return ExperimentResult(
        "fig06",
        heatmap.title,
        format_heatmap(heatmap),
        {
            "responsive_share": responsive_share(results),
            "both_high_pct": matrix[9][9],
        },
    )


@experiment("fig07")
def fig07_dynamics(universe: Universe) -> ExperimentResult:
    report = analyze_dynamics(universe, REFERENCE_DATE, months=13)
    lines = ["Visibility frequency histogram (share of DS domains):"]
    for frequency in range(1, 14):
        lines.append(
            f"  {frequency:2d} snapshots: {report.visibility_share(frequency):6.1%}"
        )
    lines.append("")
    lines.append("Same prefix vs day 0 (v4%, v6%, both%):")
    for label, values in report.same_prefix.items():
        lines.append(f"  {label:<9} {values[0]:6.1f} {values[1]:6.1f} {values[2]:6.1f}")
    lines.append("Same address vs day 0 (v4%, v6%, both%):")
    for label, values in report.same_address.items():
        lines.append(f"  {label:<9} {values[0]:6.1f} {values[1]:6.1f} {values[2]:6.1f}")
    return ExperimentResult(
        "fig07",
        "Figure 7: DS-domain visibility and prefix/address stability",
        "\n".join(lines),
        {
            "consistent_share": report.visibility_share(13),
            "oneshot_share": report.visibility_share(1),
            "same_prefix_year_pct": report.same_prefix["Year -1"][2],
            "same_address_year_pct": report.same_address["Year -1"][2],
        },
    )


# ---------------------------------------------------------------------------
# Section 4 / analyses
# ---------------------------------------------------------------------------


@experiment("fig08")
def fig08_domain_bins(universe: Universe, case: str = "deep") -> ExperimentResult:
    """deep → Figure 8; default → Figure 33; routable → Figure 34."""
    siblings, _ = _siblings_for_case(universe, case)
    heatmap = domain_count_heatmap(siblings)
    return ExperimentResult(
        "fig08",
        heatmap.title,
        format_heatmap(heatmap),
        {
            "single_domain_pct": heatmap.cell("1", "1"),
            "small_2_5_pct": heatmap.cell("2-5", "2-5"),
            "diagonal_share": diagonal_share(heatmap),
        },
    )


@experiment("fig09")
def fig09_sibling_counts(universe: Universe) -> ExperimentResult:
    offsets = paper_offsets(REFERENCE_DATE)
    series = sibling_count_timeline(universe, [date for _, date in offsets])
    text = format_timeseries(series, precision=0)
    labels = "  ".join(label for label, _ in offsets)
    return ExperimentResult(
        "fig09",
        "Figure 9: sibling pair counts over time",
        f"offsets: {labels}\n{text}",
        {
            "pairs_year_minus_4": series.first("pairs"),
            "pairs_day_0": series.last("pairs"),
            "growth_factor": (
                series.last("pairs") / series.first("pairs")
                if series.first("pairs")
                else 0.0
            ),
        },
    )


@experiment("fig10")
def fig10_change_classes(universe: Universe, tuned: bool = False) -> ExperimentResult:
    offsets = dict(paper_offsets(REFERENCE_DATE))
    old_date = offsets["Year -4"]
    if tuned:
        old_set, _ = tuned_at(universe, old_date)
        new_set, _ = tuned_at(universe, REFERENCE_DATE)
    else:
        old_set, _ = detect_at(universe, old_date)
        new_set, _ = detect_at(universe, REFERENCE_DATE)
    report = classify_changes(old_set, new_set)
    lines = [
        ecdf("New", [pair.similarity for pair in report.new]),
        ecdf("Unchanged", [pair.similarity for pair in report.unchanged]),
        ecdf("Changed (Current)", report.changed_current_similarities()),
        ecdf("Changed (Old)", report.changed_old_similarities()),
    ]
    return ExperimentResult(
        "fig10",
        "Figure 10: Jaccard by change class (4-year lookback)",
        format_ecdf_summary(lines),
        {
            "new_share": report.share(ChangeClass.NEW),
            "unchanged_share": report.share(ChangeClass.UNCHANGED),
            "changed_share": report.share(ChangeClass.CHANGED),
            "new_perfect_share": lines[0].share_equal(1.0),
            "unchanged_perfect_share": lines[1].share_equal(1.0),
        },
    )


@experiment("fig11")
def fig11_default_ecdf_over_time(universe: Universe) -> ExperimentResult:
    lines = []
    perfect = {}
    for label, date in paper_offsets(REFERENCE_DATE):
        siblings, _ = detect_at(universe, date)
        line = ecdf(label, siblings.similarities())
        lines.append(line)
        perfect[f"perfect_{label.replace(' ', '_').replace('-', 'm')}"] = (
            line.share_equal(1.0)
        )
    return ExperimentResult(
        "fig11",
        "Figure 11: default-case Jaccard ECDF per snapshot",
        format_ecdf_summary(lines),
        perfect,
    )


@experiment("fig12")
def fig12_tuned_ecdf_over_time(
    universe: Universe, config: TunerConfig = DEFAULT_CONFIG
) -> ExperimentResult:
    lines = []
    perfect = {}
    for label, date in paper_offsets(REFERENCE_DATE):
        tuned, _ = tuned_at(universe, date, config)
        line = ecdf(label, tuned.similarities())
        lines.append(line)
        perfect[f"perfect_{label.replace(' ', '_').replace('-', 'm')}"] = (
            line.share_equal(1.0)
        )
    return ExperimentResult(
        "fig12",
        "Figure 12: SP-Tuner Jaccard ECDF per snapshot",
        format_ecdf_summary(lines),
        perfect,
    )


@experiment("fig13")
def fig13_cidr_sizes(universe: Universe, case: str = "default") -> ExperimentResult:
    """default → Figure 13; routable → Figure 35; deep → Figure 36."""
    siblings, _ = _siblings_for_case(universe, case)
    if case == "deep":
        heatmap = cidr_size_heatmap(
            siblings,
            V4_GROUPS_TUNED,
            V6_GROUPS_TUNED,
            title="Figure 36: CIDR sizes after SP-Tuner /28-/96 (%)",
        )
        expected_modal = ("28", "96")
    elif case == "routable":
        heatmap = cidr_size_heatmap(
            siblings, title="Figure 35: CIDR sizes after SP-Tuner /24-/48 (%)"
        )
        expected_modal = ("24", "48")
    else:
        heatmap = cidr_size_heatmap(siblings)
        expected_modal = ("24", "48")
    row, column, share = modal_combination(heatmap)
    return ExperimentResult(
        "fig13",
        heatmap.title,
        format_heatmap(heatmap),
        {
            "modal_share_pct": share,
            "modal_is_24_48": float((column, row) == expected_modal),
        },
    )


@experiment("fig14")
def fig14_org_counts(
    universe: Universe, every: int = 6, case: str = "default"
) -> ExperimentResult:
    """default → Figures 14/29; routable → Figure 30."""
    dates = _sampled_snapshot_dates(every)
    series = org_split_timeline(universe, dates, case=case)
    siblings, _ = _siblings_for_case(universe, case)
    unique_v4, unique_v6 = unique_prefix_counts(siblings)
    total = series.last("same_org_pairs") + series.last("diff_org_pairs")
    return ExperimentResult(
        "fig14",
        "Figure 14: same/different organization pairs over time",
        format_timeseries(series, precision=2),
        {
            "same_org_share_end": (
                series.last("same_org_pairs") / total if total else 0.0
            ),
            "unique_v4_prefixes": float(unique_v4),
            "unique_v6_prefixes": float(unique_v6),
        },
    )


@experiment("fig15")
def fig15_org_median_jaccard(
    universe: Universe, every: int = 6, case: str = "default"
) -> ExperimentResult:
    """default → Figures 15/31; routable → Figure 32."""
    dates = _sampled_snapshot_dates(every)
    series = org_split_timeline(universe, dates, case=case)
    return ExperimentResult(
        "fig15",
        "Figure 15: median Jaccard by organization split",
        format_timeseries(series, precision=3),
        {
            "same_org_median_end": series.last("same_org_median_jaccard"),
            "diff_org_median_end": series.last("diff_org_median_jaccard"),
        },
    )


@experiment("fig16")
def fig16_business_types(
    universe: Universe,
    variant: BusinessVariant = BusinessVariant.PAIRS_EXCLUDING_SAME_ASN,
) -> ExperimentResult:
    siblings, _ = detect_at(universe, REFERENCE_DATE)
    heatmap = business_type_heatmap(universe, siblings, REFERENCE_DATE, variant)
    row, column, count = dominant_category(heatmap)
    return ExperimentResult(
        "fig16",
        heatmap.title,
        format_heatmap(heatmap, precision=0),
        {
            "dominant_count": count,
            "dominant_is_it_it": float(row == "IT" and column == "IT"),
            "it_involvement_share": it_involvement_share(heatmap),
        },
    )


@experiment("fig17")
def fig17_hgcdn(
    universe: Universe, min_pairs: int = 5, case: str = "deep"
) -> ExperimentResult:
    """deep → Figures 17/25; default → Figure 23; routable → Figure 24."""
    siblings, _ = _siblings_for_case(universe, case)
    distribution = hgcdn_distribution(universe, siblings, REFERENCE_DATE)
    heatmap = hgcdn_heatmap(distribution, min_pairs=min_pairs)
    named = [org for org in distribution.rows if org != "non-CDN-HG"]
    key_values: dict[str, float] = {
        "hgcdn_orgs_with_pairs": float(len(named)),
        "non_cdn_hg_high_share": distribution.high_similarity_share("non-CDN-HG"),
    }
    for org in ("Amazon", "Cloudflare", "Akamai", "Google"):
        if org in distribution.rows:
            key_values[f"{org.lower()}_high_share"] = (
                distribution.high_similarity_share(org)
            )
    return ExperimentResult(
        "fig17", heatmap.title, format_heatmap(heatmap), key_values
    )


@experiment("fig18")
def fig18_rov_status(universe: Universe, every: int = 6) -> ExperimentResult:
    repository = repository_from_universe(universe)
    dates = _sampled_snapshot_dates(every)
    area = rov_timeline(universe, repository, dates)
    siblings, _ = detect_at(universe, REFERENCE_DATE)
    shares_end = pair_rov_shares(universe, siblings, repository, REFERENCE_DATE)
    early_siblings, _ = detect_at(universe, dates[0])
    shares_start = pair_rov_shares(universe, early_siblings, repository, dates[0])
    return ExperimentResult(
        "fig18",
        area.title,
        format_stacked_area(area),
        {
            "at_least_one_valid_start_pct": at_least_one_valid_share(shares_start),
            "at_least_one_valid_end_pct": at_least_one_valid_share(shares_end),
            "both_notfound_end_pct": shares_end[PairRovStatus.BOTH_NOTFOUND],
        },
    )


# ---------------------------------------------------------------------------
# Appendix + validation experiments
# ---------------------------------------------------------------------------


@experiment("fig22")
def fig22_sptuner_ls(universe: Universe) -> ExperimentResult:
    siblings, index = detect_at(universe, REFERENCE_DATE)
    rib = universe.rib_at(REFERENCE_DATE)
    bounded = SpTunerLS(index, rib, LsConfig()).tune_all(siblings)
    unbounded = SpTunerLS(index, rib, LsConfig(unbounded=True)).tune_all(siblings)
    lines = [
        ecdf("Default", siblings.similarities()),
        ecdf("SP-Tuner-LS (with thresh.)", bounded.similarities()),
        ecdf("SP-Tuner-LS (without thresh.)", unbounded.similarities()),
    ]
    return ExperimentResult(
        "fig22",
        "Figure 22: SP-Tuner-LS (less specific) has no effect",
        format_ecdf_summary(lines),
        {
            "default_mean": lines[0].mean,
            "bounded_mean": lines[1].mean,
            "unbounded_mean": lines[2].mean,
        },
    )


@experiment("sec35")
def sec35_ground_truth(universe: Universe) -> ExperimentResult:
    siblings, _ = detect_at(universe, REFERENCE_DATE)
    probes = generate_vantage_points(
        universe, universe.config.n_probes, VantageKind.ATLAS_PROBE
    )
    vpses = generate_vantage_points(
        universe, universe.config.n_vpses, VantageKind.VPS
    )
    probe_report = evaluate_coverage(probes, siblings)
    vps_report = evaluate_coverage(vpses, siblings)

    # Synthetic bonus: detection quality vs recorded ground truth.
    truth = universe.ground_truth_deployments(REFERENCE_DATE)
    detected_v4 = siblings.unique_v4_prefixes()
    recalled = sum(
        1
        for deployment in truth
        if any(p.overlaps(deployment.v4_block) for p in detected_v4)
    )
    lines = [
        f"Atlas-like probes: {probe_report.total}",
        f"  fully covered:    {probe_report.fully_covered} ({probe_report.fully_covered_share:.1%})",
        f"  partially covered:{probe_report.partially_covered} ({probe_report.partially_covered_share:.1%})",
        f"  not covered:      {probe_report.not_covered} ({probe_report.not_covered_share:.1%})",
        f"  best-match share among fully covered: {probe_report.best_match_share:.2%}",
        f"VPSes: {vps_report.total}, fully covered {vps_report.fully_covered}, "
        f"best-match {vps_report.in_best_match_pair}",
        f"Ground-truth deployments recalled by a detected v4 prefix: "
        f"{recalled}/{len(truth)}",
    ]
    return ExperimentResult(
        "sec35",
        "Section 3.5: vantage-point ground truth",
        "\n".join(lines),
        {
            "fully_covered_share": probe_report.fully_covered_share,
            "partially_covered_share": probe_report.partially_covered_share,
            "not_covered_share": probe_report.not_covered_share,
            "best_match_share": probe_report.best_match_share,
            "deployment_recall": recalled / len(truth) if truth else 0.0,
        },
    )


@experiment("sec42")
def sec42_headline(universe: Universe) -> ExperimentResult:
    siblings, index = detect_at(universe, REFERENCE_DATE)
    split = split_by_organization(universe, siblings, REFERENCE_DATE)
    unique_v4, unique_v6 = unique_prefix_counts(siblings)
    snapshot = universe.snapshot_at(REFERENCE_DATE)
    total = split.same_count + split.different_count
    lines = [
        f"dual-stack domains: {snapshot.dual_stack_count}",
        f"usable DS domains (after annotation): {index.domain_count}",
        f"unique IPv4 prefixes: {unique_v4}",
        f"unique IPv6 prefixes: {unique_v6}",
        f"sibling pairs: {len(siblings)}",
        f"same-organization pairs: {split.same_count} "
        f"({split.same_count / total:.1%} of resolved)",
        f"monitoring cross-product pairs: {universe.monitoring_pair_count()}",
    ]
    return ExperimentResult(
        "sec42",
        "Section 4 headline statistics",
        "\n".join(lines),
        {
            "sibling_pairs": float(len(siblings)),
            "unique_v4_prefixes": float(unique_v4),
            "unique_v6_prefixes": float(unique_v6),
            "same_org_share": split.same_count / total if total else 0.0,
            "v4_more_than_v6": float(unique_v4 > unique_v6),
        },
    )


@experiment("quality")
def quality_vs_ground_truth(universe: Universe) -> ExperimentResult:
    """Detection quality against the recorded ground truth (a capability
    the synthetic substrate adds over the original study)."""
    from repro.core.quality import evaluate_quality

    siblings, _ = detect_at(universe, REFERENCE_DATE)
    quality = evaluate_quality(universe, siblings, REFERENCE_DATE)
    lines = [
        f"detectable deployments: {quality.detectable_deployments}",
        f"recalled:               {quality.recalled_deployments} "
        f"({quality.recall:.1%})",
        f"undetectable (no visible DS domain): {quality.undetectable_deployments}",
        f"pairs explained by ground truth: {quality.explained_pairs}/"
        f"{quality.total_pairs} ({quality.precision_proxy:.1%})",
    ]
    return ExperimentResult(
        "quality",
        "Detection quality vs recorded ground truth",
        "\n".join(lines),
        {
            "recall": quality.recall,
            "precision_proxy": quality.precision_proxy,
        },
    )


@experiment("setpairs")
def setpairs_future_work(universe: Universe) -> ExperimentResult:
    """Section 6 future work: sibling prefix *set* pairs."""
    from repro.core.setpairs import build_set_pairs, summarize_set_pairs

    siblings, index = detect_at(universe, REFERENCE_DATE)
    set_pairs = build_set_pairs(siblings, index)
    summary = summarize_set_pairs(siblings, set_pairs)
    fragmented = [sp for sp in set_pairs if sp.is_fragmented]
    lines = [
        f"pairs: {summary.pair_count}  ->  set pairs: {summary.set_pair_count} "
        f"({summary.fragmented_count} fragmented)",
        f"perfect share: {summary.pair_perfect_share:.1%} (pairs) -> "
        f"{summary.set_perfect_share:.1%} (sets)",
        f"mean Jaccard:  {summary.pair_mean:.3f} (pairs) -> "
        f"{summary.set_mean:.3f} (sets)",
        "",
        "Largest fragmented set pairs (v4 set size x v6 set size, J):",
    ]
    for set_pair in fragmented[:6]:
        lines.append(
            f"  {len(set_pair.v4_prefixes)} x {len(set_pair.v6_prefixes)}  "
            f"J={set_pair.similarity:.2f}  domains={len(set_pair.shared_domains)}"
        )
    return ExperimentResult(
        "setpairs",
        "Future work: sibling prefix set pairs",
        "\n".join(lines),
        {
            "pair_perfect_share": summary.pair_perfect_share,
            "set_perfect_share": summary.set_perfect_share,
            "pair_mean": summary.pair_mean,
            "set_mean": summary.set_mean,
            "fragmented_count": float(summary.fragmented_count),
        },
    )


@experiment("inputs")
def inputs_alternative_signals(universe: Universe) -> ExperimentResult:
    """Section 6: the methodology on MX and rDNS inputs."""
    from repro.core.inputs import (
        compare_inputs,
        index_from_domains,
        index_from_mx,
        index_from_rdns,
        siblings_from_index,
    )

    annotator = universe.annotator_at(REFERENCE_DATE)
    domain_siblings = siblings_from_index(
        index_from_domains(universe.snapshot_at(REFERENCE_DATE), annotator)
    )
    mx_siblings = siblings_from_index(
        index_from_mx(
            universe.zone_at(REFERENCE_DATE),
            universe.queried_names_at(REFERENCE_DATE),
            annotator,
            REFERENCE_DATE,
        )
    )
    rdns_siblings = siblings_from_index(
        index_from_rdns(
            universe.rdns_inventory(REFERENCE_DATE), annotator, REFERENCE_DATE
        )
    )
    mx_agreement = compare_inputs("mx", mx_siblings, "domains", domain_siblings)
    rdns_agreement = compare_inputs(
        "rdns", rdns_siblings, "domains", domain_siblings
    )
    lines = [
        f"domains: {len(domain_siblings)} pairs "
        f"(perfect {domain_siblings.perfect_match_share:.1%})",
        f"mx:      {len(mx_siblings)} pairs "
        f"(perfect {mx_siblings.perfect_match_share:.1%}); "
        f"{mx_agreement.compatibility_share:.1%} confirmed by domains",
        f"rdns:    {len(rdns_siblings)} pairs "
        f"(perfect {rdns_siblings.perfect_match_share:.1%}); "
        f"{rdns_agreement.compatibility_share:.1%} confirmed by domains",
    ]
    return ExperimentResult(
        "inputs",
        "Section 6: alternative input signals (MX, rDNS)",
        "\n".join(lines),
        {
            "domain_pairs": float(len(domain_siblings)),
            "mx_pairs": float(len(mx_siblings)),
            "rdns_pairs": float(len(rdns_siblings)),
            "mx_compatibility": mx_agreement.compatibility_share,
            "rdns_compatibility": rdns_agreement.compatibility_share,
        },
    )


@experiment("ablation_bestmatch")
def ablation_bestmatch(universe: Universe) -> ExperimentResult:
    snapshot = universe.snapshot_at(REFERENCE_DATE)
    annotator = universe.annotator_at(REFERENCE_DATE)
    lines = []
    key_values = {}
    for mode in BestMatchMode:
        siblings = detect_siblings(snapshot, annotator, mode=mode)
        lines.append(
            f"{mode.value:<8} pairs={len(siblings):6d} "
            f"perfect={siblings.perfect_match_share:.1%}"
        )
        key_values[f"pairs_{mode.value}"] = float(len(siblings))
    return ExperimentResult(
        "ablation_bestmatch",
        "Ablation: best-match selection rule",
        "\n".join(lines),
        key_values,
    )


@experiment("ablation_branches")
def ablation_branches(universe: Universe) -> ExperimentResult:
    siblings, index = detect_at(universe, REFERENCE_DATE)
    with_branches = SpTunerMS(index, DEFAULT_CONFIG).tune_all(siblings)
    without = SpTunerMS(
        index, TunerConfig(track_branches=False)
    ).tune_all(siblings)
    domains = lambda s: {d for pair in s for d in pair.shared_domains}
    kept = domains(with_branches)
    lost = kept - domains(without)
    lines = [
        f"pairs with branch tracking:    {len(with_branches)}",
        f"pairs without branch tracking: {len(without)}",
        f"domains covered with branches: {len(kept)}",
        f"domains lost without branches: {len(lost)}",
    ]
    return ExperimentResult(
        "ablation_branches",
        "Ablation: SP-Tuner UpdateBranches step",
        "\n".join(lines),
        {
            "domains_lost_without_branches": float(len(lost)),
            "pairs_with": float(len(with_branches)),
            "pairs_without": float(len(without)),
        },
    )
