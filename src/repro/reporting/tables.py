"""Plain-text rendering of figure data — what the benches print."""

from __future__ import annotations

from repro.reporting.containers import EcdfSeries, Heatmap, StackedArea, TimeSeries


def format_heatmap(heatmap: Heatmap, precision: int = 1) -> str:
    """A fixed-width grid with row/column labels; secondary values (if
    any) are printed in parentheses."""
    width = max(
        8,
        max((len(label) for label in heatmap.column_labels), default=8) + 1,
        precision + 5,
    )
    label_width = max(
        (len(label) for label in heatmap.row_labels), default=8
    )
    lines = [heatmap.title]
    header = " " * label_width + "".join(
        f"{label:>{width}}" for label in heatmap.column_labels
    )
    lines.append(header)
    for row_index, row_label in enumerate(heatmap.row_labels):
        cells = []
        for column_index in range(len(heatmap.column_labels)):
            value = heatmap.cells[row_index][column_index]
            if heatmap.secondary is not None:
                second = heatmap.secondary[row_index][column_index]
                cells.append(
                    f"{value:.{precision}f}({second:.{precision}f})".rjust(width)
                )
            else:
                cells.append(f"{value:>{width}.{precision}f}")
        lines.append(f"{row_label:<{label_width}}" + "".join(cells))
    return "\n".join(lines)


def format_ecdf_summary(
    series: list[EcdfSeries],
    thresholds: tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 0.9, 0.999),
) -> str:
    """One row per ECDF line: F(t) at the given thresholds plus the
    perfect-match share — the numbers the paper quotes from its CDFs."""
    lines = [
        "label".ljust(28)
        + "".join(f"F({t:g})".rjust(9) for t in thresholds)
        + "  ==1.0".rjust(9)
        + "    n".rjust(7)
    ]
    for entry in series:
        row = entry.label.ljust(28)
        for threshold in thresholds:
            row += f"{entry.fraction_at_most(threshold):>9.3f}"
        row += f"{entry.share_equal(1.0):>9.3f}"
        row += f"{len(entry):>7d}"
        lines.append(row)
    return "\n".join(lines)


def format_timeseries(timeseries: TimeSeries, precision: int = 1) -> str:
    names = list(timeseries.series)
    width = max(12, max(len(n) for n in names) + 2) if names else 12
    lines = [timeseries.title]
    lines.append("date".ljust(12) + "".join(name.rjust(width) for name in names))
    for index, date in enumerate(timeseries.dates):
        row = date.isoformat().ljust(12)
        for name in names:
            row += f"{timeseries.series[name][index]:>{width}.{precision}f}"
        lines.append(row)
    return "\n".join(lines)


def format_stacked_area(area: StackedArea, precision: int = 1) -> str:
    width = max(12, max(len(c) for c in area.categories) + 2)
    lines = [area.title]
    lines.append(
        "date".ljust(12) + "".join(c.rjust(width) for c in area.categories)
    )
    for index, date in enumerate(area.dates):
        row = date.isoformat().ljust(12)
        for share in area.shares[index]:
            row += f"{share:>{width}.{precision}f}"
        lines.append(row)
    return "\n".join(lines)
