"""Result containers and plain-text rendering for figures and tables."""

from repro.reporting.containers import EcdfSeries, Heatmap, StackedArea, TimeSeries
from repro.reporting.tables import (
    format_ecdf_summary,
    format_heatmap,
    format_stacked_area,
    format_timeseries,
)

__all__ = [
    "EcdfSeries",
    "Heatmap",
    "StackedArea",
    "TimeSeries",
    "format_ecdf_summary",
    "format_heatmap",
    "format_stacked_area",
    "format_timeseries",
]
