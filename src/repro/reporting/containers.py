"""Figure-data containers: ECDFs, heatmaps, time series, stacked areas.

Pure data + small query helpers; rendering lives in
:mod:`repro.reporting.tables`.
"""

from __future__ import annotations

import bisect
import datetime
from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class EcdfSeries:
    """One empirical CDF line (e.g. one curve of Figure 5)."""

    label: str
    values: list[float] = field(default_factory=list)

    def __post_init__(self):
        self.values = sorted(self.values)

    def fraction_at_most(self, threshold: float) -> float:
        """F(threshold) = P(X <= threshold)."""
        if not self.values:
            return 0.0
        return bisect.bisect_right(self.values, threshold) / len(self.values)

    def fraction_below(self, threshold: float) -> float:
        if not self.values:
            return 0.0
        return bisect.bisect_left(self.values, threshold) / len(self.values)

    def share_equal(self, value: float) -> float:
        """P(X == value), e.g. the perfect-match share at 1.0."""
        return self.fraction_at_most(value) - self.fraction_below(value)

    def quantile(self, q: float) -> float:
        if not self.values:
            raise ValueError("empty ECDF")
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        index = min(int(q * len(self.values)), len(self.values) - 1)
        return self.values[index]

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    def __len__(self) -> int:
        return len(self.values)


@dataclass
class Heatmap:
    """A labelled 2-D matrix (rows × columns)."""

    title: str
    row_labels: list[str]
    column_labels: list[str]
    cells: list[list[float]]
    #: Optional second value per cell (Figure 4 stores std below mean).
    secondary: list[list[float]] | None = None

    def __post_init__(self):
        if len(self.cells) != len(self.row_labels):
            raise ValueError("row count mismatch")
        for row in self.cells:
            if len(row) != len(self.column_labels):
                raise ValueError("column count mismatch")

    def cell(self, row_label: str, column_label: str) -> float:
        return self.cells[self.row_labels.index(row_label)][
            self.column_labels.index(column_label)
        ]

    def row(self, row_label: str) -> list[float]:
        return list(self.cells[self.row_labels.index(row_label)])

    def column(self, column_label: str) -> list[float]:
        index = self.column_labels.index(column_label)
        return [row[index] for row in self.cells]

    def total(self) -> float:
        return sum(sum(row) for row in self.cells)


@dataclass
class TimeSeries:
    """One or more named series over dates (Figures 1, 9, 14, 15)."""

    title: str
    dates: list[datetime.date]
    series: dict[str, list[float]]

    def __post_init__(self):
        for name, values in self.series.items():
            if len(values) != len(self.dates):
                raise ValueError(f"series {name!r} length mismatch")

    def at(self, name: str, date: datetime.date) -> float:
        return self.series[name][self.dates.index(date)]

    def last(self, name: str) -> float:
        return self.series[name][-1]

    def first(self, name: str) -> float:
        return self.series[name][0]


@dataclass
class StackedArea:
    """Percentage shares per category over dates (Figure 18)."""

    title: str
    dates: list[datetime.date]
    categories: list[str]
    #: shares[date_index][category_index], each row summing to ~100.
    shares: list[list[float]]

    def __post_init__(self):
        if len(self.shares) != len(self.dates):
            raise ValueError("share rows must match dates")
        for row in self.shares:
            if len(row) != len(self.categories):
                raise ValueError("share columns must match categories")

    def share_at(self, category: str, date: datetime.date) -> float:
        return self.shares[self.dates.index(date)][self.categories.index(category)]


def ecdf(label: str, values: Iterable[float]) -> EcdfSeries:
    """Convenience constructor."""
    return EcdfSeries(label, list(values))


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an unsorted sequence."""
    if not values:
        raise ValueError("empty sequence")
    ordered = sorted(values)
    index = min(int(q * len(ordered)), len(ordered) - 1)
    return ordered[index]
