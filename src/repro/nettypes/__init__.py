"""Low-level IP address and prefix machinery.

This package is the foundation everything else builds on: integer-based
IPv4/IPv6 address handling (:mod:`repro.nettypes.addr`), an immutable
:class:`~repro.nettypes.prefix.Prefix` type, a compressed binary patricia
trie (:class:`~repro.nettypes.trie.PatriciaTrie`, the PyTricia replacement
the paper's SP-Tuner algorithm relies on), and a longest-prefix-match
:class:`~repro.nettypes.sets.PrefixSet`.

Addresses are plain ``int`` values paired with an IP version; prefixes are
``(version, value, length)`` triples.  Parsing and formatting stay out of
hot paths by design.
"""

from repro.nettypes.addr import (
    IPV4,
    IPV6,
    MAX_LENGTH,
    AddressError,
    format_address,
    is_reserved,
    parse_address,
    parse_ipv4,
    parse_ipv6,
)
from repro.nettypes.prefix import Prefix, PrefixError
from repro.nettypes.sets import PrefixSet
from repro.nettypes.trie import PatriciaTrie

__all__ = [
    "IPV4",
    "IPV6",
    "MAX_LENGTH",
    "AddressError",
    "Prefix",
    "PrefixError",
    "PrefixSet",
    "PatriciaTrie",
    "format_address",
    "is_reserved",
    "parse_address",
    "parse_ipv4",
    "parse_ipv6",
]
