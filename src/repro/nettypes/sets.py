"""Prefix sets with longest-prefix-match membership.

A :class:`PrefixSet` holds IPv4 and/or IPv6 prefixes and answers "is this
address / prefix covered?" queries.  It also offers minimisation (drop
covered prefixes, merge adjacent binary siblings) which the blocklist
example and the RIPE-Atlas coverage analysis use.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.nettypes.addr import IPV4, IPV6
from repro.nettypes.prefix import Prefix
from repro.nettypes.trie import PatriciaTrie


class PrefixSet:
    """A mutable set of prefixes supporting coverage queries.

    >>> s = PrefixSet([Prefix.parse("192.0.2.0/24")])
    >>> s.covers(Prefix.parse("192.0.2.64/26"))
    True
    >>> Prefix.parse("192.0.2.0/24") in s
    True
    """

    def __init__(self, prefixes: Iterable[Prefix] = ()):
        self._tries: dict[int, PatriciaTrie] = {
            IPV4: PatriciaTrie(IPV4),
            IPV6: PatriciaTrie(IPV6),
        }
        for prefix in prefixes:
            self.add(prefix)

    def add(self, prefix: Prefix) -> None:
        self._tries[prefix.version].insert(prefix, True)

    def discard(self, prefix: Prefix) -> None:
        try:
            self._tries[prefix.version].remove(prefix)
        except KeyError:
            pass

    def update(self, prefixes: Iterable[Prefix]) -> None:
        for prefix in prefixes:
            self.add(prefix)

    def covers(self, item: Prefix) -> bool:
        """True if some member prefix contains *item*."""
        return self._tries[item.version].lookup(item) is not None

    def covers_address(self, version: int, value: int) -> bool:
        return self._tries[version].lookup_address(value) is not None

    def covering_prefix(self, item: Prefix) -> Prefix | None:
        """The most specific member containing *item*, if any."""
        return self._tries[item.version].lookup_prefix(item)

    def members_under(self, prefix: Prefix) -> list[Prefix]:
        """Members at-or-below *prefix*."""
        return [p for p, _ in self._tries[prefix.version].subtree_items(prefix)]

    def minimized(self) -> "PrefixSet":
        """A new set with covered members dropped and adjacent binary
        siblings merged into their parent (applied to a fixpoint)."""
        result = PrefixSet()
        for version, trie in self._tries.items():
            kept: set[Prefix] = set()
            for prefix, _ in trie.items():
                covering = trie.covering(prefix)
                # ``covering`` always includes the prefix itself (last).
                if len(covering) == 1:
                    kept.add(prefix)
            merged = _merge_siblings(kept)
            for prefix in merged:
                result.add(prefix)
        return result

    def __contains__(self, prefix: object) -> bool:
        return isinstance(prefix, Prefix) and prefix in self._tries[prefix.version]

    def __iter__(self) -> Iterator[Prefix]:
        for version in (IPV4, IPV6):
            yield from self._tries[version]

    def __len__(self) -> int:
        return sum(len(trie) for trie in self._tries.values())

    def __repr__(self) -> str:
        v4 = len(self._tries[IPV4])
        v6 = len(self._tries[IPV6])
        return f"PrefixSet(v4={v4}, v6={v6})"


def _merge_siblings(prefixes: set[Prefix]) -> set[Prefix]:
    """Merge binary-sibling pairs into parents until a fixpoint.

    A merge can only ever produce a *shorter* prefix, so one sweep over
    the lengths, longest first, reaches the fixpoint: merged parents
    drop into the next bucket and are reconsidered there.  O(n · bits)
    instead of re-sorting the whole set until quiescence.
    """
    by_length: dict[int, set[Prefix]] = {}
    for prefix in prefixes:
        by_length.setdefault(prefix.length, set()).add(prefix)
    merged: set[Prefix] = set()
    for length in range(max(by_length, default=0), 0, -1):
        bucket = by_length.get(length)
        while bucket:
            prefix = bucket.pop()
            sibling = prefix.sibling_subnet()
            if sibling in bucket:
                bucket.discard(sibling)
                by_length.setdefault(length - 1, set()).add(prefix.supernet())
            else:
                merged.add(prefix)
    merged |= by_length.get(0, set())
    return merged


def aggregate(prefixes: Iterable[Prefix]) -> list[Prefix]:
    """Convenience: minimise an iterable of prefixes into a sorted list."""
    return sorted(PrefixSet(prefixes).minimized())
