"""A compressed binary patricia trie over IP prefixes.

This is the from-scratch replacement for the PyTricia library the paper
uses to implement SP-Tuner (Section 3.3).  The trie stores ``Prefix →
value`` associations for a single IP version and supports the operations
the tuner and the BGP substrate need:

* exact-match insert / lookup / delete,
* longest-prefix match for addresses and prefixes,
* subtree enumeration and *branch discovery* (``branch_children``), i.e.
  "where does the address space below this prefix actually diverge?" —
  the primitive behind ``GetNextSubprefixes`` in Algorithm 1,
* lazily cached subtree aggregation (e.g. the union of all domain sets
  below a prefix), the primitive behind Jaccard evaluation during tuning.

Internal nodes created for path compression carry no value; they disappear
again when deletions make them redundant.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, TypeVar

from repro.nettypes.addr import MAX_LENGTH
from repro.nettypes.prefix import Prefix, PrefixError

V = TypeVar("V")

_MISSING = object()


class _Node:
    __slots__ = ("prefix", "value", "has_value", "children", "agg", "agg_gen")

    def __init__(self, prefix: Prefix):
        self.prefix = prefix
        self.value: object = None
        self.has_value = False
        self.children: list["_Node | None"] = [None, None]
        self.agg: object = None
        self.agg_gen = -1


class PatriciaTrie:
    """Compressed binary trie mapping :class:`Prefix` keys to values.

    ``aggregate`` is an optional reducer used by :meth:`aggregate_under`:
    it receives an iterable of stored values and returns their merge (for
    SP-Tuner this is a frozenset union of domain sets).  Aggregates are
    memoised per node and invalidated on any mutation.

    >>> trie = PatriciaTrie(4)
    >>> trie.insert(Prefix.parse("192.0.2.0/24"), "a")
    >>> trie.lookup_value(Prefix.parse("192.0.2.128/25"))
    'a'
    """

    def __init__(
        self,
        version: int,
        aggregate: Callable[[Iterable[V]], V] | None = None,
    ):
        if version not in MAX_LENGTH:
            raise PrefixError(f"unknown IP version: {version!r}")
        self.version = version
        self._aggregate = aggregate
        self._root = _Node(Prefix(version, 0, 0))
        self._size = 0
        self._generation = 0

    @classmethod
    def from_items(
        cls,
        version: int,
        items: Iterable[tuple[Prefix, V]],
        aggregate: Callable[[Iterable[V]], V] | None = None,
    ) -> "PatriciaTrie":
        """Build a trie from ``(prefix, value)`` pairs in one call.

        Later duplicates of a prefix replace earlier ones, mirroring
        repeated :meth:`insert`.  This is the reference-oracle entry
        point the serving tests use to cross-check the compiled
        :class:`~repro.serving.index.SiblingLookupIndex`.

        >>> trie = PatriciaTrie.from_items(4, [(Prefix.parse("10.0.0.0/8"), 1)])
        >>> trie.lookup_value(Prefix.parse("10.1.0.0/16"))
        1
        """
        trie = cls(version, aggregate)
        for prefix, value in items:
            trie.insert(prefix, value)
        return trie

    # -- mutation ------------------------------------------------------------

    def insert(self, prefix: Prefix, value: V) -> None:
        """Store *value* under *prefix*, replacing any existing value."""
        self._check_version(prefix)
        self._generation += 1
        node = self._root
        while True:
            if node.prefix == prefix:
                if not node.has_value:
                    self._size += 1
                node.value = value
                node.has_value = True
                return
            bit = prefix.bit_at(node.prefix.length)
            child = node.children[bit]
            if child is None:
                leaf = _Node(prefix)
                leaf.value = value
                leaf.has_value = True
                node.children[bit] = leaf
                self._size += 1
                return
            if child.prefix.contains(prefix):
                node = child
                continue
            if prefix.contains(child.prefix):
                # Splice the new node between ``node`` and ``child``.
                new = _Node(prefix)
                new.value = value
                new.has_value = True
                new.children[child.prefix.bit_at(prefix.length)] = child
                node.children[bit] = new
                self._size += 1
                return
            # The paths diverge inside ``child``: add a valueless glue node
            # at the longest common prefix.
            common = prefix.common_prefix(child.prefix)
            glue = _Node(common)
            glue.children[child.prefix.bit_at(common.length)] = child
            leaf = _Node(prefix)
            leaf.value = value
            leaf.has_value = True
            glue.children[prefix.bit_at(common.length)] = leaf
            node.children[bit] = glue
            self._size += 1
            return

    def remove(self, prefix: Prefix) -> V:
        """Delete the exact entry for *prefix*; returns the stored value.

        Raises :class:`KeyError` when absent.  Redundant glue nodes left
        behind by the deletion are compressed away.
        """
        self._check_version(prefix)
        path: list[tuple[_Node, int]] = []
        node = self._root
        while node.prefix != prefix:
            if node.prefix.length >= prefix.length or not node.prefix.contains(prefix):
                raise KeyError(str(prefix))
            bit = prefix.bit_at(node.prefix.length)
            child = node.children[bit]
            if child is None or not (
                child.prefix.contains(prefix) or child.prefix == prefix
            ):
                raise KeyError(str(prefix))
            path.append((node, bit))
            node = child
        if not node.has_value:
            raise KeyError(str(prefix))
        self._generation += 1
        value = node.value
        node.value = None
        node.has_value = False
        self._size -= 1
        self._compress_upwards(node, path)
        return value  # type: ignore[return-value]

    def _compress_upwards(self, node: _Node, path: list[tuple[_Node, int]]) -> None:
        """Remove now-redundant valueless nodes along *path*."""
        while node is not self._root and not node.has_value:
            kids = [c for c in node.children if c is not None]
            if len(kids) >= 2:
                return
            parent, bit = path.pop() if path else (None, 0)
            if parent is None:
                return
            parent.children[bit] = kids[0] if kids else None
            node = parent

    def clear(self) -> None:
        self._root = _Node(Prefix(self.version, 0, 0))
        self._size = 0
        self._generation += 1

    # -- exact access ---------------------------------------------------------

    def exact_node(self, prefix: Prefix) -> "_Node | None":
        self._check_version(prefix)
        node = self._descend(prefix)
        if node is not None and node.prefix == prefix and node.has_value:
            return node
        return None

    def get(self, prefix: Prefix, default: V | None = None) -> V | None:
        """Exact-match get (no LPM)."""
        node = self.exact_node(prefix)
        return node.value if node is not None else default  # type: ignore[return-value]

    def __getitem__(self, prefix: Prefix) -> V:
        node = self.exact_node(prefix)
        if node is None:
            raise KeyError(str(prefix))
        return node.value  # type: ignore[return-value]

    def __setitem__(self, prefix: Prefix, value: V) -> None:
        self.insert(prefix, value)

    def __delitem__(self, prefix: Prefix) -> None:
        self.remove(prefix)

    def __contains__(self, prefix: object) -> bool:
        return isinstance(prefix, Prefix) and self.exact_node(prefix) is not None

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Prefix]:
        for prefix, _ in self.items():
            yield prefix

    def items(self) -> Iterator[tuple[Prefix, V]]:
        """All stored (prefix, value) pairs in address order."""
        yield from self._iter_node(self._root)

    def _iter_node(self, node: _Node) -> Iterator[tuple[Prefix, V]]:
        stack = [node]
        while stack:
            current = stack.pop()
            if current.has_value:
                yield current.prefix, current.value  # type: ignore[misc]
            # Push right before left so the left child pops first.
            for child in (current.children[1], current.children[0]):
                if child is not None:
                    stack.append(child)

    # -- longest-prefix match ---------------------------------------------------

    def lookup(self, query: Prefix) -> tuple[Prefix, V] | None:
        """Longest stored prefix containing *query*, with its value."""
        self._check_version(query)
        best: _Node | None = None
        node = self._root
        while True:
            if node.has_value and node.prefix.contains(query):
                best = node
            if node.prefix.length >= query.length:
                break
            child = node.children[query.bit_at(node.prefix.length)]
            if child is None or not child.prefix.contains(query):
                break
            node = child
        if best is None:
            return None
        return best.prefix, best.value  # type: ignore[return-value]

    def lookup_value(self, query: Prefix, default: V | None = None) -> V | None:
        found = self.lookup(query)
        return found[1] if found is not None else default

    def lookup_prefix(self, query: Prefix) -> Prefix | None:
        found = self.lookup(query)
        return found[0] if found is not None else None

    def lookup_address(self, value: int) -> tuple[Prefix, V] | None:
        """LPM for a bare integer address."""
        return self.lookup(Prefix.host(self.version, value))

    def covering(self, query: Prefix) -> list[tuple[Prefix, V]]:
        """All stored prefixes containing *query*, shortest first."""
        self._check_version(query)
        found: list[tuple[Prefix, V]] = []
        node = self._root
        while True:
            if node.has_value and node.prefix.contains(query):
                found.append((node.prefix, node.value))  # type: ignore[arg-type]
            if node.prefix.length >= query.length:
                break
            child = node.children[query.bit_at(node.prefix.length)]
            if child is None or not child.prefix.contains(query):
                break
            node = child
        return found

    # -- subtree navigation ------------------------------------------------------

    def _descend(self, prefix: Prefix) -> "_Node | None":
        """The node rooting everything stored at-or-below *prefix*.

        The returned node's own prefix may be *more* specific than the
        query (path compression); it is never less specific.
        """
        node = self._root
        while True:
            if node.prefix.length >= prefix.length:
                return node if prefix.contains(node.prefix) else None
            child = node.children[prefix.bit_at(node.prefix.length)]
            if child is None:
                return None
            if child.prefix.length >= prefix.length:
                return child if prefix.contains(child.prefix) else None
            if child.prefix.contains(prefix):
                node = child
                continue
            return None

    def subtree_root(self, prefix: Prefix) -> Prefix | None:
        """The most specific prefix covering everything stored below
        *prefix* (None when nothing is stored there)."""
        self._check_version(prefix)
        node = self._descend(prefix)
        if node is None or not self._subtree_nonempty(node):
            return None
        return node.prefix

    def branch_children(self, prefix: Prefix) -> list[Prefix]:
        """Where the populated address space below *prefix* diverges.

        Returns the node prefixes one branch below *prefix*:

        * ``[]`` when nothing is stored below *prefix* or *prefix* is
          itself a leaf entry with no descendants,
        * ``[deeper]`` when all entries live inside a single more-specific
          prefix (the compressed path),
        * two prefixes when the space genuinely branches at *prefix*.
        """
        self._check_version(prefix)
        node = self._descend(prefix)
        if node is None:
            return []
        if node.prefix != prefix:
            return [node.prefix] if self._subtree_nonempty(node) else []
        children = []
        for child in node.children:
            if child is not None and self._subtree_nonempty(child):
                children.append(child.prefix)
        return children

    def _subtree_nonempty(self, node: _Node) -> bool:
        stack = [node]
        while stack:
            current = stack.pop()
            if current.has_value:
                return True
            stack.extend(c for c in current.children if c is not None)
        return False

    def subtree_items(self, prefix: Prefix) -> Iterator[tuple[Prefix, V]]:
        """All stored (prefix, value) pairs at or below *prefix*."""
        self._check_version(prefix)
        node = self._descend(prefix)
        if node is not None:
            yield from self._iter_node(node)

    def count_under(self, prefix: Prefix) -> int:
        return sum(1 for _ in self.subtree_items(prefix))

    # -- aggregation ---------------------------------------------------------------

    def aggregate_under(self, prefix: Prefix) -> V | None:
        """Merge all values stored at-or-below *prefix* with the trie's
        ``aggregate`` reducer.  Results are memoised per internal node and
        reused until the next mutation.  Returns None for empty subtrees.
        """
        if self._aggregate is None:
            raise TypeError("trie was built without an aggregate function")
        self._check_version(prefix)
        node = self._descend(prefix)
        if node is None:
            return None
        return self._aggregate_node(node)

    def _aggregate_node(self, node: _Node) -> V | None:
        if node.agg_gen == self._generation:
            return node.agg  # type: ignore[return-value]
        parts: list[V] = []
        if node.has_value:
            parts.append(node.value)  # type: ignore[arg-type]
        for child in node.children:
            if child is not None:
                sub = self._aggregate_node(child)
                if sub is not None:
                    parts.append(sub)
        result = self._aggregate(parts) if parts else None  # type: ignore[misc]
        node.agg = result
        node.agg_gen = self._generation
        return result

    # -- helpers -------------------------------------------------------------------

    def _check_version(self, prefix: Prefix) -> None:
        if prefix.version != self.version:
            raise PrefixError(
                f"IPv{prefix.version} prefix used with IPv{self.version} trie"
            )

    def __repr__(self) -> str:
        return f"PatriciaTrie(version={self.version}, size={self._size})"


def union_of_frozensets(parts: Iterable[frozenset]) -> frozenset:
    """The aggregate reducer used by SP-Tuner's domain tries."""
    result: frozenset = frozenset()
    for part in parts:
        result |= part
    return result
