"""The :class:`Prefix` value type.

A prefix is an immutable ``(version, value, length)`` triple where *value*
is the network address as an integer with all host bits zero.  The class
provides the containment, supernet and subnet arithmetic the rest of the
library is built on, plus parsing/formatting at the edges.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterator

from repro.nettypes import addr as _addr
from repro.nettypes.addr import MAX_LENGTH, check_value


class PrefixError(ValueError):
    """Raised for malformed prefixes or invalid prefix arithmetic."""


@total_ordering
class Prefix:
    """An immutable IPv4 or IPv6 CIDR prefix.

    >>> p = Prefix.parse("192.0.2.0/24")
    >>> p.version, p.length
    (4, 24)
    >>> p.contains_address(Prefix.parse("192.0.2.7/32").value)
    True
    """

    __slots__ = ("version", "value", "length", "_hash")

    version: int
    value: int
    length: int

    def __init__(self, version: int, value: int, length: int):
        bits = MAX_LENGTH.get(version)
        if bits is None:
            raise PrefixError(f"unknown IP version: {version!r}")
        if not 0 <= length <= bits:
            raise PrefixError(f"invalid prefix length /{length} for IPv{version}")
        check_value(version, value)
        host_bits = bits - length
        if host_bits and value & ((1 << host_bits) - 1):
            raise PrefixError(
                f"host bits set in {_addr.format_address(version, value)}/{length}"
            )
        object.__setattr__(self, "version", version)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "length", length)
        object.__setattr__(self, "_hash", hash((version, value, length)))

    # -- construction -------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"network/length"`` text; a bare address gets a full-length
        mask (/32 or /128)."""
        network, slash, length_text = text.partition("/")
        version, value = _addr.parse_address(network)
        if slash:
            if not length_text.isdigit():
                raise PrefixError(f"invalid prefix length in {text!r}")
            length = int(length_text)
        else:
            length = MAX_LENGTH[version]
        return cls(version, value, length)

    @classmethod
    def from_address(cls, version: int, value: int, length: int) -> "Prefix":
        """Build the /*length* prefix covering address *value* (host bits
        are masked off rather than rejected)."""
        bits = MAX_LENGTH.get(version)
        if bits is None:
            raise PrefixError(f"unknown IP version: {version!r}")
        if not 0 <= length <= bits:
            raise PrefixError(f"invalid prefix length /{length} for IPv{version}")
        check_value(version, value)
        host_bits = bits - length
        masked = (value >> host_bits) << host_bits if host_bits else value
        return cls(version, masked, length)

    @classmethod
    def host(cls, version: int, value: int) -> "Prefix":
        """The /32 or /128 prefix for a single address."""
        return cls(version, value, MAX_LENGTH[version])

    # -- derived properties --------------------------------------------------

    @property
    def bits(self) -> int:
        """Total address bits for this family (32 or 128)."""
        return MAX_LENGTH[self.version]

    @property
    def host_bits(self) -> int:
        return self.bits - self.length

    @property
    def first_address(self) -> int:
        return self.value

    @property
    def last_address(self) -> int:
        return self.value | ((1 << self.host_bits) - 1) if self.host_bits else self.value

    @property
    def num_addresses(self) -> int:
        return 1 << self.host_bits

    @property
    def network_text(self) -> str:
        return _addr.format_address(self.version, self.value)

    @property
    def network_key(self) -> int:
        """The network bits alone, right-aligned (``value >> host_bits``).

        Together with ``(version, length)`` this is a *packed key*: a
        /24 IPv4 prefix becomes a 24-bit integer, a /48 IPv6 prefix a
        48-bit one.  Equal keys at equal lengths mean equal prefixes,
        and an address masked to the same length (see
        :func:`address_network_key`) matches iff the prefix contains
        it — the invariant the serving index's binary search relies on.

        >>> Prefix.parse("192.0.2.0/24").network_key == 0xC00002
        True
        """
        return self.value >> self.host_bits

    @classmethod
    def from_network_key(cls, version: int, key: int, length: int) -> "Prefix":
        """Inverse of :attr:`network_key`: rebuild the prefix from its
        packed network bits.

        >>> p = Prefix.parse("2001:db8::/32")
        >>> Prefix.from_network_key(6, p.network_key, 32) == p
        True
        """
        bits = MAX_LENGTH.get(version)
        if bits is None:
            raise PrefixError(f"unknown IP version: {version!r}")
        if not 0 <= length <= bits:
            raise PrefixError(f"invalid prefix length /{length} for IPv{version}")
        if not 0 <= key < (1 << length):
            raise PrefixError(f"network key {key!r} out of range for /{length}")
        return cls(version, key << (bits - length), length)

    # -- containment ---------------------------------------------------------

    def contains_address(self, value: int) -> bool:
        """True if integer address *value* (same family) falls inside."""
        if not 0 <= value <= _addr.max_value(self.version):
            return False
        return value >> self.host_bits == self.value >> self.host_bits

    def contains(self, other: "Prefix") -> bool:
        """True if *other* is equal to or more specific than this prefix."""
        if other.version != self.version or other.length < self.length:
            return False
        shift = self.host_bits
        return other.value >> shift == self.value >> shift

    def overlaps(self, other: "Prefix") -> bool:
        """True if the two prefixes share any address."""
        return self.contains(other) or other.contains(self)

    # -- supernet / subnet arithmetic ----------------------------------------

    def supernet(self, new_length: int | None = None) -> "Prefix":
        """The covering prefix at *new_length* (default: one bit shorter)."""
        if new_length is None:
            new_length = self.length - 1
        if not 0 <= new_length <= self.length:
            raise PrefixError(
                f"cannot widen /{self.length} prefix to /{new_length}"
            )
        return Prefix.from_address(self.version, self.value, new_length)

    def subnets(self, new_length: int | None = None) -> Iterator["Prefix"]:
        """Iterate the subnets of this prefix at *new_length*
        (default: one bit longer).  Beware of combinatorial explosion for
        large length deltas; callers use small deltas only."""
        if new_length is None:
            new_length = self.length + 1
        if not self.length <= new_length <= self.bits:
            raise PrefixError(
                f"cannot split /{self.length} prefix into /{new_length}"
            )
        step = 1 << (self.bits - new_length)
        for index in range(1 << (new_length - self.length)):
            yield Prefix(self.version, self.value + index * step, new_length)

    def sibling_subnet(self) -> "Prefix":
        """The other half of this prefix's parent (its binary sibling)."""
        if self.length == 0:
            raise PrefixError("/0 prefix has no sibling")
        return Prefix(self.version, self.value ^ (1 << self.host_bits), self.length)

    def bit_at(self, position: int) -> int:
        """The address bit at 0-based *position* (0 = most significant)."""
        if not 0 <= position < self.bits:
            raise PrefixError(f"bit position {position} out of range")
        return (self.value >> (self.bits - 1 - position)) & 1

    def common_prefix(self, other: "Prefix") -> "Prefix":
        """The longest prefix containing both (same family required)."""
        if other.version != self.version:
            raise PrefixError("cannot combine IPv4 and IPv6 prefixes")
        limit = min(self.length, other.length)
        diff = (self.value ^ other.value) >> (self.bits - limit) if limit else 0
        common = limit - diff.bit_length()
        return Prefix.from_address(self.version, self.value, common)

    # -- dunder protocol -----------------------------------------------------

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Prefix):
            return self.contains(item)
        if isinstance(item, int):
            return self.contains_address(item)
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return (
            self.version == other.version
            and self.value == other.value
            and self.length == other.length
        )

    def __lt__(self, other: "Prefix") -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return (self.version, self.value, self.length) < (
            other.version,
            other.value,
            other.length,
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"

    def __str__(self) -> str:
        return f"{self.network_text}/{self.length}"

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Prefix instances are immutable")


def parse_many(texts: list[str] | tuple[str, ...]) -> list[Prefix]:
    """Convenience: parse a list of prefix strings."""
    return [Prefix.parse(text) for text in texts]


def address_network_key(version: int, value: int, length: int) -> int:
    """The packed network key an address *value* would have at /*length*.

    Query-side companion of :attr:`Prefix.network_key`, stating the
    containment invariant the serving index builds on: a stored prefix
    contains the address iff their keys at the prefix's length are
    equal.  (The index's probe loop inlines this shift; the helper is
    the documented form for external consumers and tests.)

    >>> p = Prefix.parse("198.51.100.0/24")
    >>> address_network_key(4, p.value | 0x2A, 24) == p.network_key
    True
    """
    return value >> (MAX_LENGTH[version] - length)
