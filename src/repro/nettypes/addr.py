"""Integer-based IPv4 and IPv6 address handling.

Addresses are represented as plain Python integers together with an IP
version constant (:data:`IPV4` or :data:`IPV6`).  This keeps the hot paths
of the sibling-prefix pipeline (prefix grouping, trie traversal, Jaccard
evaluation over millions of records) free of object allocation; parsing and
formatting only happen at the edges.

The module implements its own parsers and formatters rather than wrapping
:mod:`ipaddress`; the test-suite cross-validates them against the standard
library.
"""

from __future__ import annotations

IPV4 = 4
IPV6 = 6

#: Number of bits in an address of each version.
MAX_LENGTH = {IPV4: 32, IPV6: 128}

_MAX_VALUE = {IPV4: (1 << 32) - 1, IPV6: (1 << 128) - 1}

_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")


class AddressError(ValueError):
    """Raised when an address string or integer is malformed."""


def max_value(version: int) -> int:
    """Return the largest address integer for *version*."""
    try:
        return _MAX_VALUE[version]
    except KeyError:
        raise AddressError(f"unknown IP version: {version!r}") from None


def check_version(version: int) -> int:
    """Validate *version*, returning it unchanged.

    Raises :class:`AddressError` for anything other than 4 or 6.
    """
    if version not in _MAX_VALUE:
        raise AddressError(f"unknown IP version: {version!r}")
    return version


def check_value(version: int, value: int) -> int:
    """Validate that *value* fits in an address of *version*."""
    if not 0 <= value <= max_value(version):
        raise AddressError(f"address value {value!r} out of range for IPv{version}")
    return value


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad *text* into an integer.

    Only the canonical four-octet decimal form is accepted; leading zeros
    are rejected (they are ambiguous between octal and decimal readings).
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError(f"invalid IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit() or (len(part) > 1 and part[0] == "0") or len(part) > 3:
            raise AddressError(f"invalid IPv4 octet {part!r} in {text!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"IPv4 octet {part!r} out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    """Format integer *value* as a dotted quad."""
    check_value(IPV4, value)
    return ".".join(
        str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


def _parse_hextet(part: str, text: str) -> int:
    if not 1 <= len(part) <= 4 or any(ch not in _HEX_DIGITS for ch in part):
        raise AddressError(f"invalid IPv6 group {part!r} in {text!r}")
    return int(part, 16)


def parse_ipv6(text: str) -> int:
    """Parse an IPv6 address (RFC 4291 text form) into an integer.

    Supports ``::`` compression and an embedded IPv4 dotted-quad tail
    (e.g. ``::ffff:192.0.2.1``).  Zone identifiers are not supported.
    """
    if "%" in text:
        raise AddressError(f"zone identifiers not supported: {text!r}")
    if text.count("::") > 1:
        raise AddressError(f"multiple '::' in IPv6 address: {text!r}")

    head, sep, tail = text.partition("::")
    head_parts = head.split(":") if head else []
    tail_parts = tail.split(":") if tail else []
    if not sep:
        # No compression: the split of ``head`` must yield exactly 8 groups
        # (or 7 groups where the final one is an IPv4 tail).
        tail_parts = []

    def expand(parts: list[str]) -> list[int]:
        groups: list[int] = []
        for index, part in enumerate(parts):
            if "." in part:
                if index != len(parts) - 1:
                    raise AddressError(f"embedded IPv4 must be last: {text!r}")
                v4 = parse_ipv4(part)
                groups.append(v4 >> 16)
                groups.append(v4 & 0xFFFF)
            elif part == "":
                raise AddressError(f"empty group in IPv6 address: {text!r}")
            else:
                groups.append(_parse_hextet(part, text))
        return groups

    head_groups = expand(head_parts)
    tail_groups = expand(tail_parts)

    if sep:
        missing = 8 - len(head_groups) - len(tail_groups)
        if missing < 1:
            raise AddressError(f"'::' expands to nothing in {text!r}")
        groups = head_groups + [0] * missing + tail_groups
    else:
        groups = head_groups
        if len(groups) != 8:
            raise AddressError(f"expected 8 groups in IPv6 address: {text!r}")

    value = 0
    for group in groups:
        value = (value << 16) | group
    return value


def format_ipv6(value: int) -> str:
    """Format integer *value* in canonical RFC 5952 IPv6 text form."""
    check_value(IPV6, value)
    groups = [(value >> (112 - 16 * i)) & 0xFFFF for i in range(8)]

    # Find the longest run of zero groups (length >= 2) for '::' compression;
    # RFC 5952 requires compressing the leftmost longest run.
    best_start, best_len = -1, 0
    run_start, run_len = -1, 0
    for index, group in enumerate(groups):
        if group == 0:
            if run_start < 0:
                run_start, run_len = index, 0
            run_len += 1
            if run_len > best_len:
                best_start, best_len = run_start, run_len
        else:
            run_start, run_len = -1, 0

    if best_len >= 2:
        head = ":".join(f"{g:x}" for g in groups[:best_start])
        tail = ":".join(f"{g:x}" for g in groups[best_start + best_len:])
        return f"{head}::{tail}"
    return ":".join(f"{g:x}" for g in groups)


def parse_address(text: str) -> tuple[int, int]:
    """Parse *text* as either family; return ``(version, value)``."""
    if ":" in text:
        return IPV6, parse_ipv6(text)
    return IPV4, parse_ipv4(text)


def format_address(version: int, value: int) -> str:
    """Format ``(version, value)`` back into text form."""
    if version == IPV4:
        return format_ipv4(value)
    if version == IPV6:
        return format_ipv6(value)
    raise AddressError(f"unknown IP version: {version!r}")


# ---------------------------------------------------------------------------
# Special-purpose address registries (RFC 6890 and friends).
#
# The paper discards "private, invalid, or reserved" addresses (<0.01% of
# dual-stack domains, Section 2.2); these tables drive that filter.
# Entries are (first_value, prefix_length) pairs.
# ---------------------------------------------------------------------------

_RESERVED_V4: tuple[tuple[int, int], ...] = (
    (parse_ipv4("0.0.0.0"), 8),        # "this network"
    (parse_ipv4("10.0.0.0"), 8),       # private
    (parse_ipv4("100.64.0.0"), 10),    # CGN shared space
    (parse_ipv4("127.0.0.0"), 8),      # loopback
    (parse_ipv4("169.254.0.0"), 16),   # link-local
    (parse_ipv4("172.16.0.0"), 12),    # private
    (parse_ipv4("192.0.0.0"), 24),     # IETF protocol assignments
    (parse_ipv4("192.0.2.0"), 24),     # TEST-NET-1
    (parse_ipv4("192.88.99.0"), 24),   # 6to4 relay anycast (deprecated)
    (parse_ipv4("192.168.0.0"), 16),   # private
    (parse_ipv4("198.18.0.0"), 15),    # benchmarking
    (parse_ipv4("198.51.100.0"), 24),  # TEST-NET-2
    (parse_ipv4("203.0.113.0"), 24),   # TEST-NET-3
    (parse_ipv4("224.0.0.0"), 4),      # multicast
    (parse_ipv4("240.0.0.0"), 4),      # reserved / broadcast
)

_RESERVED_V6: tuple[tuple[int, int], ...] = (
    (0, 8),                            # ::/8 incl. unspecified, loopback, v4-mapped
    (parse_ipv6("100::"), 64),         # discard-only
    (parse_ipv6("2001::"), 23),        # IETF protocol assignments (incl. ORCHID, TEREDO)
    (parse_ipv6("2001:db8::"), 32),    # documentation
    (parse_ipv6("2002::"), 16),        # 6to4
    (parse_ipv6("fc00::"), 7),         # unique local
    (parse_ipv6("fe80::"), 10),        # link-local
    (parse_ipv6("ff00::"), 8),         # multicast
)


def _covered(value: int, table: tuple[tuple[int, int], ...], bits: int) -> bool:
    for network, length in table:
        if value >> (bits - length) == network >> (bits - length):
            return True
    return False


def is_reserved(version: int, value: int) -> bool:
    """Return True if the address is private, reserved, or otherwise
    non-global (the paper's discard filter for DNS answers)."""
    check_value(version, value)
    if version == IPV4:
        return _covered(value, _RESERVED_V4, 32)
    if not _covered(value, _RESERVED_V6, 128):
        # Global unicast space is 2000::/3; everything outside it that is
        # not in the explicit table is still reserved for future use.
        return value >> 125 != 0b001
    return True


def is_global(version: int, value: int) -> bool:
    """Inverse of :func:`is_reserved` for readability at call sites."""
    return not is_reserved(version, value)
