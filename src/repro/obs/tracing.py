"""Stage spans: wall/CPU timers that record into the metrics registry.

``with trace("step3.accumulate") as span: ...`` records, per stage:

* ``stage.calls`` / ``stage.items`` counters (items via
  :meth:`~trace.add_items` or the ``items=`` argument), and
* ``stage.wall_seconds`` / ``stage.cpu_seconds`` histograms,

all labelled ``stage="step3.accumulate"`` (plus any extra labels, e.g.
``shard="3"`` for per-shard Step-3 timings).  A span costs two clock
reads on entry and two on exit — instrumentation lives at stage
granularity, never per item, which is how the Step-3 hot path stays
under the <3% overhead budget enforced by
``benchmarks/bench_obs_overhead.py``.

The module-global default registry is what ``detect --stats`` and the
serving workers snapshot; :func:`set_enabled` turns every span into a
no-op for overhead A/B measurement, and :func:`reset_registry` gives
forked fleet workers a clean slate so supervisor-side detection
metrics are never double-counted in fleet merges.
"""

import threading
import time

from repro.obs.metrics import MetricsRegistry, split_key

__all__ = [
    "get_registry",
    "record_stage",
    "reset_registry",
    "set_enabled",
    "set_registry",
    "stage_rows",
    "stage_table",
    "trace",
    "tracing_enabled",
]

_state_lock = threading.Lock()
_registry = MetricsRegistry()
_enabled = True


def get_registry() -> MetricsRegistry:
    """The process-wide default registry spans record into."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _registry
    with _state_lock:
        previous, _registry = _registry, registry
    return previous


def reset_registry() -> MetricsRegistry:
    """Install (and return) a fresh empty process-wide registry."""
    return_value = MetricsRegistry()
    set_registry(return_value)
    return return_value


def set_enabled(enabled: bool) -> bool:
    """Globally enable/disable span recording; returns the prior state."""
    global _enabled
    with _state_lock:
        previous, _enabled = _enabled, bool(enabled)
    return previous


def tracing_enabled() -> bool:
    """Whether spans currently record (see :func:`set_enabled`)."""
    return _enabled


def record_stage(
    stage: str,
    wall_seconds: float,
    cpu_seconds: float,
    items: "int | None" = None,
    registry: "MetricsRegistry | None" = None,
    **labels,
) -> None:
    """Record one stage execution measured elsewhere.

    Used where the measurement happens in another process — the
    sharded Step-3 workers time themselves and the parent records the
    returned ``(wall, cpu)`` here, labelled per shard.
    """
    if not _enabled:
        return
    target = registry if registry is not None else _registry
    target.counter("stage.calls", stage=stage, **labels).inc()
    if items is not None:
        target.counter("stage.items", stage=stage, **labels).inc(items)
    target.histogram("stage.wall_seconds", stage=stage, **labels).observe(
        wall_seconds
    )
    target.histogram("stage.cpu_seconds", stage=stage, **labels).observe(
        cpu_seconds
    )


class trace:
    """Context-manager span timing one pipeline stage.

    >>> from repro.obs.metrics import MetricsRegistry
    >>> registry = MetricsRegistry()
    >>> with trace("step3.accumulate", registry=registry) as span:
    ...     span.add_items(42)
    >>> registry.snapshot()["counters"]['stage.items{stage="step3.accumulate"}']
    42
    """

    __slots__ = ("stage", "labels", "registry", "items", "_wall0", "_cpu0", "_active")

    def __init__(
        self,
        stage: str,
        items: "int | None" = None,
        registry: "MetricsRegistry | None" = None,
        **labels,
    ):
        self.stage = stage
        self.labels = labels
        self.registry = registry
        self.items = items
        self._active = False

    def add_items(self, count: int) -> None:
        """Attribute *count* processed items to this span."""
        self.items = (self.items or 0) + count

    def __enter__(self) -> "trace":
        if _enabled:
            self._active = True
            self._wall0 = time.perf_counter()
            self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._active:
            self._active = False
            record_stage(
                self.stage,
                time.perf_counter() - self._wall0,
                time.process_time() - self._cpu0,
                items=self.items,
                registry=self.registry,
                **self.labels,
            )


# -- stage reporting ---------------------------------------------------------


def stage_rows(snapshot: dict) -> list:
    """Per-stage rows from a snapshot, in snapshot (sorted-key) order.

    Each row: ``{"stage", "calls", "items", "wall_seconds",
    "cpu_seconds"}`` where the stage field carries extra labels as a
    ``[key=value]`` suffix (``step3.shard [shard=1]``).
    """
    rows: dict = {}
    for key, count in snapshot.get("counters", {}).items():
        name, labels = split_key(key)
        if name not in ("stage.calls", "stage.items"):
            continue
        stage = labels.pop("stage", "?")
        if labels:
            extras = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
            stage = f"{stage} [{extras}]"
        row = rows.setdefault(
            stage,
            {
                "stage": stage,
                "calls": 0,
                "items": 0,
                "wall_seconds": 0.0,
                "cpu_seconds": 0.0,
            },
        )
        row["calls" if name == "stage.calls" else "items"] += count
    for key, state in snapshot.get("histograms", {}).items():
        name, labels = split_key(key)
        if name not in ("stage.wall_seconds", "stage.cpu_seconds"):
            continue
        stage = labels.pop("stage", "?")
        if labels:
            extras = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
            stage = f"{stage} [{extras}]"
        row = rows.get(stage)
        if row is None:
            continue
        field = "wall_seconds" if name == "stage.wall_seconds" else "cpu_seconds"
        row[field] += state["sum"]
    return list(rows.values())


def stage_table(snapshot: dict) -> str:
    """Aligned per-stage timing table (the ``detect --stats`` payload)."""
    rows = stage_rows(snapshot)
    if not rows:
        return "no stage timings recorded"
    header = ("stage", "calls", "items", "wall_s", "cpu_s", "wall_ms/call")
    formatted = [header]
    for row in rows:
        per_call = (
            row["wall_seconds"] / row["calls"] * 1000.0 if row["calls"] else 0.0
        )
        formatted.append(
            (
                row["stage"],
                str(row["calls"]),
                str(row["items"]),
                f"{row['wall_seconds']:.4f}",
                f"{row['cpu_seconds']:.4f}",
                f"{per_call:.2f}",
            )
        )
    widths = [
        max(len(line[column]) for line in formatted)
        for column in range(len(header))
    ]
    lines = []
    for index, line in enumerate(formatted):
        rendered = "  ".join(
            cell.ljust(widths[column]) if column == 0 else cell.rjust(widths[column])
            for column, cell in enumerate(line)
        )
        lines.append(rendered.rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
