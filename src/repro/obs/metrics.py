"""Process-local metrics registry with cross-process merge and exposition.

Design constraints, in order:

* **Lock-cheap on hot paths.**  Metric handles are resolved once (a
  dict lookup on a canonical key) and then mutated under a tiny
  per-metric lock — CPython's ``+=`` spans several bytecodes, so
  "atomic" here is spelled as an uncontended ``threading.Lock`` held
  for a single addition, never across I/O or allocation-heavy work.
* **Snapshot-able to a plain dict.**  :meth:`MetricsRegistry.snapshot`
  returns pure builtins (picklable across the fleet's control pipes,
  JSON-serialisable as-is) and is internally consistent per metric:
  every histogram's bucket counts, sum, and observation count are read
  under that metric's lock, so a scrape racing a swap storm never sees
  a torn histogram.
* **Mergeable across processes.**  :func:`merge_snapshots` folds
  per-worker snapshots into one fleet view — counters and histograms
  add (associative and commutative, so fold order never matters),
  gauges take the **max** (the fleet view of "current generation" is
  the newest worker; see ``docs/OBSERVABILITY.md``).
* **Exposition is pure.**  :func:`render_prometheus` and
  :func:`render_json` are functions of a snapshot dict — no registry
  lock is ever held while bytes hit a socket.

>>> registry = MetricsRegistry()
>>> registry.counter("serve.lookups").inc()
>>> registry.counter("serve.lookups").inc(2)
>>> registry.gauge("serve.generation").set(7)
>>> registry.histogram("serve.batch_size", bounds=(1, 10)).observe(3)
>>> snap = registry.snapshot()
>>> snap["counters"]["serve.lookups"]
3
>>> merged = merge_snapshots([snap, snap])
>>> merged["counters"]["serve.lookups"], merged["gauges"]["serve.generation"]
(6, 7.0)
>>> print(render_prometheus(snap).splitlines()[1])
repro_serve_lookups_total 3
"""

import re
import threading

__all__ = [
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_COUNT_BUCKETS",
    "MetricsError",
    "MetricsRegistry",
    "merge_snapshots",
    "render_json",
    "render_prometheus",
]

#: Latency buckets (seconds): 100µs .. 10s, roughly ×3 apart.
DEFAULT_SECONDS_BUCKETS = (
    0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0,
)

#: Size buckets (items): powers of two up to 4096 (the serving batch cap
#: is 10k, so the overflow bucket is meaningful, not dead).
DEFAULT_COUNT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)

_NAME = re.compile(r"^[a-z][a-z0-9_.]*$")
_LABEL_PAIR = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)="((?:[^"\\]|\\.)*)"')


class MetricsError(ValueError):
    """Invalid metric name, label, or conflicting histogram bounds."""


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _metric_key(name: str, labels: dict) -> str:
    """Canonical identity string: ``name{k="v",...}`` with sorted labels."""
    if not _NAME.match(name):
        raise MetricsError(f"invalid metric name {name!r}")
    if not labels:
        return name
    pairs = []
    for key in sorted(labels):
        if not re.match(r"^[A-Za-z_][A-Za-z0-9_]*$", key):
            raise MetricsError(f"invalid label name {key!r}")
        pairs.append(f'{key}="{_escape(str(labels[key]))}"')
    return name + "{" + ",".join(pairs) + "}"


def split_key(key: str) -> "tuple[str, dict]":
    """Inverse of the canonical key: ``(name, labels)``."""
    name, brace, rest = key.partition("{")
    if not brace:
        return name, {}
    labels = {
        label: value.replace('\\"', '"').replace("\\n", "\n").replace(
            "\\\\", "\\"
        )
        for label, value in _LABEL_PAIR.findall(rest[:-1])
    }
    return name, labels


class Counter:
    """Monotonic integer counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (>= 0); counters are monotonic by contract."""
        if amount < 0:
            raise MetricsError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """Last-write-wins numeric level."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the level with *value*."""
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        """Shift the level by *amount* (either sign)."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram: counts per bucket plus a running sum.

    ``bounds`` are the finite upper bounds, strictly increasing; an
    implicit overflow (``+Inf``) bucket follows.  Observations land in
    the first bucket whose bound is >= the value (Prometheus ``le``
    semantics).
    """

    __slots__ = ("_lock", "bounds", "_counts", "_sum")

    def __init__(self, bounds):
        bounds = tuple(float(bound) for bound in bounds)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise MetricsError(
                f"histogram bounds must be strictly increasing: {bounds!r}"
            )
        self._lock = threading.Lock()
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation into its ``le`` bucket and the sum."""
        index = len(self.bounds)
        for position, bound in enumerate(self.bounds):
            if value <= bound:
                index = position
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value

    def state(self) -> dict:
        """Consistent ``{"bounds", "counts", "sum", "count"}`` view."""
        with self._lock:
            counts = list(self._counts)
            total = self._sum
        return {
            "bounds": list(self.bounds),
            "counts": counts,
            "sum": total,
            "count": sum(counts),
        }


class MetricsRegistry:
    """Named metrics with canonical ``name{label="value"}`` identity.

    The registry lock guards only handle creation; reads and updates go
    through the per-metric locks, so a scrape never stalls the hot
    path and vice versa.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}

    def _resolve(self, table: dict, key: str, factory):
        metric = table.get(key)
        if metric is None:
            with self._lock:
                metric = table.get(key)
                if metric is None:
                    metric = factory()
                    table[key] = metric
        return metric

    def counter(self, name: str, **labels) -> Counter:
        """The :class:`Counter` for ``name`` + *labels* (created once)."""
        return self._resolve(self._counters, _metric_key(name, labels), Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        """The :class:`Gauge` for ``name`` + *labels* (created once)."""
        return self._resolve(self._gauges, _metric_key(name, labels), Gauge)

    def histogram(self, name: str, bounds=None, **labels) -> Histogram:
        """The :class:`Histogram` for ``name`` + *labels*.

        *bounds* defaults to :data:`DEFAULT_SECONDS_BUCKETS`;
        re-registering an existing key with different bounds raises
        :class:`MetricsError` (merges would be meaningless).
        """
        key = _metric_key(name, labels)
        wanted = tuple(
            float(bound)
            for bound in (bounds if bounds is not None else DEFAULT_SECONDS_BUCKETS)
        )
        metric = self._resolve(
            self._histograms, key, lambda: Histogram(wanted)
        )
        if metric.bounds != wanted:
            raise MetricsError(
                f"histogram {key!r} already registered with bounds "
                f"{metric.bounds}, requested {wanted}"
            )
        return metric

    def snapshot(self) -> dict:
        """Plain-dict view; each metric's value is read atomically."""
        return {
            "counters": {
                key: metric.value
                for key, metric in sorted(self._counters.items())
            },
            "gauges": {
                key: metric.value
                for key, metric in sorted(self._gauges.items())
            },
            "histograms": {
                key: metric.state()
                for key, metric in sorted(self._histograms.items())
            },
        }


def merge_snapshots(snapshots) -> dict:
    """Fold snapshot dicts into one: counters/histograms add, gauges max.

    Addition is associative and commutative, so per-worker snapshots
    can arrive and fold in any order.  Histograms with differing bucket
    bounds under the same key are a programming error and raise.
    """
    counters: dict = {}
    gauges: dict = {}
    histograms: dict = {}
    for snapshot in snapshots:
        for key, value in snapshot.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + value
        for key, value in snapshot.get("gauges", {}).items():
            gauges[key] = max(gauges[key], value) if key in gauges else value
        for key, state in snapshot.get("histograms", {}).items():
            merged = histograms.get(key)
            if merged is None:
                histograms[key] = {
                    "bounds": list(state["bounds"]),
                    "counts": list(state["counts"]),
                    "sum": state["sum"],
                    "count": state["count"],
                }
                continue
            if merged["bounds"] != list(state["bounds"]):
                raise MetricsError(
                    f"cannot merge histogram {key!r}: bounds differ "
                    f"({merged['bounds']} vs {state['bounds']})"
                )
            merged["counts"] = [
                a + b for a, b in zip(merged["counts"], state["counts"])
            ]
            merged["sum"] += state["sum"]
            merged["count"] += state["count"]
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }


# -- exposition --------------------------------------------------------------

_PROM_PREFIX = "repro"


def _prom_name(name: str) -> str:
    return _PROM_PREFIX + "_" + name.replace(".", "_")


def _prom_number(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _prom_labels(labels: dict, extra: "dict | None" = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{key}="{_escape(str(merged[key]))}"' for key in sorted(merged)
    )
    return "{" + inner + "}"


def render_prometheus(snapshot: dict) -> str:
    """Prometheus text exposition (v0.0.4) of a snapshot dict.

    Pure function of the snapshot — safe to call while the source
    registry keeps mutating, and never holds any lock across the
    socket write that follows.
    """
    lines = []
    seen_types: set = set()

    def _type_line(family: str, kind: str) -> None:
        if family not in seen_types:
            seen_types.add(family)
            lines.append(f"# TYPE {family} {kind}")

    for key, value in snapshot.get("counters", {}).items():
        name, labels = split_key(key)
        family = _prom_name(name) + "_total"
        _type_line(family, "counter")
        lines.append(f"{family}{_prom_labels(labels)} {value}")
    for key, value in snapshot.get("gauges", {}).items():
        name, labels = split_key(key)
        family = _prom_name(name)
        _type_line(family, "gauge")
        lines.append(f"{family}{_prom_labels(labels)} {_prom_number(value)}")
    for key, state in snapshot.get("histograms", {}).items():
        name, labels = split_key(key)
        family = _prom_name(name)
        _type_line(family, "histogram")
        cumulative = 0
        for bound, count in zip(state["bounds"], state["counts"]):
            cumulative += count
            label = _prom_labels(labels, {"le": _prom_number(bound)})
            lines.append(f"{family}_bucket{label} {cumulative}")
        cumulative += state["counts"][-1]
        label = _prom_labels(labels, {"le": "+Inf"})
        lines.append(f"{family}_bucket{label} {cumulative}")
        lines.append(
            f"{family}_sum{_prom_labels(labels)} {_prom_number(state['sum'])}"
        )
        lines.append(f"{family}_count{_prom_labels(labels)} {state['count']}")
    return "\n".join(lines) + "\n"


def render_json(snapshot: dict) -> str:
    """JSON exposition of a snapshot dict (stable key order)."""
    import json

    return json.dumps(snapshot, sort_keys=True, indent=2)
