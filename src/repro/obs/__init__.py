"""Fleet-wide telemetry: metrics registry, stage tracing, exposition.

The observability substrate every other subsystem reports into:

* :mod:`repro.obs.metrics` — a process-local, dependency-free
  :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges, and
  fixed-bucket histograms.  Lock-cheap on hot paths, snapshot-able to a
  plain dict, mergeable across processes, and renderable as Prometheus
  text or JSON.
* :mod:`repro.obs.tracing` — lightweight stage spans
  (``with trace("step3.accumulate"):``) recording wall/CPU time and
  item counts into the registry; the per-stage timing tables behind
  ``repro detect --stats``.

Detection Steps 1-3, the incremental delta path, the ``.sparch``
archive, the query service, and the serving fleet are all wired
through this package; the fleet supervisor merges per-worker registry
snapshots into the ``/v1/status`` + ``/v1/metrics`` HTTP surface (see
``docs/OBSERVABILITY.md`` for the metric catalog and aggregation
semantics).
"""

from repro.obs.metrics import (
    MetricsError,
    MetricsRegistry,
    merge_snapshots,
    render_prometheus,
)
from repro.obs.tracing import (
    get_registry,
    record_stage,
    reset_registry,
    set_enabled,
    set_registry,
    stage_table,
    trace,
    tracing_enabled,
)

__all__ = [
    "MetricsError",
    "MetricsRegistry",
    "get_registry",
    "merge_snapshots",
    "record_stage",
    "render_prometheus",
    "reset_registry",
    "set_enabled",
    "set_registry",
    "stage_table",
    "trace",
    "tracing_enabled",
]
