"""Tests for the service fabric internals (deployment structure)."""

import datetime
from collections import Counter

import pytest

from repro.dates import REFERENCE_DATE
from repro.nettypes.addr import IPV4, IPV6
from repro.nettypes.prefix import Prefix
from repro.synth.entities import DeploymentTier, HostingMode
from repro.synth.services import (
    EARLY_DATE,
    MONITORING_GAP_MONTHS,
    _SubAllocator,
    AgilityNetwork,
)


class TestSubAllocator:
    def test_sequential_children(self):
        allocator = _SubAllocator(Prefix.parse("10.0.0.0/22"), 24)
        children = [allocator.take() for _ in range(4)]
        assert [str(c) for c in children] == [
            "10.0.0.0/24",
            "10.0.1.0/24",
            "10.0.2.0/24",
            "10.0.3.0/24",
        ]
        assert allocator.take() is None  # exhausted

    def test_child_no_shorter_than_parent(self):
        with pytest.raises(ValueError):
            _SubAllocator(Prefix.parse("10.0.0.0/24"), 22)

    def test_same_length_single_child(self):
        allocator = _SubAllocator(Prefix.parse("10.0.0.0/24"), 24)
        assert allocator.take() == Prefix.parse("10.0.0.0/24")
        assert allocator.take() is None


class TestFabricStructure:
    def test_tier_mix_present(self, tiny_universe):
        tiers = Counter(
            d.tier for d in tiny_universe.fabric.deployments.values()
        )
        for tier in DeploymentTier:
            assert tiers[tier] > 0, f"no {tier.value} deployments generated"

    def test_shared_blocks_nest_strictly(self, tiny_universe):
        for deployment in tiny_universe.fabric.deployments.values():
            if deployment.tier is DeploymentTier.DEEP_SHARED:
                # One side must sit strictly inside a larger announcement.
                v4_nested = deployment.v4_block.length > deployment.v4_announced.length
                v6_nested = deployment.v6_block.length > deployment.v6_announced.length
                assert v4_nested or v6_nested

    def test_deep_shared_blocks_at_tuner_granularity(self, tiny_universe):
        for deployment in tiny_universe.fabric.deployments.values():
            if (
                deployment.tier is DeploymentTier.DEEP_SHARED
                and deployment.hosting is HostingMode.SELF
            ):
                if deployment.v4_block.length > deployment.v4_announced.length:
                    assert deployment.v4_block.length == 28
                if deployment.v6_block.length > deployment.v6_announced.length:
                    assert deployment.v6_block.length == 96

    def test_routable_shared_blocks_at_routable_granularity(self, tiny_universe):
        for deployment in tiny_universe.fabric.deployments.values():
            if (
                deployment.tier is DeploymentTier.ROUTABLE_SHARED
                and deployment.hosting is HostingMode.SELF
            ):
                if deployment.v4_block.length > deployment.v4_announced.length:
                    assert deployment.v4_block.length == 24
                if deployment.v6_block.length > deployment.v6_announced.length:
                    assert deployment.v6_block.length == 48

    def test_same_org_containers_disjoint_between_deployments(self, tiny_universe):
        blocks = [
            d.v4_block
            for d in tiny_universe.fabric.deployments.values()
        ]
        for i, a in enumerate(blocks):
            for b in blocks[i + 1:]:
                assert a != b or a is b  # blocks are unique per deployment

    def test_alt_blocks_share_announcement_with_primary(self, tiny_universe):
        for deployment in tiny_universe.fabric.deployments.values():
            if (
                deployment.alt_v4_block is not None
                and deployment.tier
                in (DeploymentTier.ROUTABLE_SHARED, DeploymentTier.DEEP_SHARED)
                and deployment.hosting is HostingMode.SELF
                and deployment.v4_block.length > deployment.v4_announced.length
            ):
                assert deployment.v4_announced.contains(deployment.alt_v4_block)

    def test_announcements_cover_all_blocks(self, tiny_universe):
        announced = {a.prefix for a in tiny_universe.fabric.announcements}
        for deployment in tiny_universe.fabric.deployments.values():
            assert deployment.v4_announced in announced
            assert deployment.v6_announced in announced

    def test_announcement_dates_sane(self, tiny_universe):
        for announcement in tiny_universe.fabric.announcements:
            assert announcement.announced >= EARLY_DATE
            assert announcement.announced <= datetime.date(2024, 12, 31)

    def test_service_profiles_known(self, tiny_universe):
        from repro.scan.ports import SERVICE_PROFILES

        for deployment in tiny_universe.fabric.deployments.values():
            assert deployment.service_profile in SERVICE_PROFILES

    def test_noise_sinks_exist_and_are_announced(self, tiny_universe):
        announced = {a.prefix for a in tiny_universe.fabric.announcements}
        assert tiny_universe.fabric.noise_sinks
        for sink in tiny_universe.fabric.noise_sinks:
            assert sink in announced
            assert sink.version == IPV6

    def test_monitoring_gap_months_constant(self):
        assert (2023, 5) in MONITORING_GAP_MONTHS
        assert all(year in (2021, 2022, 2023) for year, _ in MONITORING_GAP_MONTHS)


class TestAgilityNetwork:
    def test_pool_binding_is_stable_and_in_pool(self):
        network = AgilityNetwork(
            org_id=1,
            v4_prefixes=(Prefix.parse("5.0.0.0/20"),),
            v6_prefixes=(Prefix.parse("2600::/32"),),
            v4_pool=(100, 200),
            v6_pool=(300, 400),
        )
        first = network.v4_address_for("x.example.com")
        assert first in network.v4_pool
        assert network.v4_address_for("x.example.com") == first
        assert network.v6_address_for("x.example.com") in network.v6_pool

    def test_independent_family_binding(self):
        network = AgilityNetwork(
            org_id=1,
            v4_prefixes=(),
            v6_prefixes=(),
            v4_pool=tuple(range(100)),
            v6_pool=tuple(range(100)),
        )
        # Across many domains, v4 and v6 pool indices must decorrelate.
        same = sum(
            1
            for i in range(200)
            if network.v4_address_for(f"d{i}.example.com")
            == network.v6_address_for(f"d{i}.example.com")
        )
        assert same < 30  # ~1% expected if independent; allow slack


class TestDomainSpecs:
    def test_fr_domains_sourced_from_cctld_list(self, tiny_universe):
        from repro.dns.toplists import Toplist

        fr_specs = [
            spec
            for spec in tiny_universe.fabric.domains.values()
            if spec.name.endswith(".fr")
        ]
        assert fr_specs
        for spec in fr_specs:
            assert spec.sources == {Toplist.OPEN_CCTLDS}

    def test_aliases_resolve_to_final_names(self, tiny_universe):
        aliased = [s for s in tiny_universe.fabric.domains.values() if s.alias]
        assert aliased
        for spec in aliased[:20]:
            assert spec.alias == f"www.{spec.name}"

    def test_singlestack_ratio_roughly_respected(self, tiny_universe):
        specs = list(tiny_universe.fabric.domains.values())
        ds_native = sum(1 for s in specs if s.ds_adoption is None and not s.v6_only)
        singlestack = sum(1 for s in specs if s.ds_adoption is not None or s.v6_only)
        ratio = singlestack / ds_native
        target = tiny_universe.config.singlestack_ratio
        assert 0.5 * target < ratio < 1.8 * target

    def test_v6_only_domains_exist_and_lack_a_records(self, tiny_universe):
        v6_only = [s for s in tiny_universe.fabric.domains.values() if s.v6_only]
        assert v6_only
        spec = v6_only[0]
        v4, v6 = tiny_universe.addresses_for(spec, REFERENCE_DATE)
        assert not v4 and v6

    def test_oneshot_domains_have_month(self, tiny_universe):
        from repro.synth.entities import VisibilityPattern

        oneshots = [
            s
            for s in tiny_universe.fabric.domains.values()
            if s.pattern is VisibilityPattern.ONESHOT
        ]
        assert oneshots
        for spec in oneshots:
            if spec.ds_adoption is None:  # base DS domains carry the month
                assert spec.oneshot_month is not None
