"""Tests for DNS records and zone data rules."""

import pytest

from repro.dns.records import ResourceRecord, RRType, normalize_name, validate_name
from repro.dns.zone import Zone, ZoneError
from repro.nettypes.addr import IPV4, IPV6, parse_ipv4, parse_ipv6


class TestRecords:
    def test_a_record(self):
        r = ResourceRecord.a("www.Example.COM.", parse_ipv4("192.0.2.1"))
        assert r.name == "www.example.com"
        assert r.rrtype is RRType.A
        assert r.address == parse_ipv4("192.0.2.1")

    def test_aaaa_record(self):
        r = ResourceRecord.aaaa("v6.example.com", parse_ipv6("2001:db8::1"))
        assert r.rrtype.ip_version == IPV6

    def test_cname_record(self):
        r = ResourceRecord.cname("www.example.com", "CDN.example.NET")
        assert r.target == "cdn.example.net"
        assert r.address is None

    def test_a_requires_address(self):
        with pytest.raises(ValueError):
            ResourceRecord("www.example.com", RRType.A, target="x.example.com")

    def test_cname_requires_target(self):
        with pytest.raises(ValueError):
            ResourceRecord("www.example.com", RRType.CNAME, address=1)

    def test_address_range_checked(self):
        with pytest.raises(ValueError):
            ResourceRecord.a("www.example.com", 2**32)

    def test_rrtype_properties(self):
        assert RRType.A.is_address and RRType.AAAA.is_address
        assert not RRType.CNAME.is_address
        assert RRType.A.ip_version == IPV4
        with pytest.raises(ValueError):
            _ = RRType.CNAME.ip_version

    @pytest.mark.parametrize(
        "bad",
        ["", ".", "-bad.example.com", "bad-.example.com", "ex ample.com", "a" * 64 + ".com"],
    )
    def test_validate_name_rejects(self, bad):
        with pytest.raises(ValueError):
            validate_name(bad)

    def test_normalize(self):
        assert normalize_name("WWW.Example.Com.") == "www.example.com"


class TestZone:
    def test_add_and_query(self):
        zone = Zone()
        zone.add(ResourceRecord.a("a.example.com", 1))
        zone.add(ResourceRecord.aaaa("a.example.com", 2))
        assert len(zone.records("a.example.com")) == 2
        assert len(zone.records("a.example.com", RRType.A)) == 1
        assert "a.example.com" in zone
        assert "b.example.com" not in zone

    def test_duplicate_records_deduped(self):
        zone = Zone()
        zone.add(ResourceRecord.a("a.example.com", 1))
        zone.add(ResourceRecord.a("a.example.com", 1))
        assert zone.record_count() == 1

    def test_cname_exclusivity(self):
        zone = Zone()
        zone.add(ResourceRecord.a("a.example.com", 1))
        with pytest.raises(ZoneError):
            zone.add(ResourceRecord.cname("a.example.com", "b.example.com"))
        zone.add(ResourceRecord.cname("c.example.com", "b.example.com"))
        with pytest.raises(ZoneError):
            zone.add(ResourceRecord.a("c.example.com", 1))

    def test_replace_addresses(self):
        zone = Zone()
        zone.add(ResourceRecord.a("a.example.com", 1))
        zone.add(ResourceRecord.aaaa("a.example.com", 9))
        zone.replace_addresses("a.example.com", RRType.A, [2, 3])
        a_values = sorted(r.address for r in zone.records("a.example.com", RRType.A))
        assert a_values == [2, 3]
        # AAAA untouched.
        assert [r.address for r in zone.records("a.example.com", RRType.AAAA)] == [9]

    def test_replace_addresses_to_empty_removes_name(self):
        zone = Zone()
        zone.add(ResourceRecord.a("a.example.com", 1))
        zone.replace_addresses("a.example.com", RRType.A, [])
        assert "a.example.com" not in zone

    def test_remove_name(self):
        zone = Zone()
        zone.add(ResourceRecord.a("a.example.com", 1))
        zone.remove_name("A.example.com")
        assert len(zone) == 0
