"""Property-based differential testing across the detection engines.

Three engines now compute Steps 3-4 (``reference``, ``columnar``,
``sharded``) and three structures answer LPM lookups
(:class:`SiblingLookupIndex`, :class:`PatriciaTrie`, ``scan_lookup``).
Randomized differential testing is the cheapest way to keep them
bit-identical: hypothesis drives synthetic inputs — direct
domain-membership indexes, scenario-grid universes seeded at random,
randomized published-pair lists — and every property asserts that all
implementations agree on the *complete* observable output, not a
summary statistic.

Profiles are registered in ``conftest.py``: the default ``dev`` profile
keeps the tier-1 run fast; CI's blocking ``differential`` job runs with
``HYPOTHESIS_PROFILE=differential`` (more examples, deadline disabled,
failure blobs printed for reproducibility).
"""

import dataclasses
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import as_mapping

from repro.core.detection import BestMatchMode
from repro.core.domainsets import PrefixDomainIndex, build_index
from repro.core.kernels import available_kernel_names, use_kernel
from repro.core.metrics import METRICS_FROM_COUNTS
from repro.core.parallel import (
    ShardedSubstrate,
    accumulate_shard,
    build_shard_payloads,
    estimate_pair_rows,
)
from repro.core.substrate import ColumnarSubstrate, get_substrate
from repro.dates import REFERENCE_DATE
from repro.nettypes.addr import IPV4, IPV6
from repro.nettypes.prefix import Prefix
from repro.nettypes.trie import PatriciaTrie
from repro.publish import PublishedPair
from repro.serving.index import SiblingLookupIndex, scan_lookup
from repro.synth import build_universe
from repro.synth.scenarios import SCENARIOS

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

_V4_POOL = [
    Prefix.from_address(IPV4, (10 << 24) | (i << 8), 24) for i in range(12)
]
_V6_POOL = [
    Prefix.from_address(IPV6, (0x2001_0DB8 << 96) | (i << 80), 48)
    for i in range(12)
]


def _index_from_memberships(memberships) -> PrefixDomainIndex:
    """A detection-ready index straight from (v4 ids, v6 ids) pairs."""
    index = PrefixDomainIndex(date=REFERENCE_DATE)
    for position, (v4_ids, v6_ids) in enumerate(memberships):
        label = f"d{position}.example"
        v4_prefixes = {_V4_POOL[i] for i in v4_ids}
        v6_prefixes = {_V6_POOL[i] for i in v6_ids}
        index.domain_v4_prefixes[label] = v4_prefixes
        index.domain_v6_prefixes[label] = v6_prefixes
        for prefix in v4_prefixes:
            index.v4_domains.setdefault(prefix, set()).add(label)
        for prefix in v6_prefixes:
            index.v6_domains.setdefault(prefix, set()).add(label)
    return index


@st.composite
def membership_indexes(draw):
    """Random sparse domain-membership structures, empty included."""
    n_domains = draw(st.integers(min_value=0, max_value=30))
    ids = st.integers(min_value=0, max_value=len(_V4_POOL) - 1)
    memberships = [
        (
            draw(st.sets(ids, min_size=1, max_size=4)),
            draw(st.sets(ids, min_size=1, max_size=4)),
        )
        for _ in range(n_domains)
    ]
    return _index_from_memberships(memberships)


METRIC_NAMES = sorted(METRICS_FROM_COUNTS)

#: The kernel axis of the differential grid: every engine property runs
#: once per importable kernel, forced in-process via
#: :class:`repro.core.kernels.use_kernel` (which also exports
#: ``REPRO_KERNEL`` so forked shard workers select the same kernel).
#: On a numpy-free interpreter this is just ``["python"]`` and the
#: numpy axis is covered by CI's differential job instead.
KERNEL_NAMES = available_kernel_names()

_as_mapping = as_mapping


# ---------------------------------------------------------------------------
# Step 3 sharding is an exact partition
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kernel", KERNEL_NAMES)
@given(index=membership_indexes(), n_shards=st.integers(1, 5))
def test_shard_plan_is_exact_partition(kernel, index, n_shards):
    """Shard-local counters partition the columnar counter exactly.

    Runs the worker function in-process (it is pure), so this property
    gets high example counts without fork overhead: shard key spaces
    must be disjoint, each key must live on the shard its v4 row
    selects, and the merged counts must equal the single-process
    columnar counts bit for bit — per kernel.
    """
    with use_kernel(kernel):
        substrate = ColumnarSubstrate()
        state = substrate.prepare(index)
        expected = dict(ColumnarSubstrate.pair_counts(state))

        payloads = build_shard_payloads(state, n_shards)
        assert len(payloads) == n_shards
        merged: dict[int, int] = {}
        seen_keys: set[int] = set()
        for payload in payloads:
            shard, keys, counts, wall, cpu = accumulate_shard(payload)
            assert shard == payload[0]
            assert wall >= 0.0 and cpu >= 0.0
            shard_keys = {int(key) for key in keys}
            assert not (shard_keys & seen_keys), "shard key spaces overlap"
            seen_keys |= shard_keys
            for key in shard_keys:
                assert (key >> 32) % n_shards == shard
            merged.update(zip((int(k) for k in keys), (int(c) for c in counts)))
        assert merged == expected
        assert sum(merged.values()) == estimate_pair_rows(state)


@pytest.mark.parametrize("kernel", KERNEL_NAMES)
@given(
    index=membership_indexes(),
    metric=st.sampled_from(METRIC_NAMES),
    mode=st.sampled_from(list(BestMatchMode)),
    workers=st.integers(1, 3),
)
@settings(max_examples=10)
def test_engines_identical_select(kernel, index, metric, mode, workers):
    """reference, columnar, and sharded agree on the full result.

    The sharded engine runs with a zero fallback threshold so real
    worker processes execute even on these small inputs.  The kernel
    parameter runs the whole property once per importable kernel —
    {reference, columnar, sharded} x {python, numpy} bit-identity.
    """
    with use_kernel(kernel):
        reference = get_substrate("reference").select(index, metric=metric, mode=mode)
        columnar = ColumnarSubstrate().select(index, metric=metric, mode=mode)
        sharded = ShardedSubstrate(workers=workers, min_pair_rows=0).select(
            index, metric=metric, mode=mode
        )
        assert _as_mapping(reference) == _as_mapping(columnar) == _as_mapping(sharded)


@pytest.mark.parametrize("kernel", KERNEL_NAMES)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    hgcdn_scale=st.sampled_from((0.004, 0.02)),
    split_hosting=st.sampled_from((0.22, 0.4)),
)
@settings(max_examples=4)
def test_scenario_grid_differential(kernel, seed, hgcdn_scale, split_hosting):
    """Full-pipeline agreement on randomly seeded scenario-grid configs.

    Universes built from randomized :mod:`repro.synth.scenarios`
    variants exercise realistic structure (hypergiants, shared hosting,
    ties) that the direct membership strategy cannot: all three engines
    must agree on the complete sibling set, under either kernel.
    """
    config = dataclasses.replace(
        SCENARIOS["tiny"],
        name=f"grid-{seed}",
        seed=seed,
        hgcdn_deployment_scale=hgcdn_scale,
        split_hosting_fraction=split_hosting,
    )
    universe = build_universe(config)
    index = build_index(
        universe.snapshot_at(REFERENCE_DATE),
        universe.annotator_at(REFERENCE_DATE),
    )
    with use_kernel(kernel):
        reference = get_substrate("reference").select(index)
        columnar = ColumnarSubstrate().select(index)
        sharded = ShardedSubstrate(workers=2, min_pair_rows=0).select(index)
    assert len(reference) > 0
    assert _as_mapping(reference) == _as_mapping(columnar) == _as_mapping(sharded)


@pytest.mark.skipif(
    len(KERNEL_NAMES) < 2, reason="numpy not importable: single-kernel build"
)
@given(
    index=membership_indexes(),
    metric=st.sampled_from(METRIC_NAMES),
    mode=st.sampled_from(list(BestMatchMode)),
)
@settings(max_examples=15)
def test_kernels_bit_identical_select(index, metric, mode):
    """python and numpy kernels agree to the last float bit and in order.

    Stronger than mapping agreement: the pair sequence, every
    similarity's exact bit pattern (``float.hex``), the shared-domain
    sets, and the family domain counts must match — the kernels are
    interchangeable, not merely approximately equal.
    """
    outputs = []
    for kernel in KERNEL_NAMES:
        with use_kernel(kernel):
            siblings = ColumnarSubstrate().select(index, metric=metric, mode=mode)
        outputs.append(
            [
                (
                    pair.v4_prefix,
                    pair.v6_prefix,
                    pair.similarity.hex(),
                    pair.shared_domains,
                    pair.v4_domain_count,
                    pair.v6_domain_count,
                )
                for pair in siblings
            ]
        )
    first = outputs[0]
    for other in outputs[1:]:
        assert other == first


# ---------------------------------------------------------------------------
# LPM lookup structures agree
# ---------------------------------------------------------------------------


@st.composite
def published_universes(draw):
    """A random published-pair list plus hit-biased queries.

    Prefix pools include nested lengths (parents and more-specifics of
    the same address space) so longest-prefix-match ordering is
    actually exercised, not just exact hits.
    """
    rng = random.Random(draw(st.integers(0, 2**30)))
    v4_pool = []
    for i in range(draw(st.integers(1, 8))):
        base = (198 << 24) | (i << 18)
        for length in draw(
            st.sets(st.sampled_from((14, 16, 20, 24, 28)), min_size=1, max_size=3)
        ):
            v4_pool.append(Prefix.from_address(IPV4, base, length))
    v6_pool = []
    for i in range(draw(st.integers(1, 8))):
        base = (0x2001_0DB8 << 96) | (i << 88)
        for length in draw(
            st.sets(st.sampled_from((28, 32, 40, 48, 56)), min_size=1, max_size=3)
        ):
            v6_pool.append(Prefix.from_address(IPV6, base, length))
    n_pairs = draw(st.integers(1, 25))
    pairs = [
        PublishedPair(
            v4_prefix=rng.choice(v4_pool),
            v6_prefix=rng.choice(v6_pool),
            jaccard=rng.random(),
            shared_domains=rng.randint(1, 50),
            v4_domains=rng.randint(1, 60),
            v6_domains=rng.randint(1, 60),
            same_org=rng.choice((None, True, False)),
            rov_status=None,
        )
        for _ in range(n_pairs)
    ]
    stored = [p for pair in pairs for p in (pair.v4_prefix, pair.v6_prefix)]
    queries = []
    for _ in range(60):
        version = rng.choice((4, 6))
        family = [p for p in stored if p.version == version]
        if family and rng.random() < 0.7:
            base = rng.choice(family)
            value = base.value | rng.getrandbits(base.host_bits)
        else:
            value = rng.getrandbits(32 if version == 4 else 128)
        if rng.random() < 0.3:
            length = rng.randint(0, 32 if version == 4 else 128)
            queries.append(Prefix.from_address(version, value, length))
        else:
            queries.append(Prefix.host(version, value))
    return pairs, queries


def _trie_oracles(index: SiblingLookupIndex) -> dict[int, PatriciaTrie]:
    """Per-family PatriciaTrie mapping prefix → pair positions."""
    by_prefix: dict[Prefix, list[int]] = {}
    for position, pair in enumerate(index.pairs):
        for prefix in (pair.v4_prefix, pair.v6_prefix):
            by_prefix.setdefault(prefix, []).append(position)
    return {
        version: PatriciaTrie.from_items(
            version,
            (
                (prefix, tuple(positions))
                for prefix, positions in by_prefix.items()
                if prefix.version == version
            ),
        )
        for version in (4, 6)
    }


@given(universe=published_universes())
def test_lookup_index_matches_trie_and_scan(universe):
    """Compiled index LPM == PatriciaTrie LPM == linear scan, always."""
    pairs, queries = universe
    index = SiblingLookupIndex.from_pairs(pairs, REFERENCE_DATE)
    tries = _trie_oracles(index)
    for query in queries:
        got = index.lookup(query)
        oracle = tries[query.version].lookup(query)
        brute = scan_lookup(index.pairs, query)
        if oracle is None:
            assert got is None and brute is None
            continue
        oracle_prefix, oracle_positions = oracle
        assert got is not None and brute is not None
        assert got.matched == oracle_prefix == brute.matched
        assert got.pairs == tuple(
            index.pairs[position] for position in oracle_positions
        )
        assert set(got.pairs) == set(brute.pairs)
