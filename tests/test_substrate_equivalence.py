"""The ``reference`` and ``columnar`` substrates must agree exactly.

The columnar engine is only allowed to change memory layout and speed —
never results.  These tests pin that contract across several synthetic
scenarios, every best-match mode, and every similarity metric: same
pairs, same (bit-identical) similarity values, same tie sets, same
shared-domain sets.
"""

import dataclasses

import pytest

from conftest import as_mapping

from repro.core.detection import BestMatchMode
from repro.core.domainsets import build_index
from repro.core.metrics import METRICS_FROM_COUNTS
from repro.core.setpairs import build_set_pairs
from repro.core.substrate import (
    DEFAULT_SUBSTRATE,
    SUBSTRATES,
    ColumnarSubstrate,
    get_substrate,
)
from repro.dates import REFERENCE_DATE
from repro.synth import build_universe
from repro.synth.scenarios import SCENARIOS

#: Three structurally different synthetic universes: the stock tiny
#: preset, a reseeded clone (different random structure throughout), and
#: a denser variant with more shared hosting and hypergiant deployments
#: (more multi-prefix domains, bigger posting lists, more ties).
SCENARIO_CONFIGS = {
    "tiny": SCENARIOS["tiny"],
    "tiny-reseeded": dataclasses.replace(
        SCENARIOS["tiny"], name="tiny-reseeded", seed=1337
    ),
    "tiny-dense": dataclasses.replace(
        SCENARIOS["tiny"],
        name="tiny-dense",
        seed=7,
        hgcdn_deployment_scale=0.02,
        split_hosting_fraction=0.4,
        domain_scale=0.6,
    ),
}


@pytest.fixture(scope="module", params=sorted(SCENARIO_CONFIGS))
def index(request):
    """A detection-ready index for each scenario."""
    universe = build_universe(SCENARIO_CONFIGS[request.param])
    return build_index(
        universe.snapshot_at(REFERENCE_DATE),
        universe.annotator_at(REFERENCE_DATE),
    )


_as_mapping = as_mapping


@pytest.mark.parametrize("metric", sorted(METRICS_FROM_COUNTS))
@pytest.mark.parametrize("mode", list(BestMatchMode), ids=lambda m: m.value)
def test_identical_siblings(index, metric, mode):
    reference = get_substrate("reference").select(index, metric=metric, mode=mode)
    columnar = ColumnarSubstrate().select(index, metric=metric, mode=mode)
    assert len(reference) > 0
    assert _as_mapping(reference) == _as_mapping(columnar)


def test_tie_sets_preserved(index):
    """Tied best matches survive identically on both substrates."""

    def tie_sets(siblings):
        ties = {}
        for pair in siblings:
            ties.setdefault(pair.v4_prefix, set()).add(pair.v6_prefix)
        return {k: v for k, v in ties.items() if len(v) > 1}

    reference = get_substrate("reference").select(index)
    columnar = ColumnarSubstrate().select(index)
    assert tie_sets(reference) == tie_sets(columnar)


def test_identical_set_pairs(index):
    """The set-pair construction agrees through the group_stats seam."""
    siblings = get_substrate("reference").select(index)

    def as_key(set_pairs):
        return sorted(
            (
                sp.v4_prefixes,
                sp.v6_prefixes,
                sp.similarity,
                sp.shared_domains,
                sp.v4_domain_count,
                sp.v6_domain_count,
            )
            for sp in set_pairs
        )

    reference = build_set_pairs(siblings, index, substrate="reference")
    columnar = build_set_pairs(siblings, index, substrate=ColumnarSubstrate())
    assert len(reference) > 0
    assert as_key(reference) == as_key(columnar)


def test_interned_pool_reuse_is_exact():
    """One columnar instance across snapshots changes nothing but speed."""
    from repro.analysis.pipeline import detect_series, stability_offsets

    universe = build_universe(SCENARIO_CONFIGS["tiny"])
    dates = [date for _, date in stability_offsets(REFERENCE_DATE)[:4]]
    shared_engine = ColumnarSubstrate()
    series = detect_series(universe, dates, substrate=shared_engine)
    assert shared_engine.interned_domain_count > 0
    for date, siblings in series:
        fresh = get_substrate("reference").select(
            build_index(
                universe.snapshot_at(date), universe.annotator_at(date)
            )
        )
        assert _as_mapping(siblings) == _as_mapping(fresh)


def test_reset_pool_invalidates_cached_state():
    """After a pool reset, prepared states rebuild and stay exact."""
    universe = build_universe(SCENARIO_CONFIGS["tiny"])
    idx = build_index(
        universe.snapshot_at(REFERENCE_DATE),
        universe.annotator_at(REFERENCE_DATE),
    )
    engine = ColumnarSubstrate()
    before = engine.select(idx)
    interned = engine.interned_domain_count
    assert interned > 0
    engine.reset_pool()
    assert engine.interned_domain_count == 0
    after = engine.select(idx)  # must rebuild, not reuse stale ids
    assert engine.interned_domain_count == interned
    assert _as_mapping(before) == _as_mapping(after)


def test_registry_contents():
    """All engines are registered; the default resolves and is shared."""
    assert set(SUBSTRATES) == {"reference", "columnar", "sharded"}
    assert DEFAULT_SUBSTRATE in SUBSTRATES
    assert get_substrate() is get_substrate(DEFAULT_SUBSTRATE)
    with pytest.raises(KeyError):
        get_substrate("no-such-substrate")
