"""Tests for reporting containers and text rendering."""

import datetime

import pytest

from repro.reporting.containers import (
    EcdfSeries,
    Heatmap,
    StackedArea,
    TimeSeries,
    ecdf,
    percentile,
)
from repro.reporting.tables import (
    format_ecdf_summary,
    format_heatmap,
    format_stacked_area,
    format_timeseries,
)

D1 = datetime.date(2024, 1, 10)
D2 = datetime.date(2024, 2, 14)


class TestEcdf:
    def test_fractions(self):
        series = EcdfSeries("test", [0.0, 0.5, 0.5, 1.0])
        assert series.fraction_at_most(0.5) == pytest.approx(0.75)
        assert series.fraction_below(0.5) == pytest.approx(0.25)
        assert series.share_equal(0.5) == pytest.approx(0.5)
        assert series.share_equal(1.0) == pytest.approx(0.25)

    def test_quantiles(self):
        series = ecdf("q", [3, 1, 2, 4])
        assert series.median in (2, 3)
        assert series.quantile(0.0) == 1
        assert series.mean == pytest.approx(2.5)
        with pytest.raises(ValueError):
            series.quantile(1.5)
        with pytest.raises(ValueError):
            EcdfSeries("empty").quantile(0.5)

    def test_empty(self):
        series = EcdfSeries("empty")
        assert series.fraction_at_most(1.0) == 0.0
        assert len(series) == 0

    def test_percentile_helper(self):
        assert percentile([5, 1, 3], 0.5) == 3
        with pytest.raises(ValueError):
            percentile([], 0.5)


class TestHeatmap:
    def build(self):
        return Heatmap(
            title="t",
            row_labels=["r1", "r2"],
            column_labels=["c1", "c2", "c3"],
            cells=[[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]],
        )

    def test_accessors(self):
        h = self.build()
        assert h.cell("r2", "c3") == 6.0
        assert h.row("r1") == [1.0, 2.0, 3.0]
        assert h.column("c2") == [2.0, 5.0]
        assert h.total() == 21.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Heatmap("t", ["r1"], ["c1"], [[1.0], [2.0]])
        with pytest.raises(ValueError):
            Heatmap("t", ["r1"], ["c1", "c2"], [[1.0]])

    def test_render(self):
        text = format_heatmap(self.build())
        assert "t" in text and "c3" in text and "6.0" in text

    def test_render_with_secondary(self):
        h = self.build()
        h.secondary = [[0.1, 0.2, 0.3], [0.4, 0.5, 0.6]]
        text = format_heatmap(h, precision=2)
        assert "(0.10)" in text


class TestTimeSeries:
    def test_accessors(self):
        ts = TimeSeries("t", [D1, D2], {"a": [1.0, 2.0]})
        assert ts.at("a", D2) == 2.0
        assert ts.first("a") == 1.0
        assert ts.last("a") == 2.0

    def test_length_validation(self):
        with pytest.raises(ValueError):
            TimeSeries("t", [D1], {"a": [1.0, 2.0]})

    def test_render(self):
        text = format_timeseries(TimeSeries("title", [D1], {"a": [1.5]}))
        assert "title" in text and "2024-01-10" in text and "1.5" in text


class TestStackedArea:
    def test_accessors_and_render(self):
        area = StackedArea(
            "t", [D1, D2], ["x", "y"], [[60.0, 40.0], [70.0, 30.0]]
        )
        assert area.share_at("y", D2) == 30.0
        text = format_stacked_area(area)
        assert "70.0" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            StackedArea("t", [D1], ["x"], [[1.0], [2.0]])
        with pytest.raises(ValueError):
            StackedArea("t", [D1], ["x", "y"], [[1.0]])


class TestEcdfSummaryRender:
    def test_includes_perfect_share_column(self):
        series = [ecdf("default", [0.5, 1.0, 1.0]), ecdf("tuned", [1.0, 1.0, 1.0])]
        text = format_ecdf_summary(series)
        assert "default" in text and "tuned" in text
        assert "==1.0" in text
        # Perfect-match shares appear: 0.667 and 1.000.
        assert "0.667" in text and "1.000" in text
