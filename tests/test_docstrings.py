"""Docstring presence for the public core, serving, storage, and obs APIs.

Companion to ``test_doctests.py``: every module under ``repro.core``,
``repro.serving``, ``repro.storage``, and ``repro.obs`` must carry a
module docstring,
and every public function, class, and method must document itself.
This pins the documentation layer the architecture docs link into —
drift fails CI instead of rotting.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro.core
import repro.obs
import repro.serving
import repro.storage


def _documented_packages():
    for package in (repro.core, repro.obs, repro.serving, repro.storage):
        for info in pkgutil.iter_modules(
            package.__path__, package.__name__ + "."
        ):
            yield importlib.import_module(info.name)


MODULES = list(_documented_packages())
MODULE_IDS = [module.__name__ for module in MODULES]


def _undocumented(module):
    """Public module-level callables (and their public methods) lacking
    a docstring, as dotted names."""
    missing = []
    for name, obj in sorted(vars(module).items()):
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if obj.__module__ != module.__name__:
            continue  # re-exported from elsewhere; charged to its home
        if not inspect.getdoc(obj):
            missing.append(f"{module.__name__}.{name}")
        if inspect.isclass(obj):
            for method_name, method in sorted(vars(obj).items()):
                if method_name.startswith("_"):
                    continue
                if inspect.isfunction(method) and not inspect.getdoc(method):
                    missing.append(
                        f"{module.__name__}.{name}.{method_name}"
                    )
    return missing


def test_core_package_has_modules():
    assert len(MODULES) >= 8


@pytest.mark.parametrize("module", MODULES, ids=MODULE_IDS)
def test_module_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module.__name__} lacks a module docstring"
    )


@pytest.mark.parametrize("module", MODULES, ids=MODULE_IDS)
def test_public_api_documented(module):
    missing = _undocumented(module)
    assert not missing, f"undocumented public API: {', '.join(missing)}"
