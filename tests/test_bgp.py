"""Tests for the RIB, the archive, and the annotator fallback."""

import datetime

import pytest

from repro.bgp.rib import Rib, Route
from repro.bgp.routeviews import PrefixAnnotator, RibArchive
from repro.nettypes.addr import IPV4, IPV6, parse_ipv4, parse_ipv6
from repro.nettypes.prefix import Prefix


def p(text):
    return Prefix.parse(text)


def build_rib() -> Rib:
    rib = Rib()
    rib.announce(p("193.99.0.0/16"), 64500)
    rib.announce(p("193.99.144.0/24"), 64501)
    rib.announce(p("2001:db9::/32"), 64500)
    return rib


class TestRib:
    def test_lpm_address(self):
        rib = build_rib()
        route = rib.route_for_address(IPV4, parse_ipv4("193.99.144.80"))
        assert route is not None
        assert route.prefix == p("193.99.144.0/24")
        assert route.origin == 64501

    def test_lpm_falls_back_to_covering(self):
        rib = build_rib()
        route = rib.route_for_address(IPV4, parse_ipv4("193.99.1.1"))
        assert route.prefix == p("193.99.0.0/16")

    def test_unrouted(self):
        rib = build_rib()
        assert rib.route_for_address(IPV4, parse_ipv4("8.8.8.8")) is None

    def test_v6(self):
        rib = build_rib()
        route = rib.route_for_address(IPV6, parse_ipv6("2001:db9::1"))
        assert route.prefix == p("2001:db9::/32")

    def test_route_for_prefix(self):
        rib = build_rib()
        assert rib.route_for_prefix(p("193.99.144.0/25")).prefix == p("193.99.144.0/24")

    def test_moas(self):
        rib = Rib()
        rib.announce(p("203.0.113.0/24"), 64510)
        rib.announce(p("203.0.113.0/24"), 64509)
        route = rib.exact_route(p("203.0.113.0/24"))
        assert route.is_moas
        assert route.origins == frozenset({64509, 64510})
        assert route.origin == 64509  # deterministic tie-break

    def test_withdraw_single_origin(self):
        rib = Rib()
        rib.announce(p("203.0.113.0/24"), 64510)
        rib.announce(p("203.0.113.0/24"), 64509)
        rib.withdraw(p("203.0.113.0/24"), 64509)
        assert rib.exact_route(p("203.0.113.0/24")).origins == frozenset({64510})
        rib.withdraw(p("203.0.113.0/24"), 64510)
        assert rib.exact_route(p("203.0.113.0/24")) is None

    def test_withdraw_whole_prefix(self):
        rib = build_rib()
        rib.withdraw(p("193.99.0.0/16"))
        assert rib.route_for_address(IPV4, parse_ipv4("193.99.1.1")) is None

    def test_withdraw_absent_raises(self):
        with pytest.raises(KeyError):
            Rib().withdraw(p("10.0.0.0/8"))

    def test_invalid_asn(self):
        with pytest.raises(ValueError):
            Rib().announce(p("10.0.0.0/8"), -1)
        with pytest.raises(ValueError):
            Rib().announce(p("10.0.0.0/8"), 2**32)

    def test_counts_and_iteration(self):
        rib = build_rib()
        assert rib.prefix_count(IPV4) == 2
        assert rib.prefix_count(IPV6) == 1
        assert len(rib) == 3
        assert len(list(rib.routes())) == 3
        assert len(list(rib.routes(IPV4))) == 2
        assert p("193.99.0.0/16") in rib


class TestRibArchive:
    def test_latest_at_or_before(self):
        archive = RibArchive()
        rib_old, rib_new = Rib(), Rib()
        rib_old.announce(p("10.0.0.0/8"), 1)
        rib_new.announce(p("10.0.0.0/8"), 2)
        archive.add(datetime.date(2022, 1, 1), rib_old)
        archive.add(datetime.date(2023, 1, 1), rib_new)
        assert archive.at(datetime.date(2022, 6, 1)).origin_of(
            IPV4, parse_ipv4("10.1.1.1")
        ) == 1
        assert archive.at(datetime.date(2023, 1, 1)).origin_of(
            IPV4, parse_ipv4("10.1.1.1")
        ) == 2

    def test_before_first_raises(self):
        archive = RibArchive()
        archive.add(datetime.date(2022, 1, 1), Rib())
        with pytest.raises(LookupError):
            archive.at(datetime.date(2021, 12, 31))

    def test_duplicate_date_rejected(self):
        archive = RibArchive()
        archive.add(datetime.date(2022, 1, 1), Rib())
        with pytest.raises(ValueError):
            archive.add(datetime.date(2022, 1, 1), Rib())


class TestPrefixAnnotator:
    def test_reserved_discarded(self):
        annotator = PrefixAnnotator(build_rib())
        assert annotator.annotate(IPV4, parse_ipv4("10.1.2.3")) is None
        assert annotator.discarded == 1

    def test_basic_annotation(self):
        annotator = PrefixAnnotator(build_rib(), missing_fraction=0.0)
        route = annotator.annotate(IPV4, parse_ipv4("193.99.144.80"))
        assert route.prefix == p("193.99.144.0/24")

    def test_fallback_used_when_primary_misses(self):
        primary = Rib()  # empty: everything missing
        fallback = build_rib()
        annotator = PrefixAnnotator(primary, fallback, missing_fraction=0.0)
        route = annotator.annotate(IPV4, parse_ipv4("193.99.144.80"))
        assert route is not None
        assert annotator.fallback_hits == 1

    def test_missing_fraction_forces_fallback_path(self):
        rib = build_rib()
        annotator = PrefixAnnotator(rib, rib, missing_fraction=1.0)
        route = annotator.annotate(IPV4, parse_ipv4("193.99.144.80"))
        assert route is not None  # same answer, via fallback
        assert annotator.fallback_hits == 1

    def test_missing_fraction_validated(self):
        with pytest.raises(ValueError):
            PrefixAnnotator(build_rib(), missing_fraction=1.5)
