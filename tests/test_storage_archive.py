"""The snapshot archive must be an exact, corruption-rejecting mirror.

Three invariant families:

* **Round-trip exactness** — an archive write → ``mmap`` attach
  reproduces bit-identical answers: the mapped
  :class:`~repro.storage.index_io.MappedSiblingIndex` agrees with the
  in-memory index (and the scan oracle) on every query shape, and
  ``detect_series(..., archive=...)`` returns the same per-date output
  as an archiveless run for all three engines — including a run that
  *resumes* from archived columnar state and continues via appended
  snapshot deltas (hypothesis-driven churn series).
* **Format robustness** — truncation, bit flips, bad magic, and future
  versions raise :class:`~repro.storage.format.ArchiveFormatError`
  (or :class:`~repro.serving.codec.CodecError` on the ``.sibidx``
  path); an aborted append leaves every committed generation readable.
* **Serving integration** — ``SiblingQueryService.from_archive`` /
  ``swap_from_archive`` answer exactly like the codec-loaded service.
"""

import datetime
import pathlib
import random
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import as_mapping
from test_incremental_pipeline import (
    BASE_DATE,
    SeriesShim,
    churn_series,
    snapshot_from_table,
)

from repro import publish
from repro.analysis.pipeline import archive_detection, detect_series
from repro.core.substrate import ColumnarSubstrate, get_substrate
from repro.core.parallel import ShardedSubstrate
from repro.dates import REFERENCE_DATE
from repro.nettypes.addr import format_address
from repro.nettypes.prefix import Prefix
from repro.publish import PublishedPair
from repro.serving.codec import load_bytes, load_index, save_index
from repro.serving.index import SiblingLookupIndex, scan_lookup
from repro.serving.service import SiblingQueryService
from repro.storage.archive import ArchiveReader, ArchiveWriter
from repro.storage.format import (
    FOOTER,
    ArchiveFormatError,
    align_up,
    crc32_view,
)
from repro.storage.index_io import load_mapped_index


def make_pairs(count: int, seed: int = 11, wide: bool = False):
    """Deterministic published pairs: nested lengths, ROV/org variety,
    optionally IPv6 groups beyond /64 (the wide-key segment)."""
    rng = random.Random(seed)
    rov_states = (None, "both-valid", "v4-only", "invalid")
    pairs = {}
    while len(pairs) < count:
        v4_len = rng.choice((16, 20, 24, 28))
        v6_len = rng.choice((96, 112, 128) if wide else (32, 40, 48, 64))
        v4 = Prefix.from_address(4, rng.getrandbits(32) | (1 << 31), v4_len)
        v6 = Prefix.from_address(
            6, (0x2001 << 112) | rng.getrandbits(100), v6_len
        )
        pairs[(v4, v6)] = PublishedPair(
            v4_prefix=v4,
            v6_prefix=v6,
            jaccard=rng.random(),
            shared_domains=rng.randrange(1, 50),
            v4_domains=rng.randrange(1, 60),
            v6_domains=rng.randrange(1, 60),
            same_org=rng.choice((None, True, False)),
            rov_status=rng.choice(rov_states),
        )
    return list(pairs.values())


def queries_for(index, count, seed=3):
    """Hit-biased address/prefix query strings for both families."""
    rng = random.Random(seed)
    stored = [
        prefix
        for pair in index.pairs
        for prefix in (pair.v4_prefix, pair.v6_prefix)
    ]
    queries = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.6:
            base = rng.choice(stored)
            value = base.value | rng.getrandbits(base.host_bits)
            queries.append(format_address(base.version, value))
        elif roll < 0.8:
            base = rng.choice(stored)
            queries.append(str(base))
        else:
            version = rng.choice((4, 6))
            queries.append(
                format_address(version, rng.getrandbits(32 if version == 4 else 128))
            )
    return queries


def assert_same_answers(mapped, memory, queries):
    """Every query shape must agree between the two indexes."""
    for query in queries:
        got, want = mapped.lookup(query), memory.lookup(query)
        assert (got is None) == (want is None), query
        if got is not None:
            assert got.matched == want.matched, query
            assert got.pairs == want.pairs, query
        got_cover = mapped.covering(query)
        want_cover = memory.covering(query)
        assert [r.matched for r in got_cover] == [r.matched for r in want_cover]
        assert [r.pairs for r in got_cover] == [r.pairs for r in want_cover]
    assert [r and r.matched for r in mapped.batch(queries)] == [
        r and r.matched for r in memory.batch(queries)
    ]


class TestMappedIndexRoundTrip:
    @pytest.mark.parametrize("wide", (False, True), ids=("le64", "wide"))
    def test_bit_identical_answers(self, tmp_path, wide):
        pairs = make_pairs(120, wide=wide)
        date = datetime.date(2024, 9, 11)
        path = tmp_path / "pairs.sparch"
        assert publish.write_archive(pairs, path, date) == len(pairs)

        memory = SiblingLookupIndex.from_pairs(pairs, date)
        mapped = load_mapped_index(path)
        try:
            assert mapped.snapshot == memory.snapshot
            assert len(mapped) == len(memory)
            assert tuple(mapped.pairs) == memory.pairs
            assert mapped.stats() == memory.stats()
            queries = queries_for(memory, 400)
            assert_same_answers(mapped, memory, queries)
            # The scan oracle on a sample (it is O(pairs) per query).
            for query in queries[:40]:
                got = mapped.lookup(query)
                want = scan_lookup(pairs, query)
                assert (got is None) == (want is None)
                if got is not None:
                    assert got.matched == want.matched
        finally:
            mapped.close()

    def test_lookup_address_fast_path(self, tmp_path):
        pairs = make_pairs(40)
        path = tmp_path / "pairs.sparch"
        publish.write_archive(pairs, path, datetime.date(2024, 9, 11))
        memory = SiblingLookupIndex.from_pairs(pairs, datetime.date(2024, 9, 11))
        mapped = load_mapped_index(path)
        try:
            rng = random.Random(5)
            for _ in range(200):
                pair = rng.choice(pairs)
                for prefix in (pair.v4_prefix, pair.v6_prefix):
                    value = prefix.value | rng.getrandbits(prefix.host_bits)
                    got = mapped.lookup_address(prefix.version, value)
                    want = memory.lookup_address(prefix.version, value)
                    assert got is not None and want is not None
                    assert got.matched == want.matched
                    assert got.pairs == want.pairs
        finally:
            mapped.close()

    def test_newest_generation_wins(self, tmp_path):
        path = tmp_path / "multi.sparch"
        first = make_pairs(30, seed=1)
        second = make_pairs(45, seed=2)
        publish.write_archive(first, path, datetime.date(2024, 9, 10))
        publish.write_archive(second, path, datetime.date(2024, 9, 11))
        mapped = load_mapped_index(path)
        try:
            assert mapped.snapshot == datetime.date(2024, 9, 11)
            assert tuple(mapped.pairs) == SiblingLookupIndex.from_pairs(
                second, datetime.date(2024, 9, 11)
            ).pairs
        finally:
            mapped.close()

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_property_mapped_equals_memory(self, data, tmp_path_factory):
        count = data.draw(st.integers(1, 40))
        seed = data.draw(st.integers(0, 2**16))
        wide = data.draw(st.booleans())
        pairs = make_pairs(count, seed=seed, wide=wide)
        path = tmp_path_factory.mktemp("prop") / "p.sparch"
        publish.write_archive(pairs, path, datetime.date(2024, 9, 11))
        memory = SiblingLookupIndex.from_pairs(pairs, datetime.date(2024, 9, 11))
        mapped = load_mapped_index(path)
        try:
            assert_same_answers(
                mapped, memory, queries_for(memory, 60, seed=seed)
            )
        finally:
            mapped.close()


class TestArchivedSeries:
    DATES = [REFERENCE_DATE - datetime.timedelta(days=d) for d in (3, 2, 1, 0)]

    @pytest.mark.parametrize("engine_name", ("reference", "columnar", "sharded"))
    def test_series_round_trip_all_engines(
        self, tiny_universe, tmp_path, engine_name
    ):
        """Archive write → reload reproduces identical per-date output."""
        incremental = engine_name != "reference"
        path = tmp_path / f"{engine_name}.sparch"
        fresh = {
            "reference": get_substrate("reference"),
            "columnar": ColumnarSubstrate(),
            "sharded": ShardedSubstrate(),
        }
        plain = detect_series(
            tiny_universe, self.DATES, substrate=fresh[engine_name],
            incremental=incremental,
        )
        first = detect_series(
            tiny_universe, self.DATES, substrate=engine_name,
            incremental=incremental, archive=path,
        )
        # Second run answers entirely from the archive.
        replay = detect_series(
            tiny_universe, self.DATES, substrate=engine_name,
            incremental=incremental, archive=path,
        )
        for (date, want), (_, got1), (_, got2) in zip(plain, first, replay):
            assert as_mapping(want) == as_mapping(got1), (engine_name, date)
            assert as_mapping(want) == as_mapping(got2), (engine_name, date)

    def test_resume_appends_delta_generation(self, tiny_universe, tmp_path, monkeypatch):
        """Extending an archived series resumes from the archived state
        (one index rebuild, zero re-detections) and stays bit-identical."""
        import repro.analysis.pipeline as pipeline

        path = tmp_path / "resume.sparch"
        detect_series(
            tiny_universe, self.DATES[:2], substrate=ColumnarSubstrate(),
            incremental=True, archive=path,
        )

        builds = []
        real_build_index = pipeline.build_index
        monkeypatch.setattr(
            pipeline, "build_index",
            lambda *a, **k: builds.append(1) or real_build_index(*a, **k),
        )
        resumed = detect_series(
            tiny_universe, self.DATES, substrate=ColumnarSubstrate(),
            incremental=True, archive=path,
        )
        # Exactly one build: the resume-date index; archived dates load,
        # later dates ride deltas on the restored state.
        assert builds == [1]

        plain = detect_series(
            tiny_universe, self.DATES, substrate=ColumnarSubstrate(),
            incremental=True,
        )
        for (date, want), (_, got) in zip(plain, resumed):
            assert as_mapping(want) == as_mapping(got), date

        with ArchiveReader.open(path) as reader:
            dates = [g.date for g in reader.generations]
            assert dates == [d.isoformat() for d in self.DATES]
            # state travels with the newest generation only
            assert "state" in reader.generations[-1].meta
            assert reader.verify() > 0

    @settings(max_examples=15, deadline=None)
    @given(tables=churn_series())
    def test_property_archived_resume_equals_full(self, tables, tmp_path_factory):
        """Randomized churn: archive first half, resume the rest —
        per-date output equals full archiveless recomputation."""
        dates = [
            BASE_DATE + datetime.timedelta(days=i) for i in range(len(tables))
        ]
        shim = SeriesShim(
            [snapshot_from_table(date, table) for date, table in zip(dates, tables)]
        )
        path = tmp_path_factory.mktemp("churn") / "series.sparch"
        split = max(1, len(dates) // 2)
        detect_series(
            shim, dates[:split], substrate=ColumnarSubstrate(),
            incremental=True, archive=path,
        )
        resumed = detect_series(
            shim, dates, substrate=ColumnarSubstrate(),
            incremental=True, archive=path,
        )
        full = detect_series(
            shim, dates, substrate=ColumnarSubstrate(), incremental=False
        )
        assert [d for d, _ in resumed] == dates
        for (date, want), (_, got) in zip(full, resumed):
            assert as_mapping(want) == as_mapping(got), date

    def test_tuned_lists_are_not_replayed(self, tiny_universe, tmp_path):
        """A generation archived with raw=False never short-circuits
        detection: the series recomputes instead of replaying it."""
        from repro.core.detection import detect_with_index
        from repro.core.siblings import SiblingSet

        date = self.DATES[0]
        siblings, index = detect_with_index(
            tiny_universe.snapshot_at(date), tiny_universe.annotator_at(date)
        )
        truncated = SiblingSet(date, list(siblings)[:3])
        path = tmp_path / "tuned.sparch"
        archive_detection(
            path, tiny_universe, date, truncated, index=index, raw=False
        )
        results = detect_series(
            tiny_universe, [date], substrate=ColumnarSubstrate(), archive=path
        )
        assert as_mapping(results[0][1]) == as_mapping(siblings)

    def test_annotator_change_invalidates_archive(self, tmp_path):
        """An archived date whose routing changed is recomputed."""
        table = {
            "a.example": ({(0, 1)}, {(0, 1)}),
            "b.example": ({(1, 2)}, {(1, 2)}),
        }
        dates = [BASE_DATE, BASE_DATE + datetime.timedelta(days=1)]
        snapshots = [snapshot_from_table(date, table) for date in dates]
        path = tmp_path / "rib.sparch"
        shim = SeriesShim(snapshots)
        detect_series(shim, dates, substrate=ColumnarSubstrate(),
                      incremental=True, archive=path)

        from test_incremental_pipeline import make_annotator

        changed = SeriesShim(
            snapshots,
            annotator_for_date=lambda date: make_annotator(
                Prefix.parse("198.51.100.0/24")
            ),
        )
        recomputed = detect_series(
            changed, dates, substrate=ColumnarSubstrate(),
            incremental=True, archive=path,
        )
        plain = detect_series(
            changed, dates, substrate=ColumnarSubstrate(), incremental=True
        )
        for (date, want), (_, got) in zip(plain, recomputed):
            assert as_mapping(want) == as_mapping(got), date

        # The archive must *heal*: the recomputed generations are
        # appended (newest wins on read), so a further run replays them
        # from the archive instead of re-detecting forever.
        from repro.storage.substrate_io import annotator_digest

        new_digest = annotator_digest(changed.annotator_at(dates[0]))
        with ArchiveReader.open(path) as reader:
            newest = reader.generations_by_date("siblings")
            for date in dates:
                assert (
                    newest[date.isoformat()].annotator_signature == new_digest
                ), f"stale generation still newest for {date}"
        replayed = detect_series(
            changed, dates, substrate=ColumnarSubstrate(),
            incremental=True, archive=path,
        )
        for (date, want), (_, got) in zip(plain, replayed):
            assert as_mapping(want) == as_mapping(got), date


class TestServiceIntegration:
    def test_from_archive_equals_from_file(self, tmp_path):
        pairs = make_pairs(60)
        date = datetime.date(2024, 9, 11)
        sparch = tmp_path / "s.sparch"
        sibidx = tmp_path / "s.sibidx"
        publish.write_archive(pairs, sparch, date)
        index = SiblingLookupIndex.from_pairs(pairs, date)
        save_index(index, sibidx)

        archived = SiblingQueryService.from_archive(sparch)
        loaded = SiblingQueryService.from_file(sibidx)
        for query in queries_for(index, 150):
            assert archived.lookup(query) == loaded.lookup(query)
        archived.index.close()

    def test_swap_from_archive_remaps(self, tmp_path):
        path = tmp_path / "s.sparch"
        publish.write_archive(make_pairs(10, seed=1), path, datetime.date(2024, 9, 10))
        service = SiblingQueryService.from_archive(path)
        generation = service.generation
        publish.write_archive(make_pairs(20, seed=2), path, datetime.date(2024, 9, 11))
        previous = service.swap_from_archive(path)
        assert service.generation == generation + 1
        assert service.index.snapshot == datetime.date(2024, 9, 11)
        assert previous.snapshot == datetime.date(2024, 9, 10)
        previous.close()
        service.index.close()


class TestCodecMmapPath:
    def test_load_index_equals_load_bytes(self, tmp_path):
        index = SiblingLookupIndex.from_pairs(
            make_pairs(80), datetime.date(2024, 9, 11)
        )
        path = tmp_path / "x.sibidx"
        save_index(index, path)
        via_mmap = load_index(path)
        via_bytes = load_bytes(path.read_bytes())
        assert via_mmap.pairs == via_bytes.pairs == index.pairs
        assert via_mmap.snapshot == index.snapshot


class TestFormatRobustness:
    def _archive(self, tmp_path):
        path = tmp_path / "r.sparch"
        publish.write_archive(make_pairs(25), path, datetime.date(2024, 9, 11))
        return path

    def test_bad_magic_rejected(self, tmp_path):
        path = self._archive(tmp_path)
        data = bytearray(path.read_bytes())
        data[:4] = b"JUNK"
        path.write_bytes(bytes(data))
        with pytest.raises(ArchiveFormatError, match="magic"):
            ArchiveReader.open(path)

    def test_future_version_rejected(self, tmp_path):
        path = self._archive(tmp_path)
        data = bytearray(path.read_bytes())
        data[8:10] = (99).to_bytes(2, "little")
        path.write_bytes(bytes(data))
        with pytest.raises(ArchiveFormatError, match="version"):
            ArchiveReader.open(path)

    def test_truncation_rejected(self, tmp_path):
        path = self._archive(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 7])
        with pytest.raises(ArchiveFormatError):
            ArchiveReader.open(path)

    def test_manifest_corruption_rejected(self, tmp_path):
        path = self._archive(tmp_path)
        data = bytearray(path.read_bytes())
        # The manifest sits between its footer-recorded offset and the
        # footer itself; flip one byte inside it.
        offset = int.from_bytes(data[-FOOTER.size + 8:-FOOTER.size + 16], "little")
        data[offset + 4] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(ArchiveFormatError, match="manifest"):
            ArchiveReader.open(path)

    def test_segment_corruption_rejected_on_access(self, tmp_path):
        path = self._archive(tmp_path)
        data = bytearray(path.read_bytes())
        # First segment page: flip a byte in the records payload.
        data[align_up(1) + 8] ^= 0xFF
        path.write_bytes(bytes(data))
        with ArchiveReader.open(path) as reader:  # attach succeeds (lazy)
            with pytest.raises(ArchiveFormatError, match="checksum"):
                reader.verify()

    def test_aborted_append_keeps_archive_readable(self, tmp_path):
        path = self._archive(tmp_path)
        before = path.read_bytes()
        writer = ArchiveWriter.open(path)
        writer.append_generation("2024-09-12", {"x.blob": b"zzz"}, {"demo": {}})
        writer.abort()
        with ArchiveReader.open(path) as reader:
            assert [g.date for g in reader.generations] == ["2024-09-11"]
            assert reader.verify() > 0
        assert path.read_bytes() == before

    def test_empty_and_garbage_files_rejected(self, tmp_path):
        empty = tmp_path / "empty.sparch"
        empty.write_bytes(b"")
        with pytest.raises(ArchiveFormatError):
            ArchiveReader.open(empty)
        garbage = tmp_path / "garbage.sparch"
        garbage.write_bytes(b"\x00" * 100)
        with pytest.raises(ArchiveFormatError):
            ArchiveReader.open(garbage)

    def test_footer_crc_guards_torn_tail(self, tmp_path):
        """A tail appended without a committed footer is detected."""
        path = self._archive(tmp_path)
        with open(path, "ab") as stream:
            stream.write(b"\x00" * 64)
        with pytest.raises(ArchiveFormatError):
            ArchiveReader.open(path)

    def test_crc32_view_is_plain_crc(self):
        assert crc32_view(memoryview(b"abc")) == crc32_view(b"abc")

    def test_empty_pool_names_rejected_at_append(self, tmp_path):
        path = tmp_path / "pool.sparch"
        with ArchiveWriter.open(path) as writer:
            with pytest.raises(ArchiveFormatError, match="empty"):
                writer.append_pool(["ok.example", ""])
            writer.append_pool(["ok.example"])
        with ArchiveReader.open(path) as reader:
            assert reader.pool_names() == ["ok.example"]

    def test_legacy_empty_pool_payload_tolerated_on_read(self, tmp_path):
        """An archive written before the empty-name guard (one ``""``
        name joins to a zero-length payload) must still read back."""
        path = tmp_path / "legacy.sparch"
        writer = ArchiveWriter.open(path)
        pool = writer._manifest["pool"]
        pool["segments"].append(
            {"name": "pool.0", "count": 1,
             "segment": writer._append_segment(b"")}
        )
        pool["count"] = 1
        writer.close()
        with ArchiveReader.open(path) as reader:
            assert reader.pool_names() == [""]


# -- crash recovery ----------------------------------------------------------

#: Child-process body for the SIGKILL crash-point matrix: append one
#: generation and die at a named point of the append/commit protocol.
#: Writes are flushed + fsynced before the kill, so the on-disk state
#: at death is exactly the named crash point, not an OS buffering
#: accident.
_CRASH_CHILD = """
import json, os, signal, sys
sys.path.insert(0, sys.argv[3])
from repro.storage.archive import ArchiveWriter
from repro.storage.format import align_up, crc32_view, pack_footer

path, point = sys.argv[1], sys.argv[2]
writer = ArchiveWriter.open(path)

def die():
    writer._file.flush()
    os.fsync(writer._file.fileno())
    os.kill(os.getpid(), signal.SIGKILL)

writer._append_segment(b"A" * 5000)
if point == "after_segment_1":
    die()
writer.append_generation(
    "2024-09-12", {"x.blob": b"x" * 3000, "y.blob": b"y" * 50}, {"demo": {}}
)
if point == "after_segment_2":
    die()
payload = json.dumps(writer._manifest, separators=(",", ":")).encode("utf-8")
offset = align_up(writer._end)
writer._file.seek(offset)
writer._file.write(payload)
if point == "after_manifest":
    die()
footer = pack_footer(offset, len(payload), crc32_view(payload))
writer._file.write(footer[: len(footer) // 2])
if point == "mid_footer":
    die()
"""

CRASH_POINTS = (
    "after_segment_1", "after_segment_2", "after_manifest", "mid_footer"
)


class TestCrashRecovery:
    """kill -9 mid-append must never cost a committed generation."""

    def _committed_archive(self, tmp_path) -> tuple[pathlib.Path, bytes]:
        path = tmp_path / "crash.sparch"
        publish.write_archive(make_pairs(25), path, datetime.date(2024, 9, 11))
        return path, path.read_bytes()

    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_sigkill_matrix_recovers_last_committed(self, tmp_path, point):
        path, committed = self._committed_archive(tmp_path)
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        child = subprocess.run(
            [sys.executable, "-c", _CRASH_CHILD, str(path), point, str(src)],
            capture_output=True,
            timeout=60,
        )
        assert child.returncode == -9, child.stderr.decode()
        assert path.stat().st_size > len(committed), "crash left no torn tail"

        # Strict open rejects the torn tail; recover=True reads through
        # it without modifying the file.
        with pytest.raises(ArchiveFormatError):
            ArchiveReader.open(path)
        with ArchiveReader.open(path, recover=True) as reader:
            assert reader.recovered
            assert reader.committed_end == len(committed)
            assert [g.date for g in reader.generations] == ["2024-09-11"]
            assert reader.verify() > 0

        # The writer's default recovery truncates, after which strict
        # readers (and the serving layer) see exactly the committed
        # generation — zero data loss.
        with ArchiveWriter.open(path) as writer:
            assert writer.generation_dates == ["2024-09-11"]
        assert path.read_bytes() == committed
        service = SiblingQueryService.from_archive(path)
        assert service.index.snapshot == datetime.date(2024, 9, 11)
        service.index.close()

    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_append_after_recovery_commits_cleanly(self, tmp_path, point):
        path, committed = self._committed_archive(tmp_path)
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        child = subprocess.run(
            [sys.executable, "-c", _CRASH_CHILD, str(path), point, str(src)],
            capture_output=True,
            timeout=60,
        )
        assert child.returncode == -9, child.stderr.decode()
        publish.write_archive(
            make_pairs(30, seed=2), path, datetime.date(2024, 9, 12)
        )
        with ArchiveReader.open(path) as reader:
            assert not reader.recovered
            assert [g.date for g in reader.generations] == [
                "2024-09-11", "2024-09-12",
            ]
            assert reader.verify() > 0

    def test_truncation_sweep_recovers_prefix(self, tmp_path):
        """Deterministic byte-level matrix: for every sampled cut point
        between commit N and commit N+1, recovery yields exactly the
        generations of commit N."""
        path = tmp_path / "sweep.sparch"
        publish.write_archive(make_pairs(10, seed=1), path, datetime.date(2024, 9, 10))
        first = len(path.read_bytes())
        publish.write_archive(make_pairs(15, seed=2), path, datetime.date(2024, 9, 11))
        data = path.read_bytes()
        second = len(data)

        cuts = sorted(
            {
                first, first + 1, first + 17,
                min(first + 4096, second - 1),
                (first + second) // 2,
                second - FOOTER.size - 1, second - FOOTER.size,
                second - FOOTER.size + 1, second - 1,
            }
        )
        for cut in cuts:
            assert first <= cut < second
            torn = tmp_path / f"cut{cut}.sparch"
            torn.write_bytes(data[:cut])
            with ArchiveReader.open(torn, recover=True) as reader:
                assert reader.committed_end == first, cut
                assert reader.recovered == (cut != first), cut
                assert [g.date for g in reader.generations] == ["2024-09-10"], cut
                assert reader.verify() > 0
            with ArchiveWriter.open(torn):
                pass
            assert len(torn.read_bytes()) == first, cut

    def test_headerless_and_never_committed_files(self, tmp_path):
        # A header-only file (crash before the first commit): the
        # reader has nothing to recover; the writer restarts it empty.
        from repro.storage.format import pack_header

        fresh = tmp_path / "fresh.sparch"
        fresh.write_bytes(pack_header() + b"\x55" * 300)
        with pytest.raises(ArchiveFormatError, match="no valid footer"):
            ArchiveReader.open(fresh, recover=True)
        with ArchiveWriter.open(fresh) as writer:
            assert writer.generation_dates == []
        with ArchiveReader.open(fresh) as reader:
            assert reader.generations == []

        # Garbage never becomes a fresh archive, even with recovery on.
        garbage = tmp_path / "garbage.sparch"
        garbage.write_bytes(b"\x13" * 8192)
        with pytest.raises(ArchiveFormatError):
            ArchiveWriter.open(garbage)

    def test_recover_ignores_footer_magic_inside_segments(self, tmp_path):
        """Payload bytes that *look* like a footer (magic inside a
        segment) must not fool the backward scan — adjacency and CRC
        validation reject them."""
        from repro.storage.format import FOOTER_MAGIC, pack_footer

        path = tmp_path / "decoy.sparch"
        decoy = FOOTER_MAGIC + pack_footer(4096, 11, 7) + FOOTER_MAGIC
        with ArchiveWriter.open(path) as writer:
            writer.append_generation(
                "2024-09-11", {"decoy.blob": decoy * 3}, {"demo": {}}
            )
        committed = path.read_bytes()
        with open(path, "ab") as stream:
            stream.write(b"\x00" * 128)  # torn tail
        with ArchiveReader.open(path, recover=True) as reader:
            assert reader.recovered
            assert reader.committed_end == len(committed)
            assert [g.date for g in reader.generations] == ["2024-09-11"]
