"""Unit + property tests of the telemetry registry (``repro.obs``).

Covers the contracts the fleet relies on:

* canonical metric identity — label order never matters, values are
  escaped, ``split_key`` inverts ``name{k="v"}``;
* merge algebra — counters/histograms add (associative, commutative),
  gauges take the max, mismatched histogram bounds refuse to merge;
* thread-safety — concurrent increments are never lost, and a snapshot
  taken mid-storm is internally consistent per metric (a histogram's
  ``count`` always equals the sum of its bucket counts);
* Prometheus exposition — ``_total`` counters, cumulative ``le``
  buckets ending at ``+Inf == count``.
"""

import threading

import pytest
from hypothesis import given, strategies as st

from repro.obs.metrics import (
    DEFAULT_COUNT_BUCKETS,
    MetricsError,
    MetricsRegistry,
    merge_snapshots,
    render_json,
    render_prometheus,
    split_key,
)

pytestmark = pytest.mark.obs


# -- identity ----------------------------------------------------------------


def test_counter_gauge_histogram_basics():
    registry = MetricsRegistry()
    registry.counter("serve.lookups").inc()
    registry.counter("serve.lookups").inc(4)
    registry.gauge("serve.generation").set(3)
    registry.gauge("serve.generation").add(2)
    registry.histogram("serve.batch_size", bounds=(1, 4, 16)).observe(3)
    snap = registry.snapshot()
    assert snap["counters"]["serve.lookups"] == 5
    assert snap["gauges"]["serve.generation"] == 5.0
    state = snap["histograms"]["serve.batch_size"]
    assert state["counts"] == [0, 1, 0, 0]  # le=4 bucket, +Inf overflow slot
    assert state["count"] == 1 and state["sum"] == 3.0


def test_label_order_is_canonical():
    registry = MetricsRegistry()
    registry.counter("stage.calls", stage="step3", shard="1").inc()
    registry.counter("stage.calls", shard="1", stage="step3").inc()
    snap = registry.snapshot()
    assert snap["counters"] == {
        'stage.calls{shard="1",stage="step3"}': 2
    }


def test_split_key_inverts_escaping():
    registry = MetricsRegistry()
    awkward = 'quote " backslash \\ newline \n done'
    registry.counter("serve.lookups", source=awkward).inc()
    (key,) = registry.snapshot()["counters"]
    name, labels = split_key(key)
    assert name == "serve.lookups"
    assert labels == {"source": awkward}


def test_invalid_names_raise():
    registry = MetricsRegistry()
    with pytest.raises(MetricsError):
        registry.counter("Serve.Lookups")
    with pytest.raises(MetricsError):
        registry.counter("serve lookups")
    with pytest.raises(MetricsError):
        registry.counter("serve.lookups", **{"bad-label": "x"})
    with pytest.raises(MetricsError):
        registry.counter("serve.lookups").inc(-1)


def test_histogram_bounds_conflict_raises():
    registry = MetricsRegistry()
    registry.histogram("serve.batch_size", bounds=(1, 2, 4))
    with pytest.raises(MetricsError):
        registry.histogram("serve.batch_size", bounds=(1, 2, 8))
    with pytest.raises(MetricsError):
        MetricsRegistry().histogram("x", bounds=(2, 2))


def test_histogram_le_semantics():
    registry = MetricsRegistry()
    histogram = registry.histogram("t", bounds=(1.0, 2.0))
    for value in (0.5, 1.0, 1.5, 2.0, 99.0):
        histogram.observe(value)
    assert histogram.state()["counts"] == [2, 2, 1]


# -- merge algebra -----------------------------------------------------------

_BOUNDS = [1.0, 2.0, 4.0]


def _snapshots():
    """Small random snapshots sharing one histogram bounds vector.

    Integer-valued sums/gauges keep float addition exact, so the
    associativity property is a strict ``==``, not an approximation.
    """
    names = st.sampled_from(["a.one", "a.two", "b.three"])
    counts = st.lists(
        st.integers(min_value=0, max_value=50), min_size=4, max_size=4
    )
    histogram = counts.map(
        lambda c: {
            "bounds": list(_BOUNDS),
            "counts": c,
            "sum": float(sum(c)),
            "count": sum(c),
        }
    )
    return st.fixed_dictionaries(
        {
            "counters": st.dictionaries(
                names, st.integers(min_value=0, max_value=10**6), max_size=3
            ),
            "gauges": st.dictionaries(
                names,
                st.integers(min_value=-100, max_value=100).map(float),
                max_size=3,
            ),
            "histograms": st.dictionaries(names, histogram, max_size=3),
        }
    )


@given(_snapshots(), _snapshots(), _snapshots())
def test_merge_is_associative(a, b, c):
    left = merge_snapshots([merge_snapshots([a, b]), c])
    right = merge_snapshots([a, merge_snapshots([b, c])])
    assert left == right == merge_snapshots([a, b, c])


@given(_snapshots(), _snapshots())
def test_merge_is_commutative(a, b):
    assert merge_snapshots([a, b]) == merge_snapshots([b, a])


@given(_snapshots())
def test_merge_identity(a):
    empty = {"counters": {}, "gauges": {}, "histograms": {}}
    assert merge_snapshots([a, empty]) == merge_snapshots([a])


def test_merge_semantics_explicit():
    a = {"counters": {"c": 2}, "gauges": {"g": 5.0}, "histograms": {}}
    b = {"counters": {"c": 3}, "gauges": {"g": 2.0}, "histograms": {}}
    merged = merge_snapshots([a, b])
    assert merged["counters"]["c"] == 5  # counters add
    assert merged["gauges"]["g"] == 5.0  # gauges take the max


def test_merge_rejects_mismatched_bounds():
    a = {"histograms": {"h": {"bounds": [1.0], "counts": [0, 1], "sum": 2.0, "count": 1}}}
    b = {"histograms": {"h": {"bounds": [2.0], "counts": [1, 0], "sum": 1.0, "count": 1}}}
    with pytest.raises(MetricsError):
        merge_snapshots([a, b])


# -- thread-safety -----------------------------------------------------------


def test_concurrent_increments_are_exact():
    registry = MetricsRegistry()
    threads = 8
    per_thread = 5000

    def worker():
        counter = registry.counter("storm.hits")
        histogram = registry.histogram("storm.sizes", bounds=DEFAULT_COUNT_BUCKETS)
        for _ in range(per_thread):
            counter.inc()
            histogram.observe(3)

    pool = [threading.Thread(target=worker) for _ in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    snap = registry.snapshot()
    assert snap["counters"]["storm.hits"] == threads * per_thread
    assert snap["histograms"]["storm.sizes"]["count"] == threads * per_thread


def test_snapshot_never_tears_under_mutation():
    """A scrape racing writers sees per-metric consistent histograms."""
    registry = MetricsRegistry()
    stop = threading.Event()

    def writer():
        histogram = registry.histogram("swap.seconds", bounds=(0.5, 1.5))
        counter = registry.counter("swap.count")
        while not stop.is_set():
            histogram.observe(1.0)
            counter.inc()

    pool = [threading.Thread(target=writer) for _ in range(4)]
    for thread in pool:
        thread.start()
    try:
        for _ in range(300):
            snap = registry.snapshot()
            for state in snap["histograms"].values():
                assert state["count"] == sum(state["counts"]), (
                    "torn histogram read: bucket counts disagree with count"
                )
                # every observation here is exactly 1.0
                assert state["sum"] == state["count"] * 1.0
    finally:
        stop.set()
        for thread in pool:
            thread.join()


# -- exposition --------------------------------------------------------------


def test_prometheus_rendering():
    registry = MetricsRegistry()
    registry.counter("serve.lookups").inc(7)
    registry.gauge("fleet.workers").set(2)
    registry.histogram("serve.lookup_seconds", bounds=(0.1, 1.0)).observe(0.05)
    registry.histogram("serve.lookup_seconds", bounds=(0.1, 1.0)).observe(5.0)
    text = render_prometheus(registry.snapshot())
    lines = text.splitlines()
    assert "# TYPE repro_serve_lookups_total counter" in lines
    assert "repro_serve_lookups_total 7" in lines
    assert "repro_fleet_workers 2" in lines
    assert 'repro_serve_lookup_seconds_bucket{le="0.1"} 1' in lines
    assert 'repro_serve_lookup_seconds_bucket{le="1"} 1' in lines
    assert 'repro_serve_lookup_seconds_bucket{le="+Inf"} 2' in lines
    assert "repro_serve_lookup_seconds_count 2" in lines
    assert text.endswith("\n")


def test_prometheus_buckets_are_cumulative_and_end_at_count():
    registry = MetricsRegistry()
    histogram = registry.histogram("t.h", bounds=(1.0, 2.0, 4.0))
    for value in (0.5, 1.5, 3.0, 100.0):
        histogram.observe(value)
    lines = render_prometheus(registry.snapshot()).splitlines()
    buckets = [
        int(line.rsplit(" ", 1)[1])
        for line in lines
        if line.startswith("repro_t_h_bucket")
    ]
    assert buckets == sorted(buckets), "buckets must be cumulative"
    count = next(
        int(line.rsplit(" ", 1)[1])
        for line in lines
        if line.startswith("repro_t_h_count")
    )
    assert buckets[-1] == count == 4


def test_json_rendering_round_trips():
    import json

    registry = MetricsRegistry()
    registry.counter("a.b").inc(3)
    assert json.loads(render_json(registry.snapshot()))["counters"]["a.b"] == 3
