"""Tests for detection-quality scoring against ground truth."""

import pytest

from repro.core.quality import DetectionQuality, evaluate_quality
from repro.core.siblings import SiblingSet
from repro.core.sptuner import DEFAULT_CONFIG, SpTunerMS
from repro.dates import REFERENCE_DATE


class TestDetectionQuality:
    def test_default_detection_quality(self, tiny_universe, tiny_detection):
        siblings, _ = tiny_detection
        quality = evaluate_quality(tiny_universe, siblings, REFERENCE_DATE)
        assert quality.detectable_deployments > 0
        # DNS-visible deployments are nearly all recalled (the residual
        # is noisy deployments whose only visible domain points into a
        # foreign sink — their intended v6 block truly is undetectable).
        assert quality.recall > 0.85
        # Every detected pair must be explained by some ground-truth
        # structure — spurious pairs would indicate a pipeline bug.
        assert quality.precision_proxy > 0.99

    def test_tuned_detection_quality_not_worse(self, tiny_universe, tiny_detection):
        siblings, index = tiny_detection
        tuned = SpTunerMS(index, DEFAULT_CONFIG).tune_all(siblings)
        base = evaluate_quality(tiny_universe, siblings, REFERENCE_DATE)
        refined = evaluate_quality(tiny_universe, tuned, REFERENCE_DATE)
        assert refined.recall >= base.recall - 0.05
        assert refined.precision_proxy > 0.95

    def test_empty_sibling_set(self, tiny_universe):
        quality = evaluate_quality(
            tiny_universe, SiblingSet(REFERENCE_DATE), REFERENCE_DATE
        )
        assert quality.recall == 0.0
        assert quality.precision_proxy == 0.0
        assert quality.recalled_deployments == 0

    def test_undetectable_deployments_counted(self, tiny_universe, tiny_detection):
        siblings, _ = tiny_detection
        quality = evaluate_quality(tiny_universe, siblings, REFERENCE_DATE)
        total = quality.detectable_deployments + quality.undetectable_deployments
        assert total == len(tiny_universe.ground_truth_deployments(REFERENCE_DATE))
        # Some deployments genuinely have no visible DS domain that day.
        assert quality.undetectable_deployments > 0

    def test_dataclass_properties(self):
        quality = DetectionQuality(
            detectable_deployments=10,
            recalled_deployments=9,
            undetectable_deployments=2,
            total_pairs=20,
            explained_pairs=19,
        )
        assert quality.recall == pytest.approx(0.9)
        assert quality.precision_proxy == pytest.approx(0.95)
        empty = DetectionQuality(0, 0, 0, 0, 0)
        assert empty.recall == 0.0 and empty.precision_proxy == 0.0
