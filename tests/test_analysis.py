"""Tests for the Section 4 analysis modules on the tiny universe."""

import datetime

import pytest

from repro.analysis.business import (
    BusinessVariant,
    business_type_heatmap,
    dominant_category,
    it_involvement_share,
)
from repro.analysis.cidr import (
    V4_GROUPS_TUNED,
    V6_GROUPS_TUNED,
    cidr_size_heatmap,
    modal_combination,
)
from repro.analysis.dataset_stats import dataset_evolution
from repro.analysis.domain_bins import diagonal_share, domain_count_heatmap
from repro.analysis.dynamics import analyze_dynamics
from repro.analysis.hgcdn import hgcdn_distribution, hgcdn_heatmap
from repro.analysis.organizations import (
    pair_origins,
    split_by_organization,
    unique_prefix_counts,
)
from repro.analysis.pipeline import detect_at, paper_offsets, tuned_at
from repro.analysis.rov import (
    at_least_one_valid_share,
    pair_rov_shares,
    rov_timeline,
)
from repro.analysis.timeline import org_split_timeline, sibling_count_timeline
from repro.core.sptuner import TunerConfig
from repro.dates import REFERENCE_DATE
from repro.rpki.builder import repository_from_universe


@pytest.fixture(scope="module")
def reference_sets(tiny_universe):
    siblings, index = detect_at(tiny_universe, REFERENCE_DATE)
    tuned, _ = tuned_at(tiny_universe, REFERENCE_DATE, TunerConfig())
    return siblings, tuned, index


class TestPipelineHelpers:
    def test_paper_offsets_ordering(self):
        offsets = paper_offsets(REFERENCE_DATE)
        labels = [label for label, _ in offsets]
        assert labels[0] == "Year -4" and labels[-1] == "Day 0"
        dates = [date for _, date in offsets]
        assert dates == sorted(dates)

    def test_detect_and_tune(self, reference_sets):
        siblings, tuned, _ = reference_sets
        assert len(siblings) > 0
        assert tuned.perfect_match_share >= siblings.perfect_match_share


class TestDatasetStats:
    def test_evolution_series(self, tiny_universe):
        dates = [datetime.date(2020, 9, 9), datetime.date(2022, 9, 14), REFERENCE_DATE]
        ts = dataset_evolution(tiny_universe, dates)
        assert ts.last("total_domains") > ts.first("total_domains")
        assert ts.last("ds_share_pct") > ts.first("ds_share_pct")
        # Tranco contributes only after September 2022.
        assert ts.at("tranco", dates[0]) == 0.0
        assert ts.at("tranco", dates[2]) > 0.0


class TestDynamics:
    @pytest.fixture(scope="class")
    def report(self, tiny_universe):
        return analyze_dynamics(tiny_universe, REFERENCE_DATE, months=13)

    def test_visibility_histogram(self, report):
        assert set(report.visibility_histogram) <= set(range(1, 14))
        assert report.total_ds_domains > 0
        # A meaningful consistent population exists (paper: ~40%).
        assert 0.15 < report.visibility_share(13) < 0.75

    def test_prefix_more_stable_than_address(self, report):
        prefix_year = report.same_prefix["Year -1"][2]
        address_year = report.same_address["Year -1"][2]
        assert prefix_year >= address_year

    def test_stability_degrades_with_lookback(self, report):
        assert report.same_prefix["Day 0"][2] == pytest.approx(100.0)
        assert report.same_prefix["Year -1"][2] <= report.same_prefix["Month -1"][2]

    def test_high_prefix_stability(self, report):
        # Paper: >91% of consistent domains keep their prefixes over a year.
        assert report.same_prefix["Year -1"][2] > 70.0


class TestDomainBins:
    def test_heatmap(self, reference_sets):
        _, tuned, _ = reference_sets
        heatmap = domain_count_heatmap(tuned)
        assert heatmap.total() == pytest.approx(100.0)
        # Single-domain pairs dominate (paper: 55%).
        assert heatmap.cell("1", "1") > 25.0
        assert 0.0 <= diagonal_share(heatmap) <= 1.0


class TestCidr:
    def test_default_distribution(self, reference_sets):
        siblings, _, _ = reference_sets
        heatmap = cidr_size_heatmap(siblings)
        assert heatmap.total() == pytest.approx(100.0)
        row, column, share = modal_combination(heatmap)
        # /24 x /48 is the modal default combination (paper: 23.41%).
        assert column == "24"
        assert row == "48"

    def test_tuned_distribution_concentrates_at_threshold(self, reference_sets):
        _, tuned, _ = reference_sets
        heatmap = cidr_size_heatmap(
            tuned, V4_GROUPS_TUNED, V6_GROUPS_TUNED, title="fig36"
        )
        # Most tuned pairs land exactly on /28-/96 (paper: 86.95%).
        assert heatmap.cell("96", "28") > 30.0

    def test_bad_length_rejected(self):
        from repro.analysis.cidr import _group_index

        with pytest.raises(ValueError):
            _group_index(33, (((0, 32, "x"),))[0:1])


class TestOrganizations:
    def test_pair_origins(self, tiny_universe, reference_sets):
        siblings, _, _ = reference_sets
        pair = next(iter(siblings))
        origins = pair_origins(tiny_universe, pair, REFERENCE_DATE)
        assert origins.v4_asn is not None
        assert origins.v4_org is not None

    def test_split(self, tiny_universe, reference_sets):
        siblings, _, _ = reference_sets
        split = split_by_organization(tiny_universe, siblings, REFERENCE_DATE)
        assert split.same_count + split.different_count + len(split.unresolved) == len(
            siblings
        )
        # Both populations exist; the different-org median sits at 1.0
        # thanks to the monitoring (site24x7-like) pairs, as in the paper.
        assert split.same_count > 0 and split.different_count > 0
        assert split.median_jaccard(same=False) == pytest.approx(1.0)
        q25, q75 = split.quartiles(same=True)
        assert q25 <= split.median_jaccard(same=True) <= q75

    def test_unique_counts(self, reference_sets):
        siblings, _, _ = reference_sets
        unique_v4, unique_v6 = unique_prefix_counts(siblings)
        assert 0 < unique_v4 <= len(siblings)
        assert 0 < unique_v6 <= len(siblings)


class TestBusiness:
    def test_variants(self, tiny_universe, reference_sets):
        siblings, _, _ = reference_sets
        fig16 = business_type_heatmap(
            tiny_universe, siblings, REFERENCE_DATE,
            BusinessVariant.PAIRS_EXCLUDING_SAME_ASN,
        )
        fig21 = business_type_heatmap(
            tiny_universe, siblings, REFERENCE_DATE, BusinessVariant.UNFILTERED
        )
        fig20 = business_type_heatmap(
            tiny_universe, siblings, REFERENCE_DATE, BusinessVariant.UNIQUE_AS_PAIRS
        )
        assert fig21.total() >= fig16.total() >= fig20.total()

    def test_it_dominates(self, tiny_universe, reference_sets):
        siblings, _, _ = reference_sets
        heatmap = business_type_heatmap(
            tiny_universe, siblings, REFERENCE_DATE, BusinessVariant.UNFILTERED
        )
        assert it_involvement_share(heatmap) > 0.3
        row, column, _ = dominant_category(heatmap)
        assert "IT" in (row, column)


class TestHgCdn:
    def test_distribution_and_heatmap(self, tiny_universe, reference_sets):
        _, tuned, _ = reference_sets
        distribution = hgcdn_distribution(tiny_universe, tuned, REFERENCE_DATE)
        assert "non-CDN-HG" in distribution.rows
        named = [org for org in distribution.rows if org != "non-CDN-HG"]
        assert named, "expected HG/CDN-attributed pairs"
        heatmap = hgcdn_heatmap(distribution, min_pairs=2)
        assert heatmap.column_labels[-1] == "0.9-1.0"
        for row in heatmap.cells:
            assert sum(row) == pytest.approx(100.0) or sum(row) == 0.0

    def test_agility_orgs_have_low_similarity(self, tiny_universe, reference_sets):
        _, tuned, _ = reference_sets
        distribution = hgcdn_distribution(tiny_universe, tuned, REFERENCE_DATE)
        from repro.orgs.hypergiants import DeploymentStyle

        for org_name in distribution.rows:
            entry = tiny_universe.registry.get(org_name)
            if entry is not None and entry.style is DeploymentStyle.AGILITY:
                # Agility CDNs: meaningfully less than half perfect.
                assert distribution.high_similarity_share(org_name) < 0.6


class TestRov:
    @pytest.fixture(scope="class")
    def repository(self, tiny_universe):
        return repository_from_universe(tiny_universe)

    def test_shares_sum_to_100(self, tiny_universe, reference_sets, repository):
        siblings, _, _ = reference_sets
        shares = pair_rov_shares(tiny_universe, siblings, repository, REFERENCE_DATE)
        assert sum(shares.values()) == pytest.approx(100.0)

    def test_valid_share_grows(self, tiny_universe, repository):
        early_date = datetime.date(2020, 9, 9)
        early_siblings, _ = detect_at(tiny_universe, early_date)
        early = at_least_one_valid_share(
            pair_rov_shares(tiny_universe, early_siblings, repository, early_date)
        )
        late_siblings, _ = detect_at(tiny_universe, REFERENCE_DATE)
        late = at_least_one_valid_share(
            pair_rov_shares(tiny_universe, late_siblings, repository, REFERENCE_DATE)
        )
        assert late > early

    def test_timeline_container(self, tiny_universe, repository):
        dates = [datetime.date(2021, 9, 8), REFERENCE_DATE]
        area = rov_timeline(tiny_universe, repository, dates)
        assert len(area.dates) == 2
        for row in area.shares:
            assert sum(row) == pytest.approx(100.0)


class TestTimeline:
    def test_sibling_growth(self, tiny_universe):
        dates = [datetime.date(2020, 9, 9), REFERENCE_DATE]
        ts = sibling_count_timeline(tiny_universe, dates)
        assert ts.last("pairs") > 1.5 * ts.first("pairs")

    def test_org_split_timeline(self, tiny_universe):
        ts = org_split_timeline(tiny_universe, [REFERENCE_DATE])
        total = ts.last("same_org_pairs") + ts.last("diff_org_pairs")
        assert total > 0
        assert ts.last("diff_org_median_jaccard") == pytest.approx(1.0)
        assert 0.0 < ts.last("same_org_median_jaccard") <= 1.0


class TestStability:
    def test_pair_survival_monotone_toward_reference(self, tiny_universe):
        from repro.analysis.pipeline import paper_offsets
        from repro.analysis.stability import pair_survival, survival_timeseries

        offsets = dict(paper_offsets(REFERENCE_DATE))
        dates = [offsets["Year -2"], offsets["Month -6"], offsets["Week -1"]]
        points = pair_survival(tiny_universe, dates, REFERENCE_DATE)
        assert len(points) == 3
        shares = [p.survival_share for p in points]
        # Closer snapshots survive better into the reference set.
        assert shares[0] <= shares[-1] + 0.05
        # Recent pairs are overwhelmingly stable (the abstract's claim).
        assert shares[-1] > 0.85
        for point in points:
            assert point.surviving_identical <= point.surviving

    def test_survival_timeseries_container(self, tiny_universe):
        from repro.analysis.stability import SurvivalPoint, survival_timeseries

        points = [
            SurvivalPoint(REFERENCE_DATE, pairs_then=10, surviving=8, surviving_identical=6)
        ]
        series = survival_timeseries(points)
        assert series.last("survival_pct") == pytest.approx(80.0)
        assert series.last("identical_pct") == pytest.approx(60.0)

    def test_survival_empty(self):
        from repro.analysis.stability import SurvivalPoint

        point = SurvivalPoint(REFERENCE_DATE, 0, 0, 0)
        assert point.survival_share == 0.0
        assert point.identical_share == 0.0


class TestHyperSpecific:
    def test_hyper_specific_rare_in_default_case(self, reference_sets):
        from repro.analysis.cidr import hyper_specific_shares

        siblings, tuned, _ = reference_sets
        v4_share, v6_share = hyper_specific_shares(siblings)
        # Section 4.4: hyper-specific prefixes are very rare among
        # BGP-announced sibling prefixes.
        assert v4_share < 0.05
        assert v6_share < 0.05
        # After /28-/96 tuning, most prefixes are hyper-specific by design.
        tuned_v4, tuned_v6 = hyper_specific_shares(tuned)
        assert tuned_v4 > 0.5
        assert tuned_v6 > 0.5

    def test_hyper_specific_empty(self):
        from repro.analysis.cidr import hyper_specific_shares
        from repro.core.siblings import SiblingSet

        assert hyper_specific_shares(SiblingSet(REFERENCE_DATE)) == (0.0, 0.0)
