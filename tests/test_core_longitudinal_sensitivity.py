"""Tests for change classification and the threshold sensitivity sweep."""

import datetime

import pytest

from repro.core.longitudinal import ChangeClass, classify_changes, classify_series
from repro.core.sensitivity import SensitivityCell, cell_at, sweep_thresholds
from repro.core.siblings import SiblingPair, SiblingSet
from repro.nettypes.prefix import Prefix

OLD_DATE = datetime.date(2020, 9, 9)
NEW_DATE = datetime.date(2024, 9, 11)


def pair(v4: str, v6: str, similarity: float) -> SiblingPair:
    return SiblingPair(
        v4_prefix=Prefix.parse(v4),
        v6_prefix=Prefix.parse(v6),
        similarity=similarity,
        shared_domains=frozenset({"d.example.com"}),
        v4_domain_count=1,
        v6_domain_count=1,
    )


class TestClassifyChanges:
    def build(self):
        old = SiblingSet(
            OLD_DATE,
            [
                pair("5.1.0.0/24", "2600:100::/48", 1.0),   # stays identical
                pair("5.2.0.0/24", "2600:200::/48", 0.8),   # changes to 0.5
                pair("5.3.0.0/24", "2600:300::/48", 1.0),   # disappears
            ],
        )
        new = SiblingSet(
            NEW_DATE,
            [
                pair("5.1.0.0/24", "2600:100::/48", 1.0),
                pair("5.2.0.0/24", "2600:200::/48", 0.5),
                pair("5.4.0.0/24", "2600:400::/48", 1.0),   # brand new
            ],
        )
        return old, new

    def test_classification(self):
        old, new = self.build()
        report = classify_changes(old, new)
        assert len(report.unchanged) == 1
        assert len(report.changed) == 1
        assert len(report.new) == 1
        assert len(report.gone) == 1
        assert report.total_current == 3

    def test_changed_carries_both_values(self):
        old, new = self.build()
        report = classify_changes(old, new)
        assert report.changed_old_similarities() == [0.8]
        assert report.changed_current_similarities() == [0.5]

    def test_shares(self):
        old, new = self.build()
        report = classify_changes(old, new)
        assert report.share(ChangeClass.NEW) == pytest.approx(1 / 3)
        assert report.share(ChangeClass.UNCHANGED) == pytest.approx(1 / 3)
        assert report.share(ChangeClass.CHANGED) == pytest.approx(1 / 3)

    def test_empty_sets(self):
        report = classify_changes(SiblingSet(OLD_DATE), SiblingSet(NEW_DATE))
        assert report.total_current == 0
        assert report.share(ChangeClass.NEW) == 0.0

    def test_all_new_when_old_empty(self):
        _, new = self.build()
        report = classify_changes(SiblingSet(OLD_DATE), new)
        assert report.share(ChangeClass.NEW) == 1.0

    def test_classify_series_matches_pairwise(self):
        old, new = self.build()
        empty = SiblingSet(OLD_DATE)
        reports = classify_series([empty, old, new])
        assert len(reports) == 2
        assert reports[0].share(ChangeClass.NEW) == 1.0
        pairwise = classify_changes(old, new)
        assert len(reports[1].new) == len(pairwise.new)
        assert len(reports[1].gone) == len(pairwise.gone)
        assert len(reports[1].changed) == len(pairwise.changed)

    def test_classify_series_short_inputs(self):
        assert classify_series([]) == []
        assert classify_series([SiblingSet(OLD_DATE)]) == []


class TestSensitivitySweep:
    @pytest.fixture(scope="class")
    def detected(self):
        from repro.core.detection import detect_with_index
        from repro.dates import REFERENCE_DATE
        from repro.synth import build_universe

        universe = build_universe("tiny")
        return detect_with_index(
            universe.snapshot_at(REFERENCE_DATE),
            universe.annotator_at(REFERENCE_DATE),
        )

    def test_grid_shape(self, detected):
        siblings, index = detected
        cells = sweep_thresholds(
            siblings, index, v4_thresholds=(16, 24, 28), v6_thresholds=(32, 48, 96)
        )
        assert len(cells) == 9
        assert all(isinstance(c, SensitivityCell) for c in cells)

    def test_monotone_in_both_axes(self, detected):
        # The paper's central Figure 4 observation: more specific
        # thresholds yield higher mean Jaccard (row- and column-wise).
        siblings, index = detected
        cells = sweep_thresholds(
            siblings, index, v4_thresholds=(16, 24, 28), v6_thresholds=(32, 48, 96)
        )
        for v6 in (32, 48, 96):
            row = [cell_at(cells, v4, v6).mean for v4 in (16, 24, 28)]
            assert row == sorted(row)
        for v4 in (16, 24, 28):
            column = [cell_at(cells, v4, v6).mean for v6 in (32, 48, 96)]
            assert column == sorted(column)

    def test_std_shrinks_toward_deep_thresholds(self, detected):
        siblings, index = detected
        cells = sweep_thresholds(
            siblings, index, v4_thresholds=(16, 28), v6_thresholds=(32, 96)
        )
        assert cell_at(cells, 28, 96).std <= cell_at(cells, 16, 32).std

    def test_cell_at_missing(self, detected):
        siblings, index = detected
        cells = sweep_thresholds(
            siblings, index, v4_thresholds=(16,), v6_thresholds=(32,)
        )
        with pytest.raises(KeyError):
            cell_at(cells, 28, 96)
