"""Structural invariants must hold for any seed, not just the default.

These tests rebuild small universes under several seeds and assert the
pipeline-critical invariants — the kind of property a seed-dependent
generator bug would break silently.
"""

import dataclasses

import pytest

from repro.core.detection import detect_with_index
from repro.core.quality import evaluate_quality
from repro.core.sptuner import DEFAULT_CONFIG, ROUTABLE_CONFIG, SpTunerMS
from repro.dates import REFERENCE_DATE
from repro.synth import build_universe, scenario

SEEDS = (1, 42, 777)


@pytest.fixture(scope="module", params=SEEDS)
def seeded_universe(request):
    config = dataclasses.replace(scenario("tiny"), seed=request.param)
    return build_universe(config)


@pytest.fixture(scope="module")
def seeded_detection(seeded_universe):
    return detect_with_index(
        seeded_universe.snapshot_at(REFERENCE_DATE),
        seeded_universe.annotator_at(REFERENCE_DATE),
    )


class TestSeedRobustness:
    def test_pipeline_produces_pairs(self, seeded_detection):
        siblings, index = seeded_detection
        assert len(siblings) > 20
        assert index.domain_count > 50

    def test_tuning_ladder_holds(self, seeded_detection):
        siblings, index = seeded_detection
        routable = SpTunerMS(index, ROUTABLE_CONFIG).tune_all(siblings)
        deep = SpTunerMS(index, DEFAULT_CONFIG).tune_all(siblings)
        assert (
            siblings.perfect_match_share
            <= routable.perfect_match_share
            <= deep.perfect_match_share
        )
        assert deep.perfect_match_share > siblings.perfect_match_share

    def test_no_spurious_pairs(self, seeded_universe, seeded_detection):
        siblings, _ = seeded_detection
        quality = evaluate_quality(seeded_universe, siblings, REFERENCE_DATE)
        assert quality.precision_proxy > 0.97
        assert quality.recall > 0.75

    def test_no_domain_lost_in_tuning(self, seeded_detection):
        siblings, index = seeded_detection
        tuned = SpTunerMS(index, DEFAULT_CONFIG).tune_all(siblings)
        before = {d for pair in siblings for d in pair.shared_domains}
        after = {d for pair in tuned for d in pair.shared_domains}
        assert after >= before

    def test_announcements_unique_per_origin(self, seeded_universe):
        seen = {}
        for announcement in seeded_universe.fabric.announcements:
            key = announcement.prefix
            # The same prefix must not be announced by different orgs.
            if key in seen:
                assert seen[key] == announcement.org_id, str(key)
            seen[key] = announcement.org_id

    def test_rib_resolves_every_domain_address(self, seeded_universe):
        rib = seeded_universe.rib_at(REFERENCE_DATE)
        snapshot = seeded_universe.snapshot_at(REFERENCE_DATE)
        unresolved = 0
        total = 0
        for observation in snapshot.dual_stack_observations():
            for address in observation.v4_addresses:
                total += 1
                if rib.route_for_address(4, address) is None:
                    unresolved += 1
            for address in observation.v6_addresses:
                total += 1
                if rib.route_for_address(6, address) is None:
                    unresolved += 1
        assert total > 0
        assert unresolved == 0, f"{unresolved}/{total} addresses unrouted"
