"""Tests for the published-list format and the CLI."""

import io

import pytest

from repro import publish
from repro.analysis.pipeline import detect_at
from repro.cli import main
from repro.dates import REFERENCE_DATE
from repro.nettypes.prefix import Prefix


@pytest.fixture(scope="module")
def published(tiny_universe):
    siblings, _ = detect_at(tiny_universe, REFERENCE_DATE)
    return publish.enrich_pairs(tiny_universe, siblings, REFERENCE_DATE)


class TestPublish:
    def test_enrichment(self, published):
        assert published
        assert all(0.0 < pair.jaccard <= 1.0 for pair in published)
        assert any(pair.same_org for pair in published)
        assert any(pair.same_org is False for pair in published)
        # Sorted deterministically.
        keys = [(pair.v4_prefix, pair.v6_prefix) for pair in published]
        assert keys == sorted(keys)

    def test_csv_roundtrip(self, published):
        stream = io.StringIO()
        count = publish.write_csv(published, stream, REFERENCE_DATE)
        assert count == len(published)
        stream.seek(0)
        loaded = publish.read_csv(stream)
        assert len(loaded) == len(published)
        assert loaded[0].v4_prefix == published[0].v4_prefix
        assert loaded[0].jaccard == pytest.approx(published[0].jaccard, abs=1e-6)
        assert loaded[0].same_org == published[0].same_org

    def test_csv_header_comment(self, published):
        stream = io.StringIO()
        publish.write_csv(published, stream, REFERENCE_DATE)
        first_line = stream.getvalue().splitlines()[0]
        assert first_line.startswith("# sibling-prefixes list v1")
        assert "2024-09-11" in first_line

    def test_jsonl_roundtrip(self, published):
        stream = io.StringIO()
        publish.write_jsonl(published, stream, REFERENCE_DATE)
        stream.seek(0)
        meta, loaded = publish.read_jsonl(stream)
        assert meta["pairs"] == len(published)
        assert meta["format_version"] == publish.FORMAT_VERSION
        assert {str(pair.v6_prefix) for pair in loaded} == {
            str(pair.v6_prefix) for pair in published
        }

    def test_jsonl_empty(self):
        meta, pairs = publish.read_jsonl(io.StringIO())
        assert meta == {} and pairs == []

    def test_rov_enrichment(self, tiny_universe):
        from repro.rpki.builder import repository_from_universe

        siblings, _ = detect_at(tiny_universe, REFERENCE_DATE)
        repository = repository_from_universe(tiny_universe)
        enriched = publish.enrich_pairs(
            tiny_universe, siblings, REFERENCE_DATE, repository
        )
        statuses = {pair.rov_status for pair in enriched}
        assert "both valid" in statuses or "valid + not found" in statuses


class TestCli:
    def test_scenarios(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "tiny" in out and "paper" in out

    def test_detect_table(self, capsys):
        assert main(["detect", "--scenario", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "sibling pairs" in out
        assert "same-org" in out

    def test_detect_csv_and_lookup(self, tmp_path, capsys):
        list_file = tmp_path / "siblings.csv"
        assert (
            main(
                [
                    "detect",
                    "--scenario",
                    "tiny",
                    "--format",
                    "csv",
                    "-o",
                    str(list_file),
                ]
            )
            == 0
        )
        content = list_file.read_text()
        assert content.startswith("# sibling-prefixes list")
        # Look up the first listed v4 prefix.
        first = publish.read_csv(io.StringIO(content))[0]
        assert main(["lookup", str(list_file), str(first.v4_prefix)]) == 0
        out = capsys.readouterr().out
        assert str(first.v4_prefix) in out

    def test_lookup_miss(self, tmp_path, capsys):
        list_file = tmp_path / "siblings.csv"
        main(["detect", "--scenario", "tiny", "--format", "csv", "-o", str(list_file)])
        capsys.readouterr()
        assert main(["lookup", str(list_file), "203.0.113.0/24"]) == 1

    def test_detect_tuned_min_jaccard(self, capsys):
        assert (
            main(
                [
                    "detect",
                    "--scenario",
                    "tiny",
                    "--tune",
                    "28,96",
                    "--min-jaccard",
                    "0.999",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "perfect: 100.0%" in out

    def test_bad_tune_value(self):
        with pytest.raises(SystemExit):
            main(["detect", "--tune", "nonsense"])

    def test_experiment_command(self, capsys):
        assert main(["experiment", "sec42", "--scenario", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "sibling pairs" in out
        assert "same_org_share" in out
