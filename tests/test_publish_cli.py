"""Tests for the published-list format and the CLI."""

import io

import pytest

from repro import publish
from repro.analysis.pipeline import detect_at
from repro.cli import main
from repro.dates import REFERENCE_DATE
from repro.nettypes.prefix import Prefix


@pytest.fixture(scope="module")
def published(tiny_universe):
    siblings, _ = detect_at(tiny_universe, REFERENCE_DATE)
    return publish.enrich_pairs(tiny_universe, siblings, REFERENCE_DATE)


class TestPublish:
    def test_enrichment(self, published):
        assert published
        assert all(0.0 < pair.jaccard <= 1.0 for pair in published)
        assert any(pair.same_org for pair in published)
        assert any(pair.same_org is False for pair in published)
        # Sorted deterministically.
        keys = [(pair.v4_prefix, pair.v6_prefix) for pair in published]
        assert keys == sorted(keys)

    def test_csv_roundtrip(self, published):
        stream = io.StringIO()
        count = publish.write_csv(published, stream, REFERENCE_DATE)
        assert count == len(published)
        stream.seek(0)
        loaded = publish.read_csv(stream)
        assert len(loaded) == len(published)
        assert loaded[0].v4_prefix == published[0].v4_prefix
        assert loaded[0].jaccard == pytest.approx(published[0].jaccard, abs=1e-6)
        assert loaded[0].same_org == published[0].same_org

    def test_csv_header_comment(self, published):
        stream = io.StringIO()
        publish.write_csv(published, stream, REFERENCE_DATE)
        first_line = stream.getvalue().splitlines()[0]
        assert first_line.startswith("# sibling-prefixes list v1")
        assert "2024-09-11" in first_line

    def test_jsonl_roundtrip(self, published):
        stream = io.StringIO()
        publish.write_jsonl(published, stream, REFERENCE_DATE)
        stream.seek(0)
        meta, loaded = publish.read_jsonl(stream)
        assert meta["pairs"] == len(published)
        assert meta["format_version"] == publish.FORMAT_VERSION
        assert {str(pair.v6_prefix) for pair in loaded} == {
            str(pair.v6_prefix) for pair in published
        }

    def test_jsonl_empty(self):
        meta, pairs = publish.read_jsonl(io.StringIO())
        assert meta == {} and pairs == []

    def test_rov_enrichment(self, tiny_universe):
        from repro.rpki.builder import repository_from_universe

        siblings, _ = detect_at(tiny_universe, REFERENCE_DATE)
        repository = repository_from_universe(tiny_universe)
        enriched = publish.enrich_pairs(
            tiny_universe, siblings, REFERENCE_DATE, repository
        )
        statuses = {pair.rov_status for pair in enriched}
        assert "both valid" in statuses or "valid + not found" in statuses


class TestCli:
    def test_scenarios(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "tiny" in out and "paper" in out

    def test_detect_table(self, capsys):
        assert main(["detect", "--scenario", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "sibling pairs" in out
        assert "same-org" in out

    def test_detect_csv_and_lookup(self, tmp_path, capsys):
        list_file = tmp_path / "siblings.csv"
        assert (
            main(
                [
                    "detect",
                    "--scenario",
                    "tiny",
                    "--format",
                    "csv",
                    "-o",
                    str(list_file),
                ]
            )
            == 0
        )
        content = list_file.read_text()
        assert content.startswith("# sibling-prefixes list")
        # Look up the first listed v4 prefix.
        first = publish.read_csv(io.StringIO(content))[0]
        assert main(["lookup", str(list_file), str(first.v4_prefix)]) == 0
        out = capsys.readouterr().out
        assert str(first.v4_prefix) in out

    def test_lookup_miss(self, tmp_path, capsys):
        list_file = tmp_path / "siblings.csv"
        main(["detect", "--scenario", "tiny", "--format", "csv", "-o", str(list_file)])
        capsys.readouterr()
        assert main(["lookup", str(list_file), "203.0.113.0/24"]) == 1

    def test_detect_tuned_min_jaccard(self, capsys):
        assert (
            main(
                [
                    "detect",
                    "--scenario",
                    "tiny",
                    "--tune",
                    "28,96",
                    "--min-jaccard",
                    "0.999",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "perfect: 100.0%" in out

    def test_bad_tune_value(self):
        with pytest.raises(SystemExit):
            main(["detect", "--tune", "nonsense"])

    def test_experiment_command(self, capsys):
        assert main(["experiment", "sec42", "--scenario", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "sibling pairs" in out
        assert "same_org_share" in out


class TestStreamCsv:
    def test_streams_same_pairs_as_read_csv(self, published):
        stream = io.StringIO()
        publish.write_csv(published, stream, REFERENCE_DATE)
        stream.seek(0)
        streamed = list(publish.stream_csv(stream))
        assert streamed == publish.read_csv(io.StringIO(stream.getvalue()))

    def test_rejects_wrong_header(self):
        with pytest.raises(publish.PublishFormatError, match="header"):
            list(publish.stream_csv(io.StringIO("garbage\n1,2,3\n")))

    def test_rejects_malformed_row_with_file_line_number(self, published):
        stream = io.StringIO()
        publish.write_csv(published, stream, REFERENCE_DATE)
        broken = stream.getvalue() + "not-a-prefix,zz,bad,1,1,1,,\n"
        # The bad row is the last physical line, counting the comment.
        bad_line = broken.count("\n")
        with pytest.raises(
            publish.PublishFormatError, match=f"line {bad_line}"
        ):
            list(publish.stream_csv(io.StringIO(broken)))

    def test_header_snapshot_date(self, published):
        stream = io.StringIO()
        publish.write_csv(published, stream, REFERENCE_DATE)
        header = stream.getvalue().splitlines()[0]
        assert publish.header_snapshot_date(header) == REFERENCE_DATE
        assert publish.header_snapshot_date("v4_prefix,v6_prefix") is None
        assert publish.header_snapshot_date("# no date here") is None
        assert publish.header_snapshot_date("# a | snapshot=20XX-01-01") is None


class TestPublishIndex:
    def test_write_read_index_roundtrip(self, published, tmp_path):
        path = tmp_path / "list.sibidx"
        count = publish.write_index(published, path, REFERENCE_DATE)
        assert count == len(published)
        index = publish.read_index(path)
        assert list(index) == sorted(
            published, key=lambda pair: (pair.v4_prefix, pair.v6_prefix)
        )
        assert index.snapshot == REFERENCE_DATE


class TestServingCli:
    @pytest.fixture(scope="class")
    def exports(self, tmp_path_factory):
        """One detect run exported as CSV + binary index."""
        directory = tmp_path_factory.mktemp("exports")
        csv_path = directory / "siblings.csv"
        index_path = directory / "siblings.sibidx"
        assert (
            main(
                [
                    "detect", "--scenario", "tiny", "--format", "csv",
                    "-o", str(csv_path), "--emit-index", str(index_path),
                ]
            )
            == 0
        )
        return csv_path, index_path

    def test_lookup_index_matches_csv(self, exports, capsys):
        csv_path, index_path = exports
        first = publish.read_csv(io.StringIO(csv_path.read_text()))[0]
        assert main(["lookup", str(index_path), str(first.v4_prefix)]) == 0
        from_index = capsys.readouterr().out
        assert main(["lookup", str(csv_path), str(first.v4_prefix)]) == 0
        from_csv = capsys.readouterr().out
        assert from_index == from_csv
        assert str(first.v4_prefix) in from_index

    def test_lookup_address_inside_prefix(self, exports, capsys):
        _, index_path = exports
        index = publish.read_index(index_path)
        target = index.pairs[0].v6_prefix
        address = target.value | 0x99
        from repro.nettypes.addr import format_ipv6

        expected = index.lookup(format_ipv6(address))
        assert main(["lookup", str(index_path), format_ipv6(address)]) == 0
        assert str(expected.matched) in capsys.readouterr().out

    def test_lookup_malformed_query_exits_2(self, exports, capsys):
        csv_path, _ = exports
        assert main(["lookup", str(csv_path), "not-an-ip"]) == 2
        assert "error" in capsys.readouterr().err

    def test_lookup_missing_file_exits_2(self, capsys):
        assert main(["lookup", "/nonexistent/list.csv", "192.0.2.1"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_lookup_malformed_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text("garbage\n")
        assert main(["lookup", str(bad), "192.0.2.1"]) == 2
        assert "not a sibling list export" in capsys.readouterr().err

    def test_lookup_corrupt_index_exits_2(self, exports, tmp_path, capsys):
        _, index_path = exports
        data = bytearray(index_path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        corrupt = tmp_path / "corrupt.sibidx"
        corrupt.write_bytes(bytes(data))
        assert main(["lookup", str(corrupt), "192.0.2.1"]) == 2
        assert "error" in capsys.readouterr().err

    def test_lookup_binary_garbage_exits_2(self, tmp_path, capsys):
        garbled = tmp_path / "garbled.bin"
        garbled.write_bytes(b"\xff\xfe\x00\x01garbled")
        assert main(["lookup", str(garbled), "192.0.2.1"]) == 2
        assert "error" in capsys.readouterr().err
        assert main(["serve", str(garbled)]) == 2
        assert "error" in capsys.readouterr().err

    def test_serve_rejects_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text("garbage\n")
        assert main(["serve", str(bad)]) == 2
        assert "error" in capsys.readouterr().err
