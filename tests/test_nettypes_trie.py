"""Tests for the patricia trie, including property tests against a naive model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nettypes.addr import IPV4, IPV6
from repro.nettypes.prefix import Prefix, PrefixError
from repro.nettypes.trie import PatriciaTrie, union_of_frozensets


def p(text: str) -> Prefix:
    return Prefix.parse(text)


def small_v4_prefixes():
    # A deliberately collision-heavy universe to exercise glue nodes.
    return st.builds(
        lambda value, length: Prefix.from_address(IPV4, value << 24, length),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=8),
    )


def small_v6_prefixes():
    # 128-bit arithmetic with deep compressed paths: the high byte and a
    # LOW byte vary, so sibling prefixes diverge 100+ bits apart.
    return st.builds(
        lambda high, low, length: Prefix.from_address(
            IPV6, (high << 120) | (low << 8), length
        ),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=120),
    )


class TestInsertLookup:
    def test_insert_and_exact_get(self):
        trie = PatriciaTrie(IPV4)
        trie.insert(p("192.0.2.0/24"), "a")
        assert trie[p("192.0.2.0/24")] == "a"
        assert trie.get(p("192.0.2.0/25")) is None
        assert len(trie) == 1

    def test_replace_value(self):
        trie = PatriciaTrie(IPV4)
        trie[p("10.0.0.0/8")] = 1
        trie[p("10.0.0.0/8")] = 2
        assert trie[p("10.0.0.0/8")] == 2
        assert len(trie) == 1

    def test_lpm_basic(self):
        trie = PatriciaTrie(IPV4)
        trie[p("10.0.0.0/8")] = "eight"
        trie[p("10.1.0.0/16")] = "sixteen"
        assert trie.lookup_value(p("10.1.2.0/24")) == "sixteen"
        assert trie.lookup_value(p("10.2.0.0/24")) == "eight"
        assert trie.lookup_value(p("11.0.0.0/24")) is None

    def test_lpm_exact_hit(self):
        trie = PatriciaTrie(IPV4)
        trie[p("10.0.0.0/8")] = "x"
        assert trie.lookup_prefix(p("10.0.0.0/8")) == p("10.0.0.0/8")

    def test_lookup_address(self):
        trie = PatriciaTrie(IPV4)
        trie[p("10.0.0.0/8")] = "x"
        found = trie.lookup_address(Prefix.parse("10.9.9.9").value)
        assert found == (p("10.0.0.0/8"), "x")
        assert trie.lookup_address(Prefix.parse("11.0.0.1").value) is None

    def test_glue_node_not_visible(self):
        trie = PatriciaTrie(IPV4)
        trie[p("192.0.2.0/24")] = 1
        trie[p("192.0.3.0/24")] = 2
        # Glue at 192.0.2.0/23 exists structurally but holds no value.
        assert trie.get(p("192.0.2.0/23")) is None
        assert len(trie) == 2

    def test_version_mismatch(self):
        trie = PatriciaTrie(IPV4)
        with pytest.raises(PrefixError):
            trie.insert(p("2001:db8::/32"), 1)

    def test_default_route(self):
        trie = PatriciaTrie(IPV4)
        trie[p("0.0.0.0/0")] = "default"
        trie[p("10.0.0.0/8")] = "ten"
        assert trie.lookup_value(p("11.0.0.0/24")) == "default"
        assert trie.lookup_value(p("10.0.0.0/24")) == "ten"

    def test_v6(self):
        trie = PatriciaTrie(IPV6)
        trie[p("2001:db8::/32")] = "doc"
        assert trie.lookup_value(p("2001:db8:1::/48")) == "doc"
        assert trie.lookup_value(p("2001:db9::/48")) is None

    def test_covering(self):
        trie = PatriciaTrie(IPV4)
        trie[p("10.0.0.0/8")] = 8
        trie[p("10.1.0.0/16")] = 16
        trie[p("10.1.2.0/24")] = 24
        covering = trie.covering(p("10.1.2.0/25"))
        assert [c[1] for c in covering] == [8, 16, 24]


class TestRemove:
    def test_remove(self):
        trie = PatriciaTrie(IPV4)
        trie[p("10.0.0.0/8")] = 1
        assert trie.remove(p("10.0.0.0/8")) == 1
        assert len(trie) == 0
        assert trie.get(p("10.0.0.0/8")) is None

    def test_remove_absent_raises(self):
        trie = PatriciaTrie(IPV4)
        with pytest.raises(KeyError):
            trie.remove(p("10.0.0.0/8"))

    def test_remove_glue_only_raises(self):
        trie = PatriciaTrie(IPV4)
        trie[p("192.0.2.0/24")] = 1
        trie[p("192.0.3.0/24")] = 2
        with pytest.raises(KeyError):
            trie.remove(p("192.0.2.0/23"))

    def test_remove_keeps_descendants(self):
        trie = PatriciaTrie(IPV4)
        trie[p("10.0.0.0/8")] = 1
        trie[p("10.1.0.0/16")] = 2
        trie.remove(p("10.0.0.0/8"))
        assert trie.lookup_value(p("10.1.2.0/24")) == 2
        assert len(trie) == 1

    def test_delitem(self):
        trie = PatriciaTrie(IPV4)
        trie[p("10.0.0.0/8")] = 1
        del trie[p("10.0.0.0/8")]
        assert p("10.0.0.0/8") not in trie

    def test_clear(self):
        trie = PatriciaTrie(IPV4)
        trie[p("10.0.0.0/8")] = 1
        trie.clear()
        assert len(trie) == 0


class TestSubtreeNavigation:
    def build(self):
        trie = PatriciaTrie(IPV4)
        for text, val in [
            ("10.0.0.0/24", 1),
            ("10.0.1.0/24", 2),
            ("10.0.128.0/24", 3),
            ("10.1.0.0/24", 4),
        ]:
            trie[p(text)] = val
        return trie

    def test_subtree_items(self):
        trie = self.build()
        under = dict(trie.subtree_items(p("10.0.0.0/16")))
        assert set(under.values()) == {1, 2, 3}
        assert dict(trie.subtree_items(p("10.0.0.0/17")))
        assert not dict(trie.subtree_items(p("10.2.0.0/16")))

    def test_items_in_address_order(self):
        trie = self.build()
        assert [v for _, v in trie.items()] == [1, 2, 3, 4]

    def test_subtree_root_compression(self):
        trie = PatriciaTrie(IPV4)
        trie[p("10.0.0.0/24")] = 1
        # Everything under 10.0.0.0/8 lives inside the single /24.
        assert trie.subtree_root(p("10.0.0.0/8")) == p("10.0.0.0/24")
        assert trie.subtree_root(p("11.0.0.0/8")) is None

    def test_branch_children_branching(self):
        trie = self.build()
        kids = trie.branch_children(p("10.0.0.0/16"))
        # Branches at /17: left half holds the two /24s, right half one /24.
        assert len(kids) == 2
        assert all(p("10.0.0.0/16").contains(k) for k in kids)

    def test_branch_children_pass_through(self):
        trie = PatriciaTrie(IPV4)
        trie[p("10.0.0.0/24")] = 1
        assert trie.branch_children(p("10.0.0.0/8")) == [p("10.0.0.0/24")]

    def test_branch_children_empty(self):
        trie = PatriciaTrie(IPV4)
        assert trie.branch_children(p("10.0.0.0/8")) == []

    def test_branch_children_leaf(self):
        trie = PatriciaTrie(IPV4)
        trie[p("10.0.0.0/24")] = 1
        assert trie.branch_children(p("10.0.0.0/24")) == []

    def test_count_under(self):
        trie = self.build()
        assert trie.count_under(p("10.0.0.0/15")) == 4
        assert trie.count_under(p("10.0.0.0/16")) == 3


class TestAggregation:
    def test_aggregate_union(self):
        trie = PatriciaTrie(IPV4, aggregate=union_of_frozensets)
        trie[p("10.0.0.0/24")] = frozenset({"a", "b"})
        trie[p("10.0.1.0/24")] = frozenset({"b", "c"})
        assert trie.aggregate_under(p("10.0.0.0/16")) == frozenset({"a", "b", "c"})
        assert trie.aggregate_under(p("10.0.0.0/24")) == frozenset({"a", "b"})
        assert trie.aggregate_under(p("11.0.0.0/16")) is None

    def test_aggregate_cache_invalidation(self):
        trie = PatriciaTrie(IPV4, aggregate=union_of_frozensets)
        trie[p("10.0.0.0/24")] = frozenset({"a"})
        assert trie.aggregate_under(p("10.0.0.0/8")) == frozenset({"a"})
        trie[p("10.0.1.0/24")] = frozenset({"b"})
        assert trie.aggregate_under(p("10.0.0.0/8")) == frozenset({"a", "b"})
        trie.remove(p("10.0.0.0/24"))
        assert trie.aggregate_under(p("10.0.0.0/8")) == frozenset({"b"})

    def test_aggregate_without_function_raises(self):
        trie = PatriciaTrie(IPV4)
        trie[p("10.0.0.0/24")] = frozenset({"a"})
        with pytest.raises(TypeError):
            trie.aggregate_under(p("10.0.0.0/8"))

    def test_aggregate_includes_own_value(self):
        trie = PatriciaTrie(IPV4, aggregate=union_of_frozensets)
        trie[p("10.0.0.0/16")] = frozenset({"self"})
        trie[p("10.0.1.0/24")] = frozenset({"child"})
        assert trie.aggregate_under(p("10.0.0.0/16")) == frozenset({"self", "child"})


class TestPropertyBased:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.tuples(small_v4_prefixes(), st.integers()), max_size=40))
    def test_model_equivalence_exact(self, entries):
        trie = PatriciaTrie(IPV4)
        model: dict[Prefix, int] = {}
        for prefix, value in entries:
            trie[prefix] = value
            model[prefix] = value
        assert len(trie) == len(model)
        for prefix, value in model.items():
            assert trie[prefix] == value
        assert dict(trie.items()) == model

    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(st.tuples(small_v4_prefixes(), st.integers()), max_size=30),
        small_v4_prefixes(),
    )
    def test_model_equivalence_lpm(self, entries, query):
        trie = PatriciaTrie(IPV4)
        model: dict[Prefix, int] = {}
        for prefix, value in entries:
            trie[prefix] = value
            model[prefix] = value
        expected = None
        for prefix in sorted(model, key=lambda q: q.length):
            if prefix.contains(query):
                expected = (prefix, model[prefix])
        assert trie.lookup(query) == expected

    @settings(max_examples=150, deadline=None)
    @given(
        st.lists(st.tuples(small_v4_prefixes(), st.integers()), max_size=25),
        st.data(),
    )
    def test_model_equivalence_after_removals(self, entries, data):
        trie = PatriciaTrie(IPV4)
        model: dict[Prefix, int] = {}
        for prefix, value in entries:
            trie[prefix] = value
            model[prefix] = value
        keys = sorted(model)
        if keys:
            to_remove = data.draw(st.lists(st.sampled_from(keys), unique=True))
            for prefix in to_remove:
                assert trie.remove(prefix) == model.pop(prefix)
        assert dict(trie.items()) == model
        assert len(trie) == len(model)

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(st.tuples(small_v4_prefixes(), st.integers()), max_size=25),
        small_v4_prefixes(),
    )
    def test_subtree_matches_model(self, entries, root):
        trie = PatriciaTrie(IPV4)
        model: dict[Prefix, int] = {}
        for prefix, value in entries:
            trie[prefix] = value
            model[prefix] = value
        expected = {q: v for q, v in model.items() if root.contains(q)}
        assert dict(trie.subtree_items(root)) == expected

    @settings(max_examples=150, deadline=None)
    @given(st.lists(st.tuples(small_v6_prefixes(), st.integers()), max_size=30))
    def test_v6_model_equivalence_exact(self, entries):
        trie = PatriciaTrie(IPV6)
        model: dict[Prefix, int] = {}
        for prefix, value in entries:
            trie[prefix] = value
            model[prefix] = value
        assert dict(trie.items()) == model
        assert len(trie) == len(model)

    @settings(max_examples=150, deadline=None)
    @given(
        st.lists(st.tuples(small_v6_prefixes(), st.integers()), max_size=25),
        small_v6_prefixes(),
    )
    def test_v6_model_equivalence_lpm(self, entries, query):
        trie = PatriciaTrie(IPV6)
        model: dict[Prefix, int] = {}
        for prefix, value in entries:
            trie[prefix] = value
            model[prefix] = value
        expected = None
        for prefix in sorted(model, key=lambda q: q.length):
            if prefix.contains(query):
                expected = (prefix, model[prefix])
        assert trie.lookup(query) == expected

    @settings(max_examples=100, deadline=None)
    @given(st.lists(small_v6_prefixes(), min_size=1, max_size=20))
    def test_v6_aggregation_matches_bruteforce(self, prefixes):
        from repro.nettypes.trie import union_of_frozensets

        trie = PatriciaTrie(IPV6, aggregate=union_of_frozensets)
        model: dict[Prefix, frozenset] = {}
        for index, prefix in enumerate(prefixes):
            value = frozenset({f"d{index}", f"d{index % 3}"})
            trie[prefix] = value
            model[prefix] = value
        root = prefixes[0].supernet(max(0, prefixes[0].length - 8))
        expected = frozenset()
        for prefix, value in model.items():
            if root.contains(prefix):
                expected |= value
        aggregated = trie.aggregate_under(root)
        assert (aggregated or frozenset()) == expected

    @settings(max_examples=100, deadline=None)
    @given(st.lists(small_v4_prefixes(), min_size=1, max_size=25), small_v4_prefixes())
    def test_branch_children_cover_subtree(self, prefixes, root):
        trie = PatriciaTrie(IPV4)
        for prefix in prefixes:
            trie[prefix] = frozenset({str(prefix)})
        stored_under = {q for q in prefixes if root.contains(q)}
        kids = trie.branch_children(root)
        if root in trie and trie.count_under(root) == 1:
            assert kids == []
        covered = set()
        for kid in kids:
            assert root.contains(kid)
            covered |= {q for q in stored_under if kid.contains(q)}
        if kids:
            assert covered | ({root} & stored_under) == stored_under


class TestFromItems:
    def test_builds_and_looks_up(self):
        trie = PatriciaTrie.from_items(
            IPV4, [(p("10.0.0.0/8"), "a"), (p("10.1.0.0/16"), "b")]
        )
        assert len(trie) == 2
        assert trie.lookup_value(p("10.1.2.0/24")) == "b"
        assert trie.lookup_value(p("10.200.0.0/16")) == "a"

    def test_later_duplicates_win(self):
        trie = PatriciaTrie.from_items(
            IPV4, [(p("10.0.0.0/8"), "old"), (p("10.0.0.0/8"), "new")]
        )
        assert len(trie) == 1
        assert trie[p("10.0.0.0/8")] == "new"

    def test_aggregate_passthrough(self):
        trie = PatriciaTrie.from_items(
            IPV4,
            [(p("10.0.0.0/8"), frozenset({"x"})), (p("10.1.0.0/16"), frozenset({"y"}))],
            aggregate=union_of_frozensets,
        )
        assert trie.aggregate_under(p("10.0.0.0/8")) == frozenset({"x", "y"})
