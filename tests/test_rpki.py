"""Tests for ROAs, RFC 6811 validation, repositories, and pair taxonomy."""

import datetime

import pytest

from repro.dates import REFERENCE_DATE
from repro.nettypes.prefix import Prefix
from repro.rpki.builder import repository_from_universe
from repro.rpki.pair_status import PairRovStatus, classify_pair
from repro.rpki.repository import RpkiRepository, VrpSet
from repro.rpki.roa import Roa
from repro.rpki.validation import RovStatus, validate_origin


def p(text):
    return Prefix.parse(text)


class TestRoa:
    def test_defaults(self):
        roa = Roa(p("193.0.0.0/21"), 64500)
        assert roa.max_length == 21

    def test_max_length_bounds(self):
        Roa(p("193.0.0.0/21"), 64500, max_length=24)
        with pytest.raises(ValueError):
            Roa(p("193.0.0.0/21"), 64500, max_length=20)
        with pytest.raises(ValueError):
            Roa(p("193.0.0.0/21"), 64500, max_length=33)

    def test_invalid_asn_and_rir(self):
        with pytest.raises(ValueError):
            Roa(p("193.0.0.0/21"), -5)
        with pytest.raises(ValueError):
            Roa(p("193.0.0.0/21"), 64500, rir="NOTRIR")

    def test_covers_and_matches(self):
        roa = Roa(p("193.0.0.0/21"), 64500, max_length=24)
        assert roa.covers(p("193.0.0.0/24"))
        assert roa.matches(p("193.0.0.0/24"), 64500)
        assert not roa.matches(p("193.0.0.0/24"), 64501)  # wrong origin
        assert not roa.matches(p("193.0.0.0/25"), 64500)  # too specific
        assert not roa.covers(p("193.0.8.0/24"))  # outside


class TestValidation:
    def test_not_found(self):
        assert validate_origin(p("5.5.5.0/24"), 1, []) is RovStatus.NOT_FOUND

    def test_valid(self):
        vrps = [Roa(p("5.5.0.0/16"), 1, max_length=24)]
        assert validate_origin(p("5.5.5.0/24"), 1, vrps) is RovStatus.VALID

    def test_invalid_wrong_origin(self):
        vrps = [Roa(p("5.5.0.0/16"), 1, max_length=24)]
        assert validate_origin(p("5.5.5.0/24"), 2, vrps) is RovStatus.INVALID

    def test_invalid_too_specific(self):
        vrps = [Roa(p("5.5.0.0/16"), 1)]  # max_length 16
        assert validate_origin(p("5.5.5.0/24"), 1, vrps) is RovStatus.INVALID

    def test_any_matching_vrp_wins(self):
        vrps = [
            Roa(p("5.5.0.0/16"), 99),  # would be invalid alone
            Roa(p("5.5.5.0/24"), 1),
        ]
        assert validate_origin(p("5.5.5.0/24"), 1, vrps) is RovStatus.VALID


class TestVrpSetAndRepository:
    def test_trie_backed_lookup(self):
        vrps = VrpSet([Roa(p("5.5.0.0/16"), 1, max_length=24), Roa(p("5.5.5.0/24"), 2)])
        covering = vrps.covering(p("5.5.5.0/24"))
        assert len(covering) == 2
        assert vrps.validate(p("5.5.5.0/24"), 2) is RovStatus.VALID
        assert vrps.validate(p("5.6.0.0/24"), 1) is RovStatus.NOT_FOUND
        assert len(vrps) == 2
        assert len(list(iter(vrps))) == 2

    def test_duplicate_roa_ignored(self):
        roa = Roa(p("5.5.0.0/16"), 1)
        vrps = VrpSet([roa, roa])
        assert len(vrps) == 1

    def test_moas_roas_same_prefix(self):
        vrps = VrpSet([Roa(p("5.5.0.0/16"), 1), Roa(p("5.5.0.0/16"), 2)])
        assert vrps.validate(p("5.5.0.0/16"), 1) is RovStatus.VALID
        assert vrps.validate(p("5.5.0.0/16"), 2) is RovStatus.VALID
        assert vrps.validate(p("5.5.0.0/16"), 3) is RovStatus.INVALID

    def test_repository_dates(self):
        repository = RpkiRepository()
        repository.add_snapshot(datetime.date(2022, 1, 1), VrpSet())
        with pytest.raises(ValueError):
            repository.add_snapshot(datetime.date(2022, 1, 1), VrpSet())
        with pytest.raises(LookupError):
            repository.at(datetime.date(2021, 1, 1))
        assert repository.at(datetime.date(2022, 6, 1)) is not None


class TestPairStatus:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            (RovStatus.VALID, RovStatus.VALID, PairRovStatus.BOTH_VALID),
            (RovStatus.VALID, RovStatus.NOT_FOUND, PairRovStatus.VALID_NOTFOUND),
            (RovStatus.NOT_FOUND, RovStatus.VALID, PairRovStatus.VALID_NOTFOUND),
            (RovStatus.VALID, RovStatus.INVALID, PairRovStatus.VALID_INVALID),
            (RovStatus.INVALID, RovStatus.NOT_FOUND, PairRovStatus.INVALID_NOTFOUND),
            (RovStatus.INVALID, RovStatus.INVALID, PairRovStatus.BOTH_INVALID),
            (RovStatus.NOT_FOUND, RovStatus.NOT_FOUND, PairRovStatus.BOTH_NOTFOUND),
        ],
    )
    def test_classification(self, a, b, expected):
        assert classify_pair(a, b) is expected

    def test_has_valid_flag(self):
        assert PairRovStatus.BOTH_VALID.has_valid
        assert PairRovStatus.VALID_NOTFOUND.has_valid
        assert not PairRovStatus.BOTH_NOTFOUND.has_valid
        assert PairRovStatus.BOTH_INVALID.has_invalid
        assert not PairRovStatus.BOTH_VALID.has_invalid


class TestBuilder:
    @pytest.fixture(scope="class")
    def universe(self):
        from repro.synth import build_universe

        return build_universe("tiny")

    @pytest.fixture(scope="class")
    def repository(self, universe):
        return repository_from_universe(universe)

    def test_monthly_snapshots(self, repository):
        assert len(repository) == 49

    def test_adoption_grows(self, universe, repository):
        early = repository.at(datetime.date(2020, 9, 9))
        late = repository.at(REFERENCE_DATE)
        assert len(late) > len(early)

    def test_statuses_present(self, universe, repository):
        rib = universe.rib_at(REFERENCE_DATE)
        statuses = set()
        for route in rib.routes():
            statuses.add(
                repository.validate(route.prefix, route.origin, REFERENCE_DATE)
            )
        assert RovStatus.VALID in statuses
        assert RovStatus.NOT_FOUND in statuses

    def test_notfound_share_shrinks(self, universe, repository):
        def notfound_share(date):
            rib = universe.rib_at(date)
            routes = list(rib.routes())
            notfound = sum(
                1
                for route in routes
                if repository.validate(route.prefix, route.origin, date)
                is RovStatus.NOT_FOUND
            )
            return notfound / len(routes)

        assert notfound_share(REFERENCE_DATE) < notfound_share(
            datetime.date(2020, 9, 9)
        )
