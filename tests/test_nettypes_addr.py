"""Tests for repro.nettypes.addr — parsing, formatting, classification."""

import ipaddress

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nettypes.addr import (
    IPV4,
    IPV6,
    AddressError,
    format_address,
    format_ipv4,
    format_ipv6,
    is_global,
    is_reserved,
    max_value,
    parse_address,
    parse_ipv4,
    parse_ipv6,
)


class TestParseIpv4:
    def test_basic(self):
        assert parse_ipv4("0.0.0.0") == 0
        assert parse_ipv4("255.255.255.255") == 2**32 - 1
        assert parse_ipv4("192.0.2.1") == (192 << 24) | (2 << 8) | 1

    def test_rejects_leading_zero(self):
        with pytest.raises(AddressError):
            parse_ipv4("192.0.02.1")

    @pytest.mark.parametrize(
        "bad",
        ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "1.2.3.x", "1..2.3", " 1.2.3.4"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            parse_ipv4(bad)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_matches_stdlib(self, value):
        text = str(ipaddress.IPv4Address(value))
        assert parse_ipv4(text) == value

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip(self, value):
        assert parse_ipv4(format_ipv4(value)) == value


class TestParseIpv6:
    def test_basic(self):
        assert parse_ipv6("::") == 0
        assert parse_ipv6("::1") == 1
        assert parse_ipv6("2001:db8::") == 0x20010DB8 << 96

    def test_full_form(self):
        assert parse_ipv6("2001:0db8:0000:0000:0000:0000:0000:0001") == (
            (0x20010DB8 << 96) | 1
        )

    def test_embedded_ipv4(self):
        assert parse_ipv6("::ffff:192.0.2.1") == (0xFFFF << 32) | parse_ipv4("192.0.2.1")

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            ":::",
            "1::2::3",
            "2001:db8",
            "2001:db8:1:2:3:4:5:6:7",
            "g::1",
            "12345::",
            "fe80::1%eth0",
            "1:2:3:4:5:6:7:1.2.3.4",
            "::1.2.3.4.5",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            parse_ipv6(bad)

    @given(st.integers(min_value=0, max_value=2**128 - 1))
    def test_matches_stdlib(self, value):
        text = str(ipaddress.IPv6Address(value))
        assert parse_ipv6(text) == value

    @given(st.integers(min_value=0, max_value=2**128 - 1))
    def test_roundtrip(self, value):
        assert parse_ipv6(format_ipv6(value)) == value

    @given(st.integers(min_value=0, max_value=2**128 - 1))
    def test_format_is_canonical_rfc5952(self, value):
        assert format_ipv6(value) == str(ipaddress.IPv6Address(value))


class TestParseAddress:
    def test_dispatch(self):
        assert parse_address("192.0.2.1") == (IPV4, parse_ipv4("192.0.2.1"))
        assert parse_address("2001:db8::1") == (IPV6, parse_ipv6("2001:db8::1"))

    def test_format_dispatch(self):
        assert format_address(IPV4, 0) == "0.0.0.0"
        assert format_address(IPV6, 0) == "::"
        with pytest.raises(AddressError):
            format_address(5, 0)

    def test_max_value(self):
        assert max_value(IPV4) == 2**32 - 1
        assert max_value(IPV6) == 2**128 - 1
        with pytest.raises(AddressError):
            max_value(7)


class TestReserved:
    @pytest.mark.parametrize(
        "text",
        [
            "10.1.2.3",
            "127.0.0.1",
            "169.254.1.1",
            "172.16.0.1",
            "192.168.1.1",
            "0.1.2.3",
            "224.0.0.1",
            "240.0.0.1",
            "255.255.255.255",
            "100.64.0.1",
            "192.0.2.55",
            "198.18.1.1",
        ],
    )
    def test_reserved_v4(self, text):
        assert is_reserved(IPV4, parse_ipv4(text))

    @pytest.mark.parametrize("text", ["1.1.1.1", "8.8.8.8", "193.99.144.80", "99.2.3.4"])
    def test_global_v4(self, text):
        assert is_global(IPV4, parse_ipv4(text))

    @pytest.mark.parametrize(
        "text",
        ["::", "::1", "fe80::1", "fc00::1", "ff02::1", "2001:db8::1", "::ffff:1.2.3.4", "2002::1"],
    )
    def test_reserved_v6(self, text):
        assert is_reserved(IPV6, parse_ipv6(text))

    @pytest.mark.parametrize("text", ["2001:4860::8888", "2606:4700::1111", "2a00:1450::1"])
    def test_global_v6(self, text):
        assert is_global(IPV6, parse_ipv6(text))

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_v4_reserved_superset_of_stdlib_private(self, value):
        # Everything the stdlib flags as private/multicast/loopback/etc.
        # must be reserved for us too (we additionally reserve a few
        # special-purpose blocks such as 6to4 relay anycast).
        std = ipaddress.IPv4Address(value)
        if (
            std.is_private
            or std.is_multicast
            or std.is_loopback
            or std.is_link_local
            or std.is_reserved
            or std.is_unspecified
        ):
            assert is_reserved(IPV4, value)
