"""The kernel seam's own suite: selection, PairCounts, edge cases.

``repro.core.kernels`` is held to three contracts here:

* **selection** — :func:`resolve_kernel_name` is pure logic (unit-tested
  against explicit ``numpy_ok`` booleans, so the numpy-missing error
  path is covered even on machines that have numpy), and
  :func:`set_kernel` / :class:`use_kernel` round-trip the active kernel
  *and* the ``REPRO_KERNEL`` environment export;
* **PairCounts** — both backends implement one mapping, one wire format
  (``sorted_columns`` / ``counts_from_columns``, written by either
  kernel and restored by either kernel), and one ``patch`` semantics,
  bit-exact against a hand-rolled Counter oracle including
  retraction-to-exactly-zero key elimination and cross-backend
  operands;
* **edges** — empty universes, single-pair universes, and one-family
  domains produce identical (and sane) output on every kernel, and
  ``select_scored`` agrees between kernels to the float64 bit across
  metrics and best-match modes on randomized small instances.

The cross-engine properties over full scenario universes live in
``test_differential_engines.py``; this file is the seam's unit level.
"""

import datetime
import os
from array import array
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import as_mapping

from repro.bgp.rib import Rib
from repro.bgp.routeviews import PrefixAnnotator
from repro.core.detection import TIE_EPSILON, BestMatchMode
from repro.core.domainsets import build_index
from repro.core.kernels import (
    KERNEL_ENV,
    KERNELS,
    KernelUnavailableError,
    NumpyPairCounts,
    PythonPairCounts,
    available_kernel_names,
    kernel_name,
    numpy_available,
    resolve_kernel_name,
    set_kernel,
    use_kernel,
)
from repro.core.substrate import ColumnarSubstrate
from repro.dns.openintel import DnsSnapshot, DomainObservation
from repro.nettypes.addr import IPV4, IPV6
from repro.nettypes.prefix import Prefix

KERNEL_NAMES = available_kernel_names()

needs_both_kernels = pytest.mark.skipif(
    len(KERNEL_NAMES) < 2, reason="both kernels must be importable"
)


# ---------------------------------------------------------------------------
# Kernel selection: resolve_kernel_name / set_kernel / use_kernel
# ---------------------------------------------------------------------------


def test_resolve_automatic_prefers_numpy_when_available():
    assert resolve_kernel_name(None, numpy_ok=True) == "numpy"
    assert resolve_kernel_name("", numpy_ok=True) == "numpy"


def test_resolve_automatic_falls_back_to_python_silently():
    """No explicit request + no numpy -> python, never an error."""
    assert resolve_kernel_name(None, numpy_ok=False) == "python"
    assert resolve_kernel_name("", numpy_ok=False) == "python"


def test_resolve_explicit_requests_pass_through():
    assert resolve_kernel_name("python", numpy_ok=True) == "python"
    assert resolve_kernel_name("python", numpy_ok=False) == "python"
    assert resolve_kernel_name("numpy", numpy_ok=True) == "numpy"


def test_resolve_numpy_without_numpy_is_a_clear_error():
    """REPRO_KERNEL=numpy on a numpy-free interpreter must not silently
    fall back (that would invalidate benchmarks) — it raises with
    install guidance naming the [perf] extra."""
    with pytest.raises(KernelUnavailableError) as excinfo:
        resolve_kernel_name("numpy", numpy_ok=False)
    message = str(excinfo.value)
    assert "[perf]" in message
    assert "python" in message


def test_resolve_unknown_kernel_name_is_a_clear_error():
    with pytest.raises(KernelUnavailableError, match="unknown kernel"):
        resolve_kernel_name("cython", numpy_ok=True)


def test_set_kernel_exports_env_and_returns_previous():
    saved_env = os.environ.get(KERNEL_ENV)
    saved_name = kernel_name()
    try:
        previous = set_kernel("python")
        assert previous == saved_name
        assert kernel_name() == "python"
        # The export is what forked/spawned workers re-select from.
        assert os.environ[KERNEL_ENV] == "python"
        # None re-runs automatic selection.
        assert set_kernel(None) == "python"
        expected = "numpy" if numpy_available() else "python"
        assert kernel_name() == expected
        assert os.environ[KERNEL_ENV] == expected
    finally:
        set_kernel(saved_name)
        if saved_env is None:
            os.environ.pop(KERNEL_ENV, None)
        else:
            os.environ[KERNEL_ENV] = saved_env


def test_set_kernel_impossible_request_leaves_state_untouched():
    saved_env = os.environ.get(KERNEL_ENV)
    saved_name = kernel_name()
    with pytest.raises(KernelUnavailableError):
        set_kernel("cython")
    assert kernel_name() == saved_name
    assert os.environ.get(KERNEL_ENV) == saved_env


@pytest.mark.parametrize("kernel", KERNEL_NAMES)
def test_use_kernel_restores_kernel_and_env(kernel):
    saved_env = os.environ.get(KERNEL_ENV)
    saved_name = kernel_name()
    with use_kernel(kernel) as active:
        assert active.name == kernel
        assert kernel_name() == kernel
        assert os.environ[KERNEL_ENV] == kernel
    assert kernel_name() == saved_name
    assert os.environ.get(KERNEL_ENV) == saved_env


def test_cli_kernel_flag_surfaces_unavailable_kernel(monkeypatch, capsys):
    """``--kernel`` failures exit 2 with the error and the kernels that
    *are* available, instead of a traceback."""
    import repro.cli as cli

    def unavailable(name):
        raise KernelUnavailableError(f"kernel {name!r} is not importable here")

    monkeypatch.setattr(cli, "set_kernel", unavailable)
    assert cli.main(["detect", "--kernel", "numpy"]) == 2
    err = capsys.readouterr().err
    assert "not importable" in err
    for name in KERNEL_NAMES:
        assert name in err


# ---------------------------------------------------------------------------
# PairCounts: construction helpers shared by the oracle properties
# ---------------------------------------------------------------------------


def build_counts(kernel, mapping):
    """A :class:`PairCounts` for *kernel* holding *mapping* exactly."""
    if kernel == "python":
        return PythonPairCounts(Counter(mapping))
    ordered = sorted(mapping)
    return KERNELS["numpy"].counts_from_columns(
        array("Q", ordered), array("I", (mapping[key] for key in ordered))
    )


def patch_oracle(base, retract, add):
    """Reference semantics of ``PairCounts.patch`` on plain dicts."""
    out = dict(base)
    for key, retracted in retract.items():
        remaining = out.get(key, 0) - retracted
        if remaining:
            out[key] = remaining
        else:
            out.pop(key, None)
    for key, added in add.items():
        out[key] = out.get(key, 0) + added
    return out


@st.composite
def patch_cases(draw):
    """``(base, retract, add)`` with retract a sub-counter of base.

    The pipeline only ever retracts contributions it previously added,
    so retractions never exceed the standing count; drawing the retract
    amount up to *and including* the full count exercises the
    drop-to-exactly-zero elimination path."""
    keys = st.integers(0, 40)
    base = draw(st.dictionaries(keys, st.integers(1, 9), max_size=12))
    retract = {
        key: draw(st.integers(1, count))
        for key, count in base.items()
        if draw(st.booleans())
    }
    add = draw(st.dictionaries(keys, st.integers(1, 9), max_size=8))
    return base, retract, add


@pytest.mark.parametrize("state_kernel", KERNEL_NAMES)
@pytest.mark.parametrize("operand_kernel", KERNEL_NAMES)
@given(case=patch_cases())
@settings(max_examples=40)
def test_patch_matches_counter_oracle(state_kernel, operand_kernel, case):
    """patch == retract-then-add with exact-zero elimination, whichever
    backend holds the state and whichever produced the operands."""
    base, retract, add = case
    counts = build_counts(state_kernel, base)
    counts.patch(
        build_counts(operand_kernel, retract) if retract else None,
        build_counts(operand_kernel, add) if add else None,
    )
    expected = patch_oracle(base, retract, add)
    assert dict(counts.items()) == expected
    assert len(counts) == len(expected)
    # The post-patch wire format agrees too: eliminated keys are gone
    # from the sorted columns, not just masked in the mapping view.
    keys_column, counts_column = counts.sorted_columns()
    assert list(keys_column) == sorted(expected)
    assert list(counts_column) == [expected[key] for key in sorted(expected)]


@pytest.mark.parametrize("state_kernel", KERNEL_NAMES)
@pytest.mark.parametrize("operand_kernel", KERNEL_NAMES)
def test_patch_drop_to_zero_eliminates_key(state_kernel, operand_kernel):
    """A retraction landing on exactly zero removes the key everywhere:
    membership, lookup, length, and the serialized columns."""
    counts = build_counts(state_kernel, {1: 2, 5: 1, 9: 3})
    counts.patch(
        build_counts(operand_kernel, {5: 1, 9: 3}),
        build_counts(operand_kernel, {9: 1}),
    )
    assert 5 not in counts
    assert counts.get(5) == 0
    assert counts[5] == 0
    assert dict(counts.items()) == {1: 2, 9: 1}
    assert len(counts) == 2
    keys_column, _ = counts.sorted_columns()
    assert list(keys_column) == [1, 9]


@pytest.mark.parametrize("state_kernel", KERNEL_NAMES)
@pytest.mark.parametrize("operand_kernel", KERNEL_NAMES)
def test_patch_cancelling_delta_is_identity(state_kernel, operand_kernel):
    """retract == add nets to zero: the state is unchanged (the numpy
    kernel folds the operands before touching the columns; the python
    kernel subtracts then re-adds — both land on the same mapping)."""
    counts = build_counts(state_kernel, {1: 2, 7: 4})
    counts.patch(
        build_counts(operand_kernel, {1: 1, 7: 4}),
        build_counts(operand_kernel, {1: 1, 7: 4}),
    )
    assert dict(counts.items()) == {1: 2, 7: 4}


@pytest.mark.parametrize("kernel", KERNEL_NAMES)
def test_patch_none_operands_are_noops(kernel):
    counts = build_counts(kernel, {3: 1})
    counts.patch(None, None)
    assert dict(counts.items()) == {3: 1}
    empty = build_counts(kernel, {})
    empty.patch(None, build_counts(kernel, {8: 2}))
    assert dict(empty.items()) == {8: 2}


@pytest.mark.parametrize("writer", KERNEL_NAMES)
@pytest.mark.parametrize("reader", KERNEL_NAMES)
@given(
    mapping=st.dictionaries(
        st.integers(0, (1 << 40) - 1), st.integers(1, 1_000_000), max_size=20
    )
)
@settings(max_examples=25)
def test_wire_format_round_trips_across_kernels(writer, reader, mapping):
    """sorted_columns -> bytes -> counts_from_columns is lossless in
    every writer x reader combination — archives written under one
    kernel restore under the other."""
    keys_column, counts_column = build_counts(writer, mapping).sorted_columns()
    keys_wire = array("Q")
    keys_wire.frombytes(keys_column.tobytes())
    counts_wire = array("I")
    counts_wire.frombytes(counts_column.tobytes())
    restored = KERNELS[reader].counts_from_columns(keys_wire, counts_wire)
    assert dict(restored.items()) == mapping
    assert restored == build_counts(reader, mapping)


@needs_both_kernels
def test_pair_counts_equality_crosses_backends():
    mapping = {2: 3, (7 << 32) | 5: 1}
    python_counts = build_counts("python", mapping)
    numpy_counts = build_counts("numpy", mapping)
    assert python_counts == numpy_counts
    assert numpy_counts == python_counts
    assert python_counts == mapping
    assert numpy_counts == mapping
    assert dict(python_counts) == dict(numpy_counts) == mapping


# ---------------------------------------------------------------------------
# Kernel operations on empty and single-pair inputs
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kernel", KERNEL_NAMES)
def test_accumulate_rowlists_empty(kernel):
    counts = KERNELS[kernel].accumulate_rowlists([], [])
    assert len(counts) == 0
    assert dict(counts.items()) == {}
    keys_column, counts_column = counts.sorted_columns()
    assert len(keys_column) == 0 and len(counts_column) == 0


@pytest.mark.parametrize("kernel", KERNEL_NAMES)
def test_merge_disjoint_empty(kernel):
    assert dict(KERNELS[kernel].merge_disjoint([]).items()) == {}


@pytest.mark.parametrize("kernel", KERNEL_NAMES)
def test_select_scored_empty_counts(kernel):
    counts = build_counts(kernel, {})
    kept_keys, kept_values, scored = KERNELS[kernel].select_scored(
        counts, array("I"), array("I"), "jaccard", True, True, False, TIE_EPSILON
    )
    assert kept_keys == [] and kept_values == [] and scored == 0


@pytest.mark.parametrize("kernel", KERNEL_NAMES)
def test_select_scored_single_pair(kernel):
    """One pair, full overlap: similarity exactly 1.0, kept in every
    mode that wants anything."""
    counts = build_counts(kernel, {0: 2})
    kept_keys, kept_values, scored = KERNELS[kernel].select_scored(
        counts, array("I", [2]), array("I", [2]), "jaccard",
        True, True, True, TIE_EPSILON,
    )
    assert [int(key) for key in kept_keys] == [0]
    assert kept_values == [1.0]
    assert scored == 1


@pytest.mark.parametrize("kernel", KERNEL_NAMES)
def test_select_scored_unknown_metric_raises_keyerror(kernel):
    """Both kernels surface the same KeyError for a bad metric name (the
    numpy kernel's vector-metric table falls back to the scalar map)."""
    counts = build_counts(kernel, {0: 1})
    with pytest.raises(KeyError):
        KERNELS[kernel].select_scored(
            counts, array("I", [1]), array("I", [1]), "cosine",
            True, True, False, TIE_EPSILON,
        )


# ---------------------------------------------------------------------------
# select_scored: python vs numpy bit-identity on randomized instances
# ---------------------------------------------------------------------------

_MODES = {
    BestMatchMode.EITHER: (True, True, False),
    BestMatchMode.BOTH: (True, True, True),
    BestMatchMode.V4_ONLY: (True, False, False),
    BestMatchMode.V6_ONLY: (False, True, False),
}


@st.composite
def scoring_cases(draw):
    """Random size columns + a consistent shared-count mapping.

    Shared counts are capped at ``min(|A|, |B|)`` — the only values the
    accumulation can actually produce — so every metric stays in its
    defined range."""
    n_v4 = draw(st.integers(1, 6))
    n_v6 = draw(st.integers(1, 6))
    v4_sizes = array("I", (draw(st.integers(1, 12)) for _ in range(n_v4)))
    v6_sizes = array("I", (draw(st.integers(1, 12)) for _ in range(n_v6)))
    pair_rows = draw(
        st.sets(
            st.tuples(st.integers(0, n_v4 - 1), st.integers(0, n_v6 - 1)),
            max_size=12,
        )
    )
    mapping = {
        (a << 32) | b: draw(st.integers(1, min(v4_sizes[a], v6_sizes[b])))
        for a, b in sorted(pair_rows)
    }
    metric = draw(st.sampled_from(("jaccard", "dice", "overlap")))
    mode = draw(st.sampled_from(sorted(_MODES, key=lambda m: m.value)))
    return v4_sizes, v6_sizes, mapping, metric, mode


@needs_both_kernels
@given(case=scoring_cases())
@settings(max_examples=60)
def test_select_scored_bit_identical_across_kernels(case):
    """Same kept keys in the same order, float64-bit-equal similarities,
    same scored total — across metrics and best-match modes."""
    v4_sizes, v6_sizes, mapping, metric, mode = case
    want_v4, want_v6, need_both = _MODES[mode]
    results = {}
    for kernel in ("python", "numpy"):
        kept_keys, kept_values, scored = KERNELS[kernel].select_scored(
            build_counts(kernel, mapping), v4_sizes, v6_sizes, metric,
            want_v4, want_v6, need_both, TIE_EPSILON,
        )
        results[kernel] = (
            [int(key) for key in kept_keys],
            [value.hex() for value in kept_values],
            scored,
        )
    assert results["python"] == results["numpy"]


# ---------------------------------------------------------------------------
# Full-pipeline edges: empty / one-family / single-pair universes
# ---------------------------------------------------------------------------

_V4 = Prefix.from_address(IPV4, 20 << 24, 24)
_V6 = Prefix.from_address(IPV6, 0x2400_00DB << 96, 48)
_DATE = datetime.date(2024, 9, 1)


def _annotator() -> PrefixAnnotator:
    rib = Rib()
    rib.announce(_V4, 65001)
    rib.announce(_V6, 65002)
    return PrefixAnnotator(rib, missing_fraction=0.0)


@pytest.mark.parametrize("kernel", KERNEL_NAMES)
def test_empty_universe_detects_nothing(kernel):
    with use_kernel(kernel):
        index = build_index(DnsSnapshot(_DATE, ()), _annotator())
        assert as_mapping(ColumnarSubstrate().select(index)) == {}


@pytest.mark.parametrize("kernel", KERNEL_NAMES)
def test_one_family_domain_yields_no_pairs(kernel):
    """A v4-only domain contributes no packed pairs on any kernel."""
    with use_kernel(kernel):
        snapshot = DnsSnapshot(
            _DATE,
            (DomainObservation("only4.example", (_V4.first_address + 1,), ()),),
        )
        index = build_index(snapshot, _annotator())
        assert as_mapping(ColumnarSubstrate().select(index)) == {}


@pytest.mark.parametrize("kernel", KERNEL_NAMES)
def test_single_pair_universe(kernel):
    """One dual-stack domain: exactly one sibling pair, similarity 1.0."""
    with use_kernel(kernel):
        snapshot = DnsSnapshot(
            _DATE,
            (
                DomainObservation(
                    "a.example",
                    (_V4.first_address + 1,),
                    (_V6.first_address + 1,),
                ),
            ),
        )
        index = build_index(snapshot, _annotator())
        mapping = as_mapping(ColumnarSubstrate().select(index))
    assert mapping == {(_V4, _V6): (1.0, frozenset({"a.example"}), 1, 1)}


@needs_both_kernels
def test_detect_cli_identical_output_across_kernels(tmp_path):
    """End to end through ``--kernel``: the CSVs are byte-identical."""
    from repro.cli import main

    outputs = {}
    with use_kernel(kernel_name()):  # restore kernel + env afterwards
        for kernel in KERNEL_NAMES:
            path = tmp_path / f"{kernel}.csv"
            assert main(
                [
                    "detect", "--scenario", "tiny", "--format", "csv",
                    "--kernel", kernel, "-o", str(path),
                ]
            ) == 0
            outputs[kernel] = path.read_bytes()
    assert outputs["python"] == outputs["numpy"]


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
