"""Every module must import cleanly and carry a docstring."""

import importlib
import pathlib

import pytest

SRC = pathlib.Path(__file__).parent.parent / "src" / "repro"


def _all_modules() -> list[str]:
    modules = []
    for path in sorted(SRC.rglob("*.py")):
        relative = path.relative_to(SRC.parent)
        parts = list(relative.with_suffix("").parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        if parts[-1] == "__main__":
            continue  # importing it would execute the CLI
        modules.append(".".join(parts))
    return modules


MODULES = _all_modules()


def test_module_inventory_is_substantial():
    assert len(MODULES) > 40


@pytest.mark.parametrize("module_name", MODULES)
def test_imports_and_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module_name} lacks a module docstring"
    )


def test_version_exposed():
    import repro

    assert repro.__version__
