"""Tests for the experiment registry — every figure runner must work."""

import pytest

from repro.core.sptuner import ROUTABLE_CONFIG
from repro.reporting.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    run_experiment,
)

#: Experiments cheap enough to execute on the tiny universe in tests.
FAST_EXPERIMENTS = (
    "fig02",
    "fig05",
    "fig08",
    "fig13",
    "fig16",
    "fig17",
    "fig22",
    "sec35",
    "sec42",
    "setpairs",
    "inputs",
    "ablation_bestmatch",
    "ablation_branches",
)


class TestRegistry:
    def test_all_paper_figures_registered(self):
        expected = {
            "fig01", "fig02", "fig04", "fig05", "fig06", "fig07", "fig08",
            "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
            "fig16", "fig17", "fig18", "fig22", "sec35", "sec42",
            "ablation_bestmatch", "ablation_branches",
        }
        assert expected <= set(EXPERIMENTS)

    def test_unknown_experiment(self, tiny_universe):
        with pytest.raises(KeyError):
            run_experiment("fig99", tiny_universe)

    @pytest.mark.parametrize("experiment_id", FAST_EXPERIMENTS)
    def test_runner_produces_result(self, tiny_universe, experiment_id):
        result = run_experiment(experiment_id, tiny_universe)
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == experiment_id
        assert result.text.strip()
        assert result.key_values
        assert all(isinstance(v, float) for v in result.key_values.values())
        assert result.summary_lines()


class TestHeadlineShapes:
    """The paper's qualitative claims must hold on the tiny universe."""

    def test_fig02_overlap_saturates(self, tiny_universe):
        result = run_experiment("fig02", tiny_universe)
        assert result.key_values["overlap_share_at_1"] > 0.85  # paper: >90%
        assert (
            result.key_values["overlap_share_at_1"]
            > result.key_values["jaccard_share_at_1"]
        )

    def test_fig05_tuning_ladder(self, tiny_universe):
        result = run_experiment("fig05", tiny_universe)
        assert (
            result.key_values["default_perfect_share"]
            < result.key_values["routable_perfect_share"]
            < result.key_values["deep_perfect_share"]
        )
        # Paper: 52% → 82%; we require the same coarse window.
        assert 0.35 < result.key_values["default_perfect_share"] < 0.70
        assert 0.70 < result.key_values["deep_perfect_share"] < 0.95

    def test_fig22_ls_is_a_no_op(self, tiny_universe):
        result = run_experiment("fig22", tiny_universe)
        assert result.key_values["bounded_mean"] == pytest.approx(
            result.key_values["default_mean"], abs=0.01
        )

    def test_sec42_prefix_count_direction(self, tiny_universe):
        result = run_experiment("sec42", tiny_universe)
        assert result.key_values["v4_more_than_v6"] == 1.0
        assert result.key_values["same_org_share"] > 0.5

    def test_sec35_coverage_bands(self, tiny_universe):
        result = run_experiment("sec35", tiny_universe)
        assert 0.25 < result.key_values["fully_covered_share"] < 0.65
        assert result.key_values["best_match_share"] > 0.6
        assert result.key_values["deployment_recall"] > 0.7

    def test_ablation_bestmatch_mode_ordering(self, tiny_universe):
        result = run_experiment("ablation_bestmatch", tiny_universe)
        assert result.key_values["pairs_both"] <= result.key_values["pairs_v4"]
        assert result.key_values["pairs_v4"] <= result.key_values["pairs_either"]
        assert result.key_values["pairs_both"] <= result.key_values["pairs_v6"]

    def test_fig12_accepts_config(self, tiny_universe):
        result = run_experiment("fig12", tiny_universe, config=ROUTABLE_CONFIG)
        assert result.key_values["perfect_Day_0"] > 0.0
