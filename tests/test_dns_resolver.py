"""Tests for the CNAME-chasing resolver."""

import pytest

from repro.dns.records import ResourceRecord, RRType
from repro.dns.resolver import MAX_CHAIN_LENGTH, ResolutionStatus, Resolver
from repro.dns.zone import Zone
from repro.nettypes.addr import parse_ipv4, parse_ipv6


def build_zone() -> Zone:
    zone = Zone()
    zone.add(ResourceRecord.a("direct.example.com", parse_ipv4("192.0.2.1")))
    zone.add(ResourceRecord.aaaa("direct.example.com", parse_ipv6("2001:db8::1")))
    zone.add(ResourceRecord.cname("www.example.com", "edge.cdn.example.net"))
    zone.add(ResourceRecord.a("edge.cdn.example.net", parse_ipv4("198.51.100.7")))
    zone.add(ResourceRecord.cname("hop1.example.com", "hop2.example.com"))
    zone.add(ResourceRecord.cname("hop2.example.com", "direct.example.com"))
    zone.add(ResourceRecord.cname("loop-a.example.com", "loop-b.example.com"))
    zone.add(ResourceRecord.cname("loop-b.example.com", "loop-a.example.com"))
    zone.add(ResourceRecord.a("v4only.example.com", parse_ipv4("203.0.113.5")))
    return zone


class TestResolver:
    def test_direct_resolution(self):
        result = Resolver(build_zone()).resolve("direct.example.com", RRType.A)
        assert result.ok
        assert result.final_name == "direct.example.com"
        assert result.addresses == (parse_ipv4("192.0.2.1"),)
        assert result.chain == ("direct.example.com",)

    def test_cname_final_name_used(self):
        # The paper uses the response name, not the queried name.
        result = Resolver(build_zone()).resolve("www.example.com", RRType.A)
        assert result.ok
        assert result.final_name == "edge.cdn.example.net"
        assert result.chain == ("www.example.com", "edge.cdn.example.net")

    def test_multi_hop_chain(self):
        result = Resolver(build_zone()).resolve("hop1.example.com", RRType.AAAA)
        assert result.ok
        assert result.final_name == "direct.example.com"
        assert len(result.chain) == 3

    def test_nxdomain(self):
        result = Resolver(build_zone()).resolve("missing.example.com", RRType.A)
        assert result.status is ResolutionStatus.NXDOMAIN
        assert not result.ok

    def test_nodata_wrong_family(self):
        result = Resolver(build_zone()).resolve("v4only.example.com", RRType.AAAA)
        assert result.status is ResolutionStatus.NO_DATA
        assert result.final_name == "v4only.example.com"

    def test_loop_detection(self):
        result = Resolver(build_zone()).resolve("loop-a.example.com", RRType.A)
        assert result.status is ResolutionStatus.CHAIN_LOOP

    def test_chain_length_cap(self):
        zone = Zone()
        for i in range(MAX_CHAIN_LENGTH + 2):
            zone.add(ResourceRecord.cname(f"h{i}.example.com", f"h{i+1}.example.com"))
        result = Resolver(zone).resolve("h0.example.com", RRType.A)
        assert result.status is ResolutionStatus.CHAIN_TOO_LONG

    def test_dual_stack_helper(self):
        a, aaaa = Resolver(build_zone()).resolve_dual_stack("direct.example.com")
        assert a.ok and aaaa.ok
        assert a.rrtype is RRType.A and aaaa.rrtype is RRType.AAAA

    def test_rejects_cname_query(self):
        with pytest.raises(ValueError):
            Resolver(build_zone()).resolve("www.example.com", RRType.CNAME)

    def test_addresses_sorted(self):
        zone = Zone()
        zone.add(ResourceRecord.a("multi.example.com", parse_ipv4("203.0.113.9")))
        zone.add(ResourceRecord.a("multi.example.com", parse_ipv4("192.0.2.1")))
        result = Resolver(zone).resolve("multi.example.com", RRType.A)
        assert list(result.addresses) == sorted(result.addresses)
