"""Tests for the synthetic universe: structure, determinism, dynamics."""

import datetime

import pytest

from repro.dates import REFERENCE_DATE, snapshot_dates
from repro.determinism import (
    stable_choice,
    stable_hash,
    stable_sample_count,
    stable_uniform,
    stable_weighted_choice,
)
from repro.nettypes.addr import IPV4, IPV6, is_reserved
from repro.synth import build_universe, scenario
from repro.synth.addressplan import AddressPlan
from repro.synth.entities import DeploymentTier, HostingMode
from repro.synth.scenarios import SCENARIOS, ScenarioConfig
from repro.synth.topology import MONITORING_DOMAIN


@pytest.fixture(scope="module")
def universe():
    return build_universe("tiny")


class TestDeterminism:
    def test_stable_hash_repeatable(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)
        assert stable_hash("a", 1) != stable_hash("a", 2)
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_stable_uniform_range(self):
        values = [stable_uniform("k", i) for i in range(200)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert 0.3 < sum(values) / len(values) < 0.7  # roughly uniform

    def test_stable_choice(self):
        options = ["a", "b", "c"]
        assert stable_choice(options, "x") in options
        assert stable_choice(options, "x") == stable_choice(options, "x")
        with pytest.raises(ValueError):
            stable_choice([], "x")

    def test_weighted_choice_respects_zero_weight(self):
        picks = {
            stable_weighted_choice(["a", "b"], [1.0, 0.0], "seed", i)
            for i in range(50)
        }
        assert picks == {"a"}

    def test_weighted_choice_validation(self):
        with pytest.raises(ValueError):
            stable_weighted_choice(["a"], [1.0, 2.0], "x")
        with pytest.raises(ValueError):
            stable_weighted_choice(["a"], [0.0], "x")

    def test_sample_count_bounds(self):
        assert stable_sample_count(10, 0.0, "k") == 0
        assert stable_sample_count(10, 1.0, "k") == 10
        assert 0 <= stable_sample_count(10, 0.5, "k") <= 10

    def test_universe_rebuild_identical(self):
        a = build_universe("tiny")
        b = build_universe("tiny")
        assert set(a.fabric.domains) == set(b.fabric.domains)
        snap_a = a.snapshot_at(REFERENCE_DATE)
        snap_b = b.snapshot_at(REFERENCE_DATE)
        for obs in snap_a.observations():
            other = snap_b.get(obs.domain)
            assert other is not None
            assert obs.v4_addresses == other.v4_addresses
            assert obs.v6_addresses == other.v6_addresses


class TestAddressPlan:
    def test_no_overlap(self):
        plan = AddressPlan()
        prefixes = [plan.allocate_v4(20) for _ in range(50)]
        prefixes += [plan.allocate_v4(24) for _ in range(50)]
        for i, a in enumerate(prefixes):
            for b in prefixes[i + 1:]:
                assert not a.overlaps(b)

    def test_all_global_unicast(self):
        plan = AddressPlan()
        for _ in range(100):
            prefix = plan.allocate_v4(22)
            assert not is_reserved(IPV4, prefix.first_address)
            assert not is_reserved(IPV4, prefix.last_address)
        for _ in range(100):
            prefix = plan.allocate_v6(40)
            assert not is_reserved(IPV6, prefix.first_address)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            AddressPlan().allocate_v4(0)
        with pytest.raises(ValueError):
            AddressPlan().allocate(IPV4, 4)  # larger than superblock


class TestScenarios:
    def test_presets_exist(self):
        assert {"tiny", "small", "medium", "paper"} <= set(SCENARIOS)

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            scenario("galactic")

    def test_tier_weights_validated(self):
        with pytest.raises(ValueError):
            ScenarioConfig(name="bad", tier_weights={DeploymentTier.DEDICATED: 0.5})

    def test_hgcdn_bound(self):
        with pytest.raises(ValueError):
            ScenarioConfig(name="bad", n_hgcdn_orgs=25)


class TestUniverseStructure:
    def test_population_sizes(self, universe):
        config = universe.config
        orgs = list(universe.organizations())
        assert len([o for o in orgs if o.is_eyeball]) == config.n_eyeball_orgs
        assert len(universe.population.hgcdn_org_ids) == config.n_hgcdn_orgs

    def test_asns_unique(self, universe):
        seen = set()
        for org in universe.organizations():
            for asn in org.asns:
                assert asn not in seen
                seen.add(asn)

    def test_deployment_blocks_inside_announcements(self, universe):
        for deployment in universe.fabric.deployments.values():
            assert deployment.v4_announced.contains(deployment.v4_block)
            assert deployment.v6_announced.contains(deployment.v6_block)

    def test_split_deployments_have_different_origin_orgs(self, universe):
        split = [
            d
            for d in universe.fabric.deployments.values()
            if d.hosting is HostingMode.SPLIT
        ]
        assert split, "tiny scenario should include split-hosted deployments"
        for deployment in split:
            assert deployment.v4_origin_org != deployment.v6_origin_org
            assert not deployment.is_same_org

    def test_monitoring_spec(self, universe):
        monitoring = universe.monitoring
        assert monitoring is not None
        assert monitoring.domain == MONITORING_DOMAIN
        config = universe.config
        assert len(monitoring.v4_placements) == config.monitoring_v4_placements
        assert len(monitoring.v6_placements) == config.monitoring_v6_placements
        assert universe.monitoring_pair_count() == (
            config.monitoring_v4_placements * config.monitoring_v6_placements
        )
        # Placements live in distinct host orgs' prefixes.
        host_orgs = {org for _, org, _ in monitoring.v4_placements}
        assert len(host_orgs) > 1

    def test_agility_networks_exist(self, universe):
        assert universe.fabric.agility_networks
        for network in universe.fabric.agility_networks.values():
            assert len(network.v4_prefixes) == 3
            assert len(network.v6_prefixes) == 3
            address = network.v4_address_for("any.example.com")
            assert any(q.contains_address(address) for q in network.v4_prefixes)

    def test_rib_covers_every_deployment(self, universe):
        rib = universe.rib_at(REFERENCE_DATE)
        for deployment in universe.ground_truth_deployments():
            route4 = rib.route_for_prefix(deployment.v4_block)
            assert route4 is not None
            org4 = universe.org_for_asn(route4.origin)
            assert org4 is not None and org4.org_id == deployment.v4_origin_org

    def test_org_asn_family_split(self, universe):
        multi = [o for o in universe.organizations() if len(o.asns) > 1]
        assert multi
        org = multi[0]
        assert org.asn_for_family(4) != org.asn_for_family(6)


class TestDynamics:
    def test_growth_over_time(self, universe):
        early = universe.snapshot_at(datetime.date(2020, 9, 9))
        late = universe.snapshot_at(REFERENCE_DATE)
        assert late.domain_count > early.domain_count
        assert late.dual_stack_count > 1.5 * early.dual_stack_count

    def test_ds_share_grows(self, universe):
        early = universe.snapshot_at(datetime.date(2020, 9, 9))
        late = universe.snapshot_at(REFERENCE_DATE)
        assert 0.15 < early.dual_stack_share < 0.35
        assert early.dual_stack_share < late.dual_stack_share < 0.5

    def test_fr_domains_gated(self, universe):
        before = universe.queried_names_at(datetime.date(2022, 7, 13))
        after = universe.queried_names_at(datetime.date(2022, 9, 14))
        fr = lambda names: sum(1 for n in names if n.endswith(".fr"))
        assert fr(before) == 0
        assert fr(after) > 0

    def test_monitoring_gap_months(self, universe):
        visible = universe.queried_names_at(datetime.date(2024, 9, 11))
        assert MONITORING_DOMAIN in visible
        gap = universe.queried_names_at(datetime.date(2023, 5, 10))
        assert MONITORING_DOMAIN not in gap

    def test_addresses_stable_within_month(self, universe):
        spec = next(iter(universe.fabric.domains.values()))
        day_a = universe.addresses_for(spec, datetime.date(2024, 9, 11))
        day_b = universe.addresses_for(spec, datetime.date(2024, 9, 12))
        assert day_a == day_b

    def test_some_addresses_change_over_years(self, universe):
        changed = 0
        sampled = 0
        early, late = datetime.date(2020, 9, 9), REFERENCE_DATE
        for spec in universe.fabric.domains.values():
            if spec.created > early or spec.v6_only:
                continue
            sampled += 1
            if universe.addresses_for(spec, early) != universe.addresses_for(spec, late):
                changed += 1
        assert sampled > 0
        assert 0 < changed < sampled

    def test_zone_has_cname_aliases(self, universe):
        zone = universe.zone_at(REFERENCE_DATE)
        aliased = [s for s in universe.fabric.domains.values() if s.alias]
        assert aliased
        spec = next(s for s in aliased if s.created <= REFERENCE_DATE)
        from repro.dns.records import RRType

        records = zone.records(spec.alias, RRType.CNAME)
        assert len(records) == 1 and records[0].target == spec.name

    def test_host_inventory(self, universe):
        inventory = universe.host_inventory(REFERENCE_DATE)
        assert inventory
        versions = {version for version, _ in inventory}
        assert versions == {IPV4, IPV6}
        assert "probe" in set(inventory.values())

    def test_49_snapshot_calendar_consistency(self, universe):
        dates = snapshot_dates()
        assert len(dates) == 49
        series = universe.series(dates[:3])
        assert len(series) == 3
