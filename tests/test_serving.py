"""Serving subsystem: compiled index vs oracles, codec, cache, service.

The LPM contract is enforced three ways on randomized scenarios: the
compiled :class:`SiblingLookupIndex` must agree bit-for-bit with the
:class:`PatriciaTrie` reference oracle *and* with the brute-force
:func:`scan_lookup` baseline, for both families, nested prefixes, and
misses.
"""

import datetime
import json
import random
import threading
import urllib.error
import urllib.request

import pytest

from repro.nettypes.prefix import Prefix, PrefixError
from repro.nettypes.trie import PatriciaTrie
from repro.publish import PublishedPair
from repro.serving.cache import LruCache
from repro.serving.codec import (
    CodecError,
    dump_bytes,
    is_index_file,
    load_bytes,
    load_index,
    save_index,
)
from repro.serving.http import make_server
from repro.serving.index import (
    LookupResult,
    SiblingLookupIndex,
    parse_query,
    scan_lookup,
)
from repro.serving.service import MAX_BATCH, QueryError, SiblingQueryService

SNAPSHOT = datetime.date(2024, 9, 11)

ROV_STATUSES = (None, "both valid", "valid + not found", "both invalid")


def random_prefix(rng: random.Random, version: int) -> Prefix:
    """A random prefix with realistic length mix (incl. >/64 IPv6)."""
    if version == 4:
        length = rng.choice((8, 12, 16, 20, 22, 24, 24, 25, 28, 32))
    else:
        length = rng.choice((20, 29, 32, 32, 40, 44, 48, 48, 56, 64, 80, 128))
    bits = 32 if version == 4 else 128
    value = rng.getrandbits(length) << (bits - length) if length else 0
    return Prefix(version, value, length)


def random_scenario(seed: int, n_pairs: int = 120):
    """A randomized published list with nesting and shared prefixes."""
    rng = random.Random(seed)
    v4_pool = [random_prefix(rng, 4) for _ in range(n_pairs // 2)]
    v6_pool = [random_prefix(rng, 6) for _ in range(n_pairs // 2)]
    # Force nesting: add subnets of existing pool members.
    for pool, version in ((v4_pool, 4), (v6_pool, 6)):
        for _ in range(n_pairs // 4):
            parent = rng.choice(pool)
            if parent.length < parent.bits - 2:
                pool.append(
                    next(iter(parent.subnets(parent.length + rng.randint(1, 2))))
                )
    pairs = []
    for _ in range(n_pairs):
        pairs.append(
            PublishedPair(
                v4_prefix=rng.choice(v4_pool),
                v6_prefix=rng.choice(v6_pool),
                jaccard=rng.random(),
                shared_domains=rng.randint(1, 50),
                v4_domains=rng.randint(1, 60),
                v6_domains=rng.randint(1, 60),
                same_org=rng.choice((None, True, False)),
                rov_status=rng.choice(ROV_STATUSES),
            )
        )
    return rng, pairs


def trie_oracles(index: SiblingLookupIndex):
    """Per-family PatriciaTrie mapping prefix → pair positions."""
    by_prefix: dict[Prefix, list[int]] = {}
    for position, pair in enumerate(index.pairs):
        for prefix in (pair.v4_prefix, pair.v6_prefix):
            by_prefix.setdefault(prefix, []).append(position)
    return {
        version: PatriciaTrie.from_items(
            version,
            (
                (prefix, tuple(positions))
                for prefix, positions in by_prefix.items()
                if prefix.version == version
            ),
        )
        for version in (4, 6)
    }


def random_queries(rng: random.Random, index: SiblingLookupIndex, count: int):
    """Hit-biased random queries: addresses and prefixes, both families."""
    stored = [
        prefix
        for pair in index.pairs
        for prefix in (pair.v4_prefix, pair.v6_prefix)
    ]
    queries = []
    for _ in range(count):
        version = rng.choice((4, 6))
        if rng.random() < 0.6:
            # Somewhere inside a stored prefix (a hit, possibly nested).
            base = rng.choice([p for p in stored if p.version == version])
            value = base.value | rng.getrandbits(base.host_bits)
        else:
            value = rng.getrandbits(32 if version == 4 else 128)
        if rng.random() < 0.3:
            length = rng.randint(0, 32 if version == 4 else 128)
            queries.append(Prefix.from_address(version, value, length))
        else:
            queries.append(Prefix.host(version, value))
    return queries


class TestIndexVsOracles:
    @pytest.mark.parametrize("seed", (1, 2, 3, 20250728))
    def test_lpm_matches_trie_and_scan(self, seed):
        rng, pairs = random_scenario(seed)
        index = SiblingLookupIndex.from_pairs(pairs, SNAPSHOT)
        tries = trie_oracles(index)
        hits = misses = 0
        for query in random_queries(rng, index, 300):
            got = index.lookup(query)
            expected = tries[query.version].lookup(query)
            brute = scan_lookup(index.pairs, query)
            if expected is None:
                assert got is None and brute is None
                misses += 1
                continue
            hits += 1
            oracle_prefix, oracle_positions = expected
            assert got.matched == oracle_prefix == brute.matched
            assert got.pairs == tuple(
                index.pairs[position] for position in oracle_positions
            )
            assert set(got.pairs) == set(brute.pairs)
            # Bit-identical similarity values out of all three paths.
            assert [p.jaccard for p in got.pairs] == [
                index.pairs[i].jaccard for i in oracle_positions
            ]
        assert hits > 20 and misses > 5, "scenario must exercise both outcomes"

    @pytest.mark.parametrize("seed", (7, 11))
    def test_covering_matches_trie(self, seed):
        rng, pairs = random_scenario(seed)
        index = SiblingLookupIndex.from_pairs(pairs, SNAPSHOT)
        tries = trie_oracles(index)
        for query in random_queries(rng, index, 150):
            got = index.covering(query)
            expected = tries[query.version].covering(query)
            assert [r.matched for r in got] == [prefix for prefix, _ in expected]
            for result, (_, positions) in zip(got, expected):
                assert result.pairs == tuple(
                    index.pairs[position] for position in positions
                )

    def test_shared_prefix_returns_all_pairs_in_table_order(self):
        v4 = Prefix.parse("198.51.100.0/24")
        pairs = [
            PublishedPair(v4, Prefix.parse("2001:db8:2::/48"), 0.5, 1, 2, 2, None, None),
            PublishedPair(v4, Prefix.parse("2001:db8:1::/48"), 0.5, 1, 2, 2, None, None),
        ]
        index = SiblingLookupIndex.from_pairs(pairs, SNAPSHOT)
        result = index.lookup("198.51.100.9")
        assert [str(p.v6_prefix) for p in result.pairs] == [
            "2001:db8:1::/48",
            "2001:db8:2::/48",
        ]

    def test_prefix_query_never_matches_longer_prefix(self):
        pairs = [
            PublishedPair(
                Prefix.parse("192.0.2.0/28"),
                Prefix.parse("2001:db8::/48"),
                1.0, 1, 1, 1, None, None,
            )
        ]
        index = SiblingLookupIndex.from_pairs(pairs, SNAPSHOT)
        assert index.lookup("192.0.2.0/24") is None       # /24 ⊅ covered by /28
        assert index.lookup("192.0.2.0/28") is not None   # exact
        assert index.lookup("192.0.2.5") is not None      # address inside

    def test_batch_alignment_and_malformed_entries(self):
        _, pairs = random_scenario(5, n_pairs=40)
        index = SiblingLookupIndex.from_pairs(pairs, SNAPSHOT)
        target = pairs[0].v4_prefix
        results = index.batch([str(target), "not-an-ip", "203.0.113.9"])
        assert isinstance(results[0], LookupResult)
        assert results[1] is None
        assert len(results) == 3

    def test_from_siblings(self, tiny_detection):
        siblings, _ = tiny_detection
        index = SiblingLookupIndex.from_siblings(siblings)
        assert len(index) == len(siblings)
        assert index.snapshot == siblings.date
        some = next(iter(siblings))
        result = index.lookup(some.v4_prefix)
        assert result is not None
        assert any(p.v6_prefix == some.v6_prefix for p in result.pairs)
        assert {p.jaccard for p in index} == {
            p.similarity for p in siblings
        }

    def test_parse_query_errors(self):
        with pytest.raises(PrefixError):
            parse_query("not-an-ip")
        with pytest.raises(PrefixError):
            parse_query("192.0.2.0/99")
        assert parse_query(" 192.0.2.1 ").value == Prefix.parse("192.0.2.1").value

    def test_stats_shape(self):
        _, pairs = random_scenario(9, n_pairs=30)
        index = SiblingLookupIndex.from_pairs(pairs, SNAPSHOT)
        stats = index.stats()
        assert stats["pairs"] == len(index)
        assert stats["snapshot"] == SNAPSHOT.isoformat()
        assert stats["v4_prefixes"] == index.prefix_count(4)
        assert stats["v4_lengths"] == sorted(stats["v4_lengths"], reverse=True)


class TestCodec:
    @pytest.fixture(scope="class")
    def index(self):
        _, pairs = random_scenario(42, n_pairs=80)
        return SiblingLookupIndex.from_pairs(pairs, SNAPSHOT)

    def test_roundtrip_bit_identical(self, index, tmp_path):
        path = tmp_path / "list.sibidx"
        size = save_index(index, path)
        assert size == path.stat().st_size
        loaded = load_index(path)
        assert loaded.pairs == index.pairs          # includes exact floats
        assert loaded.snapshot == index.snapshot
        assert loaded.stats() == index.stats()
        # Same answers from the recompiled structure.
        probe = index.pairs[3].v6_prefix
        assert loaded.lookup(probe).pairs == index.lookup(probe).pairs

    def test_roundtrip_empty(self):
        index = SiblingLookupIndex.from_pairs([], SNAPSHOT)
        loaded = load_bytes(dump_bytes(index))
        assert len(loaded) == 0
        assert loaded.lookup("192.0.2.1") is None

    def test_is_index_file(self, index, tmp_path):
        path = tmp_path / "list.sibidx"
        save_index(index, path)
        assert is_index_file(path)
        csv_path = tmp_path / "list.csv"
        csv_path.write_text("# sibling-prefixes list v1\nv4_prefix\n")
        assert not is_index_file(csv_path)
        assert not is_index_file(tmp_path / "missing.bin")

    def test_rejects_bad_magic(self, index):
        data = bytearray(dump_bytes(index))
        data[:4] = b"NOPE"
        with pytest.raises(CodecError, match="magic"):
            load_bytes(bytes(data))

    def test_rejects_future_version(self, index):
        data = bytearray(dump_bytes(index))
        data[8:10] = (99).to_bytes(2, "big")
        with pytest.raises(CodecError, match="version 99"):
            load_bytes(bytes(data))

    def test_rejects_corruption(self, index):
        data = bytearray(dump_bytes(index))
        data[len(data) // 2] ^= 0xFF
        with pytest.raises(CodecError, match="checksum|malformed"):
            load_bytes(bytes(data))

    def test_rejects_truncation(self, index):
        data = dump_bytes(index)
        for cut in (4, len(data) // 2, len(data) - 3):
            with pytest.raises(CodecError):
                load_bytes(data[:cut])

    def test_preserves_optional_fields(self):
        pairs = [
            PublishedPair(
                Prefix.parse("192.0.2.0/24"), Prefix.parse("2001:db8::/32"),
                1 / 3, 1, 2, 2, same_org, rov,
            )
            for same_org, rov in (
                (None, None), (True, "both valid"), (False, "both invalid"),
            )
        ]
        loaded = load_bytes(dump_bytes(SiblingLookupIndex.from_pairs(pairs, SNAPSHOT)))
        assert {(p.same_org, p.rov_status) for p in loaded.pairs} == {
            (None, None), (True, "both valid"), (False, "both invalid"),
        }
        assert all(p.jaccard == 1 / 3 for p in loaded.pairs)


class TestLruCache:
    def test_eviction_order(self):
        cache = LruCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1       # refresh "a"; "b" is now oldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_disabled_cache(self):
        cache = LruCache(maxsize=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_stats_and_clear(self):
        cache = LruCache(maxsize=8)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["size"] == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 1  # counters survive clear

    def test_rejects_negative_maxsize(self):
        with pytest.raises(ValueError):
            LruCache(maxsize=-1)


class TestService:
    @pytest.fixture()
    def indexes(self):
        _, pairs_a = random_scenario(101, n_pairs=40)
        _, pairs_b = random_scenario(202, n_pairs=40)
        return (
            SiblingLookupIndex.from_pairs(pairs_a, SNAPSHOT),
            SiblingLookupIndex.from_pairs(
                pairs_b, SNAPSHOT + datetime.timedelta(days=1)
            ),
        )

    def test_lookup_shape_and_cache_hits(self, indexes):
        index, _ = indexes
        service = SiblingQueryService(index)
        query = str(index.pairs[0].v4_prefix)
        first = service.lookup(query)
        again = service.lookup(query)
        assert first == again
        assert first["found"] and first["snapshot"] == SNAPSHOT.isoformat()
        assert service.snapshot_info()["cache"]["hits"] == 1
        assert service.snapshot_info()["queries"] == 2

    def test_empty_service_raises(self):
        service = SiblingQueryService()
        with pytest.raises(QueryError, match="no index"):
            service.lookup("192.0.2.1")
        with pytest.raises(QueryError):
            service.batch(["192.0.2.1"])
        assert service.snapshot_info()["index"] is None

    def test_malformed_query_raises(self, indexes):
        service = SiblingQueryService(indexes[0])
        with pytest.raises(QueryError):
            service.lookup("not-an-ip")

    def test_hot_swap_interleaved(self, indexes):
        index_a, index_b = indexes
        service = SiblingQueryService(index_a)
        # Pick a query whose answer differs across generations.
        query = str(index_a.pairs[0].v4_prefix)
        answer_a = service.lookup(query)
        assert answer_a["snapshot"] == index_a.snapshot.isoformat()
        previous = service.swap(index_b)
        assert previous is index_a
        assert service.generation == 2
        answer_b = service.lookup(query)
        assert answer_b["snapshot"] == index_b.snapshot.isoformat()
        # The cached generation-1 answer must not leak into generation 2.
        assert answer_b == service.lookup(query)
        expected = index_b.lookup(query)
        assert answer_b["found"] == (expected is not None)
        # Swap back: answers revert, cache cannot serve generation 2.
        service.swap(index_a)
        assert service.lookup(query) == answer_a
        assert service.snapshot_info()["swaps"] == 2
        assert service.snapshot_info()["generation"] == 3

    def test_swap_clears_cache(self, indexes):
        index_a, index_b = indexes
        service = SiblingQueryService(index_a)
        service.lookup(str(index_a.pairs[0].v4_prefix))
        assert service.snapshot_info()["cache"]["size"] == 1
        service.swap(index_b)
        assert service.snapshot_info()["cache"]["size"] == 0

    def test_batch_in_band_errors(self, indexes):
        service = SiblingQueryService(indexes[0])
        results = service.batch(["not-an-ip", str(indexes[0].pairs[0].v4_prefix)])
        assert results[0]["found"] is False and "error" in results[0]
        assert results[1]["found"] is True
        with pytest.raises(QueryError, match="strings"):
            service.batch([42])
        with pytest.raises(QueryError, match="too large"):
            service.batch(["192.0.2.1"] * (MAX_BATCH + 1))

    def test_batch_never_mixes_generations(self, indexes):
        index_a, index_b = indexes
        service = SiblingQueryService(index_a)
        queries = [str(pair.v4_prefix) for pair in index_a.pairs[:20]]
        stop = threading.Event()

        def swapper():
            position = 0
            while not stop.is_set():
                service.swap(index_b if position % 2 == 0 else index_a)
                position += 1

        thread = threading.Thread(target=swapper)
        thread.start()
        try:
            for _ in range(50):
                snapshots = {
                    row["snapshot"] for row in service.batch(queries)
                }
                assert len(snapshots) == 1, "batch mixed two generations"
        finally:
            stop.set()
            thread.join()

    def test_caller_mutation_cannot_poison_cache(self, indexes):
        service = SiblingQueryService(indexes[0])
        query = str(indexes[0].pairs[0].v4_prefix)
        first = service.lookup(query)
        assert first["found"]
        first["found"] = "mutated"
        first["extra"] = True
        second = service.lookup(query)
        assert second["found"] is True and "extra" not in second

    def test_concurrent_lookups_during_swaps(self, indexes):
        index_a, index_b = indexes
        service = SiblingQueryService(index_a, cache_size=64)
        queries = [str(pair.v4_prefix) for pair in index_a.pairs[:10]]
        snapshots = {index_a.snapshot.isoformat(), index_b.snapshot.isoformat()}
        failures = []

        def worker():
            for _ in range(200):
                answer = service.lookup(queries[_ % len(queries)])
                if answer["snapshot"] not in snapshots:
                    failures.append(answer)

        def swapper():
            for position in range(50):
                service.swap(index_b if position % 2 == 0 else index_a)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        threads.append(threading.Thread(target=swapper))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures


class TestServeSeries:
    def test_pipeline_hands_snapshots_to_service(self, tiny_universe):
        from repro.analysis.pipeline import detect_at, serve_series
        from repro.dates import REFERENCE_DATE

        dates = [
            REFERENCE_DATE - datetime.timedelta(days=7),
            REFERENCE_DATE,
        ]
        service = serve_series(tiny_universe, dates)
        # A date whose sibling list equals the one already served skips
        # the recompile+swap, so the generation counter only counts real
        # publishes (at least the first date, at most every date).
        assert 1 <= service.generation <= len(dates)
        earlier, _ = detect_at(tiny_universe, dates[0])
        siblings, _ = detect_at(tiny_universe, REFERENCE_DATE)
        if earlier.same_pairs(siblings):
            assert service.generation == 1
            assert service.index.snapshot == dates[0]
        else:
            assert service.generation == len(dates)
            assert service.index.snapshot == REFERENCE_DATE
        # The served answers equal a fresh compile of the last snapshot
        # (pair-wise — the recorded date may be the skip-retained one).
        expected = SiblingLookupIndex.from_siblings(siblings)
        for pair in list(expected)[:5]:
            answer = service.lookup(str(pair.v4_prefix))
            assert answer["found"]
            assert answer["snapshot"] == service.index.snapshot.isoformat()
            assert any(
                row["v6_prefix"] == str(pair.v6_prefix)
                for row in answer["pairs"]
            )


@pytest.fixture(scope="module")
def http_server():
    """A live threading HTTP server over a small fixed index."""
    _, pairs = random_scenario(77, n_pairs=30)
    index = SiblingLookupIndex.from_pairs(pairs, SNAPSHOT)
    service = SiblingQueryService(index)
    with make_server(service, port=0) as server:
        server.start()
        yield f"http://127.0.0.1:{server.server_address[1]}", index


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, json.load(response)


def _post(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), method="POST"
    )
    with urllib.request.urlopen(request, timeout=5) as response:
        return response.status, json.load(response)


class TestHttp:
    def test_lookup_hit_and_miss(self, http_server):
        base, index = http_server
        target = index.pairs[0].v4_prefix
        status, body = _get(f"{base}/v1/lookup?ip={target}")
        assert status == 200 and body["found"]
        assert body["matched_prefix"] == str(target) or body["pairs"]
        status, body = _get(f"{base}/v1/lookup?ip=0.255.255.255")
        assert status == 200 and body["found"] is False

    def test_lookup_malformed_is_400(self, http_server):
        base, _ = http_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{base}/v1/lookup?ip=not-an-ip")
        assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{base}/v1/lookup")
        assert excinfo.value.code == 400

    def test_batch(self, http_server):
        base, index = http_server
        queries = [str(index.pairs[0].v4_prefix), "bogus", "0.255.255.255"]
        status, body = _post(f"{base}/v1/batch", {"queries": queries})
        assert status == 200
        results = body["results"]
        assert len(results) == 3
        assert results[0]["found"] is True
        assert results[1]["found"] is False and "error" in results[1]

    def test_batch_malformed_body_is_400(self, http_server):
        base, _ = http_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{base}/v1/batch", {"nope": []})
        assert excinfo.value.code == 400
        request = urllib.request.Request(
            f"{base}/v1/batch", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400

    def test_batch_negative_content_length_is_400(self, http_server):
        import http.client

        base, _ = http_server
        host, port = base.removeprefix("http://").split(":")
        connection = http.client.HTTPConnection(host, int(port), timeout=5)
        try:
            connection.putrequest("POST", "/v1/batch")
            connection.putheader("Content-Length", "-1")
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 400
        finally:
            connection.close()

    def test_snapshot(self, http_server):
        base, index = http_server
        status, body = _get(f"{base}/v1/snapshot")
        assert status == 200
        assert body["generation"] == 1
        assert body["index"]["pairs"] == len(index)
        assert "cache" in body

    def test_unknown_path_is_404(self, http_server):
        base, _ = http_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{base}/v2/lookup?ip=1.2.3.4")
        assert excinfo.value.code == 404


class TestServerLifecycle:
    """The start()/close() API added for embedders (fleet, tests)."""

    def _service(self):
        _, pairs = random_scenario(5, n_pairs=3)
        return SiblingQueryService(
            SiblingLookupIndex.from_pairs(pairs, SNAPSHOT)
        )

    def test_close_is_idempotent_and_releases_port(self):
        server = make_server(self._service(), port=0).start()
        port = server.server_address[1]
        status, _ = _get(f"http://127.0.0.1:{port}/v1/snapshot")
        assert status == 200
        server.close()
        server.close()  # idempotent
        # The port is released: a new server can bind it immediately.
        with make_server(self._service(), port=port) as reuse:
            reuse.start()
            status, _ = _get(f"http://127.0.0.1:{port}/v1/snapshot")
            assert status == 200

    def test_double_start_raises(self):
        with make_server(self._service(), port=0) as server:
            server.start()
            with pytest.raises(RuntimeError):
                server.start()

    def test_close_without_start_does_not_block(self):
        # Bound but never started: close() must not wait on the
        # never-set shutdown event.
        make_server(self._service(), port=0).close()

    def test_keepalive_connection_is_reused(self):
        import http.client

        with make_server(self._service(), port=0) as server:
            server.start()
            host, port = server.server_address[:2]
            connection = http.client.HTTPConnection(host, port, timeout=5)
            try:
                for _ in range(3):
                    connection.request("GET", "/v1/snapshot")
                    response = connection.getresponse()
                    assert response.status == 200
                    response.read()
                    assert response.getheader("Connection") != "close"
            finally:
                connection.close()

    def test_serve_thread_is_daemon(self):
        # An embedder that exits without close() must not hang the
        # interpreter on a live accept loop.
        with make_server(self._service(), port=0) as server:
            server.start()
            assert server._serve_thread is not None
            assert server._serve_thread.daemon is True

    def test_close_surfaces_wedged_serve_thread(self):
        # A serve thread that outlives the join timeout must raise, not
        # be silently leaked — but the socket is still released.
        class _WedgedThread:
            name = "wedged-serve-thread"

            def is_alive(self):
                return True

            def join(self, timeout=None):
                pass

        server = make_server(self._service(), port=0).start()
        port = server.server_address[1]
        real_thread = server._serve_thread
        server._serve_thread = _WedgedThread()
        with pytest.raises(RuntimeError, match="did not stop"):
            server.close()
        # shutdown() did stop the real serve loop, and server_close()
        # released the port despite the raise.
        real_thread.join(timeout=10)
        assert not real_thread.is_alive()
        with make_server(self._service(), port=port) as reuse:
            reuse.start()
            status, _ = _get(f"http://127.0.0.1:{port}/v1/snapshot")
            assert status == 200

    def test_post_short_body_is_400_and_closes_connection(self):
        # A client that dies mid-body leaves the connection unframed:
        # the server must answer 400 and hang up rather than block on
        # rfile.read() or parse stale bytes as the next request line.
        import socket

        with make_server(self._service(), port=0) as server:
            server.start()
            host, port = server.server_address[:2]
            with socket.create_connection((host, port), timeout=5) as sock:
                sock.sendall(
                    b"POST /v1/batch HTTP/1.1\r\n"
                    b"Host: test\r\n"
                    b"Content-Length: 100\r\n"
                    b"\r\n"
                    b'{"queries": ['
                )
                sock.shutdown(socket.SHUT_WR)  # EOF before the full body
                sock.settimeout(5)
                response = b""
                while True:
                    chunk = sock.recv(4096)
                    if not chunk:  # EOF: the server closed the connection
                        break
                    response += chunk
        status_line = response.split(b"\r\n", 1)[0]
        assert b"400" in status_line
        assert b"truncated request body" in response
