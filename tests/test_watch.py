"""``repro watch``: the streaming ingestion daemon.

The contract under test: feeding snapshot files through a
:class:`~repro.analysis.watch.SnapshotWatcher` produces an archive
bit-equal (pair-wise) to a batch ``detect_series`` run over the same
dates, survives kill -9 at any point with zero loss of committed
generations, replays idempotently, hot-swaps an attached query service
only when the pairs actually changed, and surfaces its loop state on
``/v1/status`` through the server's ``status_extras`` seam.

The SIGKILL-replay stress at the bottom runs the watcher in a child
process and murders it on a schedule of delays — after every kill the
archive must recover to a committed prefix of the expected series, and
a final clean run must converge to the full series.  It rides in the
blocking fleet-stress CI job next to the fleet supervisor tests.
"""

import datetime
import json
import pathlib
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from test_incremental_pipeline import (
    BASE_DATE,
    SeriesShim,
    make_annotator,
    snapshot_from_table,
)

from repro.analysis.pipeline import detect_series
from repro.analysis.watch import (
    MAX_PARSE_RETRIES,
    SnapshotDirectorySource,
    SnapshotWatcher,
    WatchError,
    read_snapshot_file,
    write_snapshot_file,
)
from repro.obs.metrics import MetricsRegistry
from repro.serving.http import make_server
from repro.serving.service import SiblingQueryService
from repro.storage import substrate_io
from repro.storage.archive import ArchiveReader

SRC_DIR = pathlib.Path(__file__).resolve().parent.parent / "src"
TESTS_DIR = pathlib.Path(__file__).resolve().parent

# Four dates of hand-picked churn: growth, renumber, a quiet repeat
# (same table twice — the pairs do not change, so the watcher must
# skip the swap), then a shrink.
_TABLES = [
    {
        "a.example": ({(0, 1)}, {(0, 1)}),
        "b.example": ({(1, 2)}, {(1, 2)}),
        "c.example": ({(2, 3)}, set()),
    },
    {
        "a.example": ({(0, 1)}, {(0, 1)}),
        "b.example": ({(1, 2)}, {(1, 2)}),
        "c.example": ({(2, 3)}, {(2, 3)}),
        "d.example": ({(3, 4)}, {(3, 4)}),
    },
    {
        "a.example": ({(0, 1)}, {(0, 1)}),
        "b.example": ({(1, 2)}, {(1, 2)}),
        "c.example": ({(2, 3)}, {(2, 3)}),
        "d.example": ({(3, 4)}, {(3, 4)}),
    },
    {
        "a.example": ({(0, 9)}, {(0, 9)}),
        "d.example": ({(3, 4)}, {(3, 4)}),
    },
]


def _series():
    return [
        snapshot_from_table(BASE_DATE + datetime.timedelta(days=i), table)
        for i, table in enumerate(_TABLES)
    ]


def _expected():
    snapshots = _series()
    shim = SeriesShim(snapshots)
    return detect_series(shim, [s.date for s in snapshots], incremental=True)


def _archived_siblings(path):
    """date → SiblingSet for every committed generation in *path*."""
    with ArchiveReader.open(path) as reader:
        pool_names = reader.pool_names()
        return {
            date: substrate_io.load_siblings(generation, pool_names)
            for date, generation in reader.generations_by_date(
                substrate_io.SIBLINGS_KIND
            ).items()
        }


def _make_watcher(feed_dir, archive, **kwargs):
    annotator = make_annotator()
    return SnapshotWatcher(
        SnapshotDirectorySource(feed_dir),
        lambda date: annotator,
        archive,
        **kwargs,
    )


class TestSnapshotFileCodec:
    def test_round_trip(self, tmp_path):
        for snapshot in _series():
            path = write_snapshot_file(snapshot, tmp_path)
            assert path.name == f"{snapshot.date.isoformat()}.json"
            loaded = read_snapshot_file(path)
            assert loaded.date == snapshot.date
            original = {
                o.domain: (o.v4_addresses, o.v6_addresses)
                for o in snapshot.observations()
            }
            round_tripped = {
                o.domain: (o.v4_addresses, o.v6_addresses)
                for o in loaded.observations()
            }
            assert round_tripped == original
        # The atomic-write scratch files never survive.
        assert not list(tmp_path.glob("*.tmp"))
        assert not list(tmp_path.glob(".*.tmp"))

    def test_rejects_garbage_and_bad_schema(self, tmp_path):
        bad = tmp_path / "2024-09-01.json"
        bad.write_text("{not json")
        with pytest.raises(WatchError, match="cannot read"):
            read_snapshot_file(bad)
        bad.write_text(json.dumps({"format_version": 99, "date": "2024-09-01", "observations": []}))
        with pytest.raises(WatchError, match="version"):
            read_snapshot_file(bad)
        bad.write_text(
            json.dumps(
                {
                    "format_version": 1,
                    "date": "2024-09-01",
                    "observations": [
                        {"domain": "x.example", "v4": ["2001:db8::1"], "v6": []}
                    ],
                }
            )
        )
        with pytest.raises(WatchError, match="not IPv4"):
            read_snapshot_file(bad)
        bad.write_text(json.dumps({"format_version": 1, "date": "2024-09-01"}))
        with pytest.raises(WatchError, match="malformed"):
            read_snapshot_file(bad)


class TestDirectorySource:
    def test_consumes_each_file_once_in_date_order(self, tmp_path):
        snapshots = _series()
        # Written newest-first: poll must still yield date order.
        for snapshot in reversed(snapshots):
            write_snapshot_file(snapshot, tmp_path)
        source = SnapshotDirectorySource(tmp_path)
        assert source.backlog() == len(snapshots)
        polled = source.poll()
        assert [s.date for s in polled] == [s.date for s in snapshots]
        assert source.poll() == []
        assert source.backlog() == 0

    def test_bad_file_retried_then_abandoned(self, tmp_path):
        bad = tmp_path / "2024-09-01.json"
        bad.write_text("{half a snapsh")
        source = SnapshotDirectorySource(tmp_path)
        for attempt in range(1, MAX_PARSE_RETRIES + 1):
            assert source.poll() == []
            assert source.errors == attempt
        # Abandoned: no further attempts, no further errors.
        assert source.poll() == []
        assert source.errors == MAX_PARSE_RETRIES
        assert source.backlog() == 0

    def test_bad_file_recovering_before_giveup_is_consumed(self, tmp_path):
        snapshot = _series()[0]
        bad = tmp_path / f"{snapshot.date.isoformat()}.json"
        bad.write_text("")
        source = SnapshotDirectorySource(tmp_path)
        assert source.poll() == []
        assert source.errors == 1
        write_snapshot_file(snapshot, tmp_path)  # the writer finished
        polled = source.poll()
        assert [s.date for s in polled] == [snapshot.date]


class TestWatcher:
    def test_matches_detect_series(self, tmp_path):
        feed = tmp_path / "feed"
        feed.mkdir()
        for snapshot in _series():
            write_snapshot_file(snapshot, feed)
        archive = tmp_path / "watch.sparch"
        registry = MetricsRegistry()
        watcher = _make_watcher(feed, archive, registry=registry)
        appended = watcher.run(once=True)
        expected = _expected()
        assert appended == len(expected)
        archived = _archived_siblings(archive)
        assert sorted(archived) == [date.isoformat() for date, _ in expected]
        for date, siblings in expected:
            assert archived[date.isoformat()].same_pairs(siblings)
        assert registry.counter("watch.generations").value == appended
        assert registry.counter("watch.snapshots").value == len(expected)

    def test_replay_is_idempotent(self, tmp_path):
        feed = tmp_path / "feed"
        feed.mkdir()
        for snapshot in _series():
            write_snapshot_file(snapshot, feed)
        archive = tmp_path / "watch.sparch"
        assert _make_watcher(feed, archive).run(once=True) == len(_TABLES)
        before = archive.read_bytes()
        # A fresh watcher (fresh source: every file is "new" again) must
        # recognise every date as already committed and append nothing.
        replay = _make_watcher(feed, archive)
        assert replay.run(once=True) == 0
        assert archive.read_bytes() == before

    def test_hot_swap_skips_unchanged_pairs(self, tmp_path):
        feed = tmp_path / "feed"
        feed.mkdir()
        for snapshot in _series():
            write_snapshot_file(snapshot, feed)
        archive = tmp_path / "watch.sparch"
        registry = MetricsRegistry()
        service = SiblingQueryService()
        watcher = _make_watcher(
            feed, archive, service=service, registry=registry
        )
        appended = watcher.run(once=True)
        assert appended == len(_TABLES)
        # Date 2 repeats date 1's table: same pairs, swap skipped — the
        # service's generation counts real publishes only.
        assert registry.counter("watch.swaps_skipped").value == 1
        assert service.generation == appended - 1
        last_date = BASE_DATE + datetime.timedelta(days=len(_TABLES) - 1)
        assert service.index.snapshot == last_date
        expected = dict(_expected())
        answer = service.lookup(
            str(next(iter(expected[last_date])).v4_prefix)
        )
        assert answer["found"]

    def test_restart_reserves_newest_generation(self, tmp_path):
        feed = tmp_path / "feed"
        feed.mkdir()
        for snapshot in _series():
            write_snapshot_file(snapshot, feed)
        archive = tmp_path / "watch.sparch"
        _make_watcher(feed, archive).run(once=True)
        # A restarted watcher re-serves the newest committed generation
        # at construction, before any poll happens.
        service = SiblingQueryService()
        empty = tmp_path / "empty"
        empty.mkdir()
        _make_watcher(empty, archive, service=service)
        assert service.generation == 1
        assert service.index.snapshot == BASE_DATE + datetime.timedelta(
            days=len(_TABLES) - 1
        )

    def test_stale_date_is_rejected_and_counted(self, tmp_path):
        archive = tmp_path / "watch.sparch"
        registry = MetricsRegistry()
        feed = tmp_path / "feed"
        feed.mkdir()
        watcher = _make_watcher(feed, archive, registry=registry)
        snapshots = _series()
        assert watcher.process(snapshots[1]) is True
        # Same date again, and an older date: both refused.
        assert watcher.process(snapshots[1]) is False
        assert watcher.process(snapshots[0]) is False
        assert registry.counter("watch.source_errors").value == 2
        assert registry.counter("watch.generations").value == 1

    def test_budget_overrun_is_observed_not_fatal(self, tmp_path):
        archive = tmp_path / "watch.sparch"
        registry = MetricsRegistry()
        feed = tmp_path / "feed"
        feed.mkdir()
        watcher = _make_watcher(
            feed, archive, budget_seconds=1e-12, registry=registry
        )
        assert watcher.process(_series()[0]) is True
        assert registry.counter("watch.budget_overruns").value == 1
        assert watcher.status()["budget_overruns"] == 1

    def test_status_surfaces_on_http(self, tmp_path):
        feed = tmp_path / "feed"
        feed.mkdir()
        for snapshot in _series():
            write_snapshot_file(snapshot, feed)
        archive = tmp_path / "watch.sparch"
        service = SiblingQueryService()
        watcher = _make_watcher(
            feed, archive, service=service, registry=MetricsRegistry()
        )
        watcher.run(once=True)
        with make_server(service, port=0) as server:
            server.status_extras["watch"] = watcher.status
            server.start()
            port = server.server_address[1]
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/v1/status", timeout=5
            ) as response:
                payload = json.load(response)
        assert payload["watch"]["generations"] == len(_TABLES)
        assert payload["watch"]["backlog"] == 0
        assert payload["watch"]["last_date"] == (
            BASE_DATE + datetime.timedelta(days=len(_TABLES) - 1)
        ).isoformat()
        assert payload["watch"]["archive"] == str(archive)
        assert payload["worker"]["generation"] == service.generation

    def test_run_stops_on_event_and_max_generations(self, tmp_path):
        feed = tmp_path / "feed"
        feed.mkdir()
        for snapshot in _series():
            write_snapshot_file(snapshot, feed)
        archive = tmp_path / "watch.sparch"
        watcher = _make_watcher(feed, archive, poll_interval=0.01)
        assert watcher.run(max_generations=2) == 2
        # The already-polled remainder of the batch is buffered, not
        # dropped — the source consumed those files at poll time.
        assert watcher.status()["backlog"] == len(_TABLES) - 2
        # Resume the rest on a daemon-style run, stopped via the event.
        stop = threading.Event()
        done = {}

        def _run():
            done["appended"] = watcher.run(stop=stop)

        thread = threading.Thread(target=_run)
        thread.start()
        deadline = time.monotonic() + 10
        while watcher.generations < len(_TABLES):
            assert time.monotonic() < deadline
            time.sleep(0.01)
        stop.set()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert done["appended"] == len(_TABLES) - 2


# -- SIGKILL replay stress ----------------------------------------------------

_WATCH_CHILD = """
import sys

src, tests, feed, archive = sys.argv[1:5]
sys.path.insert(0, src)
sys.path.insert(0, tests)

from test_incremental_pipeline import make_annotator

from repro.analysis.watch import SnapshotDirectorySource, SnapshotWatcher

annotator = make_annotator()
watcher = SnapshotWatcher(
    SnapshotDirectorySource(feed), lambda date: annotator, archive
)
watcher.run(once=True)
print("DONE", watcher.generations, flush=True)
"""


def _run_watch_child(feed, archive, kill_after=None):
    """Run the watcher child; kill -9 it after *kill_after* seconds
    (None = let it finish).  Returns the completed process, or None if
    it was killed."""
    child = subprocess.Popen(
        [
            sys.executable,
            "-c",
            _WATCH_CHILD,
            str(SRC_DIR),
            str(TESTS_DIR),
            str(feed),
            str(archive),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    if kill_after is None:
        stdout, stderr = child.communicate(timeout=120)
        assert child.returncode == 0, stderr
        assert "DONE" in stdout
        return child
    try:
        child.wait(timeout=kill_after)
        # Finished before the axe fell: also a valid schedule point.
        return child
    except subprocess.TimeoutExpired:
        child.kill()
        child.wait(timeout=30)
        return None


class TestSigkillReplay:
    """Kill the watch daemon on a schedule; committed state never rots."""

    def test_killed_watcher_replays_to_convergence(self, tmp_path):
        feed = tmp_path / "feed"
        feed.mkdir()
        for snapshot in _series():
            write_snapshot_file(snapshot, feed)
        archive = tmp_path / "watch.sparch"
        expected = _expected()
        expected_dates = [date.isoformat() for date, _ in expected]
        by_date = {date.isoformat(): s for date, s in expected}

        # Escalating delays: early kills land mid-import or mid-build,
        # later ones mid-append or post-commit (or after a fast child
        # already finished — also a valid schedule point).
        for delay in (0.1, 0.25, 0.4, 0.55, 0.7, 0.9):
            _run_watch_child(feed, archive, kill_after=delay)
            if not archive.exists():
                continue
            # Whatever committed must be a correct prefix of the series.
            archived = _archived_siblings(archive)
            dates = sorted(archived)
            assert dates == expected_dates[: len(dates)]
            for date in dates:
                assert archived[date].same_pairs(by_date[date])

        # A final clean run converges to the full series, and the
        # archive strict-opens (no torn tail survives).
        _run_watch_child(feed, archive, kill_after=None)
        archived = _archived_siblings(archive)
        assert sorted(archived) == expected_dates
        for date in expected_dates:
            assert archived[date].same_pairs(by_date[date])
        with ArchiveReader.open(archive) as reader:
            assert not reader.recovered
            assert reader.verify() > 0
        # And the recovered archive serves.
        service = SiblingQueryService.from_archive(archive)
        assert service.index.snapshot.isoformat() == expected_dates[-1]
